// Query service: the streaming front end (parallel/service.h). Where
// examples/batch_queries.cpp freezes a workload and runs it as one batch,
// this example keeps a MatchService up while queries arrive one by one from
// two tenants: submissions return tickets immediately, weighted-fair
// admission keeps the paying tenant's share at 3:1 under contention, one
// query is cancelled mid-flight, and repeated queries resolve from the
// service-lifetime plan cache without executing at all.

#include <cstdio>
#include <vector>

#include "gen/generator.h"
#include "gen/query_gen.h"
#include "parallel/service.h"
#include "util/rng.h"

using namespace hgmatch;  // NOLINT: example brevity

int main() {
  // One data hypergraph, indexed once (the offline phase).
  GeneratorConfig config;
  config.seed = 7;
  config.num_vertices = 2000;
  config.num_edges = 6000;
  config.num_labels = 8;
  Hypergraph data = GenerateHypergraph(config);
  IndexedHypergraph indexed = IndexedHypergraph::Build(std::move(data));
  std::printf("data: %zu vertices, %zu hyperedges\n",
              indexed.graph().NumVertices(), indexed.graph().NumEdges());

  // The service stays up for the process lifetime: a small admission
  // window plus weighted-fair admission is the multi-tenant serving shape.
  ServiceOptions options;
  options.parallel.num_threads = 4;
  options.parallel.limit = 100000;
  options.admission = AdmissionPolicy::kWeightedFair;
  options.max_inflight_queries = 2;
  MatchService service(indexed, options);

  // Two tenants submit interleaved queries while earlier ones run. Tenant
  // 1 pays for a 3x share; both get tickets back immediately.
  Rng rng(99);
  std::vector<Ticket> tickets;
  std::vector<uint32_t> tenant_of;
  for (int i = 0; i < 12; ++i) {
    const uint32_t k = 2 + i % 3;
    Result<Hypergraph> q =
        SampleQuery(indexed.graph(), QuerySettings{"user", k, 2, 200}, &rng);
    if (!q.ok()) continue;
    SubmitOptions submit;
    submit.tenant_id = 1 + i % 2;
    submit.weight = submit.tenant_id == 1 ? 3.0 : 1.0;
    tickets.push_back(service.Submit(std::move(q.value()), submit));
    tenant_of.push_back(submit.tenant_id);
  }

  // Cancel the most recent submission: a queued query resolves instantly,
  // an in-flight one stops at its next task boundary.
  if (!tickets.empty() && tickets.back().Cancel()) {
    std::printf("cancelled query %llu\n",
                static_cast<unsigned long long>(tickets.back().id()));
  }

  for (size_t i = 0; i < tickets.size(); ++i) {
    const QueryOutcome& out = tickets[i].Wait();
    std::printf("  query %2zu (tenant %u): %-9s %8llu embeddings%s in %.4fs"
                " (admitted #%llu at %.4fs)%s\n",
                i, tenant_of[i], QueryStatusName(out.status),
                static_cast<unsigned long long>(out.stats.embeddings),
                out.stats.limit_hit ? "+" : "", out.stats.seconds,
                static_cast<unsigned long long>(out.admit_index),
                out.admit_seconds, out.mirrored ? " [mirrored]" : "");
  }

  const ServiceReport report = service.Shutdown();
  std::printf("service: %llu submitted, %llu executed, %llu mirrored, "
              "%llu plans compiled, %.4fs\n",
              static_cast<unsigned long long>(report.submitted),
              static_cast<unsigned long long>(report.executed),
              static_cast<unsigned long long>(report.mirrored),
              static_cast<unsigned long long>(report.unique_plans),
              report.seconds);
  return 0;
}
