// Asynchronous wire client: AsyncMatchClient (net/async_client.h) against
// a multi-threaded reactor server. Where examples/query_server.cpp blocks
// on WaitOutcome per request, this example registers a callback per
// submission — Submit() returns immediately, the client's reader thread
// dispatches each reply as it arrives — and demonstrates the rest of the
// async surface: the bounded in-flight window, fire-and-forget Cancel,
// and the per-IO-thread statistics rows of an io_threads=4 server.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <vector>

#include "gen/generator.h"
#include "gen/query_gen.h"
#include "net/async_client.h"
#include "net/server.h"

using namespace hgmatch;  // NOLINT: example brevity

int main() {
  // Offline phase: one data hypergraph, indexed once.
  GeneratorConfig config;
  config.seed = 7;
  config.num_vertices = 2000;
  config.num_edges = 6000;
  config.num_labels = 8;
  Hypergraph data = GenerateHypergraph(config);
  IndexedHypergraph indexed = IndexedHypergraph::Build(std::move(data));

  // Online phase: a reactor with four IO threads — connections are pinned
  // to a thread by fd hash, so each one's state stays single-threaded
  // while the front end as a whole scales with cores.
  ServerOptions options;
  options.service.parallel.num_threads = 4;
  options.service.parallel.limit = 100000;
  options.io_threads = 4;
  MatchServer server(indexed, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::printf("server unavailable here: %s\n", started.ToString().c_str());
    return 0;  // non-POSIX platforms
  }
  std::printf("serving 127.0.0.1:%u (4 io threads)\n", server.port());

  // The window keeps a runaway producer honest: with at most 4 requests
  // outstanding, the 12-query loop below briefly parks inside Submit()
  // whenever it gets four ahead of the server.
  AsyncClientOptions client_options;
  client_options.max_inflight = 4;
  AsyncMatchClient client(client_options);
  if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;

  QuerySettings settings{"example", 3, 2, 2000};
  std::vector<Hypergraph> queries =
      SampleQueries(indexed.graph(), settings, 12, 11);

  // One callback per submission; it runs on the client's reader thread,
  // so shared tallies need their own lock and the main thread parks on a
  // condition variable until the last reply lands.
  std::mutex mu;
  std::condition_variable done_cv;
  size_t resolved = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<uint64_t> id = client.Submit(
        queries[i], {}, [&, i](const AsyncOutcome& result) {
          std::lock_guard<std::mutex> lock(mu);
          ++resolved;
          if (!result.transport.ok()) {
            std::printf("query %2zu: lost (%s)\n", i,
                        result.transport.ToString().c_str());
          } else {
            const QueryOutcome& out = result.wire.outcome;
            std::printf("query %2zu: %8llu embeddings in %.4fs  [%s]\n", i,
                        static_cast<unsigned long long>(out.stats.embeddings),
                        out.stats.seconds, QueryStatusName(out.status));
            total += out.stats.embeddings;
          }
          done_cv.notify_all();
        });
    if (!id.ok()) return 1;
  }

  // Cancel is fire-and-forget and safe to race with completion: the
  // callback still resolves exactly once (cancelled — or finished, if the
  // query won the race).
  {
    Result<uint64_t> doomed = client.Submit(
        queries.front(), {}, [&](const AsyncOutcome& result) {
          std::lock_guard<std::mutex> lock(mu);
          ++resolved;
          std::printf("cancelled query: [%s]\n",
                      result.transport.ok()
                          ? QueryStatusName(result.wire.outcome.status)
                          : result.transport.ToString().c_str());
          done_cv.notify_all();
        });
    if (!doomed.ok()) return 1;
    if (!client.Cancel(doomed.value()).ok()) return 1;
  }

  const size_t expected = queries.size() + 1;
  {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return resolved == expected; });
  }

  // The stats snapshot now carries one counter row per IO thread.
  Result<WireStats> stats = client.Stats();
  if (stats.ok()) {
    std::printf("server: %llu submitted, %llu completed over %zu io threads\n",
                static_cast<unsigned long long>(stats.value().submitted),
                static_cast<unsigned long long>(stats.value().completed),
                stats.value().io_threads.size());
    for (size_t t = 0; t < stats.value().io_threads.size(); ++t) {
      const WireIoThreadStats& row = stats.value().io_threads[t];
      std::printf("  io[%zu]: %llu frames in, %llu frames out\n", t,
                  static_cast<unsigned long long>(row.frames_in),
                  static_cast<unsigned long long>(row.frames_out));
    }
  }
  std::printf("total embeddings %llu\n",
              static_cast<unsigned long long>(total));
  client.Close();
  server.Stop();
  return 0;
}
