// Motivating application 2 (paper Section I): pattern learning in NLP over
// semantic hypergraphs (Menezes & Roth). Each word is a vertex labelled by
// its part of speech; each sentence is a hyperedge. Pattern learning
// repeatedly matches a candidate pattern (query hypergraph) against the
// corpus hypergraph and presents the embeddings for validation.
//
// This example builds a synthetic corpus hypergraph with a POS alphabet,
// then mines a two-sentence pattern: a pair of sentences that share a noun
// and a verb (a coarse "topic continuity" pattern), and a three-sentence
// chain variant, demonstrating iterative pattern refinement.

#include <cstdio>

#include "core/hgmatch.h"
#include "gen/generator.h"
#include "util/rng.h"

using namespace hgmatch;  // NOLINT: example brevity

namespace {

enum Pos : Label { kNoun = 0, kVerb, kAdj, kAdv, kDet, kPrep, kNumPos };

// A synthetic corpus: sentences of 3-12 words; word identities are shared
// across sentences with Zipf frequency (function words dominate).
Hypergraph BuildCorpus() {
  GeneratorConfig config;
  config.seed = 42;
  config.num_vertices = 3000;  // vocabulary
  config.num_edges = 9000;     // sentences
  config.num_labels = kNumPos;
  config.arity_min = 3;
  config.arity_max = 12;
  config.arity_param = 0.25;
  config.vertex_skew = 1.0;  // Zipf's law of word frequency
  config.label_skew = 0.5;
  return GenerateHypergraph(config);
}

// Pattern 1: two sentences sharing one noun and one verb.
Hypergraph TopicContinuityPattern() {
  Hypergraph q;
  const VertexId noun = q.AddVertex(kNoun);
  const VertexId verb = q.AddVertex(kVerb);
  const VertexId extra1 = q.AddVertex(kAdj);
  const VertexId extra2 = q.AddVertex(kAdv);
  (void)q.AddEdge({noun, verb, extra1});
  (void)q.AddEdge({noun, verb, extra2});
  return q;
}

// Pattern 2 (refined): a three-sentence chain through the same noun, with
// the middle sentence introducing a second noun shared with the third.
Hypergraph ChainPattern() {
  Hypergraph q;
  const VertexId noun_a = q.AddVertex(kNoun);
  const VertexId noun_b = q.AddVertex(kNoun);
  const VertexId verb1 = q.AddVertex(kVerb);
  const VertexId verb2 = q.AddVertex(kVerb);
  const VertexId adj = q.AddVertex(kAdj);
  (void)q.AddEdge({noun_a, verb1, adj});
  (void)q.AddEdge({noun_a, noun_b, verb2});
  (void)q.AddEdge({noun_b, verb1, verb2});
  return q;
}

void Mine(const IndexedHypergraph& corpus, const Hypergraph& pattern,
          const char* name) {
  MatchOptions options;
  options.limit = 1'000'000;  // patterns are for human review; cap output
  CollectSink sink(/*cap=*/3);
  Result<MatchStats> stats = MatchSequential(corpus, pattern, options, &sink);
  if (!stats.ok()) {
    std::printf("%s: %s\n", name, stats.status().ToString().c_str());
    return;
  }
  std::printf("%s: %llu%s embeddings (%.2f ms)\n", name,
              static_cast<unsigned long long>(stats.value().embeddings),
              stats.value().limit_hit ? "+" : "",
              stats.value().seconds * 1e3);
  for (const Embedding& m : sink.embeddings()) {
    std::printf("  sentences:");
    for (EdgeId e : m) std::printf(" #%u", e);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Hypergraph corpus_graph = BuildCorpus();
  std::printf("corpus: %zu words, %zu sentences, avg length %.1f\n",
              corpus_graph.NumVertices(), corpus_graph.NumEdges(),
              corpus_graph.AverageArity());
  IndexedHypergraph corpus = IndexedHypergraph::Build(std::move(corpus_graph));

  // The pattern-learning loop of the paper's NLP application: match, show
  // the analyst a few embeddings, refine, repeat.
  Mine(corpus, TopicContinuityPattern(), "pattern 'topic continuity'");
  Mine(corpus, ChainPattern(), "pattern 'three-sentence chain'");
  return 0;
}
