// Wire front end: the TCP server/client pair (net/server.h, net/client.h)
// over a MatchService. Where examples/query_service.cpp drives the service
// in process, this example stands up a real loopback server, speaks the
// length-prefixed binary protocol through MatchClient, pipelines queries,
// observes queue-depth backpressure (a shed submission coming back as
// REJECTED), and reads the server statistics — the whole `hgmatch serve` /
// `hgmatch query --connect` path as a library.

#include <cstdio>
#include <vector>

#include "gen/generator.h"
#include "gen/query_gen.h"
#include "net/client.h"
#include "net/server.h"

using namespace hgmatch;  // NOLINT: example brevity

int main() {
  // Offline phase: one data hypergraph, indexed once.
  GeneratorConfig config;
  config.seed = 7;
  config.num_vertices = 2000;
  config.num_edges = 6000;
  config.num_labels = 8;
  Hypergraph data = GenerateHypergraph(config);
  IndexedHypergraph indexed = IndexedHypergraph::Build(std::move(data));

  // Online phase: serve it over TCP. Port 0 picks an ephemeral port; the
  // queue bound gives the server a load-shedding path under flood.
  ServerOptions options;
  options.service.parallel.num_threads = 4;
  options.service.parallel.limit = 100000;
  options.service.max_inflight_queries = 2;
  options.service.max_queued_queries = 8;
  MatchServer server(indexed, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::printf("server unavailable here: %s\n", started.ToString().c_str());
    return 0;  // non-POSIX platforms
  }
  std::printf("serving 127.0.0.1:%u\n", server.port());

  MatchClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;

  // Pipeline a workload: submit everything, then collect outcomes.
  QuerySettings settings{"example", 3, 2, 2000};
  std::vector<Hypergraph> queries =
      SampleQueries(indexed.graph(), settings, 12, 11);
  std::vector<uint64_t> ids;
  for (const Hypergraph& q : queries) {
    Result<uint64_t> id = client.Submit(q);
    if (!id.ok()) return 1;
    ids.push_back(id.value());
  }
  uint64_t total = 0, rejected = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    Result<WireOutcome> reply = client.WaitOutcome(ids[i]);
    if (!reply.ok()) return 1;
    const QueryOutcome& out = reply.value().outcome;
    if (out.status == QueryStatus::kRejected) {
      // Shed by backpressure: a real client would retry with backoff.
      ++rejected;
      continue;
    }
    std::printf("query %2zu: %8llu embeddings in %.4fs  [%s]%s\n", i,
                static_cast<unsigned long long>(out.stats.embeddings),
                out.stats.seconds, QueryStatusName(out.status),
                out.mirrored ? " (mirrored)" : "");
    total += out.stats.embeddings;
  }

  Result<WireStats> stats = client.Stats();
  if (stats.ok()) {
    std::printf("server: %llu submitted, %llu completed, %llu rejected, "
                "%u worker threads\n",
                static_cast<unsigned long long>(stats.value().submitted),
                static_cast<unsigned long long>(stats.value().completed),
                static_cast<unsigned long long>(stats.value().rejected),
                stats.value().num_threads);
  }
  std::printf("total embeddings %llu (%llu queries shed)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(rejected));
  server.Stop();
  return 0;
}
