// Case study (paper Section VII.D): question answering over a hypergraph
// knowledge base. Reproduces the two JF17K queries of Fig 13 on the
// synthetic JF17K-like knowledge hypergraph:
//   Query 1: players who represented different teams in different matches.
//   Query 2: actors who played the same character in a TV show on
//            different seasons.

#include <cstdio>

#include "core/hgmatch.h"
#include "gen/knowledge_base.h"
#include "parallel/dataflow.h"

using namespace hgmatch;  // NOLINT: example brevity

namespace {

// Prints one embedding as a human-readable fact pair.
void PrintEmbedding(const Hypergraph& kb, const Embedding& m) {
  std::printf("  {");
  for (size_t i = 0; i < m.size(); ++i) {
    if (i) std::printf("} & {");
    const VertexSet& fact = kb.edge(m[i]);
    for (size_t j = 0; j < fact.size(); ++j) {
      if (j) std::printf(", ");
      std::printf("%s#%u", KbTypeName(kb.label(fact[j])), fact[j]);
    }
  }
  std::printf("}\n");
}

void RunQuery(const IndexedHypergraph& kb, const Hypergraph& query,
              const char* question) {
  std::printf("\nQ: %s\n", question);
  Result<QueryPlan> plan = BuildQueryPlan(query, kb);
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return;
  }
  std::printf("plan:\n%s",
              DataflowGraph::FromPlan(plan.value()).ToString(&kb).c_str());
  CollectSink sink(/*cap=*/3);
  MatchStats stats =
      ExecutePlanSequential(kb, plan.value(), MatchOptions{}, &sink);
  std::printf("HGMatch finds %llu embeddings in %s; first %zu:\n",
              static_cast<unsigned long long>(stats.embeddings),
              stats.seconds < 1e-3
                  ? "<1ms"
                  : (std::to_string(stats.seconds * 1e3) + "ms").c_str(),
              sink.embeddings().size());
  for (const Embedding& m : sink.embeddings()) PrintEmbedding(kb.graph(), m);
}

}  // namespace

int main() {
  KbConfig config;
  Hypergraph kb_graph = GenerateKnowledgeBase(config);
  std::printf("knowledge base: %zu entities, %zu n-ary facts\n",
              kb_graph.NumVertices(), kb_graph.NumEdges());
  IndexedHypergraph kb = IndexedHypergraph::Build(std::move(kb_graph));

  RunQuery(kb, KbQueryMultiTeamPlayer(),
           "Football players who represented different teams in different "
           "matches (Fig 13a)");
  RunQuery(kb, KbQueryRecastCharacter(),
           "Actors who played the same character in a TV show on different "
           "seasons (Fig 13b)");

  // Beyond the paper: the same query answered with the aggregation
  // extension operator — count answers per player entity.
  std::printf("\nExtension: answers grouped by player entity "
              "(GroupCount operator):\n");
  Result<QueryPlan> plan = BuildQueryPlan(KbQueryMultiTeamPlayer(), kb);
  if (plan.ok()) {
    const Hypergraph& g = kb.graph();
    GroupCountSink groups([&g](const EdgeId* edges, uint32_t) {
      // The shared player is the unique kPlayer vertex of the first fact.
      for (VertexId v : g.edge(edges[0])) {
        if (g.label(v) == kPlayer) return uint64_t{v};
      }
      return uint64_t{0};
    });
    ExecutePlanSequential(kb, plan.value(), MatchOptions{}, &groups);
    int shown = 0;
    for (const auto& [player, count] : groups.counts()) {
      if (++shown > 5) break;
      std::printf("  Player#%llu: %llu team-switch pairs\n",
                  static_cast<unsigned long long>(player),
                  static_cast<unsigned long long>(count));
    }
    std::printf("  (%zu players total)\n", groups.counts().size());
  }
  return 0;
}
