// Motivating application 1 (paper Section I): mining biological networks.
// Protein interaction data is modelled as a hypergraph whose vertices are
// proteins (labelled by family) and whose hyperedges are complexes. A
// biologist expresses a complex pattern of interest as a query hypergraph
// and finds all occurrences in the network.
//
// This example builds a synthetic protein-complex network, plants a known
// "bridged double complex" motif, and searches for it with both the
// sequential and the parallel engine.

#include <cstdio>

#include "core/hgmatch.h"
#include "gen/generator.h"
#include "parallel/executor.h"

using namespace hgmatch;  // NOLINT: example brevity

namespace {

// Protein families used as vertex labels.
enum Family : Label { kKinase = 0, kPhosphatase, kScaffold, kReceptor, kNumFamilies };

// The motif: two complexes that share exactly one scaffold protein; one
// complex contains a receptor, the other a phosphatase, and both contain a
// kinase. (A classic signalling-pathway shape.)
Hypergraph MotifQuery() {
  Hypergraph q;
  const VertexId scaffold = q.AddVertex(kScaffold);
  const VertexId kinase1 = q.AddVertex(kKinase);
  const VertexId receptor = q.AddVertex(kReceptor);
  const VertexId kinase2 = q.AddVertex(kKinase);
  const VertexId phosphatase = q.AddVertex(kPhosphatase);
  (void)q.AddEdge({scaffold, kinase1, receptor});
  (void)q.AddEdge({scaffold, kinase2, phosphatase});
  return q;
}

}  // namespace

int main() {
  // Background network: heavy-tailed participation, complexes of 2-8
  // proteins over 4 families.
  GeneratorConfig config;
  config.seed = 2026;
  config.num_vertices = 4000;   // proteins
  config.num_edges = 12000;     // complexes
  config.num_labels = kNumFamilies;
  config.arity_min = 2;
  config.arity_max = 8;
  config.arity_param = 0.4;
  config.vertex_skew = 0.8;     // hub proteins
  Hypergraph network = GenerateHypergraph(config);

  // Plant a handful of motif instances so the search has guaranteed hits.
  for (int i = 0; i < 4; ++i) {
    const VertexId scaffold = network.AddVertex(kScaffold);
    const VertexId k1 = network.AddVertex(kKinase);
    const VertexId r = network.AddVertex(kReceptor);
    const VertexId k2 = network.AddVertex(kKinase);
    const VertexId p = network.AddVertex(kPhosphatase);
    (void)network.AddEdge({scaffold, k1, r});
    (void)network.AddEdge({scaffold, k2, p});
  }

  std::printf("protein network: %zu proteins, %zu complexes, avg size %.1f\n",
              network.NumVertices(), network.NumEdges(),
              network.AverageArity());

  IndexedHypergraph indexed = IndexedHypergraph::Build(std::move(network));
  std::printf("indexed into %zu signature tables (%llu KB of index)\n",
              indexed.partitions().size(),
              static_cast<unsigned long long>(indexed.IndexBytes() / 1024));

  const Hypergraph query = MotifQuery();
  CollectSink sink(/*cap=*/5);
  Result<MatchStats> stats =
      MatchSequential(indexed, query, MatchOptions{}, &sink);
  if (!stats.ok()) {
    std::printf("match failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("motif occurrences: %llu (%.3f ms, %llu candidates examined)\n",
              static_cast<unsigned long long>(stats.value().embeddings),
              stats.value().seconds * 1e3,
              static_cast<unsigned long long>(stats.value().candidates));
  for (const Embedding& m : sink.embeddings()) {
    std::printf("  complexes (%u, %u) share scaffold\n", m[0], m[1]);
  }

  // Parallel run for larger networks.
  ParallelOptions popts;
  popts.num_threads = 4;
  Result<ParallelResult> par = MatchParallel(indexed, query, popts);
  if (par.ok()) {
    std::printf("parallel engine agrees: %llu occurrences (peak task mem %llu "
                "bytes)\n",
                static_cast<unsigned long long>(par.value().stats.embeddings),
                static_cast<unsigned long long>(par.value().peak_task_bytes));
  }
  return 0;
}
