// Quickstart: build a hypergraph, index it, and run a subhypergraph match —
// the paper's running example (Fig 1): query q with 5 vertices and 3
// hyperedges, data H with 7 vertices and 6 hyperedges, expected embeddings
// (e1, e3, e5) and (e2, e4, e6).

#include <cstdio>

#include "core/hgmatch.h"
#include "parallel/dataflow.h"
#include "parallel/executor.h"

using namespace hgmatch;  // NOLINT: example brevity

int main() {
  const Label A = 0, B = 1, C = 2;

  // Data hypergraph H (Fig 1b).
  Hypergraph data;
  for (Label l : {A, C, A, A, B, C, A}) data.AddVertex(l);
  (void)data.AddEdge({2, 4});         // e1
  (void)data.AddEdge({4, 6});         // e2
  (void)data.AddEdge({0, 1, 2});      // e3
  (void)data.AddEdge({3, 5, 6});      // e4
  (void)data.AddEdge({0, 1, 4, 6});   // e5
  (void)data.AddEdge({2, 3, 4, 5});   // e6

  // Query hypergraph q (Fig 1a): u0(A) u1(C) u2(A) u3(A) u4(B),
  // hyperedges {u2,u4}, {u0,u1,u2}, {u0,u1,u3,u4}.
  Hypergraph query;
  for (Label l : {A, C, A, A, B}) query.AddVertex(l);
  (void)query.AddEdge({2, 4});
  (void)query.AddEdge({0, 1, 2});
  (void)query.AddEdge({0, 1, 3, 4});

  // Offline preprocessing: partitioned hyperedge tables + inverted index.
  IndexedHypergraph indexed = IndexedHypergraph::Build(std::move(data));
  std::printf("data: %zu vertices, %zu hyperedges, %zu signature tables\n",
              indexed.graph().NumVertices(), indexed.graph().NumEdges(),
              indexed.partitions().size());

  // Online: plan (matching order by cardinality) and show the dataflow.
  Result<QueryPlan> plan = BuildQueryPlan(query, indexed);
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("dataflow:\n%s",
              DataflowGraph::FromPlan(plan.value()).ToString(&indexed).c_str());

  // Enumerate with the sequential engine and print every embedding.
  CollectSink collect;
  MatchStats stats =
      ExecutePlanSequential(indexed, plan.value(), MatchOptions{}, &collect);
  std::printf("embeddings: %llu (candidates generated: %llu)\n",
              static_cast<unsigned long long>(stats.embeddings),
              static_cast<unsigned long long>(stats.candidates));
  for (const Embedding& m : collect.embeddings()) {
    std::printf("  match:");
    for (EdgeId e : m) std::printf(" e%u", e + 1);  // paper numbers from e1
    std::printf("\n");
  }

  // The same query on the parallel engine (4 worker threads).
  ParallelOptions popts;
  popts.num_threads = 4;
  Result<ParallelResult> parallel = MatchParallel(indexed, query, popts);
  if (parallel.ok()) {
    std::printf("parallel embeddings: %llu with %zu workers\n",
                static_cast<unsigned long long>(
                    parallel.value().stats.embeddings),
                parallel.value().workers.size());
  }
  return 0;
}
