// Batch queries: serve a whole query workload from one shared
// work-stealing pool (parallel/batch_runner.h). A synthetic knowledge-base
// style dataset is indexed once, a mixed workload of sampled queries is
// admitted in one RunBatch call, and per-query counts arrive in input
// order — the multi-user serving shape: index once, answer many.

#include <cstdio>
#include <vector>

#include "gen/generator.h"
#include "gen/query_gen.h"
#include "parallel/batch_runner.h"
#include "util/rng.h"

using namespace hgmatch;  // NOLINT: example brevity

int main() {
  // One data hypergraph, indexed once (the offline phase).
  GeneratorConfig config;
  config.seed = 7;
  config.num_vertices = 2000;
  config.num_edges = 6000;
  config.num_labels = 8;
  Hypergraph data = GenerateHypergraph(config);

  // A workload of 12 queries of mixed size, as issued by concurrent users.
  std::vector<Hypergraph> workload;
  Rng rng(99);
  for (int i = 0; i < 12; ++i) {
    const uint32_t k = 2 + i % 3;
    Result<Hypergraph> q =
        SampleQuery(data, QuerySettings{"user", k, 2, 200}, &rng);
    if (q.ok()) workload.push_back(std::move(q.value()));
  }

  IndexedHypergraph indexed = IndexedHypergraph::Build(std::move(data));
  std::printf("data: %zu vertices, %zu hyperedges; workload: %zu queries\n",
              indexed.graph().NumVertices(), indexed.graph().NumEdges(),
              workload.size());

  // Serve the whole batch through one pool: per-query limits keep any one
  // user from monopolising it, the batch deadline bounds the whole round.
  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.limit = 100000;
  options.batch_timeout_seconds = 30;
  const BatchResult result = RunBatch(indexed, workload, options);

  for (size_t i = 0; i < result.queries.size(); ++i) {
    const BatchQueryResult& q = result.queries[i];
    if (!q.status.ok()) {
      std::printf("  query %2zu: %s\n", i, q.status.ToString().c_str());
      continue;
    }
    std::printf("  query %2zu: %8llu embeddings%s in %.4fs\n", i,
                static_cast<unsigned long long>(q.stats.embeddings),
                q.stats.limit_hit ? "+" : "", q.stats.seconds);
  }
  std::printf("batch: %llu/%zu completed in %.4fs (%.1f queries/s)\n",
              static_cast<unsigned long long>(result.completed),
              workload.size(), result.seconds, result.QueriesPerSecond());
  return 0;
}
