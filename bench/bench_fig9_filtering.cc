// Fig 9 (Exp-3, Candidates Filtering): total number of candidates produced
// by Algorithm 4, candidates surviving the vertex-count check of
// Observation V.5 ("Filtered"), and true embeddings, summed over all
// queries of every class per dataset. The paper's finding: the candidate
// set is already tight, and after the cheap count check ~97% of survivors
// are true embeddings.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/hgmatch.h"
#include "util/stats.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

int main(int argc, char** argv) {
  PrintHeader("Fig 9 (Exp-3)",
              "Pruning power: candidates vs filtered vs embeddings");
  std::printf("%-4s | %14s %14s %14s | %9s %9s\n", "ds", "candidates",
              "filtered", "embeddings", "filt/cand", "emb/filt");
  const std::vector<std::string> names =
      DatasetArgs(argc, argv, {"HC", "MA", "CH", "CP", "SB", "WT", "TC"});
  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    MatchStats total;
    for (const QuerySettings& settings : kAllQuerySettings) {
      for (const Hypergraph& q : QueriesFor(d, settings)) {
        MatchOptions options;
        options.timeout_seconds = 5 * BaselineTimeoutSeconds();
        Result<MatchStats> r = MatchSequential(d.index, q, options);
        if (r.ok()) total += r.value();
      }
    }
    // Candidates consumed at the final step are counted once each; the
    // "filtered" and "embeddings" bars are subsets per Fig 9's definition.
    std::printf("%-4s | %14s %14s %14s | %8.1f%% %8.1f%%\n", d.name.c_str(),
                HumanCount(total.candidates).c_str(),
                HumanCount(total.filtered).c_str(),
                HumanCount(total.embeddings).c_str(),
                total.candidates == 0
                    ? 0.0
                    : 100.0 * total.filtered / total.candidates,
                total.filtered == 0
                    ? 0.0
                    : 100.0 * total.embeddings / total.filtered);
  }
  std::printf("\nNote: counters aggregate every expansion level, so "
              "embeddings/filtered is the paper's true-positive rate only "
              "for the final level; the ratio is still the pruning-power "
              "signal Fig 9 reports.\n");
  return 0;
}
