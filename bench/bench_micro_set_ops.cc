// Microbenchmarks of the sorted-set kernels underpinning Algorithm 4
// (google-benchmark). The paper credits set operations' hardware
// friendliness for HGMatch's candidate-generation speed; these quantify the
// kernels in isolation, including the merge-vs-gallop crossover.

#include <benchmark/benchmark.h>

#include "util/rng.h"
#include "util/set_ops.h"

namespace hgmatch {
namespace {

std::vector<uint32_t> MakeSorted(size_t n, uint32_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<uint32_t>(rng.NextBounded(universe)));
  }
  SortUnique(&v);
  return v;
}

void BM_IntersectBalanced(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto a = MakeSorted(n, 4 * n, 1);
  const auto b = MakeSorted(n, 4 * n, 2);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    Intersect(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_IntersectBalanced)->Range(64, 1 << 16);

void BM_IntersectAsymmetric(benchmark::State& state) {
  // Small list vs large list: exercises the galloping path.
  const size_t large = state.range(0);
  const auto a = MakeSorted(64, 8 * large, 1);
  const auto b = MakeSorted(large, 8 * large, 2);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    Intersect(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * b.size());
}
BENCHMARK(BM_IntersectAsymmetric)->Range(1 << 10, 1 << 20);

void BM_UnionMany(benchmark::State& state) {
  // K posting lists, as produced per shared vertex in Algorithm 4 line 6.
  const size_t k = state.range(0);
  std::vector<std::vector<uint32_t>> lists;
  std::vector<const std::vector<uint32_t>*> ptrs;
  for (size_t i = 0; i < k; ++i) {
    lists.push_back(MakeSorted(256, 1 << 16, i + 1));
  }
  for (const auto& l : lists) ptrs.push_back(&l);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    UnionMany(ptrs, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * k * 256);
}
BENCHMARK(BM_UnionMany)->RangeMultiplier(4)->Range(2, 128);

void BM_Difference(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto a = MakeSorted(n, 4 * n, 3);
  const auto b = MakeSorted(n / 2, 4 * n, 4);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    Difference(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Difference)->Range(64, 1 << 16);

void BM_IntersectsEarlyExit(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto a = MakeSorted(n, 4 * n, 5);
  auto b = a;  // guaranteed early hit
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersects(a, b));
  }
}
BENCHMARK(BM_IntersectsEarlyExit)->Range(64, 1 << 14);

}  // namespace
}  // namespace hgmatch
