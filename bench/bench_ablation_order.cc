// Ablation: how much of HGMatch's speed comes from the cardinality-driven
// matching order of Algorithm 3? Compares four order variants on the q3/q4
// workloads: the paper's order, a connectivity-only order (no cardinality
// signal), an adversarial max-cardinality-first order, and the raw
// declaration order (which may start disconnected components). All variants
// return identical counts (verified); only work differs.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/hgmatch.h"
#include "util/stats.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

namespace {

struct VariantInfo {
  OrderVariant variant;
  const char* name;
};

constexpr VariantInfo kVariants[] = {
    {OrderVariant::kCardinality, "Alg3"},
    {OrderVariant::kConnectedOnly, "conn-only"},
    {OrderVariant::kMaxCardinality, "max-card"},
    {OrderVariant::kAsGiven, "as-given"},
};

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Ablation: matching order",
              "Algorithm 3 vs degraded order variants (same results, "
              "different work)");
  std::printf("%-4s %-3s |", "ds", "q");
  for (const VariantInfo& v : kVariants) std::printf(" %12s", v.name);
  std::printf("   (avg time; avg candidates in parens below)\n");

  const std::vector<std::string> names =
      DatasetArgs(argc, argv, {"CP", "SB", "WT", "TC"});
  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    for (const QuerySettings& settings : {kQ3, kQ4}) {
      const std::vector<Hypergraph> queries = QueriesFor(d, settings);
      if (queries.empty()) continue;
      std::vector<double> avg_time(std::size(kVariants), 0);
      std::vector<double> avg_cand(std::size(kVariants), 0);
      bool counts_agree = true;
      for (const Hypergraph& q : queries) {
        uint64_t first_count = 0;
        for (size_t vi = 0; vi < std::size(kVariants); ++vi) {
          std::vector<EdgeId> order = ComputeMatchingOrderVariant(
              q, d.index, kVariants[vi].variant);
          Result<QueryPlan> plan = BuildQueryPlanWithOrder(q, std::move(order));
          if (!plan.ok()) continue;
          MatchOptions options;
          options.timeout_seconds = 10 * BaselineTimeoutSeconds();
          MatchStats stats =
              ExecutePlanSequential(d.index, plan.value(), options, nullptr);
          avg_time[vi] += stats.seconds / queries.size();
          avg_cand[vi] +=
              static_cast<double>(stats.candidates) / queries.size();
          if (vi == 0) {
            first_count = stats.embeddings;
          } else if (!stats.timed_out && stats.embeddings != first_count) {
            counts_agree = false;
          }
        }
      }
      std::printf("%-4s %-3s |", d.name.c_str(), settings.name);
      for (double t : avg_time) std::printf(" %12s", FormatSeconds(t).c_str());
      std::printf("%s\n", counts_agree ? "" : "   COUNT MISMATCH (bug!)");
      std::printf("%-8s |", "");
      for (double c : avg_cand) {
        std::printf(" %12s", ("(" + HumanCount(static_cast<uint64_t>(c)) + ")").c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
