#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "baseline/backtracking.h"
#include "baseline/bipartite.h"
#include "core/hgmatch.h"
#include "pairwise/pairwise_matcher.h"
#include "util/timer.h"

namespace hgmatch::bench {

Dataset LoadDataset(const std::string& name, double scale) {
  Dataset d;
  d.profile = FindDatasetProfile(name);
  if (d.profile == nullptr) {
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    std::exit(2);
  }
  d.name = name;
  d.scale = scale > 0 ? scale : d.profile->default_scale;
  Timer gen;
  Hypergraph h = d.profile->Generate(d.scale);
  d.generate_seconds = gen.ElapsedSeconds();
  Timer idx;
  d.index = IndexedHypergraph::Build(std::move(h));
  d.index_seconds = idx.ElapsedSeconds();
  return d;
}

std::vector<std::string> DatasetArgs(int argc, char** argv,
                                     const std::vector<std::string>& defaults) {
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  return names.empty() ? defaults : names;
}

size_t QueriesPerSetting() {
  const char* env = std::getenv("HGMATCH_QUERIES");
  if (env != nullptr) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 3;
}

double BaselineTimeoutSeconds() {
  const char* env = std::getenv("HGMATCH_TIMEOUT");
  if (env != nullptr) {
    const double t = std::atof(env);
    if (t > 0) return t;
  }
  return 1.0;
}

std::vector<Hypergraph> QueriesFor(const Dataset& dataset,
                                   const QuerySettings& settings) {
  // Seed mixes dataset name and query class for reproducible workloads.
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (char c : dataset.name) seed = seed * 131 + static_cast<uint8_t>(c);
  seed = seed * 131 + settings.num_edges;
  return SampleQueries(dataset.index.graph(), settings, QueriesPerSetting(),
                       seed);
}

std::vector<Hypergraph> BatchWorkloadFor(
    const Dataset& dataset, const std::vector<QuerySettings>& settings,
    size_t min_size) {
  std::vector<Hypergraph> batch;
  for (const QuerySettings& s : settings) {
    for (Hypergraph& q : QueriesFor(dataset, s)) batch.push_back(std::move(q));
  }
  const size_t base = batch.size();
  if (base == 0) return batch;
  while (batch.size() < min_size) {
    batch.push_back(batch[batch.size() % base].Clone());
  }
  return batch;
}

const char* MethodName(Method m) {
  switch (m) {
    case Method::kHgMatch:
      return "HGMatch";
    case Method::kCflH:
      return "CFL-H";
    case Method::kDafH:
      return "DAF-H";
    case Method::kCeciH:
      return "CECI-H";
    case Method::kRapidMatch:
      return "RapidMatch";
  }
  return "?";
}

ComparisonRunner::Outcome ComparisonRunner::Run(const Hypergraph& query,
                                                Method method,
                                                double timeout) {
  Outcome out;
  Timer timer;
  switch (method) {
    case Method::kHgMatch: {
      MatchOptions options;
      options.timeout_seconds = timeout;
      Result<MatchStats> r = MatchSequential(dataset_.index, query, options);
      if (r.ok()) {
        out.completed = !r.value().timed_out;
        out.results = r.value().embeddings;
      }
      break;
    }
    case Method::kCflH:
    case Method::kDafH:
    case Method::kCeciH: {
      Result<BaselineResult> r =
          method == Method::kCflH
              ? MatchCflH(dataset_.index, query, timeout)
              : method == Method::kDafH
                    ? MatchDafH(dataset_.index, query, timeout)
                    : MatchCeciH(dataset_.index, query, timeout);
      if (r.ok()) {
        out.completed = !r.value().timed_out;
        out.results = r.value().embeddings;
      }
      break;
    }
    case Method::kRapidMatch: {
      if (!bipartite_built_) {
        data_bipartite_ = ConvertToBipartite(dataset_.index.graph(),
                                             dataset_.index.graph().NumLabels());
        bipartite_built_ = true;
      }
      const pairwise::Graph query_bg =
          ConvertToBipartite(query, dataset_.index.graph().NumLabels());
      pairwise::PairwiseOptions options;
      options.timeout_seconds = timeout;
      Result<pairwise::PairwiseResult> r =
          pairwise::MatchPairwise(data_bipartite_, query_bg, options);
      if (r.ok()) {
        out.completed = !r.value().timed_out;
        out.results = r.value().embeddings;
      }
      break;
    }
  }
  // The paper counts a timed-out query as the full time limit when
  // averaging (Section VII.A Metrics).
  out.seconds = out.completed ? timer.ElapsedSeconds() : timeout;
  return out;
}

void PrintHeader(const std::string& experiment, const std::string& what) {
  std::printf("=== %s ===\n%s\n", experiment.c_str(), what.c_str());
  std::printf(
      "workload: %zu queries/class, baseline timeout %.2fs "
      "(HGMATCH_QUERIES / HGMATCH_TIMEOUT env override; paper: 20 / 3600;\n"
      "HGMatch itself gets 10x the limit where noted -- the paper's 1h limit\n"
      "is effectively unbounded for it)\n\n",
      QueriesPerSetting(), BaselineTimeoutSeconds());
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace hgmatch::bench
