// Fig 10 (Exp-4, Scalability): elapsed time and speedup of the parallel
// engine as the number of threads grows, on the two highest-cardinality q3
// queries of the largest default dataset. The paper reports near-linear
// scaling to 20 threads on a 2x20-core box; on smaller machines the shape
// to check is monotone improvement up to the physical core count and no
// pathological degradation beyond it.

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "core/hgmatch.h"
#include "parallel/batch_runner.h"
#include "parallel/executor.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

int main(int argc, char** argv) {
  PrintHeader("Fig 10 (Exp-4)", "Scalability: vary number of threads");
  const std::vector<std::string> names = DatasetArgs(argc, argv, {"AR"});
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads available: %u\n\n", hw);

  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    // Pick the two q3 queries with the most embeddings (bounded probe).
    std::vector<Hypergraph> queries = QueriesFor(d, kQ3);
    std::vector<std::pair<uint64_t, size_t>> ranked;
    for (size_t i = 0; i < queries.size(); ++i) {
      MatchOptions probe;
      probe.limit = 2'000'000;
      probe.timeout_seconds = 10;
      Result<MatchStats> r = MatchSequential(d.index, queries[i], probe);
      ranked.emplace_back(r.ok() ? r.value().embeddings : 0, i);
    }
    std::sort(ranked.rbegin(), ranked.rend());

    for (size_t k = 0; k < std::min<size_t>(2, ranked.size()); ++k) {
      const Hypergraph& q = queries[ranked[k].second];
      std::printf("%s q3^%zu (>= %llu embeddings):\n", d.name.c_str(), k + 1,
                  static_cast<unsigned long long>(ranked[k].first));
      double t1 = 0;
      uint32_t max_threads = 1;
      for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        if (threads > 2 * hw && threads > 4) break;
        max_threads = threads;
        ParallelOptions options;
        options.num_threads = threads;
        Result<ParallelResult> r = MatchParallel(d.index, q, options);
        if (!r.ok()) continue;
        const double t = r.value().stats.seconds;
        if (threads == 1) t1 = t;
        std::printf(
            "  t=%2u: %10s  speedup %5.2fx  (%llu embeddings)\n", threads,
            FormatSeconds(t).c_str(), t1 > 0 ? t1 / t : 1.0,
            static_cast<unsigned long long>(r.value().stats.embeddings));
      }
      // Facade-parity check: the same query as a batch of one through the
      // batch engine must match the executor's count and wall time (both
      // are thin layers over the shared scheduler core).
      {
        std::vector<Hypergraph> one;
        one.push_back(q.Clone());
        BatchOptions options;
        options.parallel.num_threads = max_threads;
        const BatchResult r = RunBatch(d.index, one, options);
        std::printf("  batch-of-one t=%2u: %10s  (%llu embeddings)\n",
                    max_threads, FormatSeconds(r.seconds).c_str(),
                    static_cast<unsigned long long>(r.total.embeddings));
      }
    }
  }
  return 0;
}
