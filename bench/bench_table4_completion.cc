// Table IV (Exp-2): query completion ratio per algorithm per dataset under
// the time limit. The paper's finding: HGMatch completes 100% everywhere;
// the match-by-vertex baselines and RapidMatch start failing as datasets
// grow or arity rises.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

int main(int argc, char** argv) {
  PrintHeader("Table IV (Exp-2)", "Query completion ratio (single-thread)");
  const double timeout = BaselineTimeoutSeconds();
  const std::vector<std::string> names =
      DatasetArgs(argc, argv, {"HC", "MA", "CH", "CP", "SB", "WT"});

  // completion[method][dataset] = (completed, total).
  std::map<Method, std::map<std::string, std::pair<size_t, size_t>>> table;

  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    ComparisonRunner runner(d);
    std::map<Method, bool> saturated;
    for (const QuerySettings& settings : kAllQuerySettings) {
      for (const Hypergraph& q : QueriesFor(d, settings)) {
        for (Method m : kAllMethods) {
          auto& cell = table[m][name];
          ++cell.second;
          if (saturated[m]) continue;
          const double budget =
              m == Method::kHgMatch ? 30 * timeout : timeout;
          if (runner.Run(q, m, budget).completed) ++cell.first;
        }
      }
      for (Method m : kAllMethods) {
        if (m == Method::kHgMatch || saturated[m]) continue;
        // Saturation rule (see bench_fig8): a baseline that completed
        // nothing so far on this dataset is skipped for larger classes.
        if (table[m][name].first == 0) saturated[m] = true;
      }
    }
  }

  std::printf("%-11s", "Algorithm");
  for (const std::string& name : names) std::printf(" %6s", name.c_str());
  std::printf(" %7s\n", "Total");
  for (Method m : kAllMethods) {
    std::printf("%-11s", MethodName(m));
    size_t done = 0, total = 0;
    for (const std::string& name : names) {
      const auto& cell = table[m][name];
      done += cell.first;
      total += cell.second;
      std::printf(" %5.0f%%", cell.second == 0
                                  ? 0.0
                                  : 100.0 * cell.first / cell.second);
    }
    std::printf(" %6.0f%%\n", total == 0 ? 0.0 : 100.0 * done / total);
  }
  return 0;
}
