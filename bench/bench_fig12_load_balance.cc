// Fig 12 (Exp-6, Load Balancing): per-worker busy time with dynamic work
// stealing vs the static split of first-matched hyperedges
// (HGMatch-NOSTL), on a high-result q3 query. The paper's finding: without
// stealing, worker busy times diverge (one straggler dominates); with
// stealing they are nearly equal.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/hgmatch.h"
#include "parallel/executor.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

namespace {

void PrintWorkers(const char* label, const ParallelResult& r) {
  std::vector<double> busy;
  for (const WorkerReport& w : r.workers) busy.push_back(w.busy_seconds);
  std::sort(busy.begin(), busy.end());
  double sum = 0, max = 0;
  for (double b : busy) {
    sum += b;
    max = std::max(max, b);
  }
  const double avg = busy.empty() ? 0 : sum / busy.size();
  std::printf("  %-14s wall=%8s  worker busy (sorted):", label,
              FormatSeconds(r.stats.seconds).c_str());
  for (double b : busy) std::printf(" %7s", FormatSeconds(b).c_str());
  std::printf("\n  %-14s imbalance max/avg = %.2f\n", "",
              avg > 0 ? max / avg : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Fig 12 (Exp-6)",
              "Work stealing vs static split (per-worker busy time)");
  const std::vector<std::string> names = DatasetArgs(argc, argv, {"AR"});
  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    std::vector<Hypergraph> queries = QueriesFor(d, kQ3);
    // Pick the q3 query with the most results (the skew stressor).
    size_t best = 0;
    uint64_t best_count = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      MatchOptions probe;
      probe.limit = 1'000'000;
      probe.timeout_seconds = 10;
      Result<MatchStats> r = MatchSequential(d.index, queries[i], probe);
      if (r.ok() && r.value().embeddings >= best_count) {
        best_count = r.value().embeddings;
        best = i;
      }
    }
    if (queries.empty()) continue;
    const Hypergraph& q = queries[best];

    std::printf("%s q3 (>= %llu embeddings), 8 workers:\n", d.name.c_str(),
                static_cast<unsigned long long>(best_count));
    ParallelOptions options;
    options.num_threads = 8;

    options.work_stealing = false;
    Result<ParallelResult> nostl = MatchParallel(d.index, q, options);
    if (nostl.ok()) PrintWorkers("HGMatch-NOSTL", nostl.value());

    options.work_stealing = true;
    Result<ParallelResult> stl = MatchParallel(d.index, q, options);
    if (stl.ok()) {
      PrintWorkers("HGMatch", stl.value());
      uint64_t steals = 0;
      for (const WorkerReport& w : stl.value().workers) steals += w.steals;
      std::printf("  successful steals: %llu\n",
                  static_cast<unsigned long long>(steals));
      if (nostl.ok()) {
        std::printf("  embeddings agree: %s\n",
                    stl.value().stats.embeddings ==
                            nostl.value().stats.embeddings
                        ? "yes"
                        : "NO (bug!)");
      }
    }
  }
  return 0;
}
