// Batch throughput: queries/second of the shared-pool batch engine
// (parallel/batch_runner.h) as the number of threads grows, compared with
// running the same workload one query at a time through the sequential
// engine. Inter-query parallelism should scale throughput with the thread
// count on workloads of many small/medium queries even when no single
// query has enough intra-query work to occupy the pool.

#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/hgmatch.h"
#include "parallel/batch_runner.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

namespace {

// A vertex-renamed, edge-reordered copy of `q`: isomorphic to the
// original but byte-different, so only the canonical plan-cache key can
// recognise it as a repeat.
Hypergraph RandomRename(const Hypergraph& q, Rng* rng) {
  std::vector<VertexId> perm(q.NumVertices());
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  std::vector<EdgeId> edge_order(q.NumEdges());
  std::iota(edge_order.begin(), edge_order.end(), 0);
  rng->Shuffle(&edge_order);
  std::vector<Label> labels(q.NumVertices());
  for (VertexId v = 0; v < q.NumVertices(); ++v) labels[perm[v]] = q.label(v);
  Hypergraph out;
  for (Label l : labels) out.AddVertex(l);
  for (EdgeId e : edge_order) {
    VertexSet members;
    members.reserve(q.arity(e));
    for (VertexId v : q.edge(e)) members.push_back(perm[v]);
    (void)out.AddEdge(std::move(members), q.edge_label(e));
  }
  return out;
}

// Renamed-repeat workload: one query shape submitted `kRenamedCopies`
// times under fresh vertex names each time — the recurring-dashboard
// pattern where clients regenerate "the same" query with arbitrary ids.
// Reports the plan-cache hit rate and the planning time the cache skips,
// across cache modes, and emits BENCH_plancache.json.
void RenamedRepeatAblation(const Dataset& d,
                           const std::vector<Hypergraph>& batch,
                           uint32_t threads) {
  constexpr size_t kRenamedCopies = 64;
  Rng rng(0x9e3779b97f4a7c15ull);
  std::vector<Hypergraph> renamed;
  renamed.reserve(kRenamedCopies);
  renamed.push_back(batch.front().Clone());
  for (size_t i = 1; i < kRenamedCopies; ++i) {
    renamed.push_back(RandomRename(batch.front(), &rng));
  }

  // What one cache hit skips: the measured planning cost per copy.
  Timer plan_timer;
  for (const Hypergraph& q : renamed) (void)BuildQueryPlan(q, d.index);
  const double plan_seconds = plan_timer.ElapsedSeconds();
  const double plan_per_query = plan_seconds / kRenamedCopies;

  struct Cell {
    const char* mode;
    bool cache;
    bool isomorphism;
    BatchResult r;
  };
  Cell cells[] = {{"no-cache", false, false, {}},
                  {"exact-key", true, false, {}},
                  {"isomorphic", true, true, {}}};
  for (Cell& cell : cells) {
    BatchOptions options;
    options.parallel.num_threads = threads;
    options.plan_cache = cell.cache;
    options.plan_cache_isomorphism = cell.isomorphism;
    cell.r = RunBatch(d.index, renamed, options);
  }

  std::printf("  renamed-repeat workload (%zu byte-distinct copies of one "
              "shape, plan %.3gms/query):\n",
              kRenamedCopies, plan_per_query * 1e3);
  for (const Cell& cell : cells) {
    const BatchResult& r = cell.r;
    const double hit_rate =
        static_cast<double>(r.plan_cache_hits) / (kRenamedCopies - 1);
    std::printf("    %-11s %10s  %llu plans compiled, %llu hits "
                "(%llu isomorphic, %.0f%% of repeats), %llu mirrored\n",
                cell.mode, FormatSeconds(r.seconds).c_str(),
                static_cast<unsigned long long>(r.unique_plans),
                static_cast<unsigned long long>(r.plan_cache_hits),
                static_cast<unsigned long long>(r.plan_cache_isomorphic_hits),
                hit_rate * 100,
                static_cast<unsigned long long>(r.mirrored));
  }

  std::FILE* json = std::fopen("BENCH_plancache.json", "w");
  if (json == nullptr) {
    std::printf("  (could not write BENCH_plancache.json)\n");
    return;
  }
  const BatchResult& iso = cells[2].r;
  std::fprintf(json, "{\n  \"bench\": \"plan_cache_renamed_repeats\",\n");
  std::fprintf(json, "  \"dataset\": \"%s\",\n  \"copies\": %zu,\n",
               d.name.c_str(), kRenamedCopies);
  std::fprintf(json, "  \"plan_seconds_per_query\": %.9f,\n",
               plan_per_query);
  std::fprintf(json, "  \"cells\": [\n");
  for (size_t i = 0; i < 3; ++i) {
    const BatchResult& r = cells[i].r;
    std::fprintf(
        json,
        "    {\"mode\": \"%s\", \"seconds\": %.6f, \"unique_plans\": %llu, "
        "\"plan_cache_hits\": %llu, \"isomorphic_hits\": %llu, "
        "\"executed\": %llu, \"mirrored\": %llu}%s\n",
        cells[i].mode, r.seconds,
        static_cast<unsigned long long>(r.unique_plans),
        static_cast<unsigned long long>(r.plan_cache_hits),
        static_cast<unsigned long long>(r.plan_cache_isomorphic_hits),
        static_cast<unsigned long long>(r.executed),
        static_cast<unsigned long long>(r.mirrored), i + 1 < 3 ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  // The acceptance facts: every renamed repeat registers a cache hit, and
  // planning ran once — the other copies skipped it entirely.
  std::fprintf(json, "  \"renamed_repeat_hit_rate\": %.3f,\n",
               static_cast<double>(iso.plan_cache_hits) /
                   (kRenamedCopies - 1));
  std::fprintf(json, "  \"planning_skipped\": %s,\n",
               iso.unique_plans == 1 ? "true" : "false");
  std::fprintf(json, "  \"planning_seconds_saved\": %.9f\n}\n",
               plan_per_query * static_cast<double>(iso.plan_cache_hits));
  std::fclose(json);
  std::printf("  wrote BENCH_plancache.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Batch throughput",
              "queries/second of the shared work-stealing pool");
  const std::vector<std::string> names = DatasetArgs(argc, argv, {"CP"});
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads available: %u\n\n", hw);

  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);

    // Workload: every sampled query of the three smaller query classes,
    // repeated to a batch large enough to amortise pool startup.
    std::vector<Hypergraph> batch =
        BatchWorkloadFor(d, {kQ2, kQ3, kQ4}, 12 * QueriesPerSetting());
    if (batch.empty()) {
      std::printf("%s: no queries sampled, skipping\n\n", d.name.c_str());
      continue;
    }

    // Sequential reference: one query after another, single thread.
    Timer seq_timer;
    uint64_t seq_embeddings = 0;
    for (const Hypergraph& q : batch) {
      Result<MatchStats> r = MatchSequential(d.index, q);
      if (r.ok()) seq_embeddings += r.value().embeddings;
    }
    const double seq_seconds = seq_timer.ElapsedSeconds();
    std::printf("%s: %zu queries, %llu embeddings\n", d.name.c_str(),
                batch.size(),
                static_cast<unsigned long long>(seq_embeddings));
    std::printf("  sequential loop: %10s  %8.1f queries/s\n",
                FormatSeconds(seq_seconds).c_str(),
                seq_seconds > 0 ? batch.size() / seq_seconds : 0.0);

    uint32_t max_threads = 1;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      if (threads > 2 * hw && threads > 4) break;
      max_threads = threads;
      BatchOptions options;
      options.parallel.num_threads = threads;
      const BatchResult r = RunBatch(d.index, batch, options);
      // Throughput counts *executed* queries only: plan-cache-mirrored
      // repeats complete at zero execution cost, so folding them in would
      // inflate the number (they are reported separately).
      std::printf("  batch t=%2u:     %10s  %8.1f exec-queries/s  "
                  "(%llu executed + %llu mirrored, %llu embeddings, "
                  "peak task mem %llu bytes)\n",
                  threads, FormatSeconds(r.seconds).c_str(),
                  r.QueriesPerSecond(),
                  static_cast<unsigned long long>(r.executed),
                  static_cast<unsigned long long>(r.mirrored),
                  static_cast<unsigned long long>(r.total.embeddings),
                  static_cast<unsigned long long>(r.peak_task_bytes));
    }

    // Ablations at the largest pool: planning every copy independently
    // (plan cache off), and admission windows that bound in-flight queries
    // (multi-user serving mode; peak task memory should shrink with the
    // window while throughput stays close).
    {
      BatchOptions options;
      options.parallel.num_threads = max_threads;
      options.plan_cache = false;
      const BatchResult r = RunBatch(d.index, batch, options);
      std::printf("  no plan cache:  %10s  %8.1f queries/s\n",
                  FormatSeconds(r.seconds).c_str(),
                  r.seconds > 0 ? batch.size() / r.seconds : 0.0);
    }
    for (uint32_t window : {1u, 2 * max_threads}) {
      BatchOptions options;
      options.parallel.num_threads = max_threads;
      options.max_inflight_queries = window;
      options.plan_cache = false;  // window effects are per executed query
      const BatchResult r = RunBatch(d.index, batch, options);
      std::printf("  window=%3u:     %10s  %8.1f queries/s  "
                  "(peak task mem %llu bytes)\n",
                  window, FormatSeconds(r.seconds).c_str(),
                  r.seconds > 0 ? batch.size() / r.seconds : 0.0,
                  static_cast<unsigned long long>(r.peak_task_bytes));
    }

    // Admission-policy ablation: a two-tenant flood in the adversarial
    // arrival order (all of tenant A's queries submitted before any of
    // tenant B's). Under FIFO, B's queries wait behind the entire A
    // backlog; weighted-fair admission at weights 3:1 interleaves the two
    // backlogs in weight proportion, collapsing B's mean turnaround while
    // costing A little.
    for (AdmissionPolicy policy :
         {AdmissionPolicy::kFifo, AdmissionPolicy::kWeightedFair}) {
      BatchOptions options;
      options.parallel.num_threads = max_threads;
      options.max_inflight_queries = max_threads;  // order must matter
      options.admission = policy;
      options.plan_cache = false;
      std::vector<SubmitOptions> submit(batch.size());
      const size_t half = batch.size() / 2;
      for (size_t i = 0; i < batch.size(); ++i) {
        submit[i].tenant_id = i < half ? 1 : 2;
        submit[i].weight = i < half ? 3.0 : 1.0;
      }
      const BatchResult r = RunBatch(d.index, batch, options, nullptr,
                                     &submit);
      double finish_a = 0, finish_b = 0;
      for (size_t i = 0; i < r.queries.size(); ++i) {
        const double finish =
            r.queries[i].admit_seconds + r.queries[i].stats.seconds;
        (i < half ? finish_a : finish_b) += finish;
      }
      finish_a /= half > 0 ? half : 1;
      finish_b /= batch.size() - half > 0 ? batch.size() - half : 1;
      std::printf("  flood %-5s     mean turnaround: tenantA(w=3) %10s  "
                  "tenantB(w=1) %10s\n",
                  policy == AdmissionPolicy::kFifo ? "fifo:" : "wfq:",
                  FormatSeconds(finish_a).c_str(),
                  FormatSeconds(finish_b).c_str());
    }

    // Plan-cache ablation on renamed repeats: the isomorphism-aware key
    // should register every byte-distinct rename as a hit and compile
    // exactly one plan; the exact key and no-cache modes replan each copy.
    RenamedRepeatAblation(d, batch, max_threads);
    std::printf("\n");
  }
  return 0;
}
