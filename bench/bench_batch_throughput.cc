// Batch throughput: queries/second of the shared-pool batch engine
// (parallel/batch_runner.h) as the number of threads grows, compared with
// running the same workload one query at a time through the sequential
// engine. Inter-query parallelism should scale throughput with the thread
// count on workloads of many small/medium queries even when no single
// query has enough intra-query work to occupy the pool.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/hgmatch.h"
#include "parallel/batch_runner.h"
#include "util/timer.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

int main(int argc, char** argv) {
  PrintHeader("Batch throughput",
              "queries/second of the shared work-stealing pool");
  const std::vector<std::string> names = DatasetArgs(argc, argv, {"CP"});
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads available: %u\n\n", hw);

  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);

    // Workload: every sampled query of the three smaller query classes,
    // repeated to a batch large enough to amortise pool startup.
    std::vector<Hypergraph> batch =
        BatchWorkloadFor(d, {kQ2, kQ3, kQ4}, 12 * QueriesPerSetting());
    if (batch.empty()) {
      std::printf("%s: no queries sampled, skipping\n\n", d.name.c_str());
      continue;
    }

    // Sequential reference: one query after another, single thread.
    Timer seq_timer;
    uint64_t seq_embeddings = 0;
    for (const Hypergraph& q : batch) {
      Result<MatchStats> r = MatchSequential(d.index, q);
      if (r.ok()) seq_embeddings += r.value().embeddings;
    }
    const double seq_seconds = seq_timer.ElapsedSeconds();
    std::printf("%s: %zu queries, %llu embeddings\n", d.name.c_str(),
                batch.size(),
                static_cast<unsigned long long>(seq_embeddings));
    std::printf("  sequential loop: %10s  %8.1f queries/s\n",
                FormatSeconds(seq_seconds).c_str(),
                seq_seconds > 0 ? batch.size() / seq_seconds : 0.0);

    uint32_t max_threads = 1;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      if (threads > 2 * hw && threads > 4) break;
      max_threads = threads;
      BatchOptions options;
      options.parallel.num_threads = threads;
      const BatchResult r = RunBatch(d.index, batch, options);
      // Throughput counts *executed* queries only: plan-cache-mirrored
      // repeats complete at zero execution cost, so folding them in would
      // inflate the number (they are reported separately).
      std::printf("  batch t=%2u:     %10s  %8.1f exec-queries/s  "
                  "(%llu executed + %llu mirrored, %llu embeddings, "
                  "peak task mem %llu bytes)\n",
                  threads, FormatSeconds(r.seconds).c_str(),
                  r.QueriesPerSecond(),
                  static_cast<unsigned long long>(r.executed),
                  static_cast<unsigned long long>(r.mirrored),
                  static_cast<unsigned long long>(r.total.embeddings),
                  static_cast<unsigned long long>(r.peak_task_bytes));
    }

    // Ablations at the largest pool: planning every copy independently
    // (plan cache off), and admission windows that bound in-flight queries
    // (multi-user serving mode; peak task memory should shrink with the
    // window while throughput stays close).
    {
      BatchOptions options;
      options.parallel.num_threads = max_threads;
      options.plan_cache = false;
      const BatchResult r = RunBatch(d.index, batch, options);
      std::printf("  no plan cache:  %10s  %8.1f queries/s\n",
                  FormatSeconds(r.seconds).c_str(),
                  r.seconds > 0 ? batch.size() / r.seconds : 0.0);
    }
    for (uint32_t window : {1u, 2 * max_threads}) {
      BatchOptions options;
      options.parallel.num_threads = max_threads;
      options.max_inflight_queries = window;
      options.plan_cache = false;  // window effects are per executed query
      const BatchResult r = RunBatch(d.index, batch, options);
      std::printf("  window=%3u:     %10s  %8.1f queries/s  "
                  "(peak task mem %llu bytes)\n",
                  window, FormatSeconds(r.seconds).c_str(),
                  r.seconds > 0 ? batch.size() / r.seconds : 0.0,
                  static_cast<unsigned long long>(r.peak_task_bytes));
    }

    // Admission-policy ablation: a two-tenant flood in the adversarial
    // arrival order (all of tenant A's queries submitted before any of
    // tenant B's). Under FIFO, B's queries wait behind the entire A
    // backlog; weighted-fair admission at weights 3:1 interleaves the two
    // backlogs in weight proportion, collapsing B's mean turnaround while
    // costing A little.
    for (AdmissionPolicy policy :
         {AdmissionPolicy::kFifo, AdmissionPolicy::kWeightedFair}) {
      BatchOptions options;
      options.parallel.num_threads = max_threads;
      options.max_inflight_queries = max_threads;  // order must matter
      options.admission = policy;
      options.plan_cache = false;
      std::vector<SubmitOptions> submit(batch.size());
      const size_t half = batch.size() / 2;
      for (size_t i = 0; i < batch.size(); ++i) {
        submit[i].tenant_id = i < half ? 1 : 2;
        submit[i].weight = i < half ? 3.0 : 1.0;
      }
      const BatchResult r = RunBatch(d.index, batch, options, nullptr,
                                     &submit);
      double finish_a = 0, finish_b = 0;
      for (size_t i = 0; i < r.queries.size(); ++i) {
        const double finish =
            r.queries[i].admit_seconds + r.queries[i].stats.seconds;
        (i < half ? finish_a : finish_b) += finish;
      }
      finish_a /= half > 0 ? half : 1;
      finish_b /= batch.size() - half > 0 ? batch.size() - half : 1;
      std::printf("  flood %-5s     mean turnaround: tenantA(w=3) %10s  "
                  "tenantB(w=1) %10s\n",
                  policy == AdmissionPolicy::kFifo ? "fifo:" : "wfq:",
                  FormatSeconds(finish_a).c_str(),
                  FormatSeconds(finish_b).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
