// Fig 7 (Exp-1, Index Building): per dataset, the time to build the
// inverted hyperedge index, the raw graph size, and the index size. The
// paper's finding to reproduce: index construction is fast (seconds even at
// the largest scale) and the index is about the same size as the graph.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/stats.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

int main(int argc, char** argv) {
  PrintHeader("Fig 7 (Exp-1)", "Index building time and size");
  std::printf("%-4s | %12s %12s %12s %10s\n", "ds", "index time", "graph size",
              "index size", "idx/graph");
  const std::vector<std::string> names = DatasetArgs(
      argc, argv, {"HC", "MA", "CH", "CP", "SB", "HB", "WT", "TC", "SA", "AR"});
  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    const uint64_t graph_bytes = d.index.graph().MemoryBytes();
    const uint64_t index_bytes = d.index.IndexBytes();
    std::printf("%-4s | %12s %12s %12s %9.2fx\n", d.name.c_str(),
                FormatSeconds(d.index_seconds).c_str(),
                HumanBytes(graph_bytes).c_str(),
                HumanBytes(index_bytes).c_str(),
                static_cast<double>(index_bytes) /
                    static_cast<double>(graph_bytes));
  }
  return 0;
}
