// Fig 6 + Table III: distribution (five-number summary) of the number of
// embeddings for each query class q2/q3/q4/q6 on each dataset. The paper
// draws these as box plots; we print the quantiles that define the boxes.
// Queries whose enumeration exceeds the timeout are counted at their
// partial count and flagged.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/hgmatch.h"
#include "util/stats.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

int main(int argc, char** argv) {
  PrintHeader("Fig 6 / Table III",
              "Number-of-embeddings distributions per query class");
  std::printf("Table III query settings:\n");
  for (const QuerySettings& s : kAllQuerySettings) {
    std::printf("  %s: |E|=%u, |V| in [%u, %u]\n", s.name, s.num_edges,
                s.min_vertices, s.max_vertices);
  }
  std::printf("\n%-4s %-3s | %9s %9s %9s %9s %9s | %s\n", "ds", "q", "min",
              "q1", "median", "q3", "max", "timeouts");

  const std::vector<std::string> names =
      DatasetArgs(argc, argv, {"HC", "MA", "CH", "CP", "SB", "WT", "TC"});
  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    for (const QuerySettings& settings : kAllQuerySettings) {
      std::vector<double> counts;
      int timeouts = 0;
      for (const Hypergraph& q : QueriesFor(d, settings)) {
        MatchOptions options;
        options.timeout_seconds = 5 * BaselineTimeoutSeconds();
        Result<MatchStats> r = MatchSequential(d.index, q, options);
        if (!r.ok()) continue;
        counts.push_back(static_cast<double>(r.value().embeddings));
        timeouts += r.value().timed_out;
      }
      const Summary s = Summarize(counts);
      std::printf("%-4s %-3s | %9.3g %9.3g %9.3g %9.3g %9.3g | %d\n",
                  d.name.c_str(), settings.name, s.min, s.q1, s.median, s.q3,
                  s.max, timeouts);
    }
  }
  return 0;
}
