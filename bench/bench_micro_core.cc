// Microbenchmarks of HGMatch's core per-embedding operations: index build,
// plan compilation, candidate generation (Algorithm 4), validation
// (Algorithm 5) and one full expansion, on a mid-size profile dataset.

#include <benchmark/benchmark.h>

#include "core/candidates.h"
#include "core/hgmatch.h"
#include "gen/dataset_profiles.h"
#include "gen/query_gen.h"

namespace hgmatch {
namespace {

// Shared fixture state (built once; benchmarks are read-only users).
struct Fixture {
  Fixture()
      : data(IndexedHypergraph::Build(
            FindDatasetProfile("SB")->Generate(1.0))) {
    Rng rng(7);
    query = SampleQuery(data.graph(), kQ3, &rng).value();
    plan = BuildQueryPlan(query, data).value();
    // A partial embedding for candidate/validation micro-runs: the first
    // valid 2-prefix found by expansion.
    Expander expander(data, plan);
    MatchStats stats;
    std::vector<EdgeId> level0, level1;
    expander.Expand(nullptr, 0, &level0, &stats);
    for (EdgeId e0 : level0) {
      prefix = {e0, 0};
      expander.Expand(prefix.data(), 1, &level1, &stats);
      if (!level1.empty()) {
        prefix[1] = level1[0];
        candidate_at_2 = level1[0];
        has_prefix = true;
        break;
      }
    }
  }

  IndexedHypergraph data;
  Hypergraph query;
  QueryPlan plan;
  std::vector<EdgeId> prefix;
  EdgeId candidate_at_2 = kInvalidEdge;
  bool has_prefix = false;
};

Fixture& GetFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_IndexBuild(benchmark::State& state) {
  const DatasetProfile* profile = FindDatasetProfile("SB");
  Hypergraph h = profile->Generate(1.0);
  for (auto _ : state) {
    IndexedHypergraph idx = IndexedHypergraph::Build(h.Clone());
    benchmark::DoNotOptimize(idx.IndexBytes());
  }
  state.SetItemsProcessed(state.iterations() * h.NumEdges());
}
BENCHMARK(BM_IndexBuild);

void BM_PlanCompilation(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    Result<QueryPlan> plan = BuildQueryPlan(f.query, f.data);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlanCompilation);

void BM_GenerateCandidates(benchmark::State& state) {
  Fixture& f = GetFixture();
  if (!f.has_prefix || f.plan.NumSteps() < 3) {
    state.SkipWithError("no 2-prefix available");
    return;
  }
  Expander expander(f.data, f.plan);
  std::vector<EdgeId> out;
  for (auto _ : state) {
    expander.GenerateCandidates(f.prefix.data(), 2, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GenerateCandidates);

void BM_IsValidEmbedding(benchmark::State& state) {
  Fixture& f = GetFixture();
  if (!f.has_prefix) {
    state.SkipWithError("no 2-prefix available");
    return;
  }
  Expander expander(f.data, f.plan);
  bool count_ok;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        expander.IsValidEmbedding(f.prefix.data(), 1, f.candidate_at_2,
                                  &count_ok));
  }
}
BENCHMARK(BM_IsValidEmbedding);

void BM_FullQuery(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    MatchStats stats =
        ExecutePlanSequential(f.data, f.plan, MatchOptions{}, nullptr);
    benchmark::DoNotOptimize(stats.embeddings);
  }
}
BENCHMARK(BM_FullQuery);

}  // namespace
}  // namespace hgmatch
