#ifndef HGMATCH_BENCH_BENCH_COMMON_H_
#define HGMATCH_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"
#include "gen/dataset_profiles.h"
#include "gen/query_gen.h"
#include "pairwise/graph.h"

namespace hgmatch::bench {

/// A generated dataset ready for benchmarking.
struct Dataset {
  std::string name;
  const DatasetProfile* profile = nullptr;
  double scale = 1.0;
  double generate_seconds = 0;
  double index_seconds = 0;
  IndexedHypergraph index = IndexedHypergraph::Build(Hypergraph());
};

/// Generates and indexes one profile dataset. `scale` <= 0 uses the
/// profile's default scale.
Dataset LoadDataset(const std::string& name, double scale = -1);

/// Parses dataset names from argv (arguments after the binary name); when
/// none are given, returns `defaults`.
std::vector<std::string> DatasetArgs(int argc, char** argv,
                                     const std::vector<std::string>& defaults);

/// Number of queries sampled per (dataset, query class). Defaults to 3;
/// override with the HGMATCH_QUERIES environment variable (the paper uses
/// 20 — set HGMATCH_QUERIES=20 for a full-fidelity run).
size_t QueriesPerSetting();

/// Per-query timeout in seconds for baseline methods. Defaults to 1.0;
/// override with HGMATCH_TIMEOUT (the paper uses 3600).
double BaselineTimeoutSeconds();

/// Deterministic per-(dataset, setting) query workload.
std::vector<Hypergraph> QueriesFor(const Dataset& dataset,
                                   const QuerySettings& settings);

/// Deterministic mixed batch workload: every QueriesFor query of each
/// class in `settings`, cloned round-robin until at least `min_size`
/// queries (so batch benchmarks amortise pool startup). Used by
/// bench_batch_throughput and by batch-serving experiments.
std::vector<Hypergraph> BatchWorkloadFor(
    const Dataset& dataset, const std::vector<QuerySettings>& settings,
    size_t min_size);

/// Methods compared in the paper's single-thread experiments (Fig 8,
/// Table IV).
enum class Method { kHgMatch, kCflH, kDafH, kCeciH, kRapidMatch };
inline constexpr Method kAllMethods[] = {Method::kHgMatch, Method::kCflH,
                                         Method::kDafH, Method::kCeciH,
                                         Method::kRapidMatch};
const char* MethodName(Method m);

/// Runs one (query, method) pair under a timeout. Caches the bipartite
/// conversion of the data hypergraph across RapidMatch runs.
class ComparisonRunner {
 public:
  explicit ComparisonRunner(const Dataset& dataset) : dataset_(dataset) {}

  struct Outcome {
    double seconds = 0;   // elapsed (== timeout when timed out)
    bool completed = false;
    uint64_t results = 0;  // embeddings under the method's semantics
  };

  Outcome Run(const Hypergraph& query, Method method, double timeout);

 private:
  const Dataset& dataset_;
  bool bipartite_built_ = false;
  pairwise::Graph data_bipartite_;
};

/// Prints the standard bench header: binary purpose + workload parameters.
void PrintHeader(const std::string& experiment, const std::string& what);

/// Formats seconds in engineering style ("1.23e-04 s" -> "0.123ms").
std::string FormatSeconds(double seconds);

}  // namespace hgmatch::bench

#endif  // HGMATCH_BENCH_BENCH_COMMON_H_
