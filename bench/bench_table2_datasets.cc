// Table II: dataset statistics (|V|, |E|, |Sigma|, amax, avg arity) and
// index size, for the synthetic stand-ins of the paper's ten datasets.
// Paper values are printed alongside for shape comparison.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/stats.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

int main(int argc, char** argv) {
  PrintHeader("Table II", "Dataset statistics (synthetic profile stand-ins)");
  std::printf("%-4s %6s | %10s %10s %7s %6s %6s %9s | %10s %10s %7s %6s %6s\n",
              "ds", "scale", "|V|", "|E|", "|Sig|", "amax", "a", "|Index|",
              "paper|V|", "paper|E|", "pSig", "pamax", "pa");
  const std::vector<std::string> names = DatasetArgs(
      argc, argv, {"HC", "MA", "CH", "CP", "SB", "HB", "WT", "TC", "SA", "AR"});
  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    const Hypergraph& h = d.index.graph();
    size_t num_sigs = d.index.partitions().size();
    std::printf(
        "%-4s %6.3f | %10s %10s %7zu %6u %6.1f %9s | %10s %10s %7s %6u %6.1f\n",
        d.name.c_str(), d.scale, HumanCount(h.NumVertices()).c_str(),
        HumanCount(h.NumEdges()).c_str(), num_sigs, h.MaxArity(),
        h.AverageArity(), HumanBytes(d.index.IndexBytes()).c_str(),
        HumanCount(d.profile->paper_vertices).c_str(),
        HumanCount(d.profile->paper_edges).c_str(),
        HumanCount(d.profile->paper_labels).c_str(), d.profile->paper_max_arity,
        d.profile->paper_avg_arity);
  }
  std::printf("\nNote: |Sig| is the number of distinct hyperedge signatures "
              "(partition tables); the paper reports |Sigma| (labels).\n");
  return 0;
}
