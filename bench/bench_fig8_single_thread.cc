// Fig 8 (Exp-2, Overall Comparisons): single-thread average elapsed time of
// HGMatch vs CFL-H, DAF-H, CECI-H and RapidMatch per dataset and query
// class. Timed-out queries count as the full time limit (the paper's
// convention). The shape to reproduce: HGMatch wins everywhere, by the
// largest factors on high-average-arity datasets, and never times out.
//
// To bound runtime on a laptop, once a baseline times out on EVERY query of
// a class for a dataset, larger classes on that dataset are recorded as
// timeouts without running ("saturation" rule; disable by raising
// HGMATCH_TIMEOUT).

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "util/stats.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

int main(int argc, char** argv) {
  PrintHeader("Fig 8 (Exp-2)",
              "Single-thread comparison: avg elapsed time per query class");
  const double timeout = BaselineTimeoutSeconds();
  const std::vector<std::string> names =
      DatasetArgs(argc, argv, {"HC", "MA", "CH", "CP", "SB", "WT"});

  std::printf("%-4s %-3s |", "ds", "q");
  for (Method m : kAllMethods) std::printf(" %11s", MethodName(m));
  std::printf(" | %s\n", "speedup vs best baseline");

  // Per-dataset geometric-mean speedups for the closing summary.
  std::vector<double> all_speedups;

  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    ComparisonRunner runner(d);
    std::map<Method, bool> saturated;
    for (const QuerySettings& settings : kAllQuerySettings) {
      const std::vector<Hypergraph> queries = QueriesFor(d, settings);
      if (queries.empty()) continue;
      std::map<Method, double> avg;
      for (Method m : kAllMethods) {
        double total = 0;
        size_t completed = 0;
        if (saturated[m]) {
          total = timeout * static_cast<double>(queries.size());
        } else {
          for (const Hypergraph& q : queries) {
            ComparisonRunner::Outcome o = runner.Run(
                q, m, m == Method::kHgMatch ? 10 * timeout : timeout);
            total += o.seconds;
            completed += o.completed;
          }
          if (completed == 0 && m != Method::kHgMatch) saturated[m] = true;
        }
        avg[m] = total / static_cast<double>(queries.size());
      }
      double best_baseline = avg[Method::kCflH];
      best_baseline = std::min(best_baseline, avg[Method::kDafH]);
      best_baseline = std::min(best_baseline, avg[Method::kCeciH]);
      best_baseline = std::min(best_baseline, avg[Method::kRapidMatch]);
      const double speedup = best_baseline / std::max(1e-9, avg[Method::kHgMatch]);
      all_speedups.push_back(speedup);

      std::printf("%-4s %-3s |", d.name.c_str(), settings.name);
      for (Method m : kAllMethods) {
        std::printf(" %11s", FormatSeconds(avg[m]).c_str());
      }
      std::printf(" | %8.0fx\n", speedup);
    }
  }
  std::printf("\ngeomean speedup of HGMatch over the best baseline: %.0fx\n",
              GeoMean(all_speedups));
  std::printf("(speedups are lower bounds wherever baselines hit the "
              "timeout)\n");
  return 0;
}
