// Fig 11 (Exp-5, Scheduling): peak memory of HGMatch's task-based scheduler
// vs BFS-style level-synchronous materialisation, across the q3 query
// workload, ordered by result count. The paper's finding: BFS memory grows
// with the number of (intermediate) results while the task scheduler stays
// flat and bounded (Theorem VI.1).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/hgmatch.h"
#include "parallel/bfs_executor.h"
#include "parallel/executor.h"
#include "util/stats.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

int main(int argc, char** argv) {
  PrintHeader("Fig 11 (Exp-5)",
              "Peak memory: task-based scheduler vs BFS materialisation");
  const std::vector<std::string> names = DatasetArgs(argc, argv, {"AR"});
  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    std::vector<Hypergraph> queries = QueriesFor(d, kQ3);

    struct Row {
      uint64_t embeddings;
      uint64_t task_peak;
      uint64_t bfs_peak;
    };
    std::vector<Row> rows;
    for (const Hypergraph& q : queries) {
      Result<QueryPlan> plan = BuildQueryPlan(q, d.index);
      if (!plan.ok()) continue;
      ParallelOptions options;
      options.num_threads = 4;
      options.timeout_seconds = 10 * BaselineTimeoutSeconds();
      ParallelResult task = ExecutePlanParallel(d.index, plan.value(), options);
      BfsResult bfs = ExecutePlanBfs(d.index, plan.value(), options);
      rows.push_back({task.stats.embeddings, task.peak_task_bytes,
                      bfs.peak_bytes});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.embeddings < b.embeddings; });

    std::printf("%s (q3 workload, 4 threads):\n", d.name.c_str());
    std::printf("  %4s %14s %14s %14s %9s\n", "#", "embeddings", "task peak",
                "BFS peak", "BFS/task");
    int i = 0;
    for (const Row& r : rows) {
      std::printf("  %4d %14s %14s %14s %8.1fx\n", ++i,
                  HumanCount(r.embeddings).c_str(),
                  HumanBytes(r.task_peak).c_str(),
                  HumanBytes(r.bfs_peak).c_str(),
                  r.task_peak == 0
                      ? 0.0
                      : static_cast<double>(r.bfs_peak) /
                            static_cast<double>(r.task_peak));
    }
  }
  std::printf("\n(task peak = live bytes of spawned tasks, the Theorem VI.1 "
              "quantity; BFS peak = materialised intermediate embeddings)\n");
  return 0;
}
