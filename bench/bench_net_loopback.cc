// Wire-overhead bench: the same query workload executed (a) in process
// through MatchService and (b) over the loopback TCP front end
// (net/server.h / net/client.h), single client and pipelined. The gap
// between the two rows is the whole protocol cost — framing, hypergraph
// (de)serialisation, the poll loop and the kernel's loopback path — which
// bounds what a remote deployment can lose before the network itself.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "parallel/service.h"
#include "util/timer.h"

namespace hgmatch::bench {
namespace {

struct Row {
  const char* mode;
  size_t queries = 0;
  uint64_t embeddings = 0;
  double seconds = 0;
};

void PrintRow(const Row& row) {
  std::printf("%-12s %6zu queries  %10llu embeddings  %8.4fs  %8.1f q/s\n",
              row.mode, row.queries,
              static_cast<unsigned long long>(row.embeddings), row.seconds,
              row.seconds > 0 ? static_cast<double>(row.queries) / row.seconds
                              : 0);
}

int Main(int argc, char** argv) {
  const auto names = DatasetArgs(argc, argv, {"CP"});
  for (const std::string& name : names) {
    Dataset dataset = LoadDataset(name);
    std::printf("== %s ==\n", dataset.name.c_str());
    const std::vector<QuerySettings> settings = {
        {"small", 3, 2, 2000}, {"medium", 5, 2, 2000}};
    const std::vector<Hypergraph> queries =
        BatchWorkloadFor(dataset, settings, /*min_size=*/64);

    ServiceOptions service_options;
    service_options.parallel.num_threads = 4;
    service_options.parallel.limit = 100000;

    {  // In-process baseline: submit all, wait all.
      MatchService service(dataset.index, service_options);
      Row row{"in-process"};
      Timer timer;
      std::vector<Ticket> tickets;
      tickets.reserve(queries.size());
      for (const Hypergraph& q : queries) {
        tickets.push_back(service.SubmitBorrowed(q));
      }
      for (Ticket& t : tickets) row.embeddings += t.Wait().stats.embeddings;
      row.seconds = timer.ElapsedSeconds();
      row.queries = queries.size();
      PrintRow(row);
    }

    {  // The same workload through the TCP front end, pipelined.
      ServerOptions server_options;
      server_options.service = service_options;
      MatchServer server(dataset.index, server_options);
      if (!server.Start().ok()) {
        std::printf("loopback      unavailable on this platform\n");
        continue;
      }
      MatchClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;
      Row row{"loopback"};
      Timer timer;
      std::vector<uint64_t> ids;
      ids.reserve(queries.size());
      for (const Hypergraph& q : queries) {
        Result<uint64_t> id = client.Submit(q);
        if (!id.ok()) return 1;
        ids.push_back(id.value());
      }
      for (uint64_t id : ids) {
        Result<WireOutcome> reply = client.WaitOutcome(id);
        if (!reply.ok()) return 1;
        row.embeddings += reply.value().outcome.stats.embeddings;
      }
      row.seconds = timer.ElapsedSeconds();
      row.queries = ids.size();
      PrintRow(row);
      server.Stop();
    }
  }
  return 0;
}

}  // namespace
}  // namespace hgmatch::bench

int main(int argc, char** argv) { return hgmatch::bench::Main(argc, argv); }
