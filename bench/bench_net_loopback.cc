// Wire-overhead bench: the same query workload executed (a) in process
// through MatchService and (b) over the loopback TCP front end
// (net/server.h / net/client.h), single client and pipelined. The gap
// between the two rows is the whole protocol cost — framing, hypergraph
// (de)serialisation, the serving loop and the kernel's loopback path —
// which bounds what a remote deployment can lose before the network
// itself. A second section measures single-query round-trip latency
// percentiles (p50/p95/p99) with completion-driven delivery (the wake-pipe
// path) against the legacy 2 ms ticket poll, so the tail-latency effect of
// the completion path is measured, not asserted. A third section sweeps
// concurrent connections (1/8/64/256 clients) against reactor widths
// (io_threads 1/2/4) over a fixed budget of tiny queries, so the aggregate
// q/s scaling of the epoll front end is measured where framing — not
// matching — is the bottleneck. A fourth section floods one connection
// with 10k tiny queries under {per-query SUBMIT, BATCH_SUBMIT} x {raw,
// compressed} and reports bytes/query and q/s per cell — the wire-economy
// numbers behind the batched/compressed framing — and writes them to
// BENCH_net.json for machine consumption. A fifth section exercises the
// graph catalog: round-robin routing over 1 vs 4 hosted graphs and a
// scatter-gather shard sweep (K = 1/2/8) of one expensive query shape,
// with per-query counts cross-checked across every cell, written to
// BENCH_catalog.json. A sixth section reruns the 10k-query flood under
// {metrics on (the default), metrics compiled in but disabled, metrics +
// per-query tracing} and reports each cell's q/s overhead against the
// disabled baseline — the observability tax, written to BENCH_obs.json.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "parallel/service.h"
#include "util/timer.h"

namespace hgmatch::bench {
namespace {

struct Row {
  const char* mode;
  size_t queries = 0;
  uint64_t embeddings = 0;
  double seconds = 0;
};

void PrintRow(const Row& row) {
  std::printf("%-12s %6zu queries  %10llu embeddings  %8.4fs  %8.1f q/s\n",
              row.mode, row.queries,
              static_cast<unsigned long long>(row.embeddings), row.seconds,
              row.seconds > 0 ? static_cast<double>(row.queries) / row.seconds
                              : 0);
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t n = sorted_in_place->size();
  if (n == 0) return 0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(n - 1) + 0.5);
  if (rank >= n) rank = n - 1;
  return (*sorted_in_place)[rank];
}

// Unpipelined submit->wait round trips against `index`: each iteration
// pays the full deliver-the-outcome path, so the gap between the two modes
// is exactly the outcome-delivery latency — wake-pipe-driven (completion
// hook) vs the legacy 2 ms ticket poll. `label` names the row;
// `submit.timeout_seconds` may turn the query into a fixed-duration burn
// (see DeliveryLatencySection).
void LatencyRow(const char* label, const IndexedHypergraph& index,
                const Hypergraph& query, const SubmitOptions& submit,
                const ServiceOptions& service_options, bool completion_wakeups,
                int rounds) {
  ServerOptions server_options;
  server_options.service = service_options;
  server_options.completion_wakeups = completion_wakeups;
  MatchServer server(index, server_options);
  if (!server.Start().ok()) {
    std::printf("latency       unavailable on this platform\n");
    return;
  }
  MatchClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) return;

  const int warmup = rounds / 20 + 1;
  std::vector<double> rtt;
  rtt.reserve(rounds);
  for (int i = 0; i < warmup + rounds; ++i) {
    Timer timer;
    Result<uint64_t> id = client.Submit(query, submit);
    if (!id.ok()) return;
    if (!client.WaitOutcome(id.value()).ok()) return;
    if (i >= warmup) rtt.push_back(timer.ElapsedSeconds());
  }
  const double p50 = Percentile(&rtt, 0.50) * 1e6;
  const double p95 = Percentile(&rtt, 0.95) * 1e6;
  const double p99 = Percentile(&rtt, 0.99) * 1e6;
  std::printf(
      "%s/%-8s %4d rtts  p50 %9.1fus  p95 %9.1fus  p99 %9.1fus\n", label,
      completion_wakeups ? "callback" : "poll", rounds, p50, p95, p99);
  server.Stop();
}

// Isolates outcome-*delivery* latency from scheduling luck: a
// combinatorial monster query with a 3 ms per-query timeout burns its
// whole budget on the pool, so its outcome always finalises while the
// serving thread is parked inside poll() — the completion path wakes the
// loop through the pipe at that instant, the poll path sleeps out the
// remainder of its 2 ms window. Subtract the 3 ms budget from the printed
// percentiles to read the pure delivery cost. Robust down to single-core
// hosts, where an instant query can finish before the serving thread ever
// reaches poll() and the cadence cost hides.
void DeliveryLatencySection() {
  Hypergraph clique;
  constexpr uint32_t kVertices = 40;
  clique.AddVertices(kVertices, 0);
  for (VertexId i = 0; i < kVertices; ++i) {
    for (VertexId j = i + 1; j < kVertices; ++j) (void)clique.AddEdge({i, j});
  }
  IndexedHypergraph index = IndexedHypergraph::Build(std::move(clique));
  Hypergraph monster;  // 4-edge path: far beyond the 3 ms budget
  monster.AddVertices(5, 0);
  for (VertexId v = 0; v < 4; ++v) (void)monster.AddEdge({v, v + 1});

  ServiceOptions service_options;
  service_options.parallel.num_threads = 2;
  service_options.task_quota = 64;
  service_options.plan_cache = true;  // one plan, reused every round
  SubmitOptions submit;
  submit.timeout_seconds = 0.003;

  std::printf("-- outcome delivery (3ms budget burn; subtract 3000us) --\n");
  LatencyRow("delivery", index, monster, submit, service_options,
             /*completion_wakeups=*/true, 120);
  LatencyRow("delivery", index, monster, submit, service_options,
             /*completion_wakeups=*/false, 120);
}

// Aggregate-throughput sweep of the reactor: C concurrent clients split a
// fixed budget of tiny queries (single pair edge over a 16-clique — the
// matching work is negligible, so the wire front end is the bottleneck)
// and the table reads as q/s per (io_threads, clients) cell. On a
// multi-core host the io_threads=4 rows should clearly beat io_threads=1
// at 64+ clients; on a single core the sweep degenerates into a
// context-switch bench and the rows converge.
void ConcurrentSweepSection() {
  Hypergraph clique;
  constexpr uint32_t kVertices = 16;
  clique.AddVertices(kVertices, 0);
  for (VertexId i = 0; i < kVertices; ++i) {
    for (VertexId j = i + 1; j < kVertices; ++j) (void)clique.AddEdge({i, j});
  }
  IndexedHypergraph index = IndexedHypergraph::Build(std::move(clique));
  Hypergraph tiny;
  tiny.AddVertices(2, 0);
  (void)tiny.AddEdge({0, 1});

  ServiceOptions service_options;
  service_options.parallel.num_threads = 2;

  constexpr uint32_t kTotalQueries = 4096;
  std::printf("-- concurrent connections (%u tiny queries total) --\n",
              kTotalQueries);
  for (uint32_t io_threads : {1u, 2u, 4u}) {
    for (uint32_t clients : {1u, 8u, 64u, 256u}) {
      ServerOptions server_options;
      server_options.service = service_options;
      server_options.io_threads = io_threads;
      server_options.max_connections = 512;
      MatchServer server(index, server_options);
      if (!server.Start().ok()) {
        std::printf("sweep         unavailable on this platform\n");
        return;
      }
      const uint32_t per_client = kTotalQueries / clients;
      std::atomic<bool> failed{false};
      Timer timer;
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (uint32_t c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
          MatchClient client;
          if (!client.Connect("127.0.0.1", server.port()).ok()) {
            failed.store(true);
            return;
          }
          std::vector<uint64_t> ids;
          ids.reserve(per_client);
          for (uint32_t i = 0; i < per_client; ++i) {
            Result<uint64_t> id = client.Submit(tiny);
            if (!id.ok()) {
              failed.store(true);
              return;
            }
            ids.push_back(id.value());
          }
          for (uint64_t id : ids) {
            if (!client.WaitOutcome(id).ok()) {
              failed.store(true);
              return;
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = timer.ElapsedSeconds();
      server.Stop();
      if (failed.load()) {
        std::printf("io=%u clients=%-3u  failed\n", io_threads, clients);
        continue;
      }
      std::printf("io=%u clients=%-3u  %5u q/conn  %8.4fs  %9.1f q/s\n",
                  io_threads, clients, per_client, seconds,
                  seconds > 0 ? kTotalQueries / seconds : 0);
    }
  }
}

// One cell of the flood sweep: N tiny queries through one connection,
// framing chosen by the feature bits the client requests (and the server
// grants). `transfer` is the client's eye view of the wire — both
// directions, headers included — so bytes/query compares the whole
// framing economy, not just payload sizes.
struct FloodCell {
  const char* mode = "";
  bool batch = false;
  bool compressed = false;
  size_t queries = 0;
  double seconds = 0;
  ClientTransferStats transfer;
};

double FloodBytesPerQuery(const FloodCell& cell) {
  if (cell.queries == 0) return 0;
  return static_cast<double>(cell.transfer.bytes_sent +
                             cell.transfer.bytes_received) /
         static_cast<double>(cell.queries);
}

bool RunFloodCell(const IndexedHypergraph& index, const Hypergraph& tiny,
                  FloodCell* cell) {
  ServerOptions server_options;
  server_options.service.parallel.num_threads = 2;
  server_options.enable_compression = cell->compressed;
  MatchServer server(index, server_options);
  if (!server.Start().ok()) return false;

  AsyncClientOptions copts;
  if (cell->batch) copts.request_features |= kFeatureBatch;
  if (cell->compressed) copts.request_features |= kFeatureCompression;
  MatchClient client(copts);
  if (!client.Connect("127.0.0.1", server.port()).ok()) return false;

  Timer timer;
  std::vector<uint64_t> ids;
  ids.reserve(cell->queries);
  if (cell->batch) {
    const std::vector<const Hypergraph*> queries(cell->queries, &tiny);
    Result<std::vector<uint64_t>> batch_ids = client.SubmitBatch(queries);
    if (!batch_ids.ok()) return false;
    ids = std::move(batch_ids.value());
  } else {
    for (size_t i = 0; i < cell->queries; ++i) {
      Result<uint64_t> id = client.Submit(tiny);
      if (!id.ok()) return false;
      ids.push_back(id.value());
    }
  }
  for (uint64_t id : ids) {
    if (!client.WaitOutcome(id).ok()) return false;
  }
  cell->seconds = timer.ElapsedSeconds();
  cell->transfer = client.TransferStats();
  server.Stop();
  return true;
}

// Small-query flood: 10k single-edge queries against a 16-clique, where
// virtually all the cost is framing. The headline number is bytes/query
// of BATCH_SUBMIT+compression against per-query raw SUBMIT (the v1 wire
// protocol): batching amortises the 9-byte header and the repeated
// submit-option block across the frame, and LZSS then collapses the
// near-identical serialized queries, so the product of the two is the
// reduction a small-query-heavy deployment should expect. queries/s is a
// loopback number: the wire is free and client, IO thread and workers
// share the host, so codec CPU that would overlap the (real) network and
// run on other cores in deployment shows up serialised here — on a
// single-core host the lzss cells trail raw by the codec's CPU share,
// and match it within noise on multi-core hosts.
void FloodSection() {
  Hypergraph clique;
  constexpr uint32_t kVertices = 16;
  clique.AddVertices(kVertices, 0);
  for (VertexId i = 0; i < kVertices; ++i) {
    for (VertexId j = i + 1; j < kVertices; ++j) (void)clique.AddEdge({i, j});
  }
  IndexedHypergraph index = IndexedHypergraph::Build(std::move(clique));
  Hypergraph tiny;
  tiny.AddVertices(2, 0);
  (void)tiny.AddEdge({0, 1});

  constexpr size_t kFlood = 10000;
  FloodCell cells[4];
  cells[0].mode = "submit/raw";
  cells[1].mode = "submit/lzss";
  cells[1].compressed = true;
  cells[2].mode = "batch/raw";
  cells[2].batch = true;
  cells[3].mode = "batch/lzss";
  cells[3].batch = true;
  cells[3].compressed = true;
  std::printf("-- small-query flood (%zu single-edge queries, 1 conn) --\n",
              kFlood);
  for (FloodCell& cell : cells) {
    cell.queries = kFlood;
    // Best of three: one flood lasts ~25 ms, well inside scheduler noise on
    // a busy host, and the fastest run is the closest to the framing cost
    // actually being measured.
    bool ok = false;
    for (int rep = 0; rep < 3; ++rep) {
      FloodCell probe = cell;
      if (!RunFloodCell(index, tiny, &probe)) break;
      if (!ok || probe.seconds < cell.seconds) {
        cell.seconds = probe.seconds;
        cell.transfer = probe.transfer;
      }
      ok = true;
    }
    if (!ok) {
      std::printf("flood         unavailable on this platform\n");
      return;
    }
    std::printf(
        "%-12s %8.4fs  %9.1f q/s  sent %8llu B /%6llu f  "
        "recv %8llu B /%6llu f  %6.1f B/query\n",
        cell.mode, cell.seconds,
        cell.seconds > 0
            ? static_cast<double>(cell.queries) / cell.seconds
            : 0,
        static_cast<unsigned long long>(cell.transfer.bytes_sent),
        static_cast<unsigned long long>(cell.transfer.frames_sent),
        static_cast<unsigned long long>(cell.transfer.bytes_received),
        static_cast<unsigned long long>(cell.transfer.frames_received),
        FloodBytesPerQuery(cell));
  }
  const double base = FloodBytesPerQuery(cells[0]);
  const double best = FloodBytesPerQuery(cells[3]);
  if (best > 0) {
    std::printf("bytes/query reduction (batch+lzss vs submit/raw): %.2fx\n",
                base / best);
  }

  std::FILE* json = std::fopen("BENCH_net.json", "w");
  if (json == nullptr) {
    std::printf("(could not write BENCH_net.json)\n");
    return;
  }
  std::fprintf(json, "{\n  \"bench\": \"net_loopback_flood\",\n");
  std::fprintf(json, "  \"queries\": %zu,\n  \"cells\": [\n", kFlood);
  for (size_t i = 0; i < 4; ++i) {
    const FloodCell& cell = cells[i];
    std::fprintf(
        json,
        "    {\"mode\": \"%s\", \"batch\": %s, \"compressed\": %s, "
        "\"seconds\": %.6f, \"qps\": %.1f, \"bytes_sent\": %llu, "
        "\"frames_sent\": %llu, \"bytes_received\": %llu, "
        "\"frames_received\": %llu, \"bytes_per_query\": %.2f}%s\n",
        cell.batch ? "batch" : "submit", cell.batch ? "true" : "false",
        cell.compressed ? "true" : "false", cell.seconds,
        cell.seconds > 0
            ? static_cast<double>(cell.queries) / cell.seconds
            : 0,
        static_cast<unsigned long long>(cell.transfer.bytes_sent),
        static_cast<unsigned long long>(cell.transfer.frames_sent),
        static_cast<unsigned long long>(cell.transfer.bytes_received),
        static_cast<unsigned long long>(cell.transfer.frames_received),
        FloodBytesPerQuery(cell), i + 1 < 4 ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"bytes_per_query_reduction\": %.3f\n}\n",
               best > 0 ? base / best : 0);
  std::fclose(json);
  std::printf("wrote BENCH_net.json\n");
}

// Catalog + scatter-gather section. Two measurements, one JSON file:
//  * multi-graph serving: G hosted graphs on one pool vs the same load on
//    a single-graph server — the cost of routing and per-graph services
//    when the pool, not the catalog, should be the bottleneck;
//  * shard sweep: K in {1, 2, 8} scan-sliced fan-out of one expensive
//    query shape, pipelined through one connection — the latency lever
//    sharding buys on a multi-core pool (and the fan-out overhead it
//    costs on K > cores).
// Counts are asserted equal across all cells: sharding and routing are
// exactness-preserving, so a mismatch here is a bug, not noise.
struct CatalogCell {
  std::string label;
  uint32_t shards = 1;
  size_t queries = 0;
  uint64_t embeddings = 0;
  double seconds = 0;
};

void CatalogSection() {
  Hypergraph clique;
  constexpr uint32_t kVertices = 28;
  clique.AddVertices(kVertices, 0);
  for (VertexId i = 0; i < kVertices; ++i) {
    for (VertexId j = i + 1; j < kVertices; ++j) (void)clique.AddEdge({i, j});
  }
  Hypergraph query;  // 3-edge path: heavy enough for slicing to matter
  query.AddVertices(4, 0);
  for (VertexId v = 0; v < 3; ++v) (void)query.AddEdge({v, v + 1});

  std::vector<CatalogCell> cells;
  std::printf("-- graph catalog + shard sweep (28-clique, 3-edge path) --\n");

  // Multi-graph routing: the same budget of queries against 1 vs 4 hosted
  // copies of the graph, round-robin routed, one client.
  constexpr size_t kRouted = 64;
  for (uint32_t num_graphs : {1u, 4u}) {
    std::vector<NamedGraph> graphs;
    std::vector<std::string> names;
    for (uint32_t g = 0; g < num_graphs; ++g) {
      names.push_back("g" + std::to_string(g));
      graphs.push_back({names.back(), clique.Clone()});
    }
    ServerOptions server_options;
    server_options.service.parallel.num_threads = 4;
    MatchServer server(std::move(graphs), server_options);
    if (!server.Start().ok()) {
      std::printf("catalog       unavailable on this platform\n");
      return;
    }
    AsyncClientOptions copts;
    copts.request_features = kFeatureCatalog;
    MatchClient client(copts);
    if (!client.Connect("127.0.0.1", server.port()).ok()) return;

    CatalogCell cell;
    cell.label = "route/" + std::to_string(num_graphs) + "-graph";
    cell.queries = kRouted;
    Timer timer;
    std::vector<uint64_t> ids;
    ids.reserve(kRouted);
    for (size_t i = 0; i < kRouted; ++i) {
      Result<uint64_t> id =
          client.SubmitTo(names[i % names.size()], query);
      if (!id.ok()) return;
      ids.push_back(id.value());
    }
    for (uint64_t id : ids) {
      Result<WireOutcome> reply = client.WaitOutcome(id);
      if (!reply.ok()) return;
      cell.embeddings += reply.value().outcome.stats.embeddings;
    }
    cell.seconds = timer.ElapsedSeconds();
    server.Stop();
    std::printf("%-16s %4zu queries  %8.4fs  %8.1f q/s\n",
                cell.label.c_str(), cell.queries, cell.seconds,
                cell.seconds > 0
                    ? static_cast<double>(cell.queries) / cell.seconds
                    : 0);
    cells.push_back(std::move(cell));
  }

  // Shard sweep: scatter-gather fan-out of every submission.
  constexpr size_t kSharded = 32;
  for (uint32_t shards : {1u, 2u, 8u}) {
    std::vector<NamedGraph> graphs;
    graphs.push_back({"default", clique.Clone()});
    ServerOptions server_options;
    server_options.service.parallel.num_threads = 4;
    server_options.service.shards = shards;
    MatchServer server(std::move(graphs), server_options);
    if (!server.Start().ok()) return;
    MatchClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return;

    CatalogCell cell;
    cell.label = "shards/" + std::to_string(shards);
    cell.shards = shards;
    cell.queries = kSharded;
    Timer timer;
    std::vector<uint64_t> ids;
    ids.reserve(kSharded);
    for (size_t i = 0; i < kSharded; ++i) {
      Result<uint64_t> id = client.Submit(query);
      if (!id.ok()) return;
      ids.push_back(id.value());
    }
    for (uint64_t id : ids) {
      Result<WireOutcome> reply = client.WaitOutcome(id);
      if (!reply.ok()) return;
      cell.embeddings += reply.value().outcome.stats.embeddings;
    }
    cell.seconds = timer.ElapsedSeconds();
    server.Stop();
    std::printf("%-16s %4zu queries  %8.4fs  %8.1f q/s\n",
                cell.label.c_str(), cell.queries, cell.seconds,
                cell.seconds > 0
                    ? static_cast<double>(cell.queries) / cell.seconds
                    : 0);
    cells.push_back(std::move(cell));
  }

  // Exactness cross-check: every cell saw the same per-query counts.
  const uint64_t per_query = cells.empty() || cells[0].queries == 0
                                 ? 0
                                 : cells[0].embeddings / cells[0].queries;
  for (const CatalogCell& cell : cells) {
    if (cell.queries > 0 && cell.embeddings / cell.queries != per_query) {
      std::printf("MISMATCH: %s saw %llu embeddings/query (want %llu)\n",
                  cell.label.c_str(),
                  static_cast<unsigned long long>(cell.embeddings /
                                                  cell.queries),
                  static_cast<unsigned long long>(per_query));
    }
  }

  std::FILE* json = std::fopen("BENCH_catalog.json", "w");
  if (json == nullptr) {
    std::printf("(could not write BENCH_catalog.json)\n");
    return;
  }
  std::fprintf(json, "{\n  \"bench\": \"net_loopback_catalog\",\n");
  std::fprintf(json, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CatalogCell& cell = cells[i];
    std::fprintf(json,
                 "    {\"label\": \"%s\", \"shards\": %u, \"queries\": %zu, "
                 "\"embeddings\": %llu, \"seconds\": %.6f, \"qps\": %.1f}%s\n",
                 cell.label.c_str(), cell.shards, cell.queries,
                 static_cast<unsigned long long>(cell.embeddings),
                 cell.seconds,
                 cell.seconds > 0
                     ? static_cast<double>(cell.queries) / cell.seconds
                     : 0,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_catalog.json\n");
}

// Observability-tax section: the 10k tiny-query flood of FloodSection
// rerun under three instrumentation states. "metrics/off" flips the
// process registry to disabled — every Add/Observe degrades to one
// relaxed load + branch, the compiled-in-but-idle configuration — and is
// the baseline; "metrics/on" is the shipped default (sharded counters and
// histograms live on every layer's hot path); "trace/on" adds per-query
// span capture and the OUTCOME trace section on the wire (kFeatureTrace).
// Overhead is reported as the q/s delta against the disabled baseline.
// Loopback is the worst case for this tax: no network time hides the
// extra stamps, so deployment overhead is bounded by these numbers.
struct ObsCell {
  const char* mode = "";
  bool metrics = true;
  bool trace = false;
  size_t queries = 0;
  double seconds = 0;
};

bool RunObsCell(const IndexedHypergraph& index, const Hypergraph& tiny,
                ObsCell* cell) {
  MetricsRegistry::Default().set_enabled(cell->metrics);
  ServerOptions server_options;
  server_options.service.parallel.num_threads = 2;
  MatchServer server(index, server_options);
  if (!server.Start().ok()) return false;

  AsyncClientOptions copts;
  if (cell->trace) copts.request_features |= kFeatureTrace;
  MatchClient client(copts);
  if (!client.Connect("127.0.0.1", server.port()).ok()) return false;

  Timer timer;
  std::vector<uint64_t> ids;
  ids.reserve(cell->queries);
  for (size_t i = 0; i < cell->queries; ++i) {
    Result<uint64_t> id = client.Submit(tiny);
    if (!id.ok()) return false;
    ids.push_back(id.value());
  }
  for (uint64_t id : ids) {
    if (!client.WaitOutcome(id).ok()) return false;
  }
  cell->seconds = timer.ElapsedSeconds();
  server.Stop();
  MetricsRegistry::Default().set_enabled(true);
  return true;
}

void ObsSection() {
  Hypergraph clique;
  constexpr uint32_t kVertices = 16;
  clique.AddVertices(kVertices, 0);
  for (VertexId i = 0; i < kVertices; ++i) {
    for (VertexId j = i + 1; j < kVertices; ++j) (void)clique.AddEdge({i, j});
  }
  IndexedHypergraph index = IndexedHypergraph::Build(std::move(clique));
  Hypergraph tiny;
  tiny.AddVertices(2, 0);
  (void)tiny.AddEdge({0, 1});

  constexpr size_t kFlood = 10000;
  ObsCell cells[3];
  cells[0].mode = "metrics/off";
  cells[0].metrics = false;
  cells[1].mode = "metrics/on";
  cells[2].mode = "trace/on";
  cells[2].trace = true;
  std::printf("-- observability tax (%zu single-edge queries, 1 conn) --\n",
              kFlood);
  // One discarded flood first: the first flood of the process pays page
  // faults and allocator warmup, which would otherwise all land on the
  // baseline cell and make the instrumented cells look free.
  ObsCell warmup = cells[1];
  warmup.queries = kFlood;
  (void)RunObsCell(index, tiny, &warmup);
  for (ObsCell& cell : cells) {
    cell.queries = kFlood;
    bool ok = false;
    for (int rep = 0; rep < 3; ++rep) {  // best of three, as FloodSection
      ObsCell probe = cell;
      if (!RunObsCell(index, tiny, &probe)) break;
      if (!ok || probe.seconds < cell.seconds) cell.seconds = probe.seconds;
      ok = true;
    }
    if (!ok) {
      std::printf("obs           unavailable on this platform\n");
      return;
    }
  }
  const double base_qps =
      cells[0].seconds > 0 ? kFlood / cells[0].seconds : 0;
  for (const ObsCell& cell : cells) {
    const double qps = cell.seconds > 0 ? kFlood / cell.seconds : 0;
    const double overhead =
        base_qps > 0 ? (base_qps - qps) / base_qps * 100.0 : 0;
    std::printf("%-12s %8.4fs  %9.1f q/s  %+6.2f%% vs metrics/off\n",
                cell.mode, cell.seconds, qps, overhead);
  }

  std::FILE* json = std::fopen("BENCH_obs.json", "w");
  if (json == nullptr) {
    std::printf("(could not write BENCH_obs.json)\n");
    return;
  }
  std::fprintf(json, "{\n  \"bench\": \"net_loopback_obs\",\n");
  std::fprintf(json, "  \"queries\": %zu,\n  \"cells\": [\n", kFlood);
  for (size_t i = 0; i < 3; ++i) {
    const ObsCell& cell = cells[i];
    const double qps = cell.seconds > 0 ? kFlood / cell.seconds : 0;
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"metrics\": %s, \"trace\": %s, "
                 "\"seconds\": %.6f, \"qps\": %.1f, "
                 "\"overhead_pct_vs_disabled\": %.3f}%s\n",
                 cell.mode, cell.metrics ? "true" : "false",
                 cell.trace ? "true" : "false", cell.seconds, qps,
                 base_qps > 0 ? (base_qps - qps) / base_qps * 100.0 : 0,
                 i + 1 < 3 ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_obs.json\n");
}

int Main(int argc, char** argv) {
  const auto names = DatasetArgs(argc, argv, {"CP"});
  for (const std::string& name : names) {
    Dataset dataset = LoadDataset(name);
    std::printf("== %s ==\n", dataset.name.c_str());
    const std::vector<QuerySettings> settings = {
        {"small", 3, 2, 2000}, {"medium", 5, 2, 2000}};
    const std::vector<Hypergraph> queries =
        BatchWorkloadFor(dataset, settings, /*min_size=*/64);

    ServiceOptions service_options;
    service_options.parallel.num_threads = 4;
    service_options.parallel.limit = 100000;

    {  // In-process baseline: submit all, wait all.
      MatchService service(dataset.index, service_options);
      Row row{"in-process"};
      Timer timer;
      std::vector<Ticket> tickets;
      tickets.reserve(queries.size());
      for (const Hypergraph& q : queries) {
        tickets.push_back(service.SubmitBorrowed(q));
      }
      for (Ticket& t : tickets) row.embeddings += t.Wait().stats.embeddings;
      row.seconds = timer.ElapsedSeconds();
      row.queries = queries.size();
      PrintRow(row);
    }

    {  // The same workload through the TCP front end, pipelined.
      ServerOptions server_options;
      server_options.service = service_options;
      MatchServer server(dataset.index, server_options);
      if (!server.Start().ok()) {
        std::printf("loopback      unavailable on this platform\n");
        continue;
      }
      MatchClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;
      Row row{"loopback"};
      Timer timer;
      std::vector<uint64_t> ids;
      ids.reserve(queries.size());
      for (const Hypergraph& q : queries) {
        Result<uint64_t> id = client.Submit(q);
        if (!id.ok()) return 1;
        ids.push_back(id.value());
      }
      for (uint64_t id : ids) {
        Result<WireOutcome> reply = client.WaitOutcome(id);
        if (!reply.ok()) return 1;
        row.embeddings += reply.value().outcome.stats.embeddings;
      }
      row.seconds = timer.ElapsedSeconds();
      row.queries = ids.size();
      PrintRow(row);
      server.Stop();
    }

    // Single-query round-trip tail latency: completion-driven delivery vs
    // the legacy poll path. Small queries finish in well under a poll
    // interval, so on multi-core hosts the poll cadence dominates their
    // p50 — the case the completion path exists for.
    LatencyRow("latency", dataset.index, queries.front(), SubmitOptions{},
               service_options, /*completion_wakeups=*/true, 400);
    LatencyRow("latency", dataset.index, queries.front(), SubmitOptions{},
               service_options, /*completion_wakeups=*/false, 400);
  }

  DeliveryLatencySection();
  ConcurrentSweepSection();
  FloodSection();
  CatalogSection();
  ObsSection();
  return 0;
}

}  // namespace
}  // namespace hgmatch::bench

int main(int argc, char** argv) { return hgmatch::bench::Main(argc, argv); }
