// Ablation of the match-by-vertex baseline's ingredients: IHS filter [30],
// local adjacency pruning (what DAF/CECI's auxiliary structures provide),
// and DAF-style failing-set backjumping. Shows how far the best
// match-by-vertex configuration remains from HGMatch — i.e. that the gap
// measured in Fig 8 is not an artefact of a weak baseline configuration.

#include <cstdio>

#include "baseline/backtracking.h"
#include "bench/bench_common.h"
#include "core/hgmatch.h"

using namespace hgmatch;        // NOLINT
using namespace hgmatch::bench; // NOLINT

namespace {

struct Config {
  const char* name;
  bool ihs;
  bool adjacency;
  bool failing;
};

constexpr Config kConfigs[] = {
    {"none", false, false, false},
    {"+ihs", true, false, false},
    {"+adj", true, true, false},
    {"+fs", true, true, true},
};

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Ablation: baseline features",
              "Match-by-vertex with IHS / adjacency pruning / failing sets "
              "incrementally enabled, vs HGMatch");
  const double timeout = BaselineTimeoutSeconds();
  std::printf("%-4s %-3s |", "ds", "q");
  for (const Config& c : kConfigs) std::printf(" %10s", c.name);
  std::printf(" %10s\n", "HGMatch");

  const std::vector<std::string> names =
      DatasetArgs(argc, argv, {"CH", "CP", "WT"});
  for (const std::string& name : names) {
    Dataset d = LoadDataset(name);
    for (const QuerySettings& settings : {kQ2, kQ3}) {
      const std::vector<Hypergraph> queries = QueriesFor(d, settings);
      if (queries.empty()) continue;
      std::printf("%-4s %-3s |", d.name.c_str(), settings.name);
      for (const Config& c : kConfigs) {
        double total = 0;
        for (const Hypergraph& q : queries) {
          BaselineOptions options;
          options.use_ihs = c.ihs;
          options.adjacency_pruning = c.adjacency;
          options.failing_sets = c.failing;
          options.timeout_seconds = timeout;
          Result<BaselineResult> r = MatchByVertex(d.index, q, options);
          total += r.ok() && !r.value().timed_out ? r.value().seconds : timeout;
        }
        std::printf(" %10s",
                    FormatSeconds(total / queries.size()).c_str());
      }
      double hg_total = 0;
      for (const Hypergraph& q : queries) {
        MatchOptions options;
        options.timeout_seconds = 10 * timeout;
        Result<MatchStats> r = MatchSequential(d.index, q, options);
        if (r.ok()) hg_total += r.value().seconds;
      }
      std::printf(" %10s\n", FormatSeconds(hg_total / queries.size()).c_str());
    }
  }
  return 0;
}
