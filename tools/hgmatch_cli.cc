// hgmatch — command-line front end to the library.
//
//   hgmatch gen <profile|random> <out.hg|out.hgb> [scale]
//   hgmatch stats <file>
//   hgmatch convert <in> <out>
//   hgmatch sample <data> <num-edges> [count]
//   hgmatch match <data> <query> [threads] [limit]
//   hgmatch batch <data> <queryset> [threads] [limit] [--max-inflight=N]
//                 [--task-quota=N] [--timeout=S] [--batch-timeout=S]
//                 [--no-plan-cache] [--policy=fifo|priority|wfq]
//
// Files ending in .hgb use the binary format (io/binary_format.h); anything
// else is the text format (io/loader.h).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/hgmatch.h"
#include "core/hypergraph_stats.h"
#include "gen/dataset_profiles.h"
#include "gen/query_gen.h"
#include "io/binary_format.h"
#include "io/loader.h"
#include "io/writer.h"
#include "parallel/batch_runner.h"
#include "parallel/dataflow.h"
#include "parallel/executor.h"
#include "util/timer.h"

namespace hgmatch {
namespace {

bool IsBinaryPath(const std::string& path) {
  return path.size() >= 4 && path.substr(path.size() - 4) == ".hgb";
}

Result<Hypergraph> LoadAny(const std::string& path) {
  return IsBinaryPath(path) ? LoadHypergraphBinary(path)
                            : LoadHypergraph(path);
}

Status SaveAny(const Hypergraph& h, const std::string& path) {
  return IsBinaryPath(path) ? SaveHypergraphBinary(h, path)
                            : SaveHypergraph(h, path);
}

// Parses a thread-count argument; returns false on junk or negatives
// (atoi would otherwise wrap -1 to ~4 billion threads).
bool ParseThreads(const char* arg, uint32_t* out) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || v < 0 || v > 1 << 16) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hgmatch gen <profile|random> <out[.hgb]> [scale]\n"
               "  hgmatch stats <file>\n"
               "  hgmatch convert <in> <out>\n"
               "  hgmatch sample <data> <num-edges> [count]\n"
               "  hgmatch match <data> <query> [threads] [limit]\n"
               "  hgmatch batch <data> <queryset> [threads] [limit]\n"
               "    [--max-inflight=N]   admission window (0 = all at once)\n"
               "    [--task-quota=N]     per-query live-task fairness cap\n"
               "    [--timeout=S]        per-query timeout, from admission\n"
               "    [--batch-timeout=S]  whole-batch timeout\n"
               "    [--no-plan-cache]    plan every query independently\n"
               "    [--policy=P]         admission order: fifo (default),\n"
               "                         priority, wfq (weighted-fair)\n"
               "profiles: HC MA CH CP SB HB WT TC SA AR random\n"
               "queryset: text queries separated by '---' or '# query' "
               "lines;\n"
               "  per-query '# tenant= # priority= # weight= # timeout=' "
               "headers\n");
  return 2;
}

// Parses a non-negative integer "--flag=value" payload. strtoull would
// silently wrap negative input, so a leading '-' is rejected up front.
bool ParseCount(const char* payload, uint64_t* out) {
  if (payload[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(payload, &end, 10);
  if (end == payload || *end != '\0') return false;
  *out = v;
  return true;
}

// Parses a "--flag=value" seconds payload (non-negative decimal).
bool ParseSeconds(const char* payload, double* out) {
  char* end = nullptr;
  const double v = std::strtod(payload, &end);
  if (end == payload || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

int CmdGen(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string profile_name = argv[2];
  const std::string out = argv[3];
  const double scale = argc > 4 ? std::atof(argv[4]) : -1;
  Hypergraph h;
  Timer timer;
  if (profile_name == "random") {
    GeneratorConfig config;
    config.seed = 1;
    if (scale > 0) {
      config.num_vertices = static_cast<uint32_t>(1000 * scale);
      config.num_edges = static_cast<uint32_t>(3000 * scale);
    }
    h = GenerateHypergraph(config);
  } else {
    const DatasetProfile* profile = FindDatasetProfile(profile_name);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
      return 2;
    }
    h = scale > 0 ? profile->Generate(scale) : profile->GenerateDefault();
  }
  const Status s = SaveAny(h, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("generated %zu vertices, %zu hyperedges -> %s (%.2fs)\n",
              h.NumVertices(), h.NumEdges(), out.c_str(),
              timer.ElapsedSeconds());
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<Hypergraph> h = LoadAny(argv[2]);
  if (!h.ok()) {
    std::fprintf(stderr, "%s\n", h.status().ToString().c_str());
    return 1;
  }
  const HypergraphStats stats = ComputeStats(h.value());
  std::printf("%s\n", stats.ToString().c_str());
  Timer timer;
  IndexedHypergraph index = IndexedHypergraph::Build(std::move(h.value()));
  std::printf("%s (index built in %.3fs, %llu bytes)\n",
              ComputePartitionStats(index).ToString().c_str(),
              timer.ElapsedSeconds(),
              static_cast<unsigned long long>(index.IndexBytes()));
  return 0;
}

int CmdConvert(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<Hypergraph> h = LoadAny(argv[2]);
  if (!h.ok()) {
    std::fprintf(stderr, "%s\n", h.status().ToString().c_str());
    return 1;
  }
  const Status s = SaveAny(h.value(), argv[3]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", argv[3]);
  return 0;
}

int CmdSample(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<Hypergraph> data = LoadAny(argv[2]);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const uint32_t k = static_cast<uint32_t>(std::atoi(argv[3]));
  const size_t count = argc > 4 ? static_cast<size_t>(std::atol(argv[4])) : 1;
  QuerySettings settings{"cli", k, 2, 1000};
  const auto queries = SampleQueries(data.value(), settings, count, 7);
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("# query %zu\n%s", i, FormatHypergraph(queries[i]).c_str());
  }
  return queries.empty() ? 1 : 0;
}

int CmdMatch(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<Hypergraph> data = LoadAny(argv[2]);
  Result<Hypergraph> query = LoadAny(argv[3]);
  if (!data.ok() || !query.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!data.ok() ? data.status() : query.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  uint32_t threads = 1;
  if (argc > 4 && !ParseThreads(argv[4], &threads)) {
    std::fprintf(stderr, "bad thread count '%s'\n", argv[4]);
    return 2;
  }
  const uint64_t limit = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 0;

  IndexedHypergraph index = IndexedHypergraph::Build(std::move(data.value()));
  Result<QueryPlan> plan = BuildQueryPlan(query.value(), index);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%s", DataflowGraph::FromPlan(plan.value()).ToString(&index).c_str());

  if (threads <= 1) {
    MatchOptions options;
    options.limit = limit;
    const MatchStats stats =
        ExecutePlanSequential(index, plan.value(), options, nullptr);
    std::printf("embeddings: %llu%s in %.3fs (%llu candidates)\n",
                static_cast<unsigned long long>(stats.embeddings),
                stats.limit_hit ? "+" : "", stats.seconds,
                static_cast<unsigned long long>(stats.candidates));
  } else {
    ParallelOptions options;
    options.num_threads = threads;
    options.limit = limit;
    const ParallelResult r =
        ExecutePlanParallel(index, plan.value(), options, nullptr);
    std::printf("embeddings: %llu%s in %.3fs with %u threads "
                "(peak task mem %llu bytes)\n",
                static_cast<unsigned long long>(r.stats.embeddings),
                r.stats.limit_hit ? "+" : "", r.stats.seconds, threads,
                static_cast<unsigned long long>(r.peak_task_bytes));
  }
  return 0;
}

int CmdBatch(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<Hypergraph> data = LoadAny(argv[2]);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<QuerySetEntry>> entries = LoadQuerySetEntries(argv[3]);
  if (!entries.ok()) {
    std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
    return 1;
  }
  if (entries.value().empty()) {
    std::fprintf(stderr, "query set %s is empty\n", argv[3]);
    return 1;
  }

  BatchOptions options;
  int positional = 0;
  for (int a = 4; a < argc; ++a) {
    const char* arg = argv[a];
    uint64_t count = 0;
    if (std::strncmp(arg, "--max-inflight=", 15) == 0) {
      if (!ParseCount(arg + 15, &count) || count > 1u << 20) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
      options.max_inflight_queries = static_cast<uint32_t>(count);
    } else if (std::strncmp(arg, "--task-quota=", 13) == 0) {
      if (!ParseCount(arg + 13, &count)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
      options.task_quota = count;
    } else if (std::strncmp(arg, "--timeout=", 10) == 0) {
      if (!ParseSeconds(arg + 10, &options.parallel.timeout_seconds)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--batch-timeout=", 16) == 0) {
      if (!ParseSeconds(arg + 16, &options.batch_timeout_seconds)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
    } else if (std::strcmp(arg, "--no-plan-cache") == 0) {
      options.plan_cache = false;
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      const char* policy = arg + 9;
      if (std::strcmp(policy, "fifo") == 0) {
        options.admission = AdmissionPolicy::kFifo;
      } else if (std::strcmp(policy, "priority") == 0) {
        options.admission = AdmissionPolicy::kPriority;
      } else if (std::strcmp(policy, "wfq") == 0) {
        options.admission = AdmissionPolicy::kWeightedFair;
      } else {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return 2;
    } else if (positional == 0) {
      if (!ParseThreads(arg, &options.parallel.num_threads)) {
        std::fprintf(stderr, "bad thread count '%s'\n", arg);
        return 2;
      }
      ++positional;
    } else if (positional == 1) {
      options.parallel.limit = std::strtoull(arg, nullptr, 10);
      ++positional;
    } else {
      return Usage();
    }
  }

  std::vector<Hypergraph> queries;
  std::vector<SubmitOptions> submit;
  queries.reserve(entries.value().size());
  submit.reserve(entries.value().size());
  for (QuerySetEntry& e : entries.value()) {
    queries.push_back(std::move(e.query));
    submit.push_back(e.submit);
  }

  IndexedHypergraph index = IndexedHypergraph::Build(std::move(data.value()));
  const BatchResult r = RunBatch(index, queries, options, nullptr, &submit);

  size_t planned = 0;
  for (size_t i = 0; i < r.queries.size(); ++i) {
    const BatchQueryResult& q = r.queries[i];
    if (!q.status.ok()) {
      std::printf("query %zu: %s  [%s]\n", i, q.status.ToString().c_str(),
                  QueryStatusName(q.outcome));
      continue;
    }
    ++planned;
    std::printf("query %zu: embeddings %llu%s in %.3fs  [%s]%s\n", i,
                static_cast<unsigned long long>(q.stats.embeddings),
                q.stats.limit_hit ? "+" : "", q.stats.seconds,
                QueryStatusName(q.outcome), q.mirrored ? " (mirrored)" : "");
  }
  std::printf("batch: %llu queries (%llu completed), embeddings %llu "
              "in %.3fs (%llu executed at %.1f queries/s, %llu mirrored, "
              "peak task mem %llu bytes, %llu plan-cache hits)\n",
              static_cast<unsigned long long>(r.queries.size()),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.total.embeddings), r.seconds,
              static_cast<unsigned long long>(r.executed),
              r.QueriesPerSecond(),
              static_cast<unsigned long long>(r.mirrored),
              static_cast<unsigned long long>(r.peak_task_bytes),
              static_cast<unsigned long long>(r.plan_cache_hits));
  return planned > 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "convert") return CmdConvert(argc, argv);
  if (cmd == "sample") return CmdSample(argc, argv);
  if (cmd == "match") return CmdMatch(argc, argv);
  if (cmd == "batch") return CmdBatch(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace hgmatch

int main(int argc, char** argv) { return hgmatch::Main(argc, argv); }
