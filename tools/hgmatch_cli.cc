// hgmatch — command-line front end to the library.
//
//   hgmatch gen <profile|random> <out.hg|out.hgb> [scale]
//   hgmatch stats <file>
//   hgmatch convert <in> <out>
//   hgmatch sample <data> <num-edges> [count]
//   hgmatch match <data> <query> [threads] [limit]
//   hgmatch batch <data> <queryset> [threads] [limit] [--max-inflight=N]
//                 [--task-quota=N] [--timeout=S] [--batch-timeout=S]
//                 [--no-plan-cache] [--policy=fifo|priority|wfq]
//   hgmatch shard <in> <out-prefix> <K>
//   hgmatch serve [<data>] [--graph NAME=PATH]... [--shards=K]
//                 [--port=N] [--host=H] [--threads=N] [flags...]
//   hgmatch query --connect=HOST:PORT <queryset> [--limit=N] [--batch]
//                 [--compress] [--graph=NAME] [--list-graphs]
//                 [--load-graph=NAME=PATH] [--unload-graph=NAME]
//                 [--shutdown]
//
// Files ending in .hgb use the binary format (io/binary_format.h); anything
// else is the text format (io/loader.h).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/hgmatch.h"
#include "core/hypergraph_stats.h"
#include "gen/dataset_profiles.h"
#include "gen/query_gen.h"
#include "io/binary_format.h"
#include "io/loader.h"
#include "io/shard_io.h"
#include "io/writer.h"
#include "net/client.h"
#include "net/server.h"
#include "parallel/batch_runner.h"
#include "parallel/dataflow.h"
#include "parallel/executor.h"
#include "util/timer.h"

namespace hgmatch {
namespace {

bool IsBinaryPath(const std::string& path) {
  return path.size() >= 4 && path.substr(path.size() - 4) == ".hgb";
}

Result<Hypergraph> LoadAny(const std::string& path) {
  return IsBinaryPath(path) ? LoadHypergraphBinary(path)
                            : LoadHypergraph(path);
}

Status SaveAny(const Hypergraph& h, const std::string& path) {
  return IsBinaryPath(path) ? SaveHypergraphBinary(h, path)
                            : SaveHypergraph(h, path);
}

// Parses a thread-count argument; returns false on junk or negatives
// (atoi would otherwise wrap -1 to ~4 billion threads).
bool ParseThreads(const char* arg, uint32_t* out) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || v < 0 || v > 1 << 16) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hgmatch gen <profile|random> <out[.hgb]> [scale]\n"
               "  hgmatch stats <file>\n"
               "  hgmatch convert <in> <out> [--v1]\n"
               "    [--v1]               write .hgb in the uncompressed v1\n"
               "                         layout (readable by old builds)\n"
               "  hgmatch sample <data> <num-edges> [count]\n"
               "  hgmatch match <data> <query> [threads] [limit]\n"
               "  hgmatch batch <data> <queryset> [threads] [limit]\n"
               "    [--max-inflight=N]   admission window (0 = all at once)\n"
               "    [--task-quota=N]     per-query live-task fairness cap\n"
               "    [--timeout=S]        per-query timeout, from admission\n"
               "    [--batch-timeout=S]  whole-batch timeout\n"
               "    [--no-plan-cache]    plan every query independently\n"
               "    [--policy=P]         admission order: fifo (default),\n"
               "                         priority, wfq (weighted-fair)\n"
               "  hgmatch shard <in> <out-prefix> <K>\n"
               "                         split a data hypergraph into K\n"
               "                         edge-disjoint shard files\n"
               "                         (<out-prefix>.shardI-ofK.hgb)\n"
               "  hgmatch serve [<data>] TCP front end over the service\n"
               "    [--graph NAME=PATH]  serve PATH as graph NAME\n"
               "                         (repeatable; first graph — or the\n"
               "                         positional <data>, as \"default\" —\n"
               "                         answers unrouted submits)\n"
               "    [--shards=K]         split each graph into K shards and\n"
               "                         scatter-gather every query across\n"
               "                         them (1 = off)\n"
               "    [--plan-cache-cap=N] keep at most N idle cached plans\n"
               "                         per graph (0 = unbounded)\n"
               "    [--allow-remote-load]  honour client LOAD_GRAPH (reads\n"
               "                         files on this server's filesystem)\n"
               "    [--host=H]           listen address (default 127.0.0.1)\n"
               "    [--port=N]           listen port (0 = ephemeral)\n"
               "    [--port-file=PATH]   write the bound port to PATH\n"
               "    [--threads=N] [--max-inflight=N] [--task-quota=N]\n"
               "    [--timeout=S] [--policy=P] as for batch\n"
               "    [--max-queued=N]     backpressure: reject submissions\n"
               "                         beyond N waiting queries\n"
               "    [--no-plan-cache]    no cross-submission plan reuse\n"
               "                         (caps memory under endless\n"
               "                         distinct query structures)\n"
               "    [--io-threads=N]     reactor IO threads serving\n"
               "                         connections (default 1)\n"
               "    [--max-submits-per-sec=R]  per-tenant edge rate limit\n"
               "                         (token bucket; 0 = off)\n"
               "    [--serve-seconds=S]  exit after S seconds (0 = forever)\n"
               "    [--metrics-port=N]   expose GET /metrics (Prometheus\n"
               "                         text) on this port (0 = ephemeral;\n"
               "                         off unless given)\n"
               "    [--slow-query-ms=T]  record queries slower than T ms in\n"
               "                         a ring surfaced via --stats\n"
               "    [--poll-outcomes]    legacy 2ms outcome polling instead\n"
               "                         of completion-driven delivery\n"
               "                         (io-threads=1 only)\n"
               "    [--allow-remote-shutdown]  honour client SHUTDOWN\n"
               "    [--compress]         grant clients frame compression\n"
               "                         when they request it at connect\n"
               "  hgmatch query --connect=HOST:PORT [<queryset>]\n"
               "    [--limit=N]          per-query embedding limit\n"
               "    [--batch]            negotiate BATCH_SUBMIT and send\n"
               "                         the queryset coalesced (shared\n"
               "                         options; per-query headers are\n"
               "                         ignored)\n"
               "    [--compress]         negotiate frame compression\n"
               "    [--stats]            print the server statistics\n"
               "                         snapshot (standalone or after\n"
               "                         the queryset)\n"
               "    [--json]             emit the --stats snapshot as one\n"
               "                         JSON object instead of text\n"
               "    [--trace]            negotiate per-query tracing and\n"
               "                         print a stage timeline under each\n"
               "                         outcome\n"
               "    [--graph=NAME]       route the queryset to catalog\n"
               "                         graph NAME (negotiates the\n"
               "                         catalog feature)\n"
               "    [--list-graphs]      print the server's graph catalog\n"
               "    [--load-graph=NAME=PATH]  ask the server to load PATH\n"
               "                         (its filesystem) as NAME\n"
               "    [--unload-graph=NAME]  remove NAME from the catalog\n"
               "    [--shutdown]         ask the server to exit afterwards\n"
               "profiles: HC MA CH CP SB HB WT TC SA AR random\n"
               "queryset: text queries separated by '---' or '# query' "
               "lines;\n"
               "  per-query '# tenant= # priority= # weight= # timeout=' "
               "headers\n");
  return 2;
}

// Parses a non-negative integer "--flag=value" payload. strtoull would
// silently wrap negative input, so a leading '-' is rejected up front.
bool ParseCount(const char* payload, uint64_t* out) {
  if (payload[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(payload, &end, 10);
  if (end == payload || *end != '\0') return false;
  *out = v;
  return true;
}

// Parses a "--flag=value" seconds payload (non-negative decimal).
bool ParseSeconds(const char* payload, double* out) {
  char* end = nullptr;
  const double v = std::strtod(payload, &end);
  if (end == payload || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

// Parses one of the scheduling flags shared by `batch` and `serve`
// (--max-inflight/--task-quota/--timeout/--policy). Returns 1 when the
// flag was consumed, 0 when `arg` is none of them, -1 on a bad value (the
// caller reports it).
int ParseSchedulingFlag(const char* arg, uint32_t* max_inflight,
                        uint64_t* task_quota, double* timeout_seconds,
                        AdmissionPolicy* admission) {
  uint64_t count = 0;
  if (std::strncmp(arg, "--max-inflight=", 15) == 0) {
    if (!ParseCount(arg + 15, &count) || count > 1u << 20) return -1;
    *max_inflight = static_cast<uint32_t>(count);
    return 1;
  }
  if (std::strncmp(arg, "--task-quota=", 13) == 0) {
    return ParseCount(arg + 13, task_quota) ? 1 : -1;
  }
  if (std::strncmp(arg, "--timeout=", 10) == 0) {
    return ParseSeconds(arg + 10, timeout_seconds) ? 1 : -1;
  }
  if (std::strncmp(arg, "--policy=", 9) == 0) {
    const char* policy = arg + 9;
    if (std::strcmp(policy, "fifo") == 0) {
      *admission = AdmissionPolicy::kFifo;
    } else if (std::strcmp(policy, "priority") == 0) {
      *admission = AdmissionPolicy::kPriority;
    } else if (std::strcmp(policy, "wfq") == 0) {
      *admission = AdmissionPolicy::kWeightedFair;
    } else {
      return -1;
    }
    return 1;
  }
  return 0;
}

int CmdGen(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string profile_name = argv[2];
  const std::string out = argv[3];
  const double scale = argc > 4 ? std::atof(argv[4]) : -1;
  Hypergraph h;
  Timer timer;
  if (profile_name == "random") {
    GeneratorConfig config;
    config.seed = 1;
    if (scale > 0) {
      config.num_vertices = static_cast<uint32_t>(1000 * scale);
      config.num_edges = static_cast<uint32_t>(3000 * scale);
    }
    h = GenerateHypergraph(config);
  } else {
    const DatasetProfile* profile = FindDatasetProfile(profile_name);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
      return 2;
    }
    h = scale > 0 ? profile->Generate(scale) : profile->GenerateDefault();
  }
  const Status s = SaveAny(h, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("generated %zu vertices, %zu hyperedges -> %s (%.2fs)\n",
              h.NumVertices(), h.NumEdges(), out.c_str(),
              timer.ElapsedSeconds());
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<Hypergraph> h = LoadAny(argv[2]);
  if (!h.ok()) {
    std::fprintf(stderr, "%s\n", h.status().ToString().c_str());
    return 1;
  }
  const HypergraphStats stats = ComputeStats(h.value());
  std::printf("%s\n", stats.ToString().c_str());
  Timer timer;
  IndexedHypergraph index = IndexedHypergraph::Build(std::move(h.value()));
  std::printf("%s (index built in %.3fs, %llu bytes)\n",
              ComputePartitionStats(index).ToString().c_str(),
              timer.ElapsedSeconds(),
              static_cast<unsigned long long>(index.IndexBytes()));
  return 0;
}

int CmdConvert(int argc, char** argv) {
  if (argc < 4) return Usage();
  bool v1 = false;
  for (int a = 4; a < argc; ++a) {
    if (std::strcmp(argv[a], "--v1") == 0) {
      v1 = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[a]);
      return 2;
    }
  }
  Result<Hypergraph> h = LoadAny(argv[2]);
  if (!h.ok()) {
    std::fprintf(stderr, "%s\n", h.status().ToString().c_str());
    return 1;
  }
  const std::string out = argv[3];
  // --v1 forces the uncompressed v1 binary layout (for files that must
  // stay readable by pre-HGM2 builds); it only means something for .hgb.
  const Status s = v1 && IsBinaryPath(out)
                       ? SaveHypergraphBinary(h.value(), out,
                                              /*compress=*/false)
                       : SaveAny(h.value(), out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdSample(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<Hypergraph> data = LoadAny(argv[2]);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  uint64_t k = 0;
  if (!ParseCount(argv[3], &k) || k < 1 || k > 64) {
    std::fprintf(stderr, "bad query edge count '%s' (want 1..64)\n", argv[3]);
    return 2;
  }
  uint64_t count = 1;
  if (argc > 4 && !ParseCount(argv[4], &count)) {
    std::fprintf(stderr, "bad sample count '%s'\n", argv[4]);
    return 2;
  }
  QuerySettings settings{"cli", static_cast<uint32_t>(k), 2, 1000};
  const auto queries = SampleQueries(data.value(), settings, count, 7);
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("# query %zu\n%s", i, FormatHypergraph(queries[i]).c_str());
  }
  return queries.empty() ? 1 : 0;
}

int CmdMatch(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<Hypergraph> data = LoadAny(argv[2]);
  Result<Hypergraph> query = LoadAny(argv[3]);
  if (!data.ok() || !query.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!data.ok() ? data.status() : query.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  uint32_t threads = 1;
  if (argc > 4 && !ParseThreads(argv[4], &threads)) {
    std::fprintf(stderr, "bad thread count '%s'\n", argv[4]);
    return 2;
  }
  uint64_t limit = 0;
  if (argc > 5 && !ParseCount(argv[5], &limit)) {
    std::fprintf(stderr, "bad embedding limit '%s'\n", argv[5]);
    return 2;
  }

  IndexedHypergraph index = IndexedHypergraph::Build(std::move(data.value()));
  Result<QueryPlan> plan = BuildQueryPlan(query.value(), index);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%s", DataflowGraph::FromPlan(plan.value()).ToString(&index).c_str());

  if (threads <= 1) {
    MatchOptions options;
    options.limit = limit;
    const MatchStats stats =
        ExecutePlanSequential(index, plan.value(), options, nullptr);
    std::printf("embeddings: %llu%s in %.3fs (%llu candidates)\n",
                static_cast<unsigned long long>(stats.embeddings),
                stats.limit_hit ? "+" : "", stats.seconds,
                static_cast<unsigned long long>(stats.candidates));
  } else {
    ParallelOptions options;
    options.num_threads = threads;
    options.limit = limit;
    const ParallelResult r =
        ExecutePlanParallel(index, plan.value(), options, nullptr);
    std::printf("embeddings: %llu%s in %.3fs with %u threads "
                "(peak task mem %llu bytes)\n",
                static_cast<unsigned long long>(r.stats.embeddings),
                r.stats.limit_hit ? "+" : "", r.stats.seconds, threads,
                static_cast<unsigned long long>(r.peak_task_bytes));
  }
  return 0;
}

int CmdBatch(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<Hypergraph> data = LoadAny(argv[2]);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<QuerySetEntry>> entries = LoadQuerySetEntries(argv[3]);
  if (!entries.ok()) {
    std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
    return 1;
  }
  if (entries.value().empty()) {
    std::fprintf(stderr, "query set %s is empty\n", argv[3]);
    return 1;
  }

  BatchOptions options;
  int positional = 0;
  for (int a = 4; a < argc; ++a) {
    const char* arg = argv[a];
    const int scheduling = ParseSchedulingFlag(
        arg, &options.max_inflight_queries, &options.task_quota,
        &options.parallel.timeout_seconds, &options.admission);
    if (scheduling < 0) {
      std::fprintf(stderr, "bad value '%s'\n", arg);
      return 2;
    }
    if (scheduling > 0) {
      continue;
    }
    if (std::strncmp(arg, "--batch-timeout=", 16) == 0) {
      if (!ParseSeconds(arg + 16, &options.batch_timeout_seconds)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
    } else if (std::strcmp(arg, "--no-plan-cache") == 0) {
      options.plan_cache = false;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return 2;
    } else if (positional == 0) {
      if (!ParseThreads(arg, &options.parallel.num_threads)) {
        std::fprintf(stderr, "bad thread count '%s'\n", arg);
        return 2;
      }
      ++positional;
    } else if (positional == 1) {
      if (!ParseCount(arg, &options.parallel.limit)) {
        std::fprintf(stderr, "bad embedding limit '%s'\n", arg);
        return 2;
      }
      ++positional;
    } else {
      return Usage();
    }
  }

  std::vector<Hypergraph> queries;
  std::vector<SubmitOptions> submit;
  queries.reserve(entries.value().size());
  submit.reserve(entries.value().size());
  for (QuerySetEntry& e : entries.value()) {
    queries.push_back(std::move(e.query));
    submit.push_back(e.submit);
  }

  IndexedHypergraph index = IndexedHypergraph::Build(std::move(data.value()));
  const BatchResult r = RunBatch(index, queries, options, nullptr, &submit);

  size_t planned = 0;
  for (size_t i = 0; i < r.queries.size(); ++i) {
    const BatchQueryResult& q = r.queries[i];
    if (!q.status.ok()) {
      std::printf("query %zu: %s  [%s]\n", i, q.status.ToString().c_str(),
                  QueryStatusName(q.outcome));
      continue;
    }
    ++planned;
    std::printf("query %zu: embeddings %llu%s in %.3fs  [%s]%s\n", i,
                static_cast<unsigned long long>(q.stats.embeddings),
                q.stats.limit_hit ? "+" : "", q.stats.seconds,
                QueryStatusName(q.outcome), q.mirrored ? " (mirrored)" : "");
  }
  std::printf("batch: %llu queries (%llu completed), embeddings %llu "
              "in %.3fs (%llu executed at %.1f queries/s, %llu mirrored, "
              "%llu re-dispatched, peak task mem %llu bytes, "
              "%llu plan-cache hits of which %llu isomorphic)\n",
              static_cast<unsigned long long>(r.queries.size()),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.total.embeddings), r.seconds,
              static_cast<unsigned long long>(r.executed),
              r.QueriesPerSecond(),
              static_cast<unsigned long long>(r.mirrored),
              static_cast<unsigned long long>(r.redispatched),
              static_cast<unsigned long long>(r.peak_task_bytes),
              static_cast<unsigned long long>(r.plan_cache_hits),
              static_cast<unsigned long long>(r.plan_cache_isomorphic_hits));
  return planned > 0 ? 0 : 1;
}

int CmdShard(int argc, char** argv) {
  if (argc < 5) return Usage();
  Result<Hypergraph> data = LoadAny(argv[2]);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  uint64_t k = 0;
  if (!ParseCount(argv[4], &k) || k < 1 || k > 256) {
    std::fprintf(stderr, "bad shard count '%s'\n", argv[4]);
    return 2;
  }
  Timer timer;
  Result<std::vector<std::string>> paths =
      SaveShards(data.value(), argv[3], static_cast<uint32_t>(k));
  if (!paths.ok()) {
    std::fprintf(stderr, "%s\n", paths.status().ToString().c_str());
    return 1;
  }
  for (const std::string& p : paths.value()) {
    std::printf("wrote %s\n", p.c_str());
  }
  std::printf("sharded %zu hyperedges into %llu files (%.2fs)\n",
              data.value().NumEdges(), static_cast<unsigned long long>(k),
              timer.ElapsedSeconds());
  return 0;
}

// Parses "HOST:PORT" (the last ':' splits, so numeric hosts stay simple).
bool ParseHostPort(const char* arg, std::string* host, uint16_t* port) {
  const std::string s = arg;
  const size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    return false;
  }
  uint64_t p = 0;
  if (!ParseCount(s.c_str() + colon + 1, &p) || p == 0 || p > 65535) {
    return false;
  }
  *host = s.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

// Splits a "NAME=PATH" --graph payload. NAME must be non-empty (an empty
// name is the wire spelling of "the default graph", never a real entry).
bool ParseGraphSpec(const char* payload, std::string* name,
                    std::string* path) {
  const char* eq = std::strchr(payload, '=');
  if (eq == nullptr || eq == payload || eq[1] == '\0') return false;
  name->assign(payload, eq);
  path->assign(eq + 1);
  return true;
}

int CmdServe(int argc, char** argv) {
  if (argc < 3) return Usage();

  // The positional <data> (served as "default") is optional once --graph
  // names the graphs explicitly; flags may therefore start at argv[2].
  std::vector<NamedGraph> graphs;
  int a = 2;
  if (argv[2][0] != '-') {
    Result<Hypergraph> data = LoadAny(argv[2]);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    graphs.push_back({"default", std::move(data.value())});
    a = 3;
  }

  ServerOptions options;
  std::string port_file;
  double serve_seconds = 0;
  for (; a < argc; ++a) {
    const char* arg = argv[a];
    uint64_t count = 0;
    const int scheduling = ParseSchedulingFlag(
        arg, &options.service.max_inflight_queries,
        &options.service.task_quota,
        &options.service.parallel.timeout_seconds,
        &options.service.admission);
    if (scheduling < 0) {
      std::fprintf(stderr, "bad value '%s'\n", arg);
      return 2;
    }
    if (scheduling > 0) {
      continue;
    }
    if (std::strcmp(arg, "--graph") == 0 ||
        std::strncmp(arg, "--graph=", 8) == 0) {
      // "--graph NAME=PATH" or "--graph=NAME=PATH": load PATH now and
      // serve it as NAME. Duplicate names are a spelling mistake worth
      // rejecting here — the catalog would refuse the second Load at
      // Start(), but with a less pointed message.
      const char* spec = arg[7] == '=' ? arg + 8 : nullptr;
      if (spec == nullptr) {
        if (a + 1 >= argc) {
          std::fprintf(stderr, "--graph needs NAME=PATH\n");
          return 2;
        }
        spec = argv[++a];
      }
      std::string name, path;
      if (!ParseGraphSpec(spec, &name, &path)) {
        std::fprintf(stderr, "bad graph spec '%s' (want NAME=PATH)\n", spec);
        return 2;
      }
      for (const NamedGraph& g : graphs) {
        if (g.name == name) {
          std::fprintf(stderr, "duplicate graph name '%s'\n", name.c_str());
          return 2;
        }
      }
      Result<Hypergraph> data = LoadAny(path);
      if (!data.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     data.status().ToString().c_str());
        return 1;
      }
      graphs.push_back({std::move(name), std::move(data.value())});
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      if (!ParseCount(arg + 9, &count) || count < 1 || count > 256) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
      options.service.shards = static_cast<uint32_t>(count);
    } else if (std::strncmp(arg, "--plan-cache-cap=", 17) == 0) {
      if (!ParseCount(arg + 17, &count)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
      options.service.plan_cache_capacity = count;
    } else if (std::strcmp(arg, "--allow-remote-load") == 0) {
      options.allow_remote_load = true;
    } else if (std::strncmp(arg, "--host=", 7) == 0) {
      options.host = arg + 7;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      if (!ParseCount(arg + 7, &count) || count > 65535) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
      options.port = static_cast<uint16_t>(count);
    } else if (std::strncmp(arg, "--port-file=", 12) == 0) {
      port_file = arg + 12;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      if (!ParseThreads(arg + 10, &options.service.parallel.num_threads)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--max-queued=", 13) == 0) {
      if (!ParseCount(arg + 13, &count) || count > 1u << 20) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
      options.service.max_queued_queries = static_cast<uint32_t>(count);
    } else if (std::strncmp(arg, "--io-threads=", 13) == 0) {
      if (!ParseCount(arg + 13, &count) || count < 1 || count > 64) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
      options.io_threads = static_cast<uint32_t>(count);
    } else if (std::strncmp(arg, "--max-submits-per-sec=", 22) == 0) {
      if (!ParseSeconds(arg + 22, &options.max_submits_per_sec)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--serve-seconds=", 16) == 0) {
      if (!ParseSeconds(arg + 16, &serve_seconds)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--metrics-port=", 15) == 0) {
      if (!ParseCount(arg + 15, &count) || count > 65535) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
      options.metrics_port = static_cast<int>(count);
    } else if (std::strncmp(arg, "--slow-query-ms=", 16) == 0) {
      if (!ParseSeconds(arg + 16, &options.slow_query_ms)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
    } else if (std::strcmp(arg, "--no-plan-cache") == 0) {
      options.service.plan_cache = false;
    } else if (std::strcmp(arg, "--poll-outcomes") == 0) {
      options.completion_wakeups = false;
    } else if (std::strcmp(arg, "--allow-remote-shutdown") == 0) {
      options.allow_remote_shutdown = true;
    } else if (std::strcmp(arg, "--compress") == 0) {
      options.enable_compression = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return 2;
    }
  }

  if (graphs.empty()) {
    std::fprintf(stderr, "serve needs a <data> positional or --graph\n");
    return 2;
  }
  const size_t num_graphs = graphs.size();
  MatchServer server(std::move(graphs), options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serving %s:%u (%zu graphs, %u worker threads, %u io "
              "threads)\n",
              options.host.c_str(), server.port(), num_graphs,
              server.Stats().num_threads, options.io_threads);
  if (options.metrics_port >= 0) {
    std::printf("metrics on http://%s:%u/metrics\n", options.host.c_str(),
                server.metrics_port());
  }
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }
  if (serve_seconds > 0) {
    server.WaitFor(serve_seconds);
  } else {
    server.Wait();
  }
  server.Stop();
  const WireStats stats = server.Stats();
  std::printf("served %llu submissions (%llu completed, %llu rejected)\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.rejected));
  return 0;
}

// Pretty-prints a kStatsReply snapshot: whole-server counters, live
// service gauges, one row per IO thread.
void PrintWireStats(const WireStats& s) {
  std::printf("server stats:\n");
  std::printf("  workers                  %u\n", s.num_threads);
  std::printf("  connections              %llu\n",
              static_cast<unsigned long long>(s.connections));
  std::printf("  submitted                %llu\n",
              static_cast<unsigned long long>(s.submitted));
  std::printf("  completed                %llu\n",
              static_cast<unsigned long long>(s.completed));
  std::printf("  rejected (queue-full)    %llu\n",
              static_cast<unsigned long long>(s.rejected));
  std::printf("  rejected (rate-limited)  %llu\n",
              static_cast<unsigned long long>(s.rate_limited));
  std::printf("  cancelled by disconnect  %llu\n",
              static_cast<unsigned long long>(s.cancelled_by_disconnect));
  std::printf("  inflight                 %llu\n",
              static_cast<unsigned long long>(s.inflight));
  std::printf("  service: finished %llu, live contexts %llu, "
              "retained slots %llu\n",
              static_cast<unsigned long long>(s.service_finished),
              static_cast<unsigned long long>(s.service_live_contexts),
              static_cast<unsigned long long>(s.service_retained_slots));
  for (size_t i = 0; i < s.io_threads.size(); ++i) {
    const WireIoThreadStats& t = s.io_threads[i];
    std::printf("  io[%zu]: conns %llu, frames in/out %llu/%llu, "
                "bytes in/out %llu/%llu, rejects %llu\n",
                i, static_cast<unsigned long long>(t.connections),
                static_cast<unsigned long long>(t.frames_in),
                static_cast<unsigned long long>(t.frames_out),
                static_cast<unsigned long long>(t.bytes_in),
                static_cast<unsigned long long>(t.bytes_out),
                static_cast<unsigned long long>(t.rejects));
  }
  for (const WireGraphStats& g : s.graphs) {
    std::printf("  graph %s%s: queries %llu, live %llu, index %llu bytes, "
                "%u shard%s\n",
                g.name.c_str(), g.is_default ? " (default)" : "",
                static_cast<unsigned long long>(g.queries),
                static_cast<unsigned long long>(g.live_tickets),
                static_cast<unsigned long long>(g.index_bytes),
                g.shards, g.shards == 1 ? "" : "s");
  }
  if (s.uptime_seconds > 0) {
    std::printf("  uptime                   %.1fs\n", s.uptime_seconds);
  }
  for (const WireSlowQuery& q : s.slow_queries) {
    std::printf("  slow: request %llu tenant %u graph %s: total %.3fms "
                "(queue %.3fms, run %.3fms, deliver %.3fms)\n",
                static_cast<unsigned long long>(q.request_id), q.tenant_id,
                q.graph.c_str(), q.total_seconds * 1e3,
                q.queue_seconds * 1e3, q.run_seconds * 1e3,
                q.deliver_seconds * 1e3);
  }
}

// Escapes a string for a JSON string literal (quote, backslash and
// control characters; graph names are operator-chosen but not trusted).
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// The --stats snapshot as one JSON object on stdout (`--stats --json`),
// machine-readable counterpart of PrintWireStats for scripted scrapes.
void PrintWireStatsJson(const WireStats& s) {
  std::printf("{\"workers\":%u", s.num_threads);
  std::printf(",\"connections\":%llu",
              static_cast<unsigned long long>(s.connections));
  std::printf(",\"submitted\":%llu",
              static_cast<unsigned long long>(s.submitted));
  std::printf(",\"completed\":%llu",
              static_cast<unsigned long long>(s.completed));
  std::printf(",\"rejected\":%llu",
              static_cast<unsigned long long>(s.rejected));
  std::printf(",\"rate_limited\":%llu",
              static_cast<unsigned long long>(s.rate_limited));
  std::printf(",\"cancelled_by_disconnect\":%llu",
              static_cast<unsigned long long>(s.cancelled_by_disconnect));
  std::printf(",\"inflight\":%llu",
              static_cast<unsigned long long>(s.inflight));
  std::printf(",\"service_finished\":%llu",
              static_cast<unsigned long long>(s.service_finished));
  std::printf(",\"service_live_contexts\":%llu",
              static_cast<unsigned long long>(s.service_live_contexts));
  std::printf(",\"service_retained_slots\":%llu",
              static_cast<unsigned long long>(s.service_retained_slots));
  std::printf(",\"uptime_seconds\":%.6f", s.uptime_seconds);
  std::printf(",\"monotonic_seconds\":%.6f", s.monotonic_seconds);
  std::printf(",\"io_threads\":[");
  for (size_t i = 0; i < s.io_threads.size(); ++i) {
    const WireIoThreadStats& t = s.io_threads[i];
    std::printf("%s{\"connections\":%llu,\"frames_in\":%llu,"
                "\"frames_out\":%llu,\"bytes_in\":%llu,\"bytes_out\":%llu,"
                "\"rejects\":%llu}",
                i == 0 ? "" : ",",
                static_cast<unsigned long long>(t.connections),
                static_cast<unsigned long long>(t.frames_in),
                static_cast<unsigned long long>(t.frames_out),
                static_cast<unsigned long long>(t.bytes_in),
                static_cast<unsigned long long>(t.bytes_out),
                static_cast<unsigned long long>(t.rejects));
  }
  std::printf("],\"graphs\":[");
  for (size_t i = 0; i < s.graphs.size(); ++i) {
    const WireGraphStats& g = s.graphs[i];
    std::printf("%s{\"name\":\"%s\",\"default\":%s,\"queries\":%llu,"
                "\"live_tickets\":%llu,\"index_bytes\":%llu,\"shards\":%u}",
                i == 0 ? "" : ",", JsonEscape(g.name).c_str(),
                g.is_default ? "true" : "false",
                static_cast<unsigned long long>(g.queries),
                static_cast<unsigned long long>(g.live_tickets),
                static_cast<unsigned long long>(g.index_bytes), g.shards);
  }
  std::printf("],\"slow_queries\":[");
  for (size_t i = 0; i < s.slow_queries.size(); ++i) {
    const WireSlowQuery& q = s.slow_queries[i];
    std::printf("%s{\"request_id\":%llu,\"tenant_id\":%u,\"graph\":\"%s\","
                "\"total_seconds\":%.6f,\"queue_seconds\":%.6f,"
                "\"run_seconds\":%.6f,\"deliver_seconds\":%.6f}",
                i == 0 ? "" : ",",
                static_cast<unsigned long long>(q.request_id), q.tenant_id,
                JsonEscape(q.graph).c_str(), q.total_seconds,
                q.queue_seconds, q.run_seconds, q.deliver_seconds);
  }
  std::printf("]}\n");
}

// Pretty-prints a kCatalogReply (the graph list every catalog verb
// answers with).
int PrintCatalogReply(const Result<WireCatalogReply>& reply) {
  if (!reply.ok()) {
    std::fprintf(stderr, "%s\n", reply.status().ToString().c_str());
    return 1;
  }
  const WireCatalogReply& r = reply.value();
  if (!r.ok) {
    std::fprintf(stderr, "catalog: %s\n", r.message.c_str());
    return 1;
  }
  std::printf("catalog: %zu graph%s\n", r.graphs.size(),
              r.graphs.size() == 1 ? "" : "s");
  for (const WireGraphStats& g : r.graphs) {
    std::printf("  %s%s: queries %llu, live %llu, index %llu bytes, "
                "%u shard%s\n",
                g.name.c_str(), g.is_default ? " (default)" : "",
                static_cast<unsigned long long>(g.queries),
                static_cast<unsigned long long>(g.live_tickets),
                static_cast<unsigned long long>(g.index_bytes),
                g.shards, g.shards == 1 ? "" : "s");
  }
  return 0;
}

int CmdQuery(int argc, char** argv) {
  std::string host;
  uint16_t port = 0;
  std::string queryset;
  uint64_t limit = SubmitOptions::kInheritLimit;
  bool shutdown_after = false;
  bool print_stats = false;
  bool stats_json = false;
  bool use_batch = false;
  bool use_compress = false;
  bool use_trace = false;
  std::string graph;        // --graph: route the queryset here
  bool list_graphs = false;
  std::string load_name, load_path;  // --load-graph=NAME=PATH
  std::string unload_name;           // --unload-graph=NAME
  for (int a = 2; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strncmp(arg, "--connect=", 10) == 0) {
      if (!ParseHostPort(arg + 10, &host, &port)) {
        std::fprintf(stderr, "bad value '%s' (want HOST:PORT)\n", arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--limit=", 8) == 0) {
      if (!ParseCount(arg + 8, &limit)) {
        std::fprintf(stderr, "bad value '%s'\n", arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--graph=", 8) == 0) {
      graph = arg + 8;
      if (graph.empty()) {
        std::fprintf(stderr, "--graph needs a name\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--list-graphs") == 0) {
      list_graphs = true;
    } else if (std::strncmp(arg, "--load-graph=", 13) == 0) {
      if (!ParseGraphSpec(arg + 13, &load_name, &load_path)) {
        std::fprintf(stderr, "bad value '%s' (want NAME=PATH)\n", arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--unload-graph=", 15) == 0) {
      unload_name = arg + 15;
      if (unload_name.empty()) {
        std::fprintf(stderr, "--unload-graph needs a name\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--stats") == 0) {
      print_stats = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      stats_json = true;
    } else if (std::strcmp(arg, "--shutdown") == 0) {
      shutdown_after = true;
    } else if (std::strcmp(arg, "--batch") == 0) {
      use_batch = true;
    } else if (std::strcmp(arg, "--compress") == 0) {
      use_compress = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      use_trace = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return 2;
    } else if (queryset.empty()) {
      queryset = arg;
    } else {
      return Usage();
    }
  }
  // A queryset is optional when only observing or administering: the
  // catalog verbs, `--stats` and `--shutdown` all work standalone.
  const bool catalog_admin =
      list_graphs || !load_name.empty() || !unload_name.empty();
  if (host.empty() ||
      (queryset.empty() && !print_stats && !shutdown_after &&
       !catalog_admin)) {
    return Usage();
  }

  // --batch/--compress opt into the negotiated extensions: a kHello
  // exchange at connect requests the feature bits, and the server's grant
  // decides what actually goes over the wire. Graph routing and the
  // catalog verbs ride on kFeatureCatalog.
  AsyncClientOptions copts;
  if (use_batch) copts.request_features |= kFeatureBatch;
  if (use_compress) copts.request_features |= kFeatureCompression;
  if (use_trace) copts.request_features |= kFeatureTrace;
  if (!graph.empty() || catalog_admin) {
    copts.request_features |= kFeatureCatalog;
  }

  if (queryset.empty()) {
    MatchClient client(copts);
    const Status connected = client.Connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "%s\n", connected.ToString().c_str());
      return 1;
    }
    if (!load_name.empty()) {
      const int rc = PrintCatalogReply(client.LoadGraph(load_name,
                                                        load_path));
      if (rc != 0) return rc;
    }
    if (!unload_name.empty()) {
      const int rc = PrintCatalogReply(client.UnloadGraph(unload_name));
      if (rc != 0) return rc;
    }
    if (list_graphs) {
      const int rc = PrintCatalogReply(client.ListGraphs());
      if (rc != 0) return rc;
    }
    if (print_stats) {
      Result<WireStats> stats = client.Stats();
      if (!stats.ok()) {
        std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
        return 1;
      }
      if (stats_json) {
        PrintWireStatsJson(stats.value());
      } else {
        PrintWireStats(stats.value());
      }
    }
    if (shutdown_after) {
      const Status sent = client.RequestShutdown();
      if (!sent.ok()) {
        std::fprintf(stderr, "%s\n", sent.ToString().c_str());
        return 1;
      }
    }
    return 0;
  }

  Result<std::vector<QuerySetEntry>> entries = LoadQuerySetEntries(queryset);
  if (!entries.ok()) {
    std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
    return 1;
  }
  if (entries.value().empty()) {
    std::fprintf(stderr, "query set %s is empty\n", queryset.c_str());
    return 1;
  }

  MatchClient client(copts);
  const Status connected = client.Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.ToString().c_str());
    return 1;
  }

  // --load-graph runs before the queryset so `--load-graph=g=... --graph=g`
  // can load and immediately query; unload/list run after the outcomes.
  if (!load_name.empty()) {
    const int rc = PrintCatalogReply(client.LoadGraph(load_name, load_path));
    if (rc != 0) return rc;
  }

  // Pipeline: submit everything, then collect outcomes in input order.
  std::vector<uint64_t> ids;
  ids.reserve(entries.value().size());
  if (use_batch) {
    // Batch mode coalesces the whole set into kBatchSubmit frames. The
    // set shares one options block, so per-query '# tenant=' style
    // headers are ignored here — use per-query mode when they matter.
    SubmitOptions so;
    if (limit != SubmitOptions::kInheritLimit) so.limit = limit;
    std::vector<const Hypergraph*> queries;
    queries.reserve(entries.value().size());
    for (const QuerySetEntry& e : entries.value()) {
      queries.push_back(&e.query);
    }
    Result<std::vector<uint64_t>> batch_ids =
        client.SubmitBatchTo(graph, queries, so);
    if (!batch_ids.ok()) {
      std::fprintf(stderr, "%s\n", batch_ids.status().ToString().c_str());
      return 1;
    }
    ids = std::move(batch_ids.value());
  } else {
    for (QuerySetEntry& e : entries.value()) {
      SubmitOptions so = e.submit;
      if (limit != SubmitOptions::kInheritLimit) so.limit = limit;
      Result<uint64_t> id = client.SubmitTo(graph, e.query, so);
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(id.value());
    }
  }

  size_t ok_count = 0;
  uint64_t total_embeddings = 0, rejected = 0;
  Timer timer;
  for (size_t i = 0; i < ids.size(); ++i) {
    Result<WireOutcome> reply = client.WaitOutcome(ids[i]);
    if (!reply.ok()) {
      std::fprintf(stderr, "%s\n", reply.status().ToString().c_str());
      return 1;
    }
    const QueryOutcome& out = reply.value().outcome;
    const bool shed = out.status == QueryStatus::kRejected;
    std::printf("query %zu: embeddings %llu%s in %.3fs  [%s%s%s]%s\n", i,
                static_cast<unsigned long long>(out.stats.embeddings),
                out.stats.limit_hit ? "+" : "", out.stats.seconds,
                QueryStatusName(out.status), shed ? ": " : "",
                shed ? RejectReasonName(reply.value().reject_reason) : "",
                out.mirrored ? " (mirrored)" : "");
    if (use_trace && out.span.enabled) {
      std::printf("%s", out.span.Timeline().c_str());
    }
    total_embeddings += out.stats.embeddings;
    if (out.status == QueryStatus::kOk || out.status == QueryStatus::kLimit) {
      ++ok_count;
    }
    if (out.status == QueryStatus::kRejected) ++rejected;
  }
  std::printf("remote: %zu queries (%zu completed, %llu rejected), "
              "embeddings %llu in %.3fs\n",
              ids.size(), ok_count,
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(total_embeddings),
              timer.ElapsedSeconds());
  if (copts.request_features != 0) {
    const ClientTransferStats ts = client.TransferStats();
    const double per_query =
        ids.empty() ? 0.0
                    : static_cast<double>(ts.bytes_sent + ts.bytes_received) /
                          static_cast<double>(ids.size());
    std::printf("wire: granted%s%s%s%s%s, sent %llu frames / %llu bytes, "
                "received %llu frames / %llu bytes, %.1f bytes/query\n",
                client.features() == 0 ? " none" : "",
                (client.features() & kFeatureBatch) != 0 ? " batch" : "",
                (client.features() & kFeatureCompression) != 0 ? " compress"
                                                               : "",
                (client.features() & kFeatureCatalog) != 0 ? " catalog" : "",
                (client.features() & kFeatureTrace) != 0 ? " trace" : "",
                static_cast<unsigned long long>(ts.frames_sent),
                static_cast<unsigned long long>(ts.bytes_sent),
                static_cast<unsigned long long>(ts.frames_received),
                static_cast<unsigned long long>(ts.bytes_received),
                per_query);
  }
  if (!unload_name.empty()) {
    const int rc = PrintCatalogReply(client.UnloadGraph(unload_name));
    if (rc != 0) return rc;
  }
  if (list_graphs) {
    const int rc = PrintCatalogReply(client.ListGraphs());
    if (rc != 0) return rc;
  }
  if (print_stats) {
    Result<WireStats> stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    if (stats_json) {
      PrintWireStatsJson(stats.value());
    } else {
      PrintWireStats(stats.value());
    }
  }
  if (shutdown_after) {
    const Status sent = client.RequestShutdown();
    if (!sent.ok()) {
      std::fprintf(stderr, "%s\n", sent.ToString().c_str());
      return 1;
    }
  }
  return ok_count > 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "convert") return CmdConvert(argc, argv);
  if (cmd == "sample") return CmdSample(argc, argv);
  if (cmd == "match") return CmdMatch(argc, argv);
  if (cmd == "batch") return CmdBatch(argc, argv);
  if (cmd == "shard") return CmdShard(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace hgmatch

int main(int argc, char** argv) { return hgmatch::Main(argc, argv); }
