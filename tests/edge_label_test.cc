// Tests of the edge-labelled hypergraph extension (paper footnote 2):
// hyperedge labels become part of the partition key, so every engine
// (HGMatch sequential/parallel, the oracles, the match-by-vertex baselines,
// the bipartite strawman) enforces hyperedge-label equality for free.

#include <gtest/gtest.h>

#include "baseline/backtracking.h"
#include "baseline/bipartite.h"
#include "core/hgmatch.h"
#include "core/reference.h"
#include "core/signature.h"
#include "io/binary_format.h"
#include "io/loader.h"
#include "io/writer.h"
#include "parallel/executor.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

// A tiny typed knowledge base where relation type lives on the hyperedge:
// the same entity triple appears under two different relations.
// Vertex labels: 0 = person, 1 = company.
// Edge labels: 1 = "works_at", 2 = "invested_in".
struct LabeledKb {
  Hypergraph data;
  VertexId alice, bob, carol, acme, globex;

  LabeledKb() {
    alice = data.AddVertex(0);
    bob = data.AddVertex(0);
    carol = data.AddVertex(0);
    acme = data.AddVertex(1);
    globex = data.AddVertex(1);
    EXPECT_TRUE(data.AddEdge({alice, acme}, 1).ok());      // works_at
    EXPECT_TRUE(data.AddEdge({alice, acme}, 2).ok());      // ALSO invested
    EXPECT_TRUE(data.AddEdge({bob, acme}, 1).ok());
    EXPECT_TRUE(data.AddEdge({carol, globex}, 2).ok());
    EXPECT_TRUE(data.AddEdge({bob, carol, globex}, 1).ok());
  }
};

TEST(EdgeLabelTest, SameVertexSetDifferentLabelsCoexist) {
  LabeledKb kb;
  EXPECT_EQ(kb.data.NumEdges(), 5u);
  EXPECT_EQ(kb.data.NumEdgeLabels(), 3u);  // labels 0..2 (0 unused here)
  EXPECT_EQ(kb.data.edge_label(0), 1u);
  EXPECT_EQ(kb.data.edge_label(1), 2u);
  // FindEdge is label-aware.
  EXPECT_EQ(kb.data.FindEdge({kb.alice, kb.acme}, 1), 0u);
  EXPECT_EQ(kb.data.FindEdge({kb.alice, kb.acme}, 2), 1u);
  EXPECT_EQ(kb.data.FindEdge({kb.alice, kb.acme}, 3), kInvalidEdge);
  EXPECT_EQ(kb.data.FindEdge({kb.alice, kb.acme}), kInvalidEdge);  // label 0
  // Adding the identical (set, label) pair is deduplicated.
  Result<EdgeId> dup = kb.data.AddEdge({kb.acme, kb.alice}, 1);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup.value(), 0u);
  EXPECT_EQ(kb.data.NumEdges(), 5u);
}

TEST(EdgeLabelTest, PartitionKeySeparatesLabels) {
  LabeledKb kb;
  // works_at{person,company} and invested_in{person,company} land in
  // different tables although the vertex-label signature is identical.
  EXPECT_EQ(SignatureOf(kb.data, 0), SignatureOf(kb.data, 1));
  EXPECT_NE(SignatureKeyOf(kb.data, 0), SignatureKeyOf(kb.data, 1));
  IndexedHypergraph idx = IndexedHypergraph::Build(kb.data.Clone());
  // works_at pairs: alice-acme, bob-acme. invested_in pairs: alice-acme,
  // carol-globex.
  EXPECT_EQ(idx.Cardinality(SignatureKeyOf(kb.data, 0)), 2u);
  EXPECT_EQ(idx.Cardinality(SignatureKeyOf(kb.data, 1)), 2u);
}

TEST(EdgeLabelTest, MatchRespectsRelationType) {
  LabeledKb kb;
  IndexedHypergraph idx = IndexedHypergraph::Build(kb.data.Clone());

  // Query: a person who works_at a company (edge label 1).
  Hypergraph works_query;
  const VertexId p = works_query.AddVertex(0);
  const VertexId c = works_query.AddVertex(1);
  ASSERT_TRUE(works_query.AddEdge({p, c}, 1).ok());
  Result<MatchStats> works = MatchSequential(idx, works_query);
  ASSERT_TRUE(works.ok());
  EXPECT_EQ(works.value().embeddings, 2u);  // alice@acme, bob@acme

  // Same structure, invested_in (label 2): different answers.
  Hypergraph invest_query;
  const VertexId p2 = invest_query.AddVertex(0);
  const VertexId c2 = invest_query.AddVertex(1);
  ASSERT_TRUE(invest_query.AddEdge({p2, c2}, 2).ok());
  Result<MatchStats> invest = MatchSequential(idx, invest_query);
  ASSERT_TRUE(invest.ok());
  EXPECT_EQ(invest.value().embeddings, 2u);  // alice->acme, carol->globex

  // Unlabelled query (label 0) matches nothing: no label-0 facts exist.
  Hypergraph untyped_query;
  const VertexId p3 = untyped_query.AddVertex(0);
  const VertexId c3 = untyped_query.AddVertex(1);
  ASSERT_TRUE(untyped_query.AddEdge({p3, c3}).ok());
  Result<MatchStats> untyped = MatchSequential(idx, untyped_query);
  ASSERT_TRUE(untyped.ok());
  EXPECT_EQ(untyped.value().embeddings, 0u);
}

TEST(EdgeLabelTest, JoinAcrossRelations) {
  LabeledKb kb;
  IndexedHypergraph idx = IndexedHypergraph::Build(kb.data.Clone());
  // A person who both works_at AND invested_in the same company.
  Hypergraph q;
  const VertexId p = q.AddVertex(0);
  const VertexId c = q.AddVertex(1);
  ASSERT_TRUE(q.AddEdge({p, c}, 1).ok());
  ASSERT_TRUE(q.AddEdge({p, c}, 2).ok());
  CollectSink sink;
  Result<MatchStats> r = MatchSequential(idx, q, MatchOptions{}, &sink);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().embeddings, 1u);  // only alice@acme
  // Matched data edges are the two alice-acme facts.
  Embedding m = sink.embeddings()[0];
  std::sort(m.begin(), m.end());
  EXPECT_EQ(m, (Embedding{0, 1}));
}

TEST(EdgeLabelTest, AllEnginesAgreeOnLabeledData) {
  LabeledKb kb;
  IndexedHypergraph idx = IndexedHypergraph::Build(kb.data.Clone());
  Hypergraph q;
  const VertexId p = q.AddVertex(0);
  const VertexId c = q.AddVertex(1);
  const VertexId p2 = q.AddVertex(0);
  ASSERT_TRUE(q.AddEdge({p, c}, 1).ok());
  ASSERT_TRUE(q.AddEdge({p2, c, p}, 1).ok());

  MatchStats oracle = ReferenceEdgeTupleMatch(idx, q);
  Result<MatchStats> seq = MatchSequential(idx, q);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value().embeddings, oracle.embeddings);

  ParallelOptions popts;
  popts.num_threads = 3;
  Result<ParallelResult> par = MatchParallel(idx, q, popts);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par.value().stats.embeddings, oracle.embeddings);

  // Vertex-mapping semantics: baseline == vertex oracle == bipartite.
  const uint64_t vertex_oracle = ReferenceVertexMatchCount(kb.data, q);
  Result<BaselineResult> baseline = MatchByVertex(idx, q);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline.value().embeddings, vertex_oracle);
  Result<pairwise::PairwiseResult> bipartite = MatchViaBipartite(kb.data, q);
  ASSERT_TRUE(bipartite.ok());
  EXPECT_EQ(bipartite.value().embeddings, vertex_oracle);
}

TEST(EdgeLabelTest, BipartiteEncodingSeparatesLabelAndArity) {
  LabeledKb kb;
  pairwise::Graph g = ConvertToBipartite(kb.data, kb.data.NumLabels());
  // Edge-vertices of equal arity but different hyperedge labels must get
  // different pairwise labels.
  const VertexId ev_works = static_cast<VertexId>(kb.data.NumVertices() + 0);
  const VertexId ev_invest = static_cast<VertexId>(kb.data.NumVertices() + 1);
  EXPECT_NE(g.label(ev_works), g.label(ev_invest));
  // Same label + arity => same pairwise label.
  const VertexId ev_bob = static_cast<VertexId>(kb.data.NumVertices() + 2);
  EXPECT_EQ(g.label(ev_works), g.label(ev_bob));
}

TEST(EdgeLabelTest, TextFormatRoundTripsLabels) {
  LabeledKb kb;
  const std::string text = FormatHypergraph(kb.data);
  EXPECT_NE(text.find("el 1 "), std::string::npos);
  Result<Hypergraph> parsed = ParseHypergraph(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().NumEdges(), kb.data.NumEdges());
  for (EdgeId e = 0; e < kb.data.NumEdges(); ++e) {
    EXPECT_EQ(parsed.value().edge_label(e), kb.data.edge_label(e));
    EXPECT_EQ(parsed.value().edge(e), kb.data.edge(e));
  }
  // Malformed labelled edges are rejected.
  EXPECT_FALSE(ParseHypergraph("v 0 0\nel x 0\n").ok());
  EXPECT_FALSE(ParseHypergraph("v 0 0\nel 1\n").ok());
}

TEST(EdgeLabelTest, BinaryFormatRoundTripsLabels) {
  LabeledKb kb;
  const std::string path = ::testing::TempDir() + "/hg_edge_label.hgb";
  ASSERT_TRUE(SaveHypergraphBinary(kb.data, path).ok());
  Result<Hypergraph> loaded = LoadHypergraphBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(FormatHypergraph(loaded.value()), FormatHypergraph(kb.data));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hgmatch
