#include "core/candidates.h"

#include <gtest/gtest.h>

#include "core/validation.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

// Example V.1 of the paper: with matching order
// ({u2,u4}, {u0,u1,u2}, {u0,u1,u3,u4}) and partial embedding m = (e1, e3),
// the candidates of the third query hyperedge are exactly {e5}.
TEST(CandidatesTest, PaperExampleV1) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<QueryPlan> plan = BuildQueryPlanWithOrder(q, {0, 1, 2});
  ASSERT_TRUE(plan.ok());
  Expander expander(idx, plan.value());

  const EdgeId m[] = {0 /*e1*/, 2 /*e3*/};
  std::vector<EdgeId> out;
  expander.GenerateCandidates(m, 2, &out);
  EXPECT_EQ(out, (std::vector<EdgeId>{4}));  // e5
}

TEST(CandidatesTest, ScanStepReturnsWholeTable) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<QueryPlan> plan = BuildQueryPlanWithOrder(q, {0, 1, 2});
  ASSERT_TRUE(plan.ok());
  Expander expander(idx, plan.value());
  std::vector<EdgeId> out;
  expander.GenerateCandidates(nullptr, 0, &out);
  EXPECT_EQ(out, (std::vector<EdgeId>{0, 1}));  // e1, e2: the {A,B} table
}

TEST(CandidatesTest, MissingSignatureYieldsNoCandidates) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  // Query with a hyperedge signature {B,C} absent from the data.
  Hypergraph q;
  const VertexId b = q.AddVertex(1);
  const VertexId c = q.AddVertex(2);
  (void)q.AddEdge({b, c});
  Result<QueryPlan> plan = BuildQueryPlanWithOrder(q, {0});
  ASSERT_TRUE(plan.ok());
  Expander expander(idx, plan.value());
  std::vector<EdgeId> out = {99};
  expander.GenerateCandidates(nullptr, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(CandidatesTest, ExcludesAlreadyMatchedEdges) {
  // Data: triangle-ish structure where the same signature table serves two
  // steps; the edge already used must not be offered again.
  Hypergraph h;
  h.AddVertices(4, 0);  // all label A
  (void)h.AddEdge({0, 1});
  (void)h.AddEdge({1, 2});
  (void)h.AddEdge({2, 3});
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));

  Hypergraph q;
  q.AddVertices(3, 0);
  (void)q.AddEdge({0, 1});
  (void)q.AddEdge({1, 2});
  Result<QueryPlan> plan = BuildQueryPlanWithOrder(q, {0, 1});
  ASSERT_TRUE(plan.ok());
  Expander expander(idx, plan.value());

  const EdgeId m[] = {1 /*{1,2}*/};
  std::vector<EdgeId> out;
  expander.GenerateCandidates(m, 1, &out);
  // Neighbours of data edge {1,2} with signature {A,A}: {0,1} and {2,3};
  // the matched edge itself is excluded.
  EXPECT_EQ(out, (std::vector<EdgeId>{0, 2}));
}

// Fig 4 of the paper: a candidate that passes the vertex-count check but
// fails profile validation. Partial query: e0={u0,u1} (B,A),
// e1={u2,u3,u4,u5}? — we reproduce the *structure*: the multiset of
// profiles differs although counts agree.
TEST(ValidationTest, RejectsProfileMismatch) {
  // Data: v0(B) v1..v5(A); edges d0={v0,v1}, d1={v3,v4,v5}, d2={v1,v2,v3}.
  Hypergraph h;
  const Label A = 0, B = 1;
  h.AddVertex(B);
  for (int i = 0; i < 5; ++i) h.AddVertex(A);
  const EdgeId d0 = h.AddEdge({0, 1}).value();
  const EdgeId d1 = h.AddEdge({3, 4, 5}).value();
  const EdgeId d2 = h.AddEdge({1, 2, 3}).value();
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));

  // Query: u0(B) u1..u5(A); q0={u0,u1}, q1={u3,u4,u5}, q2={u2,u3,u4}.
  // Here q2 intersects q1 in TWO vertices (u3,u4) and is disjoint from q0.
  Hypergraph q;
  q.AddVertex(B);
  for (int i = 0; i < 5; ++i) q.AddVertex(A);
  (void)q.AddEdge({0, 1});
  (void)q.AddEdge({3, 4, 5});
  (void)q.AddEdge({2, 3, 4});
  Result<QueryPlan> plan = BuildQueryPlanWithOrder(q, {0, 1, 2});
  ASSERT_TRUE(plan.ok());
  Expander expander(idx, plan.value());

  // Candidate d2={v1,v2,v3} for q2: touches d0 (via v1) although q2 is
  // non-adjacent to q0, and shares only ONE vertex with d1 (v3) although
  // q2 shares two with q1. Vertex count: |V(q')| = 6;
  // |V(m')| with m'=(d0,d1,d2) = 6 as well => count check passes, profile
  // check must reject.
  const EdgeId m[] = {d0, d1};
  bool count_ok = false;
  EXPECT_FALSE(expander.IsValidEmbedding(m, 2, d2, &count_ok));
  EXPECT_TRUE(count_ok);
  // The exact class check agrees.
  const EdgeId full[] = {d0, d1, d2};
  const EdgeId order[] = {0, 1, 2};
  EXPECT_FALSE(
      EmbeddingConsistent(q, idx.graph(), order, full, 3));
}

TEST(ValidationTest, AcceptsPaperEmbeddings) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<QueryPlan> plan = BuildQueryPlanWithOrder(q, {0, 1, 2});
  ASSERT_TRUE(plan.ok());
  Expander expander(idx, plan.value());

  bool count_ok = false;
  const EdgeId m1[] = {0, 2};
  EXPECT_TRUE(expander.IsValidEmbedding(m1, 2, 4, &count_ok));  // + e5
  EXPECT_TRUE(count_ok);
  const EdgeId m2[] = {1, 3};
  EXPECT_TRUE(expander.IsValidEmbedding(m2, 2, 5, &count_ok));  // + e6
  // Cross combination is invalid: (e1, e3) + e6.
  EXPECT_FALSE(expander.IsValidEmbedding(m1, 2, 5, &count_ok));

  // VerifyExact agrees on the two full embeddings.
  const EdgeId full1[] = {0, 2, 4};
  const EdgeId full2[] = {1, 3, 5};
  EXPECT_TRUE(expander.VerifyExact(full1, 3));
  EXPECT_TRUE(expander.VerifyExact(full2, 3));
}

TEST(ValidationTest, VertexCountCheckFiltersEarly) {
  // Candidate sharing too many vertices with the partial embedding fails
  // the Observation V.5 check (count_ok == false).
  Hypergraph h;
  h.AddVertices(5, 0);
  const EdgeId d0 = h.AddEdge({0, 1, 2}).value();
  const EdgeId d1 = h.AddEdge({0, 1, 3}).value();
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));

  // Query expects the two edges to share exactly one vertex.
  Hypergraph q;
  q.AddVertices(5, 0);
  (void)q.AddEdge({0, 1, 2});
  (void)q.AddEdge({2, 3, 4});
  Result<QueryPlan> plan = BuildQueryPlanWithOrder(q, {0, 1});
  ASSERT_TRUE(plan.ok());
  Expander expander(idx, plan.value());

  const EdgeId m[] = {d0};
  bool count_ok = true;
  EXPECT_FALSE(expander.IsValidEmbedding(m, 1, d1, &count_ok));
  EXPECT_FALSE(count_ok);  // 4 distinct data vertices != 5 query vertices
}

TEST(EmbeddingConsistentTest, SymmetricVerticesAllowAnyBijection) {
  // Two query vertices with identical labels and incidence are
  // interchangeable; the class check must accept.
  Hypergraph h;
  h.AddVertices(3, 0);
  const EdgeId d0 = h.AddEdge({0, 1, 2}).value();
  Hypergraph q;
  q.AddVertices(3, 0);
  (void)q.AddEdge({0, 1, 2});
  const EdgeId order[] = {0};
  const EdgeId matched[] = {d0};
  EXPECT_TRUE(EmbeddingConsistent(q, h, order, matched, 1));
}

TEST(EmbeddingConsistentTest, LabelMultiplicityMismatchRejected) {
  Hypergraph h;
  h.AddVertex(0);
  h.AddVertex(0);
  h.AddVertex(1);
  const EdgeId d0 = h.AddEdge({0, 1, 2}).value();  // labels {A,A,B}
  Hypergraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddVertex(1);
  (void)q.AddEdge({0, 1, 2});  // labels {A,B,B}
  const EdgeId order[] = {0};
  const EdgeId matched[] = {d0};
  EXPECT_FALSE(EmbeddingConsistent(q, h, order, matched, 1));
}

}  // namespace
}  // namespace hgmatch
