#include "core/hypergraph.h"

#include <gtest/gtest.h>

#include "core/signature.h"

namespace hgmatch {
namespace {

// Builds the paper's running example (Fig 1b): 7 vertices, 6 hyperedges.
// Labels: A=0, B=1, C=2.
Hypergraph PaperDataHypergraph() {
  Hypergraph h;
  const Label A = 0, B = 1, C = 2;
  // v0..v6 with labels A, C, A, A, B, C, A (Fig 1b).
  for (Label l : {A, C, A, A, B, C, A}) h.AddVertex(l);
  EXPECT_TRUE(h.AddEdge({2, 4}).ok());           // e1 = {v2, v4}
  EXPECT_TRUE(h.AddEdge({4, 6}).ok());           // e2 = {v4, v6}
  EXPECT_TRUE(h.AddEdge({0, 1, 2}).ok());        // e3 = {v0, v1, v2}
  EXPECT_TRUE(h.AddEdge({3, 5, 6}).ok());        // e4 = {v3, v5, v6}
  EXPECT_TRUE(h.AddEdge({0, 1, 4, 6}).ok());     // e5 = {v0, v1, v4, v6}
  EXPECT_TRUE(h.AddEdge({2, 3, 4, 5}).ok());     // e6 = {v2, v3, v4, v5}
  return h;
}

TEST(HypergraphTest, BasicCounts) {
  Hypergraph h = PaperDataHypergraph();
  EXPECT_EQ(h.NumVertices(), 7u);
  EXPECT_EQ(h.NumEdges(), 6u);
  EXPECT_EQ(h.NumLabels(), 3u);
  EXPECT_EQ(h.MaxArity(), 4u);
  EXPECT_DOUBLE_EQ(h.AverageArity(), (2 + 2 + 3 + 3 + 4 + 4) / 6.0);
  EXPECT_EQ(h.NumIncidences(), 18u);
}

TEST(HypergraphTest, EdgeCanonicalisation) {
  Hypergraph h;
  h.AddVertices(4, 0);
  Result<EdgeId> e = h.AddEdge({3, 1, 3, 2});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(h.edge(e.value()), (VertexSet{1, 2, 3}));
  EXPECT_EQ(h.arity(e.value()), 3u);
}

TEST(HypergraphTest, DuplicateEdgeReturnsExistingId) {
  Hypergraph h;
  h.AddVertices(4, 0);
  Result<EdgeId> first = h.AddEdge({0, 1});
  Result<EdgeId> dup = h.AddEdge({1, 0});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(first.value(), dup.value());
  EXPECT_EQ(h.NumEdges(), 1u);
}

TEST(HypergraphTest, RejectsEmptyAndUnknownVertex) {
  Hypergraph h;
  h.AddVertices(2, 0);
  EXPECT_FALSE(h.AddEdge({}).ok());
  EXPECT_FALSE(h.AddEdge({5}).ok());
}

TEST(HypergraphTest, IncidenceAndDegree) {
  Hypergraph h = PaperDataHypergraph();
  // v4 appears in e1, e2, e5, e6 (ids 0, 1, 4, 5).
  EXPECT_EQ(h.incident(4), (EdgeSet{0, 1, 4, 5}));
  EXPECT_EQ(h.degree(4), 4u);
  EXPECT_EQ(h.degree(3), 2u);
}

TEST(HypergraphTest, AdjacentVertices) {
  Hypergraph h = PaperDataHypergraph();
  // v0 is in e3={v0,v1,v2} and e5={v0,v1,v4,v6}.
  EXPECT_EQ(h.AdjacentVertices(0), (VertexSet{1, 2, 4, 6}));
}

TEST(HypergraphTest, AdjacentEdges) {
  Hypergraph h = PaperDataHypergraph();
  // e1={v2,v4} shares v2 with e3, e6 and v4 with e2, e5, e6.
  EXPECT_EQ(h.AdjacentEdges(0), (EdgeSet{1, 2, 4, 5}));
}

TEST(HypergraphTest, FindEdge) {
  Hypergraph h = PaperDataHypergraph();
  EXPECT_EQ(h.FindEdge({4, 2}), 0u);
  EXPECT_EQ(h.FindEdge({0, 1, 4, 6}), 4u);
  EXPECT_EQ(h.FindEdge({0, 1}), kInvalidEdge);
  EXPECT_EQ(h.FindEdge({0, 1, 2, 3}), kInvalidEdge);
}

TEST(HypergraphTest, Connectivity) {
  Hypergraph h = PaperDataHypergraph();
  EXPECT_TRUE(h.IsConnected());
  Hypergraph two;
  two.AddVertices(4, 0);
  ASSERT_TRUE(two.AddEdge({0, 1}).ok());
  ASSERT_TRUE(two.AddEdge({2, 3}).ok());
  EXPECT_FALSE(two.IsConnected());
}

TEST(HypergraphTest, CloneIsDeep) {
  Hypergraph h = PaperDataHypergraph();
  Hypergraph copy = h.Clone();
  copy.AddVertex(0);
  ASSERT_TRUE(copy.AddEdge({0, 7}).ok());
  EXPECT_EQ(h.NumVertices(), 7u);
  EXPECT_EQ(h.NumEdges(), 6u);
  EXPECT_EQ(copy.NumEdges(), 7u);
}

TEST(SignatureTest, PaperExample) {
  Hypergraph h = PaperDataHypergraph();
  // S(e1) = {A, B}: labels of v2 (A) and v4 (B).
  EXPECT_EQ(SignatureOf(h, 0), (Signature{0, 1}));
  // S(e3) = {A, A, C}.
  EXPECT_EQ(SignatureOf(h, 2), (Signature{0, 0, 2}));
  // S(e5) = {A, A, B, C}.
  EXPECT_EQ(SignatureOf(h, 4), (Signature{0, 0, 1, 2}));
  // e5 and e6 share a signature; e1 and e2 share a signature.
  EXPECT_EQ(SignatureOf(h, 4), SignatureOf(h, 5));
  EXPECT_EQ(SignatureOf(h, 0), SignatureOf(h, 1));
  EXPECT_EQ(SignatureToString(SignatureOf(h, 2)), "{A,A,C}");
}

TEST(SignatureTest, HashDistinguishes) {
  EXPECT_NE(HashSignature({0, 1}), HashSignature({0, 0, 1}));
  EXPECT_NE(HashSignature({0}), HashSignature({1}));
  EXPECT_EQ(HashSignature({2, 3, 3}), HashSignature({2, 3, 3}));
}

}  // namespace
}  // namespace hgmatch
