#include <gtest/gtest.h>

#include "core/indexed_hypergraph.h"
#include "core/partition.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

// Table I of the paper: the data hypergraph of Fig 1b partitions into three
// hyperedge tables with signatures {A,B}, {A,A,C} and {A,A,B,C}.
TEST(IndexedHypergraphTest, PaperTableOnePartitions) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ASSERT_EQ(idx.partitions().size(), 3u);

  const Signature ab{0, 1}, aac{0, 0, 2}, aabc{0, 0, 1, 2};
  const Partition* p1 = idx.FindPartition(ab);
  const Partition* p2 = idx.FindPartition(aac);
  const Partition* p3 = idx.FindPartition(aabc);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  ASSERT_NE(p3, nullptr);

  // Partition 1: e1={v2,v4}, e2={v4,v6}.
  EXPECT_EQ(p1->edges(), (EdgeSet{0, 1}));
  // Partition 2: e3, e4.
  EXPECT_EQ(p2->edges(), (EdgeSet{2, 3}));
  // Partition 3: e5, e6.
  EXPECT_EQ(p3->edges(), (EdgeSet{4, 5}));
}

// Table I's inverted index: v4 -> [e1, e2] in partition 1; v4 -> [e5, e6]
// in partition 3; v0 -> [e3] in partition 2.
TEST(IndexedHypergraphTest, PaperTableOneInvertedIndex) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  EXPECT_EQ(idx.Postings({0, 1}, 4), (EdgeSet{0, 1}));
  EXPECT_EQ(idx.Postings({0, 0, 1, 2}, 4), (EdgeSet{4, 5}));
  EXPECT_EQ(idx.Postings({0, 0, 2}, 0), (EdgeSet{2}));
  // v0 never occurs in partition 1.
  EXPECT_TRUE(idx.Postings({0, 1}, 0).empty());
  // Unknown signature: empty postings, zero cardinality.
  EXPECT_TRUE(idx.Postings({2, 2}, 0).empty());
  EXPECT_EQ(idx.Cardinality({2, 2}), 0u);
}

TEST(IndexedHypergraphTest, CardinalityIsTableSize) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  EXPECT_EQ(idx.Cardinality({0, 1}), 2u);
  EXPECT_EQ(idx.Cardinality({0, 0, 2}), 2u);
  EXPECT_EQ(idx.Cardinality({0, 0, 1, 2}), 2u);
}

TEST(IndexedHypergraphTest, PartitionOfMapsEveryEdge) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  for (EdgeId e = 0; e < idx.graph().NumEdges(); ++e) {
    const PartitionId p = idx.PartitionOf(e);
    ASSERT_LT(p, idx.partitions().size());
    const EdgeSet& edges = idx.partitions()[p].edges();
    EXPECT_TRUE(std::find(edges.begin(), edges.end(), e) != edges.end());
  }
}

// Invariants on a random hypergraph: every posting list is sorted, contains
// exactly the incident edges of that signature, and partition sizes sum to
// |E|. Size analysis: index is O(a_H * |E|) (Section IV.C).
class IndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexPropertyTest, Invariants) {
  Hypergraph h = GenerateHypergraph(SmallRandomConfig(GetParam()));
  const uint64_t incidences = h.NumIncidences();
  const size_t num_edges = h.NumEdges();
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));
  const Hypergraph& g = idx.graph();

  size_t total = 0;
  uint64_t posting_entries = 0;
  for (const Partition& p : idx.partitions()) {
    total += p.size();
    EXPECT_TRUE(std::is_sorted(p.edges().begin(), p.edges().end()));
    for (EdgeId e : p.edges()) {
      EXPECT_EQ(SignatureOf(g, e), p.signature());
      EXPECT_EQ(idx.PartitionOf(e), p.id());
      // Every member vertex's posting list contains e.
      for (VertexId v : g.edge(e)) {
        const EdgeSet& postings = p.Postings(v);
        EXPECT_TRUE(std::binary_search(postings.begin(), postings.end(), e));
        EXPECT_TRUE(std::is_sorted(postings.begin(), postings.end()));
      }
      posting_entries += g.arity(e);
    }
  }
  EXPECT_EQ(total, num_edges);
  EXPECT_EQ(posting_entries, incidences);
  // Lightweight index: proportional to incidences, not quadratic.
  EXPECT_LE(idx.IndexBytes(),
            64 * (incidences + num_edges + idx.partitions().size() + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace hgmatch
