#ifndef HGMATCH_TESTS_TEST_FIXTURES_H_
#define HGMATCH_TESTS_TEST_FIXTURES_H_

#include <algorithm>
#include <vector>

#include "core/hypergraph.h"
#include "core/matching_order.h"
#include "core/result.h"
#include "gen/generator.h"

namespace hgmatch {

/// The paper's running example (Fig 1b): data hypergraph H with vertices
/// v0..v6 labelled A,C,A,A,B,C,A and hyperedges e1..e6 (ids 0..5 here).
inline Hypergraph PaperDataHypergraph() {
  Hypergraph h;
  const Label A = 0, B = 1, C = 2;
  for (Label l : {A, C, A, A, B, C, A}) h.AddVertex(l);
  (void)h.AddEdge({2, 4});        // e1
  (void)h.AddEdge({4, 6});        // e2
  (void)h.AddEdge({0, 1, 2});     // e3
  (void)h.AddEdge({3, 5, 6});     // e4
  (void)h.AddEdge({0, 1, 4, 6});  // e5
  (void)h.AddEdge({2, 3, 4, 5});  // e6
  return h;
}

/// The paper's query q (Fig 1a): u0(A) u1(C) u2(A) u3(A) u4(B) with
/// hyperedges {u2,u4}, {u0,u1,u2}, {u0,u1,u3,u4}.
inline Hypergraph PaperQueryHypergraph() {
  Hypergraph q;
  const Label A = 0, B = 1, C = 2;
  for (Label l : {A, C, A, A, B}) q.AddVertex(l);
  (void)q.AddEdge({2, 4});
  (void)q.AddEdge({0, 1, 2});
  (void)q.AddEdge({0, 1, 3, 4});
  return q;
}

/// Small random hypergraph configurations used by cross-engine property
/// sweeps. Sized so brute-force oracles stay fast.
inline GeneratorConfig SmallRandomConfig(uint64_t seed) {
  GeneratorConfig c;
  c.seed = seed;
  c.num_vertices = 20 + seed % 21;           // 20..40
  c.num_edges = 25 + (seed * 7) % 36;        // 25..60
  c.num_labels = 2 + seed % 3;               // 2..4
  c.arity_min = 2;
  c.arity_max = 4 + seed % 3;                // 4..6
  c.arity_dist = ArityDistribution::kUniform;
  c.vertex_skew = 0.4;
  c.label_skew = 0.4;
  return c;
}

/// Normalises a list of embeddings (each given in some per-engine order)
/// by the provided query-edge order into query-edge-id indexed tuples, then
/// sorts, so results from different engines compare with ==.
inline std::vector<Embedding> NormalizeEmbeddings(
    const std::vector<Embedding>& embeddings,
    const std::vector<EdgeId>& query_edge_order) {
  std::vector<Embedding> out;
  out.reserve(embeddings.size());
  for (const Embedding& m : embeddings) {
    Embedding by_query_edge(m.size());
    for (size_t i = 0; i < m.size(); ++i) {
      by_query_edge[query_edge_order[i]] = m[i];
    }
    out.push_back(std::move(by_query_edge));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hgmatch

#endif  // HGMATCH_TESTS_TEST_FIXTURES_H_
