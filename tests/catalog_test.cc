// Coverage of the graph catalog (serve/catalog.h): load/unload/list
// lifecycle, submission routing by name, refcounted unload (an unload
// blocks on — or defers past — in-flight tickets and never loses an
// outcome), submit-after-unload rejection, the catalog-unique completion
// hook, and the headline race: concurrent LOAD/UNLOAD cycles against
// threads submitting to the same names, which must stay exact and
// TSan-clean. Also the plan-cache capacity bound (LRU eviction of idle
// canonicals) that the catalog's per-graph services inherit.

#include "serve/catalog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/hgmatch.h"
#include "gen/generator.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

CatalogOptions SmallPool(uint32_t threads = 2) {
  CatalogOptions o;
  o.service.parallel.num_threads = threads;
  o.service.parallel.scan_grain = 1;
  return o;
}

// Expensive data/query pair: a pair-clique keeps path queries busy long
// enough for unload/cancel races to observe in-flight work.
Hypergraph PairCliqueData(uint32_t m) {
  Hypergraph h;
  h.AddVertices(m, 0);
  for (VertexId i = 0; i < m; ++i) {
    for (VertexId j = i + 1; j < m; ++j) (void)h.AddEdge({i, j});
  }
  return h;
}

Hypergraph PathQuery(uint32_t k) {
  Hypergraph q;
  q.AddVertices(k + 1, 0);
  for (VertexId v = 0; v < k; ++v) (void)q.AddEdge({v, v + 1});
  return q;
}

TEST(CatalogTest, LoadListUnloadLifecycle) {
  GraphCatalog catalog(SmallPool());
  EXPECT_EQ(catalog.NumGraphs(), 0u);
  EXPECT_EQ(catalog.DefaultGraph(), "");

  ASSERT_TRUE(catalog.Load("alpha", PaperDataHypergraph()).ok());
  ASSERT_TRUE(catalog.Load("beta", PairCliqueData(4)).ok());
  EXPECT_EQ(catalog.NumGraphs(), 2u);
  EXPECT_EQ(catalog.DefaultGraph(), "alpha");
  EXPECT_TRUE(catalog.Has("alpha"));
  EXPECT_TRUE(catalog.Has("beta"));
  EXPECT_FALSE(catalog.Has("gamma"));

  std::vector<CatalogGraphInfo> rows = catalog.List();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "alpha");  // default first
  EXPECT_TRUE(rows[0].is_default);
  EXPECT_FALSE(rows[1].is_default);
  EXPECT_GT(rows[0].index_bytes, 0u);

  // Duplicate and empty names are load-time errors.
  EXPECT_FALSE(catalog.Load("alpha", PaperDataHypergraph()).ok());
  EXPECT_FALSE(catalog.Load("", PaperDataHypergraph()).ok());

  ASSERT_TRUE(catalog.Unload("beta").ok());
  EXPECT_FALSE(catalog.Has("beta"));
  EXPECT_EQ(catalog.NumGraphs(), 1u);
  // Unknown (and already-unloaded) names are NotFound.
  EXPECT_FALSE(catalog.Unload("beta").ok());
  EXPECT_FALSE(catalog.Unload("gamma").ok());

  // A name can be reused after its unload completes.
  ASSERT_TRUE(catalog.Load("beta", PairCliqueData(3)).ok());
  EXPECT_TRUE(catalog.Has("beta"));
}

TEST(CatalogTest, SubmitRoutesByNameAndMatchesSequential) {
  GraphCatalog catalog(SmallPool());
  Hypergraph small = PaperDataHypergraph();
  Hypergraph big = PairCliqueData(6);
  IndexedHypergraph small_idx = IndexedHypergraph::Build(small.Clone());
  IndexedHypergraph big_idx = IndexedHypergraph::Build(big.Clone());
  ASSERT_TRUE(catalog.Load("small", std::move(small)).ok());
  ASSERT_TRUE(catalog.Load("big", std::move(big)).ok());

  const Hypergraph query = PathQuery(2);
  Result<MatchStats> want_small = MatchSequential(small_idx, query);
  Result<MatchStats> want_big = MatchSequential(big_idx, query);
  ASSERT_TRUE(want_small.ok());
  ASSERT_TRUE(want_big.ok());
  ASSERT_NE(want_small.value().embeddings, want_big.value().embeddings);

  // Named routes hit their graph; the empty name is the default.
  Result<CatalogTicket> to_small = catalog.Submit("small", query.Clone(), {});
  Result<CatalogTicket> to_big = catalog.Submit("big", query.Clone(), {});
  Result<CatalogTicket> to_default = catalog.Submit("", query.Clone(), {});
  ASSERT_TRUE(to_small.ok());
  ASSERT_TRUE(to_big.ok());
  ASSERT_TRUE(to_default.ok());
  EXPECT_EQ(to_small.value().ticket.Wait().stats.embeddings,
            want_small.value().embeddings);
  EXPECT_EQ(to_big.value().ticket.Wait().stats.embeddings,
            want_big.value().embeddings);
  EXPECT_EQ(to_default.value().ticket.Wait().stats.embeddings,
            want_small.value().embeddings);

  // Catalog-unique ids disambiguate graphs that each start at ticket 0.
  EXPECT_NE(to_small.value().unique_id, to_big.value().unique_id);

  // Unknown graphs fail the submit itself — no ticket, caller relays a
  // typed rejection.
  Result<CatalogTicket> unknown = catalog.Submit("nope", query.Clone(), {});
  EXPECT_FALSE(unknown.ok());

  std::vector<CatalogGraphInfo> rows = catalog.List();
  uint64_t total = 0;
  for (const CatalogGraphInfo& g : rows) total += g.queries;
  EXPECT_EQ(total, 3u);
}

TEST(CatalogTest, SubmitBatchRoutesWholeGroupAndRejectsUnknown) {
  GraphCatalog catalog(SmallPool());
  ASSERT_TRUE(catalog.Load("g", PairCliqueData(5)).ok());
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(5));

  std::vector<BatchSubmission> batch;
  for (uint32_t k : {1u, 2u}) batch.push_back({PathQuery(k), {}});
  Result<std::vector<CatalogTicket>> tickets =
      catalog.SubmitBatch("g", std::move(batch));
  ASSERT_TRUE(tickets.ok());
  ASSERT_EQ(tickets.value().size(), 2u);
  for (uint32_t i = 0; i < 2; ++i) {
    Result<MatchStats> want = MatchSequential(idx, PathQuery(i + 1));
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(tickets.value()[i].ticket.Wait().stats.embeddings,
              want.value().embeddings);
  }

  std::vector<BatchSubmission> missing;
  missing.push_back({PathQuery(1), {}});
  EXPECT_FALSE(catalog.SubmitBatch("nope", std::move(missing)).ok());
}

TEST(CatalogTest, CompletionHookFiresOncePerUniqueId) {
  std::mutex mutex;
  std::vector<uint64_t> seen;
  CatalogOptions options = SmallPool();
  options.on_query_complete = [&](uint64_t unique_id, const QueryOutcome&) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.push_back(unique_id);
  };
  GraphCatalog catalog(options);
  ASSERT_TRUE(catalog.Load("a", PaperDataHypergraph()).ok());
  ASSERT_TRUE(catalog.Load("b", PairCliqueData(4)).ok());

  std::set<uint64_t> expected;
  for (int i = 0; i < 3; ++i) {
    Result<CatalogTicket> ta = catalog.Submit("a", PathQuery(1), {});
    Result<CatalogTicket> tb = catalog.Submit("b", PathQuery(1), {});
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    expected.insert(ta.value().unique_id);
    expected.insert(tb.value().unique_id);
  }
  catalog.Shutdown();

  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(seen.size(), 6u);  // exactly once each
  EXPECT_EQ(std::set<uint64_t>(seen.begin(), seen.end()), expected);
  EXPECT_EQ(catalog.finished_queries(), 6u);
}

// A waiting unload must block until the graph's in-flight tickets
// resolve, and the outcome of a query racing its graph's unload is never
// lost or corrupted.
TEST(CatalogTest, UnloadWaitsForInflightTickets) {
  GraphCatalog catalog(SmallPool());
  ASSERT_TRUE(catalog.Load("g", PairCliqueData(9)).ok());
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(9));
  Result<MatchStats> want = MatchSequential(idx, PathQuery(4));
  ASSERT_TRUE(want.ok());

  Result<CatalogTicket> t = catalog.Submit("g", PathQuery(4), {});
  ASSERT_TRUE(t.ok());

  std::atomic<bool> unloaded{false};
  std::thread unloader([&] {
    EXPECT_TRUE(catalog.Unload("g", /*wait=*/true).ok());
    unloaded.store(true);
  });
  // From the unload call on, new submissions to the graph are rejected
  // even while the drain is still in progress.
  while (catalog.Has("g")) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(catalog.Submit("g", PathQuery(1), {}).ok());

  // The in-flight ticket still resolves exactly.
  EXPECT_EQ(t.value().ticket.Wait().stats.embeddings,
            want.value().embeddings);
  unloader.join();
  EXPECT_TRUE(unloaded.load());
  EXPECT_EQ(catalog.NumGraphs(), 0u);
}

TEST(CatalogTest, DeferredUnloadReapsAfterDrain) {
  GraphCatalog catalog(SmallPool());
  ASSERT_TRUE(catalog.Load("g", PairCliqueData(7)).ok());
  Result<CatalogTicket> t = catalog.Submit("g", PathQuery(3), {});
  ASSERT_TRUE(t.ok());

  // wait=false returns immediately; the graph is already unreachable.
  ASSERT_TRUE(catalog.Unload("g", /*wait=*/false).ok());
  EXPECT_FALSE(catalog.Has("g"));
  EXPECT_FALSE(catalog.Submit("g", PathQuery(1), {}).ok());

  const QueryOutcome& out = t.value().ticket.Wait();
  EXPECT_EQ(out.status, QueryStatus::kOk);
  // Shutdown (or any later catalog pass) reaps the drained entry.
  catalog.Shutdown();
}

// A ticket wait racing its service's destruction. The unload drain
// condition is satisfied by the completion hook, which fires before a
// woken Ticket::Wait waiter has necessarily left the condition wait — so
// the wait must park on storage the service's destruction cannot touch
// (the record's resolve-gate pin), never on the service itself. Looped:
// the window is a few instructions wide, and a single shot almost never
// lands in it. TSan runs this in CI.
TEST(CatalogTest, TicketWaitSurvivesUnloadDestroyingTheService) {
  for (int round = 0; round < 40; ++round) {
    GraphCatalog catalog(SmallPool());
    ASSERT_TRUE(catalog.Load("g", PairCliqueData(6)).ok());
    Result<CatalogTicket> t = catalog.Submit("g", PathQuery(2), {});
    ASSERT_TRUE(t.ok());

    // Two waiters widen the window: both park on the gate, and the unload
    // can only be safe if neither ever needs the service after waking.
    std::thread w1([&] {
      EXPECT_EQ(t.value().ticket.Wait().status, QueryStatus::kOk);
    });
    std::thread w2([&] {
      const QueryOutcome* out = t.value().ticket.Wait(30.0);
      ASSERT_NE(out, nullptr);
      EXPECT_EQ(out->status, QueryStatus::kOk);
    });
    // wait=true destroys the graph's service as soon as the hook-driven
    // drain condition holds — concurrently with the waiters waking.
    EXPECT_TRUE(catalog.Unload("g", /*wait=*/true).ok());
    w1.join();
    w2.join();
    // The outcome store is ticket-owned: still readable after teardown.
    EXPECT_EQ(t.value().ticket.TryGet()->status, QueryStatus::kOk);
    catalog.Shutdown();
  }
}

// The headline race: loader/unloader cycling a name while submitters hammer
// it. Every submit either fails cleanly (graph momentarily absent) or
// yields a ticket that resolves with an exact count. TSan runs this in CI.
TEST(CatalogTest, ConcurrentLoadUnloadRacingSubmitsStaysExact) {
  GraphCatalog catalog(SmallPool(4));
  ASSERT_TRUE(catalog.Load("stable", PaperDataHypergraph()).ok());
  IndexedHypergraph flappy_idx = IndexedHypergraph::Build(PairCliqueData(6));
  Result<MatchStats> want = MatchSequential(flappy_idx, PathQuery(2));
  ASSERT_TRUE(want.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> refused{0};

  std::thread cycler([&] {
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(catalog.Load("flappy", PairCliqueData(6)).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      EXPECT_TRUE(catalog.Unload("flappy", (i % 2) == 0).ok());
    }
    stop.store(true);
  });

  std::vector<std::thread> submitters;
  for (int s = 0; s < 3; ++s) {
    submitters.emplace_back([&] {
      while (!stop.load()) {
        Result<CatalogTicket> t = catalog.Submit("flappy", PathQuery(2), {});
        if (!t.ok()) {
          refused.fetch_add(1);
          std::this_thread::yield();
          continue;
        }
        accepted.fetch_add(1);
        const QueryOutcome& out = t.value().ticket.Wait();
        EXPECT_EQ(out.status, QueryStatus::kOk);
        EXPECT_EQ(out.stats.embeddings, want.value().embeddings);
      }
    });
  }
  cycler.join();
  for (std::thread& t : submitters) t.join();

  // The stable graph was untouched throughout.
  EXPECT_TRUE(catalog.Has("stable"));
  EXPECT_FALSE(catalog.Has("flappy"));
  // The race must actually have exercised both outcomes to mean anything.
  EXPECT_GT(accepted.load() + refused.load(), 0u);
}

TEST(CatalogTest, CancelThroughCatalogResolvesTicket) {
  GraphCatalog catalog(SmallPool());
  ASSERT_TRUE(catalog.Load("g", PairCliqueData(10)).ok());
  Result<CatalogTicket> t = catalog.Submit("g", PathQuery(5), {});
  ASSERT_TRUE(t.ok());
  catalog.Cancel(t.value());  // false when it already finished — both fine
  const QueryOutcome& out = t.value().ticket.Wait();
  EXPECT_TRUE(out.status == QueryStatus::kCancelled ||
              out.status == QueryStatus::kOk);
}

TEST(CatalogTest, ShutdownSealsSubmissions) {
  GraphCatalog catalog(SmallPool());
  ASSERT_TRUE(catalog.Load("g", PaperDataHypergraph()).ok());
  catalog.Shutdown();
  EXPECT_FALSE(catalog.Submit("g", PathQuery(1), {}).ok());
  EXPECT_FALSE(catalog.Load("h", PaperDataHypergraph()).ok());
  catalog.Shutdown();  // idempotent
}

// The plan-cache capacity bound the catalog's services inherit: with a
// bound of 1, alternating structures evict each other (no cache hits);
// with room for both, the revisit hits.
TEST(CatalogTest, PlanCacheCapacityEvictsIdleLru) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(5));
  for (size_t capacity : {1u, 2u}) {
    ServiceOptions options;
    options.parallel.num_threads = 2;
    options.plan_cache_capacity = capacity;
    MatchService service(idx, options);
    service.Submit(PathQuery(1)).Wait();
    service.Submit(PathQuery(2)).Wait();
    service.Submit(PathQuery(1)).Wait();  // hit iff capacity >= 2
    ServiceReport report = service.Shutdown();
    if (capacity == 1) {
      EXPECT_EQ(report.plan_cache_hits, 0u);
    } else {
      EXPECT_EQ(report.plan_cache_hits, 1u);
    }
  }
}

}  // namespace
}  // namespace hgmatch
