// Coverage of the canonical query labelling (core/canonical.h): renamed
// and edge-reordered copies of a query must map to one canonical key,
// structurally different near-misses must not, and the size/search-budget
// cutoffs must fall back to the exact structural key. Randomised sweep:
// every permutation of a small query agrees with the identity's key.

#include "core/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "core/hypergraph.h"
#include "tests/test_fixtures.h"
#include "util/rng.h"

namespace hgmatch {
namespace {

// Applies a vertex permutation `perm` (old id -> new id) to `q`, adding
// the hyperedges in the order given by `edge_order`.
Hypergraph Permuted(const Hypergraph& q, const std::vector<VertexId>& perm,
                    const std::vector<EdgeId>& edge_order) {
  Hypergraph out;
  std::vector<Label> labels(q.NumVertices());
  for (VertexId v = 0; v < q.NumVertices(); ++v) labels[perm[v]] = q.label(v);
  for (Label l : labels) out.AddVertex(l);
  for (EdgeId e : edge_order) {
    VertexSet members;
    for (VertexId v : q.edge(e)) members.push_back(perm[v]);
    (void)out.AddEdge(std::move(members), q.edge_label(e));
  }
  return out;
}

std::vector<EdgeId> IdentityEdges(const Hypergraph& q) {
  std::vector<EdgeId> order(q.NumEdges());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(CanonicalTest, SameQueryTwiceProducesIdenticalKey) {
  const Hypergraph q = PaperQueryHypergraph();
  const CanonicalKey a = CanonicalQueryKey(q);
  const CanonicalKey b = CanonicalQueryKey(q);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_TRUE(a.isomorphism_invariant);
}

TEST(CanonicalTest, RenamedVerticesProduceSameKeyButDifferentExactKey) {
  const Hypergraph q = PaperQueryHypergraph();
  // Label-preserving rename: u0(A)<->u3(A), u2 stays, and so on.
  const std::vector<VertexId> perm = {3, 1, 2, 0, 4};
  const Hypergraph renamed = Permuted(q, perm, IdentityEdges(q));
  const CanonicalKey a = CanonicalQueryKey(q);
  const CanonicalKey b = CanonicalQueryKey(renamed);
  EXPECT_TRUE(a.isomorphism_invariant);
  EXPECT_EQ(a.key, b.key);
  EXPECT_NE(a.exact, b.exact);  // the exact structural key sees the rename
}

TEST(CanonicalTest, ReorderedEdgesProduceSameKey) {
  const Hypergraph q = PaperQueryHypergraph();
  const std::vector<VertexId> identity = {0, 1, 2, 3, 4};
  const Hypergraph reordered = Permuted(q, identity, {2, 0, 1});
  const CanonicalKey a = CanonicalQueryKey(q);
  const CanonicalKey b = CanonicalQueryKey(reordered);
  EXPECT_EQ(a.key, b.key);
  EXPECT_NE(a.exact, b.exact);  // the exact key is edge-order sensitive
}

TEST(CanonicalTest, EveryPermutationOfTheQueryAgrees) {
  const Hypergraph q = PaperQueryHypergraph();
  const CanonicalKey base = CanonicalQueryKey(q);
  std::vector<VertexId> perm(q.NumVertices());
  std::iota(perm.begin(), perm.end(), 0);
  do {
    // Only label-preserving permutations are isomorphisms; skip the rest
    // (they relabel vertices and legitimately change the key).
    bool preserves = true;
    for (VertexId v = 0; v < q.NumVertices(); ++v) {
      if (q.label(perm[v]) != q.label(v)) preserves = false;
    }
    if (!preserves) continue;
    std::vector<VertexId> inverse(perm.size());
    for (VertexId v = 0; v < q.NumVertices(); ++v) inverse[perm[v]] = v;
    const Hypergraph renamed = Permuted(q, inverse, IdentityEdges(q));
    EXPECT_EQ(CanonicalQueryKey(renamed).key, base.key);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(CanonicalTest, NearMissVertexLabelChangesKey) {
  Hypergraph a = PaperQueryHypergraph();
  Hypergraph b;
  const Label A = 0, B = 1, C = 2;
  for (Label l : {A, C, A, B, B}) b.AddVertex(l);  // u3: A -> B
  (void)b.AddEdge({2, 4});
  (void)b.AddEdge({0, 1, 2});
  (void)b.AddEdge({0, 1, 3, 4});
  EXPECT_NE(CanonicalQueryKey(a).key, CanonicalQueryKey(b).key);
}

TEST(CanonicalTest, NearMissMembershipChangesKey) {
  Hypergraph a = PaperQueryHypergraph();
  Hypergraph b;
  const Label A = 0, B = 1, C = 2;
  for (Label l : {A, C, A, A, B}) b.AddVertex(l);
  (void)b.AddEdge({2, 4});
  (void)b.AddEdge({0, 1, 3});  // was {0, 1, 2}: same arity, other member
  (void)b.AddEdge({0, 1, 3, 4});
  EXPECT_NE(CanonicalQueryKey(a).key, CanonicalQueryKey(b).key);
}

TEST(CanonicalTest, NearMissEdgeLabelChangesKey) {
  Hypergraph a;
  Hypergraph b;
  for (int i = 0; i < 3; ++i) {
    a.AddVertex(0);
    b.AddVertex(0);
  }
  (void)a.AddEdge({0, 1, 2}, /*label=*/1);
  (void)b.AddEdge({0, 1, 2}, /*label=*/2);
  EXPECT_NE(CanonicalQueryKey(a).key, CanonicalQueryKey(b).key);
}

TEST(CanonicalTest, SizeCutoffFallsBackToExactKey) {
  const Hypergraph q = PaperQueryHypergraph();
  CanonicalOptions tight;
  tight.max_vertices = 3;  // the paper query has 5 vertices
  const CanonicalKey k = CanonicalQueryKey(q, tight);
  EXPECT_FALSE(k.isomorphism_invariant);
  EXPECT_EQ(k.key, 'X' + ExactQueryKey(q));
  // A renamed copy no longer matches: the fallback is exact-only.
  const Hypergraph renamed =
      Permuted(q, {3, 1, 2, 0, 4}, IdentityEdges(q));
  EXPECT_NE(CanonicalQueryKey(renamed, tight).key, k.key);
}

TEST(CanonicalTest, SearchBudgetAbortFallsBackToExactKey) {
  // A fully symmetric query (all labels equal, complete pairwise edges)
  // forces individualisation; a one-node budget cannot finish it.
  Hypergraph q;
  for (int i = 0; i < 5; ++i) q.AddVertex(0);
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = a + 1; b < 5; ++b) (void)q.AddEdge({a, b});
  }
  CanonicalOptions tiny;
  tiny.max_search_nodes = 1;
  const CanonicalKey k = CanonicalQueryKey(q, tiny);
  EXPECT_FALSE(k.isomorphism_invariant);
  EXPECT_EQ(k.key, 'X' + ExactQueryKey(q));
  // With the default budget the same query canonicalises fine.
  EXPECT_TRUE(CanonicalQueryKey(q).isomorphism_invariant);
}

TEST(CanonicalTest, RandomQueriesSurviveRandomRenames) {
  Rng rng(20260808);
  for (int round = 0; round < 20; ++round) {
    // Random small query: 4..8 vertices, 3..6 edges, 1..3 labels.
    const uint32_t n = static_cast<uint32_t>(rng.NextRange(4, 8));
    const uint32_t m = static_cast<uint32_t>(rng.NextRange(3, 6));
    const uint64_t labels = rng.NextRange(1, 3);
    Hypergraph q;
    for (uint32_t v = 0; v < n; ++v) {
      q.AddVertex(static_cast<Label>(rng.NextBounded(labels)));
    }
    for (uint32_t e = 0; e < m; ++e) {
      const uint64_t arity = rng.NextRange(2, 3);
      VertexSet members;
      while (members.size() < arity) {
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (std::find(members.begin(), members.end(), v) == members.end()) {
          members.push_back(v);
        }
      }
      (void)q.AddEdge(std::move(members),
                      static_cast<Label>(rng.NextBounded(2)));
    }
    std::vector<VertexId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(&perm);
    // AddEdge dedupes identical member sets, so use the realised count.
    std::vector<EdgeId> edge_order(q.NumEdges());
    std::iota(edge_order.begin(), edge_order.end(), 0);
    rng.Shuffle(&edge_order);
    const Hypergraph renamed = Permuted(q, perm, edge_order);
    const CanonicalKey a = CanonicalQueryKey(q);
    const CanonicalKey b = CanonicalQueryKey(renamed);
    ASSERT_TRUE(a.isomorphism_invariant) << "round " << round;
    EXPECT_EQ(a.key, b.key) << "round " << round;
  }
}

}  // namespace
}  // namespace hgmatch
