// Coverage of the sharding layer: the storage split (core/shard.h) — edge
// partition/replication invariants and the split/merge/save/load
// round-trips — and scatter-gather execution (ServiceOptions::shards),
// whose merged counts must be exactly those of an unsharded run at every
// fan-out. The parity sweeps are the acceptance bar of the sharded serving
// tier: sharding is a throughput lever, never an approximation.

#include "core/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/hgmatch.h"
#include "gen/generator.h"
#include "io/shard_io.h"
#include "parallel/service.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

// A hyperedge as comparable content: (edge label, sorted vertex ids).
// Shards renumber edge ids, so equality of hypergraphs under sharding is
// equality of these multisets plus the vertex labelling.
using EdgeKey = std::pair<Label, std::vector<VertexId>>;

std::vector<EdgeKey> EdgeContents(const Hypergraph& h) {
  std::vector<EdgeKey> keys;
  keys.reserve(h.NumEdges());
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    std::vector<VertexId> vs(h.edge(e).begin(), h.edge(e).end());
    std::sort(vs.begin(), vs.end());
    keys.emplace_back(h.edge_label(e), std::move(vs));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ExpectSameContent(const Hypergraph& a, const Hypergraph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    ASSERT_EQ(a.label(v), b.label(v));
  }
  EXPECT_EQ(EdgeContents(a), EdgeContents(b));
}

TEST(ShardSplitTest, AssignCoversEveryEdgeWithinBounds) {
  const Hypergraph h = PaperDataHypergraph();
  for (uint32_t k : {1u, 2u, 3u, 8u}) {
    const std::vector<uint32_t> assign = AssignShards(h, k);
    ASSERT_EQ(assign.size(), h.NumEdges());
    for (uint32_t part : assign) EXPECT_LT(part, k);
  }
}

TEST(ShardSplitTest, SplitReplicatesVerticesAndPartitionsEdges) {
  Hypergraph h = GenerateHypergraph(SmallRandomConfig(11));
  for (uint32_t k : {1u, 2u, 4u, 8u}) {
    const std::vector<Hypergraph> parts = SplitHypergraph(h, k);
    ASSERT_EQ(parts.size(), k);
    size_t total_edges = 0;
    for (const Hypergraph& p : parts) {
      ASSERT_EQ(p.NumVertices(), h.NumVertices());
      total_edges += p.NumEdges();
    }
    EXPECT_EQ(total_edges, h.NumEdges());

    Result<Hypergraph> merged = MergeShards(parts);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ExpectSameContent(h, merged.value());
  }
}

TEST(ShardSplitTest, MoreShardsThanEdgesLeavesEmptyParts) {
  Hypergraph h;
  h.AddVertices(4, 0);
  (void)h.AddEdge({0, 1});
  (void)h.AddEdge({2, 3});
  const std::vector<Hypergraph> parts = SplitHypergraph(h, 8);
  ASSERT_EQ(parts.size(), 8u);
  size_t total = 0;
  for (const Hypergraph& p : parts) total += p.NumEdges();
  EXPECT_EQ(total, 2u);
  Result<Hypergraph> merged = MergeShards(parts);
  ASSERT_TRUE(merged.ok());
  ExpectSameContent(h, merged.value());
}

TEST(ShardIoTest, SaveLoadRoundTripsAtSeveralFanouts) {
  Hypergraph h = GenerateHypergraph(SmallRandomConfig(3));
  for (uint32_t k : {1u, 2u, 8u}) {
    const std::string prefix =
        ::testing::TempDir() + "/shard_io_" + std::to_string(k);
    Result<std::vector<std::string>> paths = SaveShards(h, prefix, k);
    ASSERT_TRUE(paths.ok()) << paths.status().ToString();
    ASSERT_EQ(paths.value().size(), k);
    for (uint32_t i = 0; i < k; ++i) {
      EXPECT_EQ(paths.value()[i], ShardPath(prefix, i, k));
    }
    Result<Hypergraph> reloaded = LoadShards(paths.value());
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    ExpectSameContent(h, reloaded.value());
  }
}

TEST(ShardIoTest, LoadShardsRejectsMissingFile) {
  Result<Hypergraph> r = LoadShards({"/nonexistent/shard0.hgb"});
  EXPECT_FALSE(r.ok());
}

// Thread-safe embedding collector: slices emit concurrently.
class CollectingSink : public EmbeddingSink {
 public:
  void Emit(const EdgeId* edges, uint32_t size) override {
    std::lock_guard<std::mutex> lock(mutex_);
    embeddings_.emplace_back(edges, edges + size);
  }

  std::vector<Embedding> Sorted() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Embedding> out = embeddings_;
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::mutex mutex_;
  std::vector<Embedding> embeddings_;
};

ServiceOptions ShardedOptions(uint32_t shards) {
  ServiceOptions o;
  o.parallel.num_threads = 4;
  o.parallel.scan_grain = 1;
  o.shards = shards;
  return o;
}

// The acceptance bar: merged sharded counts equal MatchSequential at
// K in {1, 2, 8}, across several query shapes and datasets.
TEST(ShardExecTest, MergedCountsMatchSequentialAtEveryFanout) {
  for (uint64_t seed : {5u, 9u}) {
    IndexedHypergraph idx =
        IndexedHypergraph::Build(GenerateHypergraph(SmallRandomConfig(seed)));
    std::vector<Hypergraph> queries;
    queries.push_back(PaperQueryHypergraph());
    {
      Hypergraph path;
      path.AddVertices(3, 0);
      (void)path.AddEdge({0, 1});
      (void)path.AddEdge({1, 2});
      queries.push_back(std::move(path));
    }
    for (const Hypergraph& q : queries) {
      Result<MatchStats> expected = MatchSequential(idx, q);
      for (uint32_t k : {1u, 2u, 8u}) {
        MatchService service(idx, ShardedOptions(k));
        Ticket t = service.Submit(q.Clone());
        const QueryOutcome& out = t.Wait();
        if (!expected.ok()) {
          EXPECT_EQ(out.status, QueryStatus::kPlanError);
          continue;
        }
        EXPECT_EQ(out.status, QueryStatus::kOk)
            << "seed " << seed << " shards " << k;
        EXPECT_EQ(out.stats.embeddings, expected.value().embeddings)
            << "seed " << seed << " shards " << k;
      }
    }
  }
}

// Sharded slices partition the embedding *set*, not just its count: a
// sink over K slices collects exactly the unsharded embeddings.
TEST(ShardExecTest, SinkCollectsIdenticalEmbeddingSet) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  const Hypergraph query = PaperQueryHypergraph();

  CollectingSink unsharded;
  {
    MatchService service(idx, ShardedOptions(1));
    SubmitOptions so;
    so.sink = &unsharded;
    service.Submit(query.Clone(), so).Wait();
  }
  ASSERT_FALSE(unsharded.Sorted().empty());

  for (uint32_t k : {2u, 8u}) {
    CollectingSink sharded;
    MatchService service(idx, ShardedOptions(k));
    SubmitOptions so;
    so.sink = &sharded;
    const QueryOutcome& out = service.Submit(query.Clone(), so).Wait();
    EXPECT_EQ(out.status, QueryStatus::kOk);
    EXPECT_EQ(sharded.Sorted(), unsharded.Sorted()) << "shards " << k;
  }
}

// Status merge severity: one slice hitting its embedding limit makes the
// whole merged outcome kLimit (limit outranks ok). With more embeddings
// than slices and limit 1, some slice must stop early (pigeonhole).
TEST(ShardExecTest, SliceLimitSurfacesAsMergedLimitStatus) {
  Hypergraph data;
  data.AddVertices(10, 0);
  for (VertexId i = 0; i < 10; ++i) {
    for (VertexId j = i + 1; j < 10; ++j) (void)data.AddEdge({i, j});
  }
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));
  Hypergraph query;
  query.AddVertices(3, 0);
  (void)query.AddEdge({0, 1});
  (void)query.AddEdge({1, 2});

  Result<MatchStats> full = MatchSequential(idx, query);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full.value().embeddings, 2u);

  MatchService service(idx, ShardedOptions(2));
  SubmitOptions so;
  so.limit = 1;
  const QueryOutcome& out = service.Submit(query.Clone(), so).Wait();
  EXPECT_EQ(out.status, QueryStatus::kLimit);
  EXPECT_TRUE(out.stats.limit_hit);
  // The per-slice limit may overshoot (documented), but never below the
  // single-slice bound and never past one hit per slice.
  EXPECT_GE(out.stats.embeddings, 1u);
  EXPECT_LE(out.stats.embeddings, 2u);
}

// Sharded submissions interleaved with plain ones on one service: each
// ticket still resolves to its own exact counts.
TEST(ShardExecTest, ShardedBatchMatchesPerQuerySequential) {
  IndexedHypergraph idx =
      IndexedHypergraph::Build(GenerateHypergraph(SmallRandomConfig(7)));
  std::vector<Hypergraph> queries;
  for (uint32_t edges : {1u, 2u, 3u}) {
    Hypergraph q;
    q.AddVertices(edges + 1, 0);
    for (VertexId v = 0; v < edges; ++v) (void)q.AddEdge({v, v + 1});
    queries.push_back(std::move(q));
  }

  MatchService service(idx, ShardedOptions(2));
  std::vector<BatchSubmission> batch;
  for (const Hypergraph& q : queries) batch.push_back({q.Clone(), {}});
  std::vector<Ticket> tickets = service.SubmitBatch(std::move(batch));
  ASSERT_EQ(tickets.size(), queries.size());
  for (size_t i = 0; i < tickets.size(); ++i) {
    Result<MatchStats> expected = MatchSequential(idx, queries[i]);
    ASSERT_TRUE(expected.ok());
    const QueryOutcome& out = tickets[i].Wait();
    EXPECT_EQ(out.status, QueryStatus::kOk);
    EXPECT_EQ(out.stats.embeddings, expected.value().embeddings) << i;
  }
}

}  // namespace
}  // namespace hgmatch
