// Cross-engine property sweeps: on random hypergraphs and random-walk
// queries, every engine in the library must agree with the brute-force
// oracle of matching semantics (see DESIGN.md §1):
//   * HGMatch sequential == edge-tuple brute force (count AND set),
//   * HGMatch parallel (any thread count, stealing on/off) == sequential,
//   * BFS executor == sequential,
//   * plan order is irrelevant to the result set.

#include <gtest/gtest.h>

#include "core/hgmatch.h"
#include "core/reference.h"
#include "gen/query_gen.h"
#include "parallel/bfs_executor.h"
#include "parallel/executor.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

struct Scenario {
  uint64_t seed;
  uint32_t query_edges;
};

class CrossEngineTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    const Scenario& s = GetParam();
    data_ = IndexedHypergraph::Build(
        GenerateHypergraph(SmallRandomConfig(s.seed)));
    Rng rng(s.seed * 977 + 13);
    QuerySettings settings{"t", s.query_edges, 2,
                           100};  // wide vertex range: accept any walk
    Result<Hypergraph> q = SampleQuery(data_.graph(), settings, &rng);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    query_ = std::move(q.value());
  }

  IndexedHypergraph data_ = IndexedHypergraph::Build(Hypergraph());
  Hypergraph query_;
};

TEST_P(CrossEngineTest, SequentialMatchesEdgeTupleOracle) {
  CollectSink oracle_sink;
  MatchStats oracle = ReferenceEdgeTupleMatch(data_, query_, {}, &oracle_sink);

  Result<QueryPlan> plan = BuildQueryPlan(query_, data_);
  ASSERT_TRUE(plan.ok());
  CollectSink sink;
  MatchStats got =
      ExecutePlanSequential(data_, plan.value(), MatchOptions{}, &sink);

  EXPECT_EQ(got.embeddings, oracle.embeddings);
  // Sets must agree too (normalise both to query-edge-id indexed tuples;
  // the oracle emits in query-edge-id order already).
  std::vector<EdgeId> natural(query_.NumEdges());
  for (EdgeId e = 0; e < query_.NumEdges(); ++e) natural[e] = e;
  EXPECT_EQ(NormalizeEmbeddings(sink.embeddings(), plan.value().Order()),
            NormalizeEmbeddings(oracle_sink.embeddings(), natural));
  // Random-walk queries always have at least one embedding (themselves).
  EXPECT_GE(got.embeddings, 1u);
}

TEST_P(CrossEngineTest, EveryPlanOrderGivesTheSameResultSet) {
  Result<MatchStats> expected = MatchSequential(data_, query_);
  ASSERT_TRUE(expected.ok());
  // Try a few alternative (arbitrary) permutations.
  std::vector<EdgeId> order(query_.NumEdges());
  for (EdgeId e = 0; e < query_.NumEdges(); ++e) order[e] = e;
  for (int rot = 0; rot < 3; ++rot) {
    std::rotate(order.begin(), order.begin() + 1, order.end());
    Result<QueryPlan> plan = BuildQueryPlanWithOrder(query_, order);
    ASSERT_TRUE(plan.ok());
    MatchStats got =
        ExecutePlanSequential(data_, plan.value(), MatchOptions{}, nullptr);
    EXPECT_EQ(got.embeddings, expected.value().embeddings)
        << "order rotation " << rot;
  }
}

TEST_P(CrossEngineTest, ParallelMatchesSequential) {
  Result<MatchStats> expected = MatchSequential(data_, query_);
  ASSERT_TRUE(expected.ok());
  for (uint32_t threads : {1u, 2u, 4u}) {
    for (bool stealing : {true, false}) {
      ParallelOptions options;
      options.num_threads = threads;
      options.work_stealing = stealing;
      options.scan_grain = 4;  // force range splitting even on small data
      Result<ParallelResult> got = MatchParallel(data_, query_, options);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value().stats.embeddings, expected.value().embeddings)
          << threads << " threads, stealing=" << stealing;
    }
  }
}

TEST_P(CrossEngineTest, BfsExecutorMatchesSequential) {
  Result<MatchStats> expected = MatchSequential(data_, query_);
  ASSERT_TRUE(expected.ok());
  Result<QueryPlan> plan = BuildQueryPlan(query_, data_);
  ASSERT_TRUE(plan.ok());
  ParallelOptions options;
  options.num_threads = 2;
  BfsResult got = ExecutePlanBfs(data_, plan.value(), options);
  EXPECT_EQ(got.stats.embeddings, expected.value().embeddings);
  EXPECT_GT(got.peak_bytes, 0u);
}

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> out;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    out.push_back({seed, 2});
    out.push_back({seed, 3});
    out.push_back({seed, 4});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(RandomHypergraphs, CrossEngineTest,
                         ::testing::ValuesIn(MakeScenarios()));

// Denser sweep of the validation path: strict mode (exact bijection check
// per embedding) must never disagree with Algorithm 5 across many random
// instances — this is the empirical verification of Theorem V.2.
class StrictValidationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrictValidationSweep, AlgorithmFiveIsExact) {
  const uint64_t seed = GetParam();
  GeneratorConfig config = SmallRandomConfig(seed);
  config.num_labels = 1 + seed % 2;  // few labels => many symmetric vertices
  IndexedHypergraph data =
      IndexedHypergraph::Build(GenerateHypergraph(config));
  Rng rng(seed * 31 + 7);
  for (int i = 0; i < 5; ++i) {
    QuerySettings settings{"t", 3, 2, 100};
    Result<Hypergraph> q = SampleQuery(data.graph(), settings, &rng);
    if (!q.ok()) continue;
    MatchOptions strict;
    strict.strict_validation = true;
    Result<MatchStats> a = MatchSequential(data, q.value());
    Result<MatchStats> b = MatchSequential(data, q.value(), strict);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().embeddings, b.value().embeddings);
    MatchStats oracle = ReferenceEdgeTupleMatch(data, q.value());
    EXPECT_EQ(a.value().embeddings, oracle.embeddings);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrictValidationSweep,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace hgmatch
