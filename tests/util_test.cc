#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace hgmatch {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = a.Next64();
    EXPECT_EQ(x, b.Next64());
  }
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) any_diff |= a2.Next64() != c.Next64();
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const uint64_t r = rng.NextRange(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  int buckets[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.NextBounded(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], n / 10, n / 50);  // within 2% absolute
  }
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng rng(13);
  uint64_t low_half = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t z = rng.NextZipf(100, 1.1);
    ASSERT_LT(z, 100u);
    if (z < 10) ++low_half;
  }
  // With skew 1.1 the first 10 of 100 values should dominate.
  EXPECT_GT(low_half, static_cast<uint64_t>(n) / 2);
  // Skew 0 degenerates to uniform.
  uint64_t low_uniform = 0;
  for (int i = 0; i < n; ++i) low_uniform += rng.NextZipf(100, 0.0) < 10;
  EXPECT_NEAR(static_cast<double>(low_uniform), n * 0.1, n * 0.02);
}

TEST(RngTest, GeometricMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextGeometric(0.25));
  EXPECT_NEAR(sum / n, 4.0, 0.15);  // mean of Geometric(p) is 1/p
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
  EXPECT_EQ(Status::Timeout("t").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::IOError("x").ToString(), "IOError: x");
}

TEST(StatusTest, ResultCarriesValueOrStatus) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StatsTest, SummaryQuartiles) {
  Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(Summarize({}).count, 0u);
  EXPECT_DOUBLE_EQ(Summarize({7}).median, 7);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.0), 10.0);
}

TEST(StatsTest, HumanFormatting) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(2048), "2.0KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0MB");
  EXPECT_EQ(HumanCount(1234567), "1,234,567");
  EXPECT_EQ(HumanCount(12), "12");
}

TEST(StatsTest, GeoMean) {
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
  EXPECT_NEAR(GeoMean({1, 100}), 10.0, 1e-9);
}

TEST(TimerTest, DeadlineExpires) {
  EXPECT_FALSE(Deadline::Infinite().Expired());
  EXPECT_TRUE(Deadline::Infinite().IsInfinite());
  Deadline d = Deadline::After(0.01);
  EXPECT_FALSE(d.IsInfinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(d.Expired());
  // Non-positive timeout means infinite.
  EXPECT_TRUE(Deadline::After(0).IsInfinite());
  EXPECT_TRUE(Deadline::After(-1).IsInfinite());
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_GE(t.ElapsedMillis(), 10);
  EXPECT_GE(t.ElapsedMicros(), 10000);
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 10);
}

}  // namespace
}  // namespace hgmatch
