# End-to-end smoke test of the hgmatch CLI, run via
#   cmake -DHGMATCH_CLI=<binary> -DWORK_DIR=<dir> -P cli_smoke_test.cmake
#
# Exercises gen/stats/match/batch on the paper's running example (Fig 1),
# whose query has exactly 2 embeddings in the data hypergraph.

if(NOT DEFINED HGMATCH_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "HGMATCH_CLI and WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# Fig 1b data hypergraph: labels A=0 B=1 C=2.
file(WRITE ${WORK_DIR}/data.hg
"v 0 0
v 1 2
v 2 0
v 3 0
v 4 1
v 5 2
v 6 0
e 2 4
e 4 6
e 0 1 2
e 3 5 6
e 0 1 4 6
e 2 3 4 5
")

# Fig 1a query.
file(WRITE ${WORK_DIR}/query.hg
"v 0 0
v 1 2
v 2 0
v 3 0
v 4 1
e 2 4
e 0 1 2
e 0 1 3 4
")

# Query set: the same query three times, using both separator styles.
file(WRITE ${WORK_DIR}/queries.hgq "# query 0\n")
file(READ ${WORK_DIR}/query.hg QUERY_TEXT)
file(APPEND ${WORK_DIR}/queries.hgq "${QUERY_TEXT}---\n${QUERY_TEXT}")
file(APPEND ${WORK_DIR}/queries.hgq "# query 2\n${QUERY_TEXT}")

function(run_cli expect_re)
  execute_process(COMMAND ${HGMATCH_CLI} ${ARGN}
                  OUTPUT_VARIABLE out ERROR_VARIABLE err
                  RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "hgmatch ${ARGN} failed (${code}):\n${out}${err}")
  endif()
  if(NOT out MATCHES "${expect_re}")
    message(FATAL_ERROR
            "hgmatch ${ARGN}: output did not match '${expect_re}':\n${out}")
  endif()
endfunction()

# stats: 7 vertices, 6 hyperedges.
run_cli("\\|V\\|=7 \\|E\\|=6" stats ${WORK_DIR}/data.hg)

# Round-trip through the binary format (compressed v2 by default, plus
# the --v1 compatibility layout).
run_cli("wrote" convert ${WORK_DIR}/data.hg ${WORK_DIR}/data.hgb)
run_cli("\\|V\\|=7 \\|E\\|=6" stats ${WORK_DIR}/data.hgb)
run_cli("wrote" convert ${WORK_DIR}/data.hg ${WORK_DIR}/data_v1.hgb --v1)
run_cli("\\|V\\|=7 \\|E\\|=6" stats ${WORK_DIR}/data_v1.hgb)

# Sequential and parallel match: exactly 2 embeddings.
run_cli("embeddings: 2 in" match ${WORK_DIR}/data.hg ${WORK_DIR}/query.hg 1)
run_cli("embeddings: 2 in" match ${WORK_DIR}/data.hgb ${WORK_DIR}/query.hg 4)

# Batch: 3 queries x 2 embeddings through the shared pool. The three
# identical queries are plan-cache hits onto one compiled plan.
run_cli("query 0: embeddings 2 in" batch ${WORK_DIR}/data.hg
        ${WORK_DIR}/queries.hgq 4)
run_cli("query 2: embeddings 2 in" batch ${WORK_DIR}/data.hg
        ${WORK_DIR}/queries.hgq 4)
run_cli("batch: 3 queries \\(3 completed\\), embeddings 6 in" batch
        ${WORK_DIR}/data.hg ${WORK_DIR}/queries.hgq 4)
run_cli("2 plan-cache hits" batch ${WORK_DIR}/data.hg
        ${WORK_DIR}/queries.hgq 4)
run_cli("0 plan-cache hits" batch ${WORK_DIR}/data.hg
        ${WORK_DIR}/queries.hgq 4 --no-plan-cache)

# Isomorphic dedup: a renamed copy of the query (vertices permuted
# 0→2 1→4 2→0 3→3 4→1, edges reordered) hits the plan cache via the
# canonical key and mirrors the original's counts.
file(WRITE ${WORK_DIR}/renamed.hg
"v 0 0
v 1 1
v 2 0
v 3 0
v 4 2
e 0 1
e 0 2 4
e 1 2 3 4
")
file(READ ${WORK_DIR}/renamed.hg RENAMED_TEXT)
file(WRITE ${WORK_DIR}/renamed.hgq "${QUERY_TEXT}---\n${RENAMED_TEXT}")
run_cli("1 plan-cache hits of which 1 isomorphic" batch ${WORK_DIR}/data.hg
        ${WORK_DIR}/renamed.hgq 4)
run_cli("query 1: embeddings 2 in [0-9.]+s  \\[ok\\] \\(mirrored\\)" batch
        ${WORK_DIR}/data.hg ${WORK_DIR}/renamed.hgq 4)

# Admission window + fairness quota: same results, serialised admission.
run_cli("batch: 3 queries \\(3 completed\\), embeddings 6 in" batch
        ${WORK_DIR}/data.hg ${WORK_DIR}/queries.hgq 4
        --max-inflight=1 --task-quota=8)

# Per-query status column, and the executed/mirrored split in the summary
# (the two sink-less repeats mirror the first copy's counts).
run_cli("query 0: embeddings 2 in [0-9.]+s  \\[ok\\]" batch
        ${WORK_DIR}/data.hg ${WORK_DIR}/queries.hgq 4)
run_cli("query 2: embeddings 2 in [0-9.]+s  \\[ok\\] \\(mirrored\\)" batch
        ${WORK_DIR}/data.hg ${WORK_DIR}/queries.hgq 4)
run_cli("1 executed at [0-9.]+ queries/s, 2 mirrored" batch
        ${WORK_DIR}/data.hg ${WORK_DIR}/queries.hgq 4)

# Per-query submission headers + admission policies end to end.
file(READ ${WORK_DIR}/query.hg QUERY_TEXT2)
file(WRITE ${WORK_DIR}/tenants.hgq
     "# tenant=1\n# weight=3\n${QUERY_TEXT2}---\n# tenant=2\n# priority=5\n${QUERY_TEXT2}")
run_cli("batch: 2 queries \\(2 completed\\), embeddings 4 in" batch
        ${WORK_DIR}/data.hg ${WORK_DIR}/tenants.hgq 2
        --policy=wfq --max-inflight=1 --no-plan-cache)
run_cli("batch: 2 queries \\(2 completed\\), embeddings 4 in" batch
        ${WORK_DIR}/data.hg ${WORK_DIR}/tenants.hgq 2 --policy=priority)

# A malformed header must fail the load, not run with silent defaults.
file(WRITE ${WORK_DIR}/bad.hgq "# weight=heavy\n${QUERY_TEXT2}")
execute_process(COMMAND ${HGMATCH_CLI} batch ${WORK_DIR}/data.hg
                        ${WORK_DIR}/bad.hgq 2
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE code)
if(code EQUAL 0 OR NOT err MATCHES "bad weight header")
  message(FATAL_ERROR
          "malformed query-set header was not rejected (${code}):\n${out}${err}")
endif()

# Generator round-trip: a toy random dataset loads and indexes.
run_cli("generated" gen random ${WORK_DIR}/toy.hg 0.05)
run_cli("\\|V\\|=" stats ${WORK_DIR}/toy.hg)

# Wire front end round trip: serve the paper example over loopback, query
# it remotely, and check the results equal the local batch run (2 + 2
# embeddings, second copy mirrored). POSIX-only: the server is backgrounded
# through sh. --serve-seconds bounds the orphan if the shutdown frame is
# lost; the CTest TIMEOUT bounds this script if the socket wedges.
if(UNIX)
  set(PORT_FILE ${WORK_DIR}/serve.port)
  execute_process(COMMAND sh -c
      "${HGMATCH_CLI} serve ${WORK_DIR}/data.hg --port=0 \
--port-file=${PORT_FILE} --serve-seconds=120 --max-queued=64 \
--compress --allow-remote-shutdown > ${WORK_DIR}/serve.log 2>&1 &")

  set(SERVE_PORT "")
  foreach(attempt RANGE 100)
    if(EXISTS ${PORT_FILE})
      file(READ ${PORT_FILE} port_content)
      if(port_content MATCHES "^([0-9]+)")
        set(SERVE_PORT ${CMAKE_MATCH_1})
        break()
      endif()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(SERVE_PORT STREQUAL "")
    file(READ ${WORK_DIR}/serve.log serve_log)
    message(FATAL_ERROR "hgmatch serve did not come up:\n${serve_log}")
  endif()

  # Same queryset, same counts as the local batch run above; the repeats
  # mirror through the server-side plan cache. --shutdown stops the server.
  run_cli("query 0: embeddings 2 in [0-9.]+s  \\[ok\\]" query
          --connect=127.0.0.1:${SERVE_PORT} ${WORK_DIR}/queries.hgq)
  run_cli("query 2: embeddings 2 in [0-9.]+s  \\[ok\\] \\(mirrored\\)" query
          --connect=127.0.0.1:${SERVE_PORT} ${WORK_DIR}/queries.hgq)
  # The same queryset through negotiated batching + compression: one
  # BATCH_SUBMIT frame, identical counts, and the framing-stats line
  # reports the granted features.
  run_cli("remote: 3 queries \\(3 completed, 0 rejected\\), embeddings 6 in"
          query --connect=127.0.0.1:${SERVE_PORT} ${WORK_DIR}/queries.hgq
          --batch --compress)
  run_cli("wire: granted batch compress, sent" query
          --connect=127.0.0.1:${SERVE_PORT} ${WORK_DIR}/queries.hgq
          --batch --compress)
  run_cli("remote: 3 queries \\(3 completed, 0 rejected\\), embeddings 6 in"
          query --connect=127.0.0.1:${SERVE_PORT} ${WORK_DIR}/queries.hgq
          --shutdown)
endif()

message(STATUS "cli_smoke_test passed")
