// Tests of the hypergraph statistics module, the binary serialization
// format, the matching-order ablation variants, and the generator's label
// locality.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/hgmatch.h"
#include "core/hypergraph_stats.h"
#include "gen/query_gen.h"
#include "io/binary_format.h"
#include "io/writer.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

TEST(HypergraphStatsTest, PaperExample) {
  HypergraphStats s = ComputeStats(PaperDataHypergraph());
  EXPECT_EQ(s.num_vertices, 7u);
  EXPECT_EQ(s.num_edges, 6u);
  EXPECT_EQ(s.num_labels, 3u);
  EXPECT_EQ(s.num_incidences, 18u);
  EXPECT_EQ(s.max_arity, 4u);
  EXPECT_DOUBLE_EQ(s.avg_arity, 3.0);
  EXPECT_EQ(s.max_degree, 4u);  // v4
  EXPECT_TRUE(s.connected);
  // Arity histogram: two 2-edges, two 3-edges, two 4-edges.
  ASSERT_EQ(s.arity_histogram.size(), 5u);
  EXPECT_EQ(s.arity_histogram[2], 2u);
  EXPECT_EQ(s.arity_histogram[3], 2u);
  EXPECT_EQ(s.arity_histogram[4], 2u);
  // Label counts: 4 A, 1 B, 2 C.
  EXPECT_EQ(s.label_counts, (std::vector<uint64_t>{4, 1, 2}));
  // Degree histogram sums to |V|.
  uint64_t sum = 0;
  for (uint64_t c : s.degree_histogram) sum += c;
  EXPECT_EQ(sum, 7u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(HypergraphStatsTest, GiniDetectsSkew) {
  // Uniform degrees -> gini near 0.
  Hypergraph even;
  even.AddVertices(20, 0);
  for (VertexId v = 0; v < 20; v += 2) (void)even.AddEdge({v, v + 1});
  EXPECT_LT(ComputeStats(even).degree_gini, 0.05);

  // One hub in every edge -> high gini.
  Hypergraph hub;
  hub.AddVertices(21, 0);
  for (VertexId v = 1; v < 21; ++v) (void)hub.AddEdge({0, v});
  EXPECT_GT(ComputeStats(hub).degree_gini, 0.4);
}

TEST(PartitionStatsTest, PaperExample) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  PartitionStats s = ComputePartitionStats(idx);
  EXPECT_EQ(s.num_partitions, 3u);
  EXPECT_EQ(s.largest_partition, 2u);
  EXPECT_DOUBLE_EQ(s.avg_partition_size, 2.0);
  EXPECT_DOUBLE_EQ(s.top10_fraction, 1.0);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(BinaryFormatTest, RoundTrip) {
  Hypergraph h = GenerateHypergraph(SmallRandomConfig(12));
  const std::string path = ::testing::TempDir() + "/hg_binary_test.hgb";
  ASSERT_TRUE(SaveHypergraphBinary(h, path).ok());
  Result<Hypergraph> loaded = LoadHypergraphBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(FormatHypergraph(loaded.value()), FormatHypergraph(h));
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/hg_binary_garbage.hgb";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a hypergraph";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  Result<Hypergraph> r = LoadHypergraphBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadHypergraphBinary("/nonexistent/x.hgb").ok());
}

TEST(BinaryFormatTest, RejectsTruncation) {
  Hypergraph h = PaperDataHypergraph();
  const std::string path = ::testing::TempDir() + "/hg_binary_trunc.hgb";
  ASSERT_TRUE(SaveHypergraphBinary(h, path).ok());
  // Truncate the file in the middle of the hyperedge section.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full - 6), 0);
  EXPECT_FALSE(LoadHypergraphBinary(path).ok());
  std::remove(path.c_str());
}

TEST(OrderVariantTest, AllVariantsYieldSameCounts) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Hypergraph data = GenerateHypergraph(SmallRandomConfig(seed));
    Rng rng(seed + 500);
    Result<Hypergraph> q =
        SampleQuery(data, QuerySettings{"t", 3, 2, 100}, &rng);
    ASSERT_TRUE(q.ok());
    IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));

    uint64_t expected = UINT64_MAX;
    for (OrderVariant variant :
         {OrderVariant::kCardinality, OrderVariant::kConnectedOnly,
          OrderVariant::kMaxCardinality, OrderVariant::kAsGiven}) {
      std::vector<EdgeId> order =
          ComputeMatchingOrderVariant(q.value(), idx, variant);
      Result<QueryPlan> plan =
          BuildQueryPlanWithOrder(q.value(), std::move(order));
      ASSERT_TRUE(plan.ok());
      const MatchStats stats =
          ExecutePlanSequential(idx, plan.value(), MatchOptions{}, nullptr);
      if (expected == UINT64_MAX) {
        expected = stats.embeddings;
      } else {
        EXPECT_EQ(stats.embeddings, expected)
            << "variant " << static_cast<int>(variant) << " seed " << seed;
      }
    }
  }
}

TEST(GeneratorLocalityTest, LocalityConcentratesSignatures) {
  GeneratorConfig base = SmallRandomConfig(3);
  base.num_vertices = 400;
  base.num_edges = 1500;
  base.num_labels = 12;
  base.label_locality = 0.0;
  GeneratorConfig local = base;
  local.label_locality = 0.9;

  IndexedHypergraph spread =
      IndexedHypergraph::Build(GenerateHypergraph(base));
  IndexedHypergraph themed =
      IndexedHypergraph::Build(GenerateHypergraph(local));
  // Thematic hyperedges collide in far fewer signature tables.
  EXPECT_LT(themed.partitions().size(), spread.partitions().size());
  const PartitionStats ps = ComputePartitionStats(themed);
  const PartitionStats pb = ComputePartitionStats(spread);
  EXPECT_GT(ps.avg_partition_size, pb.avg_partition_size);
}

}  // namespace
}  // namespace hgmatch
