// Edge-path coverage of the shared scheduler core (parallel/scheduler.h)
// through its two facades: admission window, per-query task quota, timeouts
// measured from admission, limit overshoot bounds, degenerate pool sizes,
// fairness under an expensive query, and input-order determinism.

#include "parallel/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/hgmatch.h"
#include "parallel/batch_runner.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

// Complete "co-occurrence" data hypergraph: every pair {i, j} of m label-0
// vertices is a hyperedge, so path queries blow up combinatorially — the
// expensive-query stressor of these tests.
Hypergraph PairCliqueData(uint32_t m) {
  Hypergraph h;
  h.AddVertices(m, 0);
  for (VertexId i = 0; i < m; ++i) {
    for (VertexId j = i + 1; j < m; ++j) (void)h.AddEdge({i, j});
  }
  return h;
}

// Path query of `k` edges over label-0 vertices: {0,1}, {1,2}, ...
Hypergraph PathQuery(uint32_t k) {
  Hypergraph q;
  q.AddVertices(k + 1, 0);
  for (VertexId v = 0; v < k; ++v) (void)q.AddEdge({v, v + 1});
  return q;
}

// Three structurally distinct query shapes, for pool-degeneracy checks.
std::vector<Hypergraph> DistinctQueries() {
  std::vector<Hypergraph> queries;
  queries.push_back(PaperQueryHypergraph());
  {
    Hypergraph q;  // single {A,B} edge
    const Label A = 0, B = 1;
    q.AddVertex(A);
    q.AddVertex(B);
    (void)q.AddEdge({0, 1});
    queries.push_back(std::move(q));
  }
  {
    Hypergraph q;  // single {A,A,B,C} edge
    const Label A = 0, B = 1, C = 2;
    q.AddVertex(A);
    q.AddVertex(A);
    q.AddVertex(B);
    q.AddVertex(C);
    (void)q.AddEdge({0, 1, 2, 3});
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<uint64_t> SequentialCounts(const IndexedHypergraph& idx,
                                       const std::vector<Hypergraph>& queries) {
  std::vector<uint64_t> expected;
  for (const Hypergraph& q : queries) {
    Result<MatchStats> r = MatchSequential(idx, q);
    expected.push_back(r.ok() ? r.value().embeddings : 0);
  }
  return expected;
}

TEST(SchedulerTest, DeterministicInputOrderAcrossConfigurations) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  std::vector<Hypergraph> queries;
  for (uint32_t k : {1u, 2u, 3u}) queries.push_back(PathQuery(k));
  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);
  // Pairwise-distinct counts, so any cross-query mix-up is visible.
  ASSERT_NE(expected[0], expected[1]);
  ASSERT_NE(expected[1], expected[2]);
  ASSERT_NE(expected[0], expected[2]);

  for (uint32_t threads : {1u, 4u}) {
    for (uint32_t window : {0u, 1u, 2u}) {
      for (uint64_t quota : {uint64_t{0}, uint64_t{2}}) {
        BatchOptions options;
        options.parallel.num_threads = threads;
        options.parallel.scan_grain = 1;
        options.max_inflight_queries = window;
        options.task_quota = quota;
        const BatchResult r = RunBatch(idx, queries, options);
        ASSERT_EQ(r.queries.size(), queries.size());
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_EQ(r.queries[i].stats.embeddings, expected[i])
              << "query " << i << " threads=" << threads
              << " window=" << window << " quota=" << quota;
        }
        EXPECT_EQ(r.completed, queries.size());
      }
    }
  }
}

TEST(SchedulerTest, ZeroAndSingleThreadPools) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(13));
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));
  std::vector<Hypergraph> queries = DistinctQueries();
  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);

  // num_threads = 0 resolves to hardware_concurrency (>= 1 worker).
  BatchOptions defaults;
  const BatchResult auto_pool = RunBatch(idx, queries, defaults);
  EXPECT_GE(auto_pool.workers.size(), 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(auto_pool.queries[i].stats.embeddings, expected[i]);
  }

  // A single worker still honours admission windows and quotas.
  BatchOptions one;
  one.parallel.num_threads = 1;
  one.max_inflight_queries = 1;
  one.task_quota = 1;
  const BatchResult single = RunBatch(idx, queries, one);
  EXPECT_EQ(single.workers.size(), 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(single.queries[i].stats.embeddings, expected[i]);
  }
}

TEST(SchedulerTest, AdmissionWindowOfOneSerialisesQueries) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(12));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(2));
  queries.push_back(PathQuery(3));
  queries.push_back(PathQuery(2).Clone());  // identical to queries[0]

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.max_inflight_queries = 1;
  options.plan_cache = false;  // every copy runs, so admission is observable
  const BatchResult r = RunBatch(idx, queries, options);

  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.queries[i].stats.embeddings, expected[i]) << "query " << i;
  }
  // With a window of one, query i is only admitted once query i-1 retired
  // its last task.
  for (size_t i = 1; i < queries.size(); ++i) {
    const double prev_finish =
        r.queries[i - 1].admit_seconds + r.queries[i - 1].stats.seconds;
    EXPECT_GE(r.queries[i].admit_seconds, prev_finish) << "query " << i;
  }
}

TEST(SchedulerTest, MidRunAdmissionsDoNotRequireWorkStealing) {
  // Queries admitted mid-run are seeded through the shared injection queue
  // that idle workers drain directly, so an admission window composes with
  // work stealing disabled: every query still spreads and completes exactly.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(10));
  std::vector<Hypergraph> queries;
  for (uint32_t k : {1u, 2u, 3u, 1u, 2u, 3u}) queries.push_back(PathQuery(k));
  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.scan_grain = 1;
  options.parallel.work_stealing = false;
  options.max_inflight_queries = 2;
  options.plan_cache = false;  // every copy is admitted and executed
  const BatchResult r = RunBatch(idx, queries, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.queries[i].stats.embeddings, expected[i]) << "query " << i;
  }
  EXPECT_EQ(r.completed, queries.size());
}

TEST(SchedulerTest, AdmissionChurnStressKeepsCountsExact) {
  // Regression: mid-run admission used to push its SCAN ranges one Spawn at
  // a time into a live deque, so a thief could retire the first range —
  // ctx->pending transiently zero — before the next was pushed, running the
  // last-task path in Finish() twice: the admission slot was double-freed
  // and the unsigned inflight counter wrapped, hanging the run. Many tiny
  // queries through a window of 1 maximise mid-run admissions; the batch
  // must terminate with exact per-query counts.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  std::vector<Hypergraph> queries;
  for (int i = 0; i < 32; ++i) queries.push_back(PathQuery(1 + i % 2));
  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.scan_grain = 1;  // one hyperedge per task: maximum churn
  options.max_inflight_queries = 1;
  options.plan_cache = false;
  const BatchResult r = RunBatch(idx, queries, options);
  ASSERT_EQ(r.queries.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.queries[i].stats.embeddings, expected[i]) << "query " << i;
  }
  EXPECT_EQ(r.completed, queries.size());
}

TEST(SchedulerTest, FairnessCheapQueryCompletesUnderExpensiveLoad) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(4));  // expensive: burns its whole budget
  queries.push_back(PathQuery(1));  // cheap: one SCAN pass

  const uint64_t cheap_expected =
      MatchSequential(idx, queries[1]).value().embeddings;

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.timeout_seconds = 0.25;  // only the expensive one hits it
  options.max_inflight_queries = 2;
  options.task_quota = 64;
  const BatchResult r = RunBatch(idx, queries, options);

  // The cheap query is admitted alongside the expensive one and completes
  // exactly, milliseconds into the run, while the expensive query is still
  // saturating the pool (it runs its full 0.25s budget).
  EXPECT_TRUE(r.queries[0].stats.timed_out);
  EXPECT_FALSE(r.queries[1].stats.timed_out);
  EXPECT_EQ(r.queries[1].stats.embeddings, cheap_expected);
  const double cheap_finish =
      r.queries[1].admit_seconds + r.queries[1].stats.seconds;
  const double expensive_finish =
      r.queries[0].admit_seconds + r.queries[0].stats.seconds;
  EXPECT_LT(cheap_finish, expensive_finish);
  EXPECT_EQ(r.completed, 1u);
}

TEST(SchedulerTest, TaskQuotaKeepsCountsExact) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(14));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(3));
  queries.push_back(PathQuery(2));

  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);
  for (uint64_t quota : {uint64_t{1}, uint64_t{8}}) {
    BatchOptions options;
    options.parallel.num_threads = 4;
    options.task_quota = quota;
    const BatchResult r = RunBatch(idx, queries, options);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(r.queries[i].stats.embeddings, expected[i])
          << "query " << i << " quota=" << quota;
    }
  }
}

TEST(SchedulerTest, LimitOvershootIsBoundedByPoolSize) {
  const uint32_t threads = 4;
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(20));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(3));

  BatchOptions options;
  options.parallel.num_threads = threads;
  options.parallel.limit = 10;
  const BatchResult r = RunBatch(idx, queries, options);
  EXPECT_TRUE(r.queries[0].stats.limit_hit);
  // Every emission goes through one fetch_add on the per-query counter, and
  // the emitting worker that crosses the limit stops itself before its next
  // child — so each of the other workers can emit at most one straggler.
  EXPECT_GE(r.queries[0].stats.embeddings, 10u);
  EXPECT_LE(r.queries[0].stats.embeddings, 10u + threads);
}

TEST(SchedulerTest, PerQueryTimeoutFiresMidBatchAndIsolatesNeighbours) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(4));  // far more work than the budget allows
  queries.push_back(PathQuery(1));
  queries.push_back(PathQuery(1).Clone());

  const uint64_t cheap_expected =
      MatchSequential(idx, queries[1]).value().embeddings;

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.timeout_seconds = 0.05;
  options.plan_cache = false;
  const BatchResult r = RunBatch(idx, queries, options);

  EXPECT_TRUE(r.queries[0].stats.timed_out);
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_FALSE(r.queries[i].stats.timed_out) << "query " << i;
    EXPECT_EQ(r.queries[i].stats.embeddings, cheap_expected) << "query " << i;
  }
  EXPECT_EQ(r.completed, 2u);
}

TEST(SchedulerTest, PerQueryTimeoutMeasuredFromAdmission) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(4));  // burns its whole 0.15s budget
  queries.push_back(PathQuery(1));  // admitted after ~0.15s, finishes in ms

  const uint64_t cheap_expected =
      MatchSequential(idx, queries[1]).value().embeddings;

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.timeout_seconds = 0.15;
  options.max_inflight_queries = 1;
  const BatchResult r = RunBatch(idx, queries, options);

  EXPECT_TRUE(r.queries[0].stats.timed_out);
  // The cheap query was admitted only after the expensive one exhausted its
  // budget; were timeouts measured from batch start it would be dead on
  // arrival. Measured from admission, it completes exactly.
  EXPECT_GE(r.queries[1].admit_seconds, 0.05);
  EXPECT_FALSE(r.queries[1].stats.timed_out);
  EXPECT_EQ(r.queries[1].stats.embeddings, cheap_expected);
}

TEST(SchedulerTest, CompletedCountsAreNeverMarkedTimedOut) {
  // A deadline that has long expired before Run() still yields exact,
  // un-flagged results when every task completes its counts (the scheduler
  // only reports timed_out when work was actually dropped).
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  std::vector<Hypergraph> queries;
  queries.push_back(PaperQueryHypergraph());

  BatchOptions options;
  options.parallel.num_threads = 2;
  options.parallel.timeout_seconds = 1e-9;
  const BatchResult r = RunBatch(idx, queries, options);
  EXPECT_EQ(r.queries[0].stats.embeddings, 2u);
  EXPECT_FALSE(r.queries[0].stats.timed_out);
  EXPECT_EQ(r.completed, 1u);
}

TEST(SchedulerTest, BatchTimeoutStopsStragglersAndKeepsFinishedExact) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(4));  // straggler, stopped by the batch budget
  queries.push_back(PathQuery(1));  // finishes long before the batch budget

  const uint64_t cheap_expected =
      MatchSequential(idx, queries[1]).value().embeddings;

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.batch_timeout_seconds = 0.08;
  options.task_quota = 64;  // keep the straggler from burying the cheap one
  const BatchResult r = RunBatch(idx, queries, options);

  EXPECT_TRUE(r.queries[0].stats.timed_out);
  EXPECT_EQ(r.queries[1].stats.embeddings, cheap_expected);
  EXPECT_FALSE(r.queries[1].stats.timed_out);
  EXPECT_EQ(r.completed, 1u);
}

TEST(SchedulerTest, DirectCoreBatchOfOneMatchesExecutor) {
  // The Scheduler class is also usable directly: a batch of one must agree
  // with the executor facade bit-for-bit on counts.
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<QueryPlan> plan = BuildQueryPlan(q, idx);
  ASSERT_TRUE(plan.ok());

  SchedulerOptions options;
  options.parallel.num_threads = 3;
  options.parallel.scan_grain = 1;
  Scheduler scheduler(idx, options);
  EXPECT_EQ(scheduler.Submit(&plan.value()), 0u);
  SchedulerReport report = scheduler.Run();
  ASSERT_EQ(report.queries.size(), 1u);
  EXPECT_EQ(report.queries[0].stats.embeddings, 2u);
  EXPECT_EQ(report.workers.size(), 3u);

  ParallelOptions popts;
  popts.num_threads = 3;
  popts.scan_grain = 1;
  const ParallelResult via_facade =
      ExecutePlanParallel(idx, plan.value(), popts);
  EXPECT_EQ(via_facade.stats.embeddings, report.queries[0].stats.embeddings);
}

}  // namespace
}  // namespace hgmatch
