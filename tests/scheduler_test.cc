// Edge-path coverage of the shared scheduler core (parallel/scheduler.h)
// through its two facades: admission window, per-query task quota, timeouts
// measured from admission, limit overshoot bounds, degenerate pool sizes,
// fairness under an expensive query, and input-order determinism.

#include "parallel/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "core/hgmatch.h"
#include "parallel/batch_runner.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

// Complete "co-occurrence" data hypergraph: every pair {i, j} of m label-0
// vertices is a hyperedge, so path queries blow up combinatorially — the
// expensive-query stressor of these tests.
Hypergraph PairCliqueData(uint32_t m) {
  Hypergraph h;
  h.AddVertices(m, 0);
  for (VertexId i = 0; i < m; ++i) {
    for (VertexId j = i + 1; j < m; ++j) (void)h.AddEdge({i, j});
  }
  return h;
}

// Path query of `k` edges over label-0 vertices: {0,1}, {1,2}, ...
Hypergraph PathQuery(uint32_t k) {
  Hypergraph q;
  q.AddVertices(k + 1, 0);
  for (VertexId v = 0; v < k; ++v) (void)q.AddEdge({v, v + 1});
  return q;
}

// Three structurally distinct query shapes, for pool-degeneracy checks.
std::vector<Hypergraph> DistinctQueries() {
  std::vector<Hypergraph> queries;
  queries.push_back(PaperQueryHypergraph());
  {
    Hypergraph q;  // single {A,B} edge
    const Label A = 0, B = 1;
    q.AddVertex(A);
    q.AddVertex(B);
    (void)q.AddEdge({0, 1});
    queries.push_back(std::move(q));
  }
  {
    Hypergraph q;  // single {A,A,B,C} edge
    const Label A = 0, B = 1, C = 2;
    q.AddVertex(A);
    q.AddVertex(A);
    q.AddVertex(B);
    q.AddVertex(C);
    (void)q.AddEdge({0, 1, 2, 3});
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<uint64_t> SequentialCounts(const IndexedHypergraph& idx,
                                       const std::vector<Hypergraph>& queries) {
  std::vector<uint64_t> expected;
  for (const Hypergraph& q : queries) {
    Result<MatchStats> r = MatchSequential(idx, q);
    expected.push_back(r.ok() ? r.value().embeddings : 0);
  }
  return expected;
}

TEST(SchedulerTest, DeterministicInputOrderAcrossConfigurations) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  std::vector<Hypergraph> queries;
  for (uint32_t k : {1u, 2u, 3u}) queries.push_back(PathQuery(k));
  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);
  // Pairwise-distinct counts, so any cross-query mix-up is visible.
  ASSERT_NE(expected[0], expected[1]);
  ASSERT_NE(expected[1], expected[2]);
  ASSERT_NE(expected[0], expected[2]);

  for (uint32_t threads : {1u, 4u}) {
    for (uint32_t window : {0u, 1u, 2u}) {
      for (uint64_t quota : {uint64_t{0}, uint64_t{2}}) {
        BatchOptions options;
        options.parallel.num_threads = threads;
        options.parallel.scan_grain = 1;
        options.max_inflight_queries = window;
        options.task_quota = quota;
        const BatchResult r = RunBatch(idx, queries, options);
        ASSERT_EQ(r.queries.size(), queries.size());
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_EQ(r.queries[i].stats.embeddings, expected[i])
              << "query " << i << " threads=" << threads
              << " window=" << window << " quota=" << quota;
        }
        EXPECT_EQ(r.completed, queries.size());
      }
    }
  }
}

TEST(SchedulerTest, ZeroAndSingleThreadPools) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(13));
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));
  std::vector<Hypergraph> queries = DistinctQueries();
  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);

  // num_threads = 0 resolves to hardware_concurrency (>= 1 worker).
  BatchOptions defaults;
  const BatchResult auto_pool = RunBatch(idx, queries, defaults);
  EXPECT_GE(auto_pool.workers.size(), 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(auto_pool.queries[i].stats.embeddings, expected[i]);
  }

  // A single worker still honours admission windows and quotas.
  BatchOptions one;
  one.parallel.num_threads = 1;
  one.max_inflight_queries = 1;
  one.task_quota = 1;
  const BatchResult single = RunBatch(idx, queries, one);
  EXPECT_EQ(single.workers.size(), 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(single.queries[i].stats.embeddings, expected[i]);
  }
}

TEST(SchedulerTest, AdmissionWindowOfOneSerialisesQueries) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(12));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(2));
  queries.push_back(PathQuery(3));
  queries.push_back(PathQuery(2).Clone());  // identical to queries[0]

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.max_inflight_queries = 1;
  options.plan_cache = false;  // every copy runs, so admission is observable
  const BatchResult r = RunBatch(idx, queries, options);

  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.queries[i].stats.embeddings, expected[i]) << "query " << i;
  }
  // With a window of one, query i is only admitted once query i-1 retired
  // its last task.
  for (size_t i = 1; i < queries.size(); ++i) {
    const double prev_finish =
        r.queries[i - 1].admit_seconds + r.queries[i - 1].stats.seconds;
    EXPECT_GE(r.queries[i].admit_seconds, prev_finish) << "query " << i;
  }
}

TEST(SchedulerTest, MidRunAdmissionsDoNotRequireWorkStealing) {
  // Queries admitted mid-run are seeded through the shared injection queue
  // that idle workers drain directly, so an admission window composes with
  // work stealing disabled: every query still spreads and completes exactly.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(10));
  std::vector<Hypergraph> queries;
  for (uint32_t k : {1u, 2u, 3u, 1u, 2u, 3u}) queries.push_back(PathQuery(k));
  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.scan_grain = 1;
  options.parallel.work_stealing = false;
  options.max_inflight_queries = 2;
  options.plan_cache = false;  // every copy is admitted and executed
  const BatchResult r = RunBatch(idx, queries, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.queries[i].stats.embeddings, expected[i]) << "query " << i;
  }
  EXPECT_EQ(r.completed, queries.size());
}

TEST(SchedulerTest, AdmissionChurnStressKeepsCountsExact) {
  // Regression: mid-run admission used to push its SCAN ranges one Spawn at
  // a time into a live deque, so a thief could retire the first range —
  // ctx->pending transiently zero — before the next was pushed, running the
  // last-task path in Finish() twice: the admission slot was double-freed
  // and the unsigned inflight counter wrapped, hanging the run. Many tiny
  // queries through a window of 1 maximise mid-run admissions; the batch
  // must terminate with exact per-query counts.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  std::vector<Hypergraph> queries;
  for (int i = 0; i < 32; ++i) queries.push_back(PathQuery(1 + i % 2));
  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.scan_grain = 1;  // one hyperedge per task: maximum churn
  options.max_inflight_queries = 1;
  options.plan_cache = false;
  const BatchResult r = RunBatch(idx, queries, options);
  ASSERT_EQ(r.queries.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.queries[i].stats.embeddings, expected[i]) << "query " << i;
  }
  EXPECT_EQ(r.completed, queries.size());
}

TEST(SchedulerTest, FairnessCheapQueryCompletesUnderExpensiveLoad) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(4));  // expensive: burns its whole budget
  queries.push_back(PathQuery(1));  // cheap: one SCAN pass

  const uint64_t cheap_expected =
      MatchSequential(idx, queries[1]).value().embeddings;

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.timeout_seconds = 0.25;  // only the expensive one hits it
  options.max_inflight_queries = 2;
  options.task_quota = 64;
  const BatchResult r = RunBatch(idx, queries, options);

  // The cheap query is admitted alongside the expensive one and completes
  // exactly, milliseconds into the run, while the expensive query is still
  // saturating the pool (it runs its full 0.25s budget).
  EXPECT_TRUE(r.queries[0].stats.timed_out);
  EXPECT_FALSE(r.queries[1].stats.timed_out);
  EXPECT_EQ(r.queries[1].stats.embeddings, cheap_expected);
  const double cheap_finish =
      r.queries[1].admit_seconds + r.queries[1].stats.seconds;
  const double expensive_finish =
      r.queries[0].admit_seconds + r.queries[0].stats.seconds;
  EXPECT_LT(cheap_finish, expensive_finish);
  EXPECT_EQ(r.completed, 1u);
}

TEST(SchedulerTest, TaskQuotaKeepsCountsExact) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(14));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(3));
  queries.push_back(PathQuery(2));

  const std::vector<uint64_t> expected = SequentialCounts(idx, queries);
  for (uint64_t quota : {uint64_t{1}, uint64_t{8}}) {
    BatchOptions options;
    options.parallel.num_threads = 4;
    options.task_quota = quota;
    const BatchResult r = RunBatch(idx, queries, options);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(r.queries[i].stats.embeddings, expected[i])
          << "query " << i << " quota=" << quota;
    }
  }
}

TEST(SchedulerTest, LimitOvershootIsBoundedByPoolSize) {
  const uint32_t threads = 4;
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(20));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(3));

  BatchOptions options;
  options.parallel.num_threads = threads;
  options.parallel.limit = 10;
  const BatchResult r = RunBatch(idx, queries, options);
  EXPECT_TRUE(r.queries[0].stats.limit_hit);
  // Every emission goes through one fetch_add on the per-query counter, and
  // the emitting worker that crosses the limit stops itself before its next
  // child — so each of the other workers can emit at most one straggler.
  EXPECT_GE(r.queries[0].stats.embeddings, 10u);
  EXPECT_LE(r.queries[0].stats.embeddings, 10u + threads);
}

TEST(SchedulerTest, PerQueryTimeoutFiresMidBatchAndIsolatesNeighbours) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(4));  // far more work than the budget allows
  queries.push_back(PathQuery(1));
  queries.push_back(PathQuery(1).Clone());

  const uint64_t cheap_expected =
      MatchSequential(idx, queries[1]).value().embeddings;

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.timeout_seconds = 0.05;
  options.plan_cache = false;
  const BatchResult r = RunBatch(idx, queries, options);

  EXPECT_TRUE(r.queries[0].stats.timed_out);
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_FALSE(r.queries[i].stats.timed_out) << "query " << i;
    EXPECT_EQ(r.queries[i].stats.embeddings, cheap_expected) << "query " << i;
  }
  EXPECT_EQ(r.completed, 2u);
}

TEST(SchedulerTest, PerQueryTimeoutMeasuredFromAdmission) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(4));  // burns its whole 0.15s budget
  queries.push_back(PathQuery(1));  // admitted after ~0.15s, finishes in ms

  const uint64_t cheap_expected =
      MatchSequential(idx, queries[1]).value().embeddings;

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.timeout_seconds = 0.15;
  options.max_inflight_queries = 1;
  const BatchResult r = RunBatch(idx, queries, options);

  EXPECT_TRUE(r.queries[0].stats.timed_out);
  // The cheap query was admitted only after the expensive one exhausted its
  // budget; were timeouts measured from batch start it would be dead on
  // arrival. Measured from admission, it completes exactly.
  EXPECT_GE(r.queries[1].admit_seconds, 0.05);
  EXPECT_FALSE(r.queries[1].stats.timed_out);
  EXPECT_EQ(r.queries[1].stats.embeddings, cheap_expected);
}

TEST(SchedulerTest, CompletedCountsAreNeverMarkedTimedOut) {
  // A deadline that has long expired before Run() still yields exact,
  // un-flagged results when every task completes its counts (the scheduler
  // only reports timed_out when work was actually dropped).
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  std::vector<Hypergraph> queries;
  queries.push_back(PaperQueryHypergraph());

  BatchOptions options;
  options.parallel.num_threads = 2;
  options.parallel.timeout_seconds = 1e-9;
  const BatchResult r = RunBatch(idx, queries, options);
  EXPECT_EQ(r.queries[0].stats.embeddings, 2u);
  EXPECT_FALSE(r.queries[0].stats.timed_out);
  EXPECT_EQ(r.completed, 1u);
}

TEST(SchedulerTest, BatchTimeoutStopsStragglersAndKeepsFinishedExact) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  std::vector<Hypergraph> queries;
  queries.push_back(PathQuery(4));  // straggler, stopped by the batch budget
  queries.push_back(PathQuery(1));  // finishes long before the batch budget

  const uint64_t cheap_expected =
      MatchSequential(idx, queries[1]).value().embeddings;

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.batch_timeout_seconds = 0.08;
  options.task_quota = 64;  // keep the straggler from burying the cheap one
  const BatchResult r = RunBatch(idx, queries, options);

  EXPECT_TRUE(r.queries[0].stats.timed_out);
  EXPECT_EQ(r.queries[1].stats.embeddings, cheap_expected);
  EXPECT_FALSE(r.queries[1].stats.timed_out);
  EXPECT_EQ(r.completed, 1u);
}

TEST(SchedulerTest, DirectCoreBatchOfOneMatchesExecutor) {
  // The Scheduler class is also usable directly: a batch of one must agree
  // with the executor facade bit-for-bit on counts.
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<QueryPlan> plan = BuildQueryPlan(q, idx);
  ASSERT_TRUE(plan.ok());

  SchedulerOptions options;
  options.parallel.num_threads = 3;
  options.parallel.scan_grain = 1;
  Scheduler scheduler(idx, options);
  EXPECT_EQ(scheduler.Submit(&plan.value()), 0u);
  SchedulerReport report = scheduler.Run();
  ASSERT_EQ(report.queries.size(), 1u);
  EXPECT_EQ(report.queries[0].stats.embeddings, 2u);
  EXPECT_EQ(report.workers.size(), 3u);

  ParallelOptions popts;
  popts.num_threads = 3;
  popts.scan_grain = 1;
  const ParallelResult via_facade =
      ExecutePlanParallel(idx, plan.value(), popts);
  EXPECT_EQ(via_facade.stats.embeddings, report.queries[0].stats.embeddings);
}

// A sink whose first Emit blocks until Release(): with an admission window
// of 1 the owning "plug" query deterministically holds the window while a
// test stages queries behind it.
class GateSink : public EmbeddingSink {
 public:
  void Emit(const EdgeId*, uint32_t) override {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
  }

  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return entered_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(SchedulerTest, ContextTableStaysBoundedUnderStreamingChurn) {
  // Bounded retention: thousands of queries stream through a tiny window;
  // the heavy context table must track in-flight work and Release() must
  // recycle the slim slots, so neither structure grows with the total ever
  // submitted (the months-long-service guarantee).
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(6));
  const Hypergraph query = PathQuery(1);
  Result<QueryPlan> plan = BuildQueryPlan(query, idx);
  ASSERT_TRUE(plan.ok());

  SchedulerOptions options;
  options.parallel.num_threads = 2;
  options.max_inflight_queries = 2;
  Scheduler scheduler(idx, options);
  scheduler.Start();

  constexpr int kWaves = 40;
  constexpr int kPerWave = 50;  // 2000 submissions in total
  size_t max_live = 0;
  size_t max_slots = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<uint32_t> ids;
    for (int i = 0; i < kPerWave; ++i) {
      ids.push_back(scheduler.Submit(&plan.value(), SubmitOptions{}));
    }
    max_live = std::max(max_live, scheduler.LiveContexts());
    max_slots = std::max(max_slots, scheduler.RetainedSlots());
    for (uint32_t id : ids) {
      EXPECT_EQ(scheduler.WaitQuery(id).status, QueryStatus::kOk);
      EXPECT_TRUE(scheduler.Release(id));
      EXPECT_FALSE(scheduler.Release(id));  // released slots are gone
    }
  }
  // Bounded by one wave (what was genuinely outstanding) plus a few slots
  // whose finishing worker had not yet run its recycle step when sampled —
  // never by the 2000 submissions that passed through.
  EXPECT_LE(max_live, static_cast<size_t>(kPerWave) + 4);
  EXPECT_LE(max_slots, static_cast<size_t>(kPerWave) + 4);

  scheduler.Seal();
  const SchedulerReport report = scheduler.Join();
  // Workers are joined: every deferred recycle has run, so nothing at all
  // is retained — and with every slot released, Join's report does not
  // materialise an O(ever-submitted) outcome vector either.
  EXPECT_EQ(scheduler.LiveContexts(), 0u);
  EXPECT_EQ(scheduler.RetainedSlots(), 0u);
  EXPECT_EQ(report.queries.size(), 0u);
}

// ----------------------------------------------- completion-hook contract --
//
// The contract of SubmitOptions::completion: exactly once per query, for
// every terminal status, after the outcome is retrievable, never under a
// scheduler lock. The lock clause is asserted by re-entering the scheduler
// from inside the hook (TryGetQuery/LiveContexts take the admission lock):
// a hook invoked with that non-recursive mutex held deadlocks on the spot
// and fails the suite through its CTest TIMEOUT — the try-lock assertion,
// in structural form.

// Hook bookkeeping shared by the contract tests.
struct HookProbe {
  std::atomic<int> fires{0};
  std::atomic<QueryStatus> status{QueryStatus::kOk};
  std::atomic<uint64_t> embeddings{0};
};

TEST(SchedulerCallbackTest, OkLimitAndTimeoutFireOnceFromThePool) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(20));
  const uint64_t cheap_expected =
      MatchSequential(idx, PathQuery(1)).value().embeddings;

  struct Case {
    uint32_t path_len;
    double timeout = 0;
    uint64_t limit = 0;
    QueryStatus expected;
  };
  const std::vector<Case> cases = {
      {1, 0, 0, QueryStatus::kOk},
      {3, 0, 10, QueryStatus::kLimit},
      {4, 0.05, 0, QueryStatus::kTimeout},
  };
  for (const Case& c : cases) {
    Hypergraph q = PathQuery(c.path_len);
    Result<QueryPlan> plan = BuildQueryPlan(q, idx);
    ASSERT_TRUE(plan.ok());

    SchedulerOptions options;
    options.parallel.num_threads = 2;
    options.parallel.scan_grain = 4;
    options.task_quota = 64;
    Scheduler scheduler(idx, options);
    HookProbe probe;
    SubmitOptions so;
    so.timeout_seconds = c.timeout > 0 ? c.timeout : -1;
    if (c.limit != 0) so.limit = c.limit;
    so.completion = [&](const QueryOutcome& out) {
      probe.fires.fetch_add(1);
      probe.status.store(out.status);
      probe.embeddings.store(out.stats.embeddings);
      // Retrievable from inside the hook, and no scheduler lock held
      // (these calls take the admission lock; holding it here deadlocks).
      const QueryOutcome* got = scheduler.TryGetQuery(0);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->status, out.status);
      (void)scheduler.LiveContexts();
    };
    ASSERT_EQ(scheduler.Submit(&plan.value(), so), 0u);
    scheduler.Run();
    EXPECT_EQ(probe.fires.load(), 1)
        << "path=" << c.path_len << " expected "
        << QueryStatusName(c.expected);
    EXPECT_EQ(probe.status.load(), c.expected);
    if (c.expected == QueryStatus::kOk) {
      EXPECT_EQ(probe.embeddings.load(), cheap_expected);
    }
  }
}

TEST(SchedulerCallbackTest, CancelledAndRejectedFireOnceSynchronously) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(6));
  const Hypergraph query = PathQuery(1);
  Result<QueryPlan> plan = BuildQueryPlan(query, idx);
  ASSERT_TRUE(plan.ok());

  SchedulerOptions options;
  options.parallel.num_threads = 2;
  options.parallel.scan_grain = 1;
  options.max_inflight_queries = 1;
  options.max_queued_queries = 1;
  Scheduler scheduler(idx, options);
  scheduler.Start();

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  const uint32_t plug = scheduler.Submit(&plan.value(), plug_options);
  gate.AwaitEntered();  // the plug owns the only admission slot

  // Cancelled while queued: the hook fires from inside Cancel(), on this
  // thread, before Cancel returns.
  HookProbe cancelled;
  SubmitOptions queued_options;
  queued_options.completion = [&](const QueryOutcome& out) {
    cancelled.fires.fetch_add(1);
    cancelled.status.store(out.status);
    (void)scheduler.LiveContexts();  // deadlocks if a lock were held
  };
  const uint32_t queued = scheduler.Submit(&plan.value(), queued_options);
  EXPECT_EQ(cancelled.fires.load(), 0);  // still waiting: nothing final yet
  EXPECT_TRUE(scheduler.Cancel(queued));
  EXPECT_EQ(cancelled.fires.load(), 1);
  EXPECT_EQ(cancelled.status.load(), QueryStatus::kCancelled);
  ASSERT_NE(scheduler.TryGetQuery(queued), nullptr);

  // Shed by the queue bound: the hook fires from inside Submit(), before
  // the caller even learns the index.
  const uint32_t waiting = scheduler.Submit(&plan.value(), SubmitOptions{});
  HookProbe rejected;
  SubmitOptions shed_options;
  shed_options.completion = [&](const QueryOutcome& out) {
    rejected.fires.fetch_add(1);
    rejected.status.store(out.status);
    (void)scheduler.LiveContexts();
  };
  const uint32_t shed = scheduler.Submit(&plan.value(), shed_options);
  EXPECT_EQ(rejected.fires.load(), 1);
  EXPECT_EQ(rejected.status.load(), QueryStatus::kRejected);
  ASSERT_NE(scheduler.TryGetQuery(shed), nullptr);

  gate.Release();
  EXPECT_EQ(scheduler.WaitQuery(plug).status, QueryStatus::kOk);
  EXPECT_EQ(scheduler.WaitQuery(waiting).status, QueryStatus::kOk);
  scheduler.Seal();
  scheduler.Join();
  // Nothing fired twice, and the plug/waiting queries (no hook) changed
  // nothing.
  EXPECT_EQ(cancelled.fires.load(), 1);
  EXPECT_EQ(rejected.fires.load(), 1);
}

TEST(SchedulerCallbackTest, PreStartCancelFiresBeforeTheRun) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(6));
  const Hypergraph query = PathQuery(1);
  Result<QueryPlan> plan = BuildQueryPlan(query, idx);
  ASSERT_TRUE(plan.ok());

  SchedulerOptions options;
  options.parallel.num_threads = 2;
  Scheduler scheduler(idx, options);
  HookProbe probe;
  SubmitOptions so;
  so.completion = [&](const QueryOutcome& out) {
    probe.fires.fetch_add(1);
    probe.status.store(out.status);
  };
  const uint32_t doomed = scheduler.Submit(&plan.value(), so);
  const uint32_t survivor = scheduler.Submit(&plan.value(), SubmitOptions{});
  EXPECT_TRUE(scheduler.Cancel(doomed));
  EXPECT_EQ(probe.fires.load(), 1);  // resolved before the pool even starts
  EXPECT_EQ(probe.status.load(), QueryStatus::kCancelled);

  SchedulerReport report = scheduler.Run();
  EXPECT_EQ(probe.fires.load(), 1);
  EXPECT_EQ(report.queries[doomed].status, QueryStatus::kCancelled);
  EXPECT_EQ(report.queries[survivor].status, QueryStatus::kOk);
}

TEST(SchedulerCallbackTest, ExactlyOnceUnderChurnWithCancels) {
  // Many tiny queries through a window of 1 with a cancel sprinkled over
  // every third submission: the hook must fire exactly once per query no
  // matter which path resolved it (worker finish, cancel-while-queued, or
  // admission of an already-stopped query).
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  const Hypergraph query = PathQuery(1);
  Result<QueryPlan> plan = BuildQueryPlan(query, idx);
  ASSERT_TRUE(plan.ok());

  SchedulerOptions options;
  options.parallel.num_threads = 4;
  options.parallel.scan_grain = 1;
  options.max_inflight_queries = 1;
  Scheduler scheduler(idx, options);
  scheduler.Start();

  constexpr int kQueries = 48;
  std::vector<std::atomic<int>> fires(kQueries);
  std::vector<uint32_t> ids;
  for (int i = 0; i < kQueries; ++i) {
    SubmitOptions so;
    so.completion = [&fires, i](const QueryOutcome&) {
      fires[i].fetch_add(1);
    };
    ids.push_back(scheduler.Submit(&plan.value(), so));
    if (i % 3 == 0) scheduler.Cancel(ids.back());
  }
  scheduler.Seal();
  scheduler.Join();
  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(fires[i].load(), 1) << "query " << i;
    const QueryOutcome* out = scheduler.TryGetQuery(ids[i]);
    ASSERT_NE(out, nullptr) << "query " << i;
    EXPECT_TRUE(out->status == QueryStatus::kOk ||
                out->status == QueryStatus::kCancelled)
        << "query " << i << ": " << QueryStatusName(out->status);
  }
}

TEST(SchedulerTest, QueueDepthBoundShedsOnlyTheOverflow) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(6));
  const Hypergraph query = PathQuery(1);
  Result<QueryPlan> plan = BuildQueryPlan(query, idx);
  ASSERT_TRUE(plan.ok());
  const uint64_t expected =
      MatchSequential(idx, query).value().embeddings;

  SchedulerOptions options;
  options.parallel.num_threads = 2;
  options.parallel.scan_grain = 1;
  options.max_inflight_queries = 1;
  options.max_queued_queries = 1;
  Scheduler scheduler(idx, options);
  scheduler.Start();

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  const uint32_t plug = scheduler.Submit(&plan.value(), plug_options);
  gate.AwaitEntered();  // the plug now owns the only admission slot

  const uint32_t waiting = scheduler.Submit(&plan.value(), SubmitOptions{});
  EXPECT_EQ(scheduler.TryGetQuery(waiting), nullptr);  // queued, not shed

  // Queue at its bound: the next submission is rejected synchronously.
  const uint32_t shed = scheduler.Submit(&plan.value(), SubmitOptions{});
  const QueryOutcome* shed_out = scheduler.TryGetQuery(shed);
  ASSERT_NE(shed_out, nullptr);
  EXPECT_EQ(shed_out->status, QueryStatus::kRejected);
  EXPECT_EQ(shed_out->stats.embeddings, 0u);
  EXPECT_EQ(scheduler.RejectedCount(), 1u);
  EXPECT_FALSE(scheduler.Cancel(shed));  // already finished

  // Cancelling the waiting query leaves only a corpse entry in the policy
  // queue; the bound must count the *effective* backlog (now zero), so the
  // next submission queues instead of being shed.
  EXPECT_TRUE(scheduler.Cancel(waiting));
  const uint32_t after_cancel =
      scheduler.Submit(&plan.value(), SubmitOptions{});
  EXPECT_EQ(scheduler.TryGetQuery(after_cancel), nullptr);  // queued
  EXPECT_EQ(scheduler.RejectedCount(), 1u);

  gate.Release();
  // The admitted query and the one admitted after the cancel both finish
  // with exact counts: shedding affects the overflow only.
  EXPECT_EQ(scheduler.WaitQuery(plug).status, QueryStatus::kOk);
  EXPECT_EQ(scheduler.WaitQuery(waiting).status, QueryStatus::kCancelled);
  EXPECT_EQ(scheduler.WaitQuery(after_cancel).status, QueryStatus::kOk);
  EXPECT_EQ(scheduler.WaitQuery(after_cancel).stats.embeddings, expected);
  scheduler.Seal();
  scheduler.Join();
}

}  // namespace
}  // namespace hgmatch
