// Coverage of the streaming query service (parallel/service.h): concurrent
// Submit while the pool runs, Cancel of queued vs in-flight queries, Wait
// after Shutdown, cross-submission plan-cache mirroring, deterministic
// strict-priority and weighted-fair admission order (including the 3:1
// weight-share guarantee), and the acceptance bar that a query submitted
// mid-run produces MatchStats identical to a standalone MatchSequential run
// under every admission policy with work stealing on and off. All tests are
// TSan-clean by construction (no raw shared state outside the library).

#include "parallel/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.h"

#include "core/hgmatch.h"
#include "io/loader.h"
#include "io/writer.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

// Complete "co-occurrence" data hypergraph: every pair {i, j} of m label-0
// vertices is a hyperedge, so path queries blow up combinatorially — the
// expensive-query stressor of these tests.
Hypergraph PairCliqueData(uint32_t m) {
  Hypergraph h;
  h.AddVertices(m, 0);
  for (VertexId i = 0; i < m; ++i) {
    for (VertexId j = i + 1; j < m; ++j) (void)h.AddEdge({i, j});
  }
  return h;
}

// Path query of `k` edges over label-0 vertices: {0,1}, {1,2}, ...
Hypergraph PathQuery(uint32_t k) {
  Hypergraph q;
  q.AddVertices(k + 1, 0);
  for (VertexId v = 0; v < k; ++v) (void)q.AddEdge({v, v + 1});
  return q;
}

// A sink whose first Emit blocks until Release(): submitted with an
// admission window of 1, the owning "plug" query deterministically holds
// the window while a test stages the queries behind it.
class GateSink : public EmbeddingSink {
 public:
  void Emit(const EdgeId*, uint32_t) override {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
  }

  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return entered_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

ServiceOptions BaseOptions(uint32_t threads) {
  ServiceOptions o;
  o.parallel.num_threads = threads;
  o.parallel.scan_grain = 1;
  return o;
}

TEST(ServiceTest, MidRunSubmitMatchesSequentialAcrossPoliciesAndStealing) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  std::vector<Hypergraph> queries;
  for (uint32_t k : {1u, 2u, 3u, 2u, 1u, 3u}) queries.push_back(PathQuery(k));
  std::vector<MatchStats> expected;
  for (const Hypergraph& q : queries) {
    Result<MatchStats> r = MatchSequential(idx, q);
    ASSERT_TRUE(r.ok());
    expected.push_back(r.value());
  }

  for (AdmissionPolicy policy :
       {AdmissionPolicy::kFifo, AdmissionPolicy::kPriority,
        AdmissionPolicy::kWeightedFair}) {
    for (bool stealing : {true, false}) {
      ServiceOptions options = BaseOptions(4);
      options.admission = policy;
      options.parallel.work_stealing = stealing;
      options.max_inflight_queries = 2;
      options.plan_cache = false;  // every copy executes
      MatchService service(idx, options);

      // The pool is live from construction, so every one of these
      // submissions is a mid-run admission.
      std::vector<Ticket> tickets;
      for (size_t i = 0; i < queries.size(); ++i) {
        SubmitOptions so;
        so.tenant_id = static_cast<uint32_t>(i % 2);
        so.priority = static_cast<int32_t>(i);
        so.weight = 1.0 + static_cast<double>(i % 3);
        tickets.push_back(service.Submit(queries[i].Clone(), so));
      }
      for (size_t i = 0; i < tickets.size(); ++i) {
        const QueryOutcome& out = tickets[i].Wait();
        EXPECT_EQ(out.status, QueryStatus::kOk) << "query " << i;
        // Embedding counts are the cross-engine exactness contract (the
        // candidate/filtered counters differ by construction: the
        // sequential engine counts the SCAN step's table rows as
        // candidates, the task engine matches them for free per
        // Observation V.1).
        EXPECT_EQ(out.stats.embeddings, expected[i].embeddings)
            << "query " << i << " policy=" << static_cast<int>(policy)
            << " stealing=" << stealing;
      }
      service.Shutdown();
    }
  }
}

TEST(ServiceTest, ConcurrentSubmitFromManyThreadsDuringARun) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  const uint64_t expected1 =
      MatchSequential(idx, PathQuery(1)).value().embeddings;
  const uint64_t expected2 =
      MatchSequential(idx, PathQuery(2)).value().embeddings;
  ASSERT_NE(expected1, expected2);

  ServiceOptions options = BaseOptions(4);
  options.max_inflight_queries = 2;
  options.plan_cache = false;
  MatchService service(idx, options);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> submitters;
  std::vector<std::vector<uint64_t>> got(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint32_t k = 1 + static_cast<uint32_t>((s + i) % 2);
        Ticket t = service.Submit(PathQuery(k));
        got[s].push_back(t.Wait().stats.embeddings == (k == 1 ? expected1
                                                              : expected2));
      }
    });
  }
  for (auto& t : submitters) t.join();
  service.Drain();
  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.submitted, kSubmitters * kPerThread);
  EXPECT_EQ(report.executed, kSubmitters * kPerThread);
  for (int s = 0; s < kSubmitters; ++s) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(got[s][i]) << "submitter " << s << " query " << i;
    }
  }
}

TEST(ServiceTest, CancelQueuedQueryResolvesImmediately) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());

  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  options.plan_cache = false;
  MatchService service(idx, options);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  Ticket plug = service.Submit(PaperQueryHypergraph(), plug_options);
  gate.AwaitEntered();  // the plug now holds the only admission slot

  Ticket queued = service.Submit(PaperQueryHypergraph());
  EXPECT_EQ(queued.TryGet(), nullptr);
  EXPECT_TRUE(queued.Cancel());
  // Resolved right away, while the plug still blocks the window: a
  // cancelled queued query does not wait for a slot it will never use.
  const QueryOutcome* out = queued.TryGet();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->status, QueryStatus::kCancelled);
  EXPECT_EQ(out->stats.embeddings, 0u);
  EXPECT_FALSE(queued.Cancel());  // already finished

  gate.Release();
  EXPECT_EQ(plug.Wait().status, QueryStatus::kOk);
  EXPECT_EQ(plug.Wait().stats.embeddings, 2u);
  EXPECT_FALSE(plug.Cancel());  // finished queries cannot be cancelled
  service.Shutdown();
}

TEST(ServiceTest, CancelInFlightQueryStopsItAndSparesTheRest) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  const uint64_t cheap_expected =
      MatchSequential(idx, PathQuery(1)).value().embeddings;

  ServiceOptions options = BaseOptions(4);
  options.task_quota = 64;  // the monster cannot bury later queries
  MatchService service(idx, options);

  Ticket monster = service.Submit(PathQuery(4));  // far beyond test scale
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(monster.Cancel());
  const QueryOutcome& out = monster.Wait();
  EXPECT_EQ(out.status, QueryStatus::kCancelled);
  EXPECT_FALSE(out.stats.timed_out);  // cancelled, not timed out

  // The service stays healthy: a fresh query completes exactly.
  Ticket cheap = service.Submit(PathQuery(1));
  EXPECT_EQ(cheap.Wait().status, QueryStatus::kOk);
  EXPECT_EQ(cheap.Wait().stats.embeddings, cheap_expected);
  service.Shutdown();
}

TEST(ServiceTest, WaitAfterShutdownReturnsStoredOutcomes) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchService service(idx, BaseOptions(2));
  Ticket a = service.Submit(PaperQueryHypergraph());
  Ticket b = service.Submit(PaperQueryHypergraph());
  service.Shutdown();

  EXPECT_EQ(a.Wait().stats.embeddings, 2u);
  EXPECT_EQ(b.Wait().stats.embeddings, 2u);
  EXPECT_EQ(b.Wait().mirrored, true);  // sink-less structural repeat

  // Submissions after Shutdown are rejected, not lost in limbo.
  Ticket late = service.Submit(PaperQueryHypergraph());
  EXPECT_FALSE(late.status().ok());
  EXPECT_EQ(late.Wait().status, QueryStatus::kPlanError);
}

TEST(ServiceTest, PlanCacheMirrorsRepeatsAcrossSubmissions) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchService service(idx, BaseOptions(2));

  Ticket first = service.Submit(PaperQueryHypergraph());
  EXPECT_EQ(first.Wait().stats.embeddings, 2u);
  EXPECT_FALSE(first.Wait().mirrored);

  // A structurally identical sink-less repeat, submitted long after the
  // canonical finished, mirrors its exact counts instead of executing.
  Ticket repeat = service.Submit(PaperQueryHypergraph());
  EXPECT_EQ(repeat.Wait().stats.embeddings, 2u);
  EXPECT_TRUE(repeat.Wait().mirrored);

  // A repeat that carries a sink must execute (the sink needs its own
  // embedding stream), still reusing the cached plan.
  CollectSink collect;
  SubmitOptions with_sink;
  with_sink.sink = &collect;
  Ticket sinked = service.Submit(PaperQueryHypergraph(), with_sink);
  EXPECT_EQ(sinked.Wait().stats.embeddings, 2u);
  EXPECT_FALSE(sinked.Wait().mirrored);
  EXPECT_EQ(collect.count(), 2u);

  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.submitted, 3u);
  EXPECT_EQ(report.executed, 2u);
  EXPECT_EQ(report.mirrored, 1u);
  EXPECT_EQ(report.plan_cache_hits, 2u);
  EXPECT_EQ(report.unique_plans, 1u);
}

TEST(ServiceTest, StrictPriorityOrdersWaitingQueries) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(6));

  ServiceOptions options = BaseOptions(2);
  options.admission = AdmissionPolicy::kPriority;
  options.max_inflight_queries = 1;
  options.plan_cache = false;
  MatchService service(idx, options);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  plug_options.priority = 1000;
  Ticket plug = service.Submit(PathQuery(1), plug_options);
  gate.AwaitEntered();

  // Staged while the plug holds the window; admitted strictly by priority.
  std::vector<int32_t> priorities = {0, 5, 1, 5, -3};
  std::vector<Ticket> staged;
  for (int32_t p : priorities) {
    SubmitOptions so;
    so.priority = p;
    staged.push_back(service.Submit(PathQuery(1), so));
  }
  gate.Release();
  service.Drain();

  std::vector<std::pair<uint64_t, int32_t>> order;  // (admit_index, priority)
  for (size_t i = 0; i < staged.size(); ++i) {
    order.emplace_back(staged[i].Wait().admit_index, priorities[i]);
  }
  std::sort(order.begin(), order.end());
  // 5, 5, 1, 0, -3 — equal priorities keep submission order.
  EXPECT_EQ(order[0].second, 5);
  EXPECT_EQ(order[1].second, 5);
  EXPECT_EQ(order[2].second, 1);
  EXPECT_EQ(order[3].second, 0);
  EXPECT_EQ(order[4].second, -3);
  service.Shutdown();
}

TEST(ServiceTest, WeightedFairAdmissionHonoursThreeToOneWeights) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(6));

  ServiceOptions options = BaseOptions(2);
  options.admission = AdmissionPolicy::kWeightedFair;
  options.max_inflight_queries = 1;
  options.plan_cache = false;
  MatchService service(idx, options);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  plug_options.tenant_id = 99;
  Ticket plug = service.Submit(PathQuery(1), plug_options);
  gate.AwaitEntered();

  // Two tenants flood the service while the plug holds the window: A at
  // weight 3, B at weight 1.
  constexpr int kPerTenant = 24;
  std::vector<Ticket> tenant_a, tenant_b;
  std::thread flood_a([&] {
    SubmitOptions so;
    so.tenant_id = 1;
    so.weight = 3.0;
    for (int i = 0; i < kPerTenant; ++i) {
      tenant_a.push_back(service.Submit(PathQuery(1), so));
    }
  });
  std::thread flood_b([&] {
    SubmitOptions so;
    so.tenant_id = 2;
    so.weight = 1.0;
    for (int i = 0; i < kPerTenant; ++i) {
      tenant_b.push_back(service.Submit(PathQuery(1), so));
    }
  });
  flood_a.join();
  flood_b.join();
  gate.Release();
  service.Drain();

  // The plug consumed admission slot 0; the first 16 real admissions must
  // split 12:4 — the 3:1 weight ratio — independent of how the two flood
  // threads interleaved their submissions (virtual-time accounting, not
  // arrival order, decides).
  int a_in_first_16 = 0, b_in_first_16 = 0;
  for (const Ticket& t : tenant_a) {
    const uint64_t ai = t.Wait().admit_index;
    if (ai >= 1 && ai <= 16) ++a_in_first_16;
  }
  for (const Ticket& t : tenant_b) {
    const uint64_t ai = t.Wait().admit_index;
    if (ai >= 1 && ai <= 16) ++b_in_first_16;
  }
  EXPECT_EQ(a_in_first_16, 12);
  EXPECT_EQ(b_in_first_16, 4);

  // Everyone eventually completes — fairness shapes order, not outcomes.
  for (const Ticket& t : tenant_a) {
    EXPECT_EQ(t.Wait().status, QueryStatus::kOk);
  }
  for (const Ticket& t : tenant_b) {
    EXPECT_EQ(t.Wait().status, QueryStatus::kOk);
  }
  service.Shutdown();
}

TEST(ServiceTest, DrainWaitsForEverythingSubmittedSoFar) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(10));
  MatchService service(idx, BaseOptions(4));
  std::vector<Ticket> tickets;
  for (uint32_t k : {1u, 2u, 3u}) {
    tickets.push_back(service.Submit(PathQuery(k)));
  }
  service.Drain();
  for (const Ticket& t : tickets) {
    EXPECT_NE(t.TryGet(), nullptr);  // Drain returned => already finished
  }
  service.Shutdown();
}

TEST(ServiceTest, PlanErrorResolvesImmediately) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchService service(idx, BaseOptions(2));
  Ticket bad = service.Submit(Hypergraph());  // empty query: planning fails
  EXPECT_FALSE(bad.status().ok());
  const QueryOutcome* out = bad.TryGet();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->status, QueryStatus::kPlanError);
  EXPECT_FALSE(bad.Cancel());
  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.plan_errors, 1u);
  EXPECT_EQ(report.executed, 0u);
}

TEST(ServiceTest, WaitWithTimeoutExpiresThenSucceeds) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());

  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  options.plan_cache = false;
  MatchService service(idx, options);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  Ticket plug = service.Submit(PaperQueryHypergraph(), plug_options);
  gate.AwaitEntered();  // the plug holds the only admission slot

  // The queued query cannot finish while the plug blocks the window: a
  // bounded wait expires and returns null without cancelling anything.
  Ticket queued = service.Submit(PaperQueryHypergraph());
  EXPECT_EQ(queued.Wait(0.05), nullptr);
  EXPECT_EQ(queued.TryGet(), nullptr);  // expiry did not resolve it

  gate.Release();
  const QueryOutcome* out = queued.Wait(30.0);  // success before expiry
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->status, QueryStatus::kOk);
  EXPECT_EQ(out->stats.embeddings, 2u);
  // A resolved ticket answers a bounded wait immediately, even with a
  // zero budget, from the stored outcome.
  EXPECT_EQ(queued.Wait(0.0), out);
  service.Shutdown();
}

TEST(ServiceTest, QueueBoundRejectsOverflowAndSparesAdmittedQueries) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());

  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  options.max_queued_queries = 1;
  options.plan_cache = false;  // repeats must not mirror past the queue
  MatchService service(idx, options);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  Ticket plug = service.Submit(PaperQueryHypergraph(), plug_options);
  gate.AwaitEntered();

  Ticket waiting = service.Submit(PaperQueryHypergraph());
  EXPECT_EQ(waiting.TryGet(), nullptr);  // queued within the bound

  // The queue is at its bound: this submission is shed synchronously.
  Ticket shed = service.Submit(PaperQueryHypergraph());
  const QueryOutcome* shed_out = shed.TryGet();
  ASSERT_NE(shed_out, nullptr);
  EXPECT_EQ(shed_out->status, QueryStatus::kRejected);
  EXPECT_EQ(shed_out->stats.embeddings, 0u);
  EXPECT_FALSE(shed.Cancel());  // already resolved

  gate.Release();
  EXPECT_EQ(plug.Wait().status, QueryStatus::kOk);
  EXPECT_EQ(waiting.Wait().status, QueryStatus::kOk);
  EXPECT_EQ(waiting.Wait().stats.embeddings, 2u);

  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.submitted, 3u);
  EXPECT_EQ(report.executed, 2u);  // the shed query never ran
  EXPECT_EQ(report.rejected, 1u);
}

TEST(ServiceTest, RejectedSubmissionDoesNotPoisonThePlanCache) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());

  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  options.max_queued_queries = 1;  // plan_cache stays on (default)
  MatchService service(idx, options);

  // Structurally distinct single-edge queries: one cache entry per shape.
  auto edge_query = [](Label a, Label b) {
    Hypergraph q;
    q.AddVertex(a);
    q.AddVertex(b);
    (void)q.AddEdge({0, 1});
    return q;
  };

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  Ticket plug = service.Submit(PaperQueryHypergraph(), plug_options);
  gate.AwaitEntered();

  Ticket waiting = service.Submit(edge_query(0, 1));
  Ticket shed = service.Submit(edge_query(0, 2));  // first of its shape
  EXPECT_EQ(shed.Wait().status, QueryStatus::kRejected);

  gate.Release();
  service.Drain();

  // The shed first-of-its-shape submission must NOT have become the
  // shape's cache canonical: the next copy is a cache *miss* that
  // executes normally, and only then do repeats mirror it.
  Ticket again = service.Submit(edge_query(0, 2));
  EXPECT_EQ(again.Wait().status, QueryStatus::kOk);
  EXPECT_FALSE(again.Wait().mirrored);
  Ticket repeat = service.Submit(edge_query(0, 2));
  EXPECT_EQ(repeat.Wait().status, QueryStatus::kOk);
  EXPECT_TRUE(repeat.Wait().mirrored);
  EXPECT_EQ(repeat.Wait().stats.embeddings, again.Wait().stats.embeddings);

  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.submitted, 5u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.mirrored, 1u);
  // plug, waiting, shed and `again` each compiled a plan (the rejected
  // one was deliberately not cached); only `repeat` hit the cache.
  EXPECT_EQ(report.unique_plans, 4u);
  EXPECT_EQ(report.plan_cache_hits, 1u);
}

TEST(ServiceTest, AcceptedRunRestoresMirroringAfterCancelledCanonical) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());

  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;  // plan_cache stays on (default)
  MatchService service(idx, options);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  Ticket plug = service.Submit(PaperQueryHypergraph(), plug_options);
  gate.AwaitEntered();

  // The first submission of this shape becomes its cache canonical, then
  // is cancelled while waiting — an unusable source of counts.
  auto shape = [] {
    Hypergraph q;
    q.AddVertex(0);
    q.AddVertex(1);
    (void)q.AddEdge({0, 1});
    return q;
  };
  Ticket cancelled = service.Submit(shape());
  EXPECT_TRUE(cancelled.Cancel());
  EXPECT_EQ(cancelled.Wait().status, QueryStatus::kCancelled);

  gate.Release();
  service.Drain();

  // The next same-budget copy cannot mirror the cancelled canonical, so
  // it executes — and takes over as canonical, restoring mirroring for
  // every copy after it.
  Ticket second = service.Submit(shape());
  EXPECT_EQ(second.Wait().status, QueryStatus::kOk);
  EXPECT_FALSE(second.Wait().mirrored);
  Ticket third = service.Submit(shape());
  EXPECT_EQ(third.Wait().status, QueryStatus::kOk);
  EXPECT_TRUE(third.Wait().mirrored);
  EXPECT_EQ(third.Wait().stats.embeddings, second.Wait().stats.embeddings);

  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.mirrored, 1u);
  EXPECT_EQ(report.plan_cache_hits, 2u);  // `second` and `third`
  EXPECT_EQ(report.unique_plans, 2u);     // the plug's shape + this shape
}

// Single-edge query {0,1} over two distinct labels — the throwaway shape
// used by the mirror/re-dispatch tests so the plug's plan never collides.
Hypergraph TwoLabelEdgeQuery() {
  Hypergraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  (void)q.AddEdge({0, 1});
  return q;
}

TEST(ServiceTest, CancelledCanonicalRedispatchesLiveMirrors) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  const uint64_t expected =
      MatchSequential(idx, TwoLabelEdgeQuery()).value().embeddings;

  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  MatchService service(idx, options);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  Ticket plug = service.Submit(PaperQueryHypergraph(), plug_options);
  gate.AwaitEntered();  // the plug holds the only admission slot

  // Canonical + two live mirrors, all pending behind the plug.
  Ticket canonical = service.Submit(TwoLabelEdgeQuery());
  Ticket m1 = service.Submit(TwoLabelEdgeQuery());
  Ticket m2 = service.Submit(TwoLabelEdgeQuery());

  // Cancelling the canonical must not take the mirrors with it: they
  // re-dispatch as independent executions on the shared compiled plan.
  EXPECT_TRUE(canonical.Cancel());
  EXPECT_EQ(canonical.Wait().status, QueryStatus::kCancelled);

  gate.Release();
  service.Drain();
  for (Ticket* t : {&m1, &m2}) {
    const QueryOutcome& out = t->Wait();
    EXPECT_EQ(out.status, QueryStatus::kOk);
    EXPECT_FALSE(out.mirrored);  // executed for real, not copied
    EXPECT_EQ(out.stats.embeddings, expected);
  }
  EXPECT_EQ(plug.Wait().status, QueryStatus::kOk);

  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.redispatched, 2u);
  EXPECT_EQ(report.mirrored, 0u);  // both re-dispatches moved out
  EXPECT_EQ(report.plan_cache_hits, 2u);
  EXPECT_EQ(report.unique_plans, 2u);
}

TEST(ServiceTest, TimedOutCanonicalRedispatchesMirror) {
  // Sized so the post-release remainder of the canonical's work crosses
  // the scheduler's 1024-call deadline-poll stride: the worker then sees
  // the expired budget and drops the rest — a real per-query timeout.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(12));
  const uint64_t expected =
      MatchSequential(idx, PathQuery(3)).value().embeddings;

  // One worker: the canonical blocks it in the gated sink past its own
  // deadline, so everything after the release is over budget.
  MatchService service(idx, BaseOptions(1));

  GateSink gate;
  SubmitOptions canonical_options;
  canonical_options.sink = &gate;
  canonical_options.timeout_seconds = 1.0;
  Ticket canonical = service.Submit(PathQuery(3), canonical_options);
  gate.AwaitEntered();

  // Same budgets, no sink: attaches to the blocked canonical as a mirror.
  SubmitOptions mirror_options;
  mirror_options.timeout_seconds = 1.0;
  Ticket mirror = service.Submit(PathQuery(3), mirror_options);

  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  gate.Release();

  EXPECT_EQ(canonical.Wait().status, QueryStatus::kTimeout);
  // The mirror's timeout budget arms at its *own* re-admission, so the
  // re-dispatched run finishes comfortably and stays exact.
  const QueryOutcome& out = mirror.Wait();
  EXPECT_EQ(out.status, QueryStatus::kOk);
  EXPECT_FALSE(out.mirrored);
  EXPECT_EQ(out.stats.embeddings, expected);

  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.redispatched, 1u);
  EXPECT_EQ(report.mirrored, 0u);
}

TEST(ServiceTest, CancelMirrorLeavesCanonicalUntouched) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  const uint64_t expected =
      MatchSequential(idx, TwoLabelEdgeQuery()).value().embeddings;

  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  MatchService service(idx, options);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  Ticket plug = service.Submit(PaperQueryHypergraph(), plug_options);
  gate.AwaitEntered();

  Ticket canonical = service.Submit(TwoLabelEdgeQuery());
  Ticket mirror = service.Submit(TwoLabelEdgeQuery());

  // Cancelling a mirror detaches and resolves only that mirror …
  EXPECT_TRUE(mirror.Cancel());
  const QueryOutcome* out = mirror.TryGet();
  ASSERT_NE(out, nullptr);  // resolved immediately, no pool round-trip
  EXPECT_EQ(out->status, QueryStatus::kCancelled);
  // … while the canonical is still pending and completes untouched.
  EXPECT_EQ(canonical.TryGet(), nullptr);
  gate.Release();
  service.Drain();
  EXPECT_EQ(canonical.Wait().status, QueryStatus::kOk);
  EXPECT_EQ(canonical.Wait().stats.embeddings, expected);

  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.redispatched, 0u);
}

TEST(ServiceTest, IsomorphicRepeatHitsPlanCacheAndMirrors) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchService service(idx, BaseOptions(2));

  Ticket first = service.Submit(PaperQueryHypergraph());
  EXPECT_EQ(first.Wait().stats.embeddings, 2u);

  // The paper query with vertices renamed u0<->u3 (both label A) and the
  // hyperedges reordered: structurally different bytes, isomorphic shape.
  Hypergraph renamed;
  const Label A = 0, B = 1, C = 2;
  for (Label l : {A, C, A, A, B}) renamed.AddVertex(l);
  (void)renamed.AddEdge({1, 3, 0, 4});  // was {0,1,3,4}
  (void)renamed.AddEdge({2, 4});
  (void)renamed.AddEdge({3, 1, 2});     // was {0,1,2}
  Ticket second = service.Submit(std::move(renamed));
  EXPECT_EQ(second.Wait().status, QueryStatus::kOk);
  EXPECT_TRUE(second.Wait().mirrored);  // counts are iso-invariant
  EXPECT_EQ(second.Wait().stats.embeddings, 2u);

  // Near-miss: one label changed (u4: B -> C) — must NOT hit the cache.
  Hypergraph near;
  for (Label l : {A, C, A, A, C}) near.AddVertex(l);
  (void)near.AddEdge({2, 4});
  (void)near.AddEdge({0, 1, 2});
  (void)near.AddEdge({0, 1, 3, 4});
  Ticket third = service.Submit(std::move(near));
  EXPECT_EQ(third.Wait().status, QueryStatus::kOk);
  EXPECT_FALSE(third.Wait().mirrored);

  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.plan_cache_hits, 1u);
  EXPECT_EQ(report.plan_cache_isomorphic_hits, 1u);
  EXPECT_EQ(report.mirrored, 1u);
  EXPECT_EQ(report.unique_plans, 2u);  // paper shape + the near-miss
}

TEST(ServiceTest, IsomorphismDisabledFallsBackToExactMatching) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServiceOptions options = BaseOptions(2);
  options.plan_cache_isomorphism = false;
  MatchService service(idx, options);

  Ticket first = service.Submit(PaperQueryHypergraph());
  EXPECT_EQ(first.Wait().stats.embeddings, 2u);
  // An exact repeat still mirrors …
  Ticket repeat = service.Submit(PaperQueryHypergraph());
  EXPECT_TRUE(repeat.Wait().mirrored);
  // … but a renamed copy does not: exact keys see the rename.
  Hypergraph renamed;
  const Label A = 0, B = 1, C = 2;
  for (Label l : {A, C, A, A, B}) renamed.AddVertex(l);
  (void)renamed.AddEdge({2, 4});
  (void)renamed.AddEdge({3, 1, 2});
  (void)renamed.AddEdge({1, 3, 0, 4});
  Ticket other = service.Submit(std::move(renamed));
  EXPECT_FALSE(other.Wait().mirrored);

  const ServiceReport report = service.Shutdown();
  EXPECT_EQ(report.plan_cache_hits, 1u);
  EXPECT_EQ(report.plan_cache_isomorphic_hits, 0u);
  EXPECT_EQ(report.unique_plans, 2u);
}

TEST(ServiceTest, CostAwareWfqHoldsSharesUnderHeterogeneousQuerySizes) {
  // The 3:1 guarantee, in *work* units: tenant A (weight 3) floods heavy
  // queries while tenant B (weight 1) floods cheap ones. With cost-aware
  // charging each admission advances a tenant's virtual time by the
  // measured task count of its plan's previous run over its weight, so the
  // admission sequence is exactly the weighted-fair schedule over costs —
  // verified against a replay of the virtual-time algorithm.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(6));

  ServiceOptions options = BaseOptions(2);
  options.admission = AdmissionPolicy::kWeightedFair;
  options.max_inflight_queries = 1;
  // plan_cache + cost_aware_wfq stay at their defaults (both on).
  MatchService service(idx, options);

  // Teach the plan cache each plan's measured task count.
  const uint64_t heavy_cost = std::max<uint64_t>(
      1, service.Submit(PathQuery(3)).Wait().stats.expansions);
  const uint64_t cheap_cost = std::max<uint64_t>(
      1, service.Submit(PathQuery(1)).Wait().stats.expansions);
  ASSERT_GT(heavy_cost, cheap_cost);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  plug_options.tenant_id = 99;
  Ticket plug = service.Submit(PathQuery(2), plug_options);
  gate.AwaitEntered();

  // Staged from one thread while the plug holds the window, interleaved
  // A,B,A,B,... so submission indices (the vtime tie-break) are known.
  constexpr int kPerTenant = 18;
  std::vector<CountSink> sinks(2 * kPerTenant);  // sinks force execution
  std::vector<Ticket> tenant_a, tenant_b;
  for (int i = 0; i < kPerTenant; ++i) {
    SubmitOptions a;
    a.tenant_id = 1;
    a.weight = 3.0;
    a.sink = &sinks[2 * i];
    tenant_a.push_back(service.Submit(PathQuery(3), a));
    SubmitOptions b;
    b.tenant_id = 2;
    b.weight = 1.0;
    b.sink = &sinks[2 * i + 1];
    tenant_b.push_back(service.Submit(PathQuery(1), b));
  }
  gate.Release();
  service.Drain();

  // Replay the algorithm: both tenants enter at the global virtual time
  // the plug left behind; least vtime admits next; ties go to the earlier
  // head submission (A's k-th precedes B's k-th, so ties pick A iff
  // admitted counts are level); each admission charges cost/weight.
  std::vector<int> expected_tenants;  // 1 = A, 2 = B
  double va = 1, vb = 1;
  int na = 0, nb = 0;
  while (na < kPerTenant || nb < kPerTenant) {
    bool pick_a;
    if (na == kPerTenant) {
      pick_a = false;
    } else if (nb == kPerTenant) {
      pick_a = true;
    } else if (va != vb) {
      pick_a = va < vb;
    } else {
      pick_a = na <= nb;
    }
    if (pick_a) {
      expected_tenants.push_back(1);
      va += static_cast<double>(heavy_cost) / 3.0;
      ++na;
    } else {
      expected_tenants.push_back(2);
      vb += static_cast<double>(cheap_cost) / 1.0;
      ++nb;
    }
  }

  // Admission indices 0..2 went to the priming queries and the plug; the
  // flood owns 3 onwards.
  std::vector<std::pair<uint64_t, int>> actual;  // (admit_index, tenant)
  for (const Ticket& t : tenant_a) {
    EXPECT_EQ(t.Wait().status, QueryStatus::kOk);
    actual.emplace_back(t.Wait().admit_index, 1);
  }
  for (const Ticket& t : tenant_b) {
    EXPECT_EQ(t.Wait().status, QueryStatus::kOk);
    actual.emplace_back(t.Wait().admit_index, 2);
  }
  std::sort(actual.begin(), actual.end());
  ASSERT_EQ(actual.size(), expected_tenants.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].second, expected_tenants[i])
        << "admission " << i << " (admit_index " << actual[i].first << ")";
  }

  // The plain-language consequence: per admitted query A pays ~heavy/3 and
  // B pays ~cheap, so with heavy > 3*cheap tenant B must land *more*
  // queries than A over the interval where both are backlogged — flat
  // 1-unit charging would have given A and B equal counts 3:1 apart.
  if (heavy_cost > 3 * cheap_cost) {
    const size_t first_half = actual.size() / 2;
    int a_count = 0, b_count = 0;
    for (size_t i = 0; i < first_half; ++i) {
      (actual[i].second == 1 ? a_count : b_count)++;
    }
    EXPECT_GT(b_count, a_count);
  }
  service.Shutdown();
}

// ------------------------------------------------------ completion hooks --

TEST(ServiceCallbackTest, HooksFireOnceForEveryResolutionPath) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());

  // Service-wide hook: id -> (fires, final status), recorded under a test
  // mutex (the hook may run on pool workers and submit threads alike).
  std::mutex seen_mutex;
  std::map<uint64_t, std::pair<int, QueryStatus>> seen;

  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  options.max_queued_queries = 1;
  options.on_query_complete = [&](uint64_t id, const QueryOutcome& out) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    auto& entry = seen[id];
    ++entry.first;
    entry.second = out.status;
  };
  auto status_of = [&](const Ticket& t) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    auto it = seen.find(t.id());
    return it == seen.end()
               ? std::pair<int, QueryStatus>{0, QueryStatus::kOk}
               : it->second;
  };

  MatchService service(idx, options);

  // Executed: the per-submit hook and the service-wide hook both fire with
  // the exact final outcome. Hooks fire on the resolving pool thread just
  // *after* Wait's condition variable is armed, so their effects are
  // asserted once Shutdown has joined the pool, not right after Wait.
  std::atomic<int> submit_hook_fires{0};
  std::atomic<uint64_t> submit_hook_embeddings{0};
  SubmitOptions with_hook;
  with_hook.completion = [&](const QueryOutcome& out) {
    submit_hook_fires.fetch_add(1);
    submit_hook_embeddings.store(out.stats.embeddings);
  };
  Ticket executed = service.Submit(PaperQueryHypergraph(), with_hook);
  EXPECT_EQ(executed.Wait().status, QueryStatus::kOk);

  // Mirrored: a sink-less repeat of the finished canonical resolves inside
  // Submit — its hook has fired by the time Submit returns. (The canonical
  // resolved on a pool worker; Wait above proves resolution, and the
  // repeat's cache hit below proves the canonical outcome is mirrorable.)
  Ticket mirror = service.Submit(PaperQueryHypergraph());
  EXPECT_EQ(status_of(mirror), (std::pair<int, QueryStatus>{
                                   1, QueryStatus::kOk}));
  EXPECT_TRUE(mirror.Wait().mirrored);

  // Plan error: resolved (and reported) synchronously.
  Ticket bad = service.Submit(Hypergraph());
  EXPECT_EQ(status_of(bad), (std::pair<int, QueryStatus>{
                                1, QueryStatus::kPlanError}));

  // Rejected by the queue bound: a plug holds the window, one query
  // waits, the overflow is shed — and its hook fires inside Submit.
  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  Ticket plug = service.Submit(PaperQueryHypergraph(), plug_options);
  gate.AwaitEntered();
  CountSink waiting_sink;  // distinct budgets not needed; sink skips mirror
  SubmitOptions waiting_options;
  waiting_options.sink = &waiting_sink;
  Ticket waiting = service.Submit(PaperQueryHypergraph(), waiting_options);
  CountSink shed_sink;
  SubmitOptions shed_options;
  shed_options.sink = &shed_sink;
  Ticket shed = service.Submit(PaperQueryHypergraph(), shed_options);
  EXPECT_EQ(status_of(shed), (std::pair<int, QueryStatus>{
                                 1, QueryStatus::kRejected}));
  gate.Release();
  service.Shutdown();  // joins the pool: every hook has fired by now

  EXPECT_EQ(submit_hook_fires.load(), 1);
  EXPECT_EQ(submit_hook_embeddings.load(), 2u);
  EXPECT_EQ(status_of(executed), (std::pair<int, QueryStatus>{
                                     1, QueryStatus::kOk}));
  EXPECT_EQ(status_of(plug), (std::pair<int, QueryStatus>{
                                 1, QueryStatus::kOk}));
  EXPECT_EQ(status_of(waiting), (std::pair<int, QueryStatus>{
                                    1, QueryStatus::kOk}));

  // Submission after Shutdown: rejected as a plan error, hook included.
  Ticket late = service.Submit(PaperQueryHypergraph());
  EXPECT_EQ(status_of(late), (std::pair<int, QueryStatus>{
                                 1, QueryStatus::kPlanError}));

  // Exactly one firing per submission, full stop.
  std::lock_guard<std::mutex> lock(seen_mutex);
  EXPECT_EQ(seen.size(), 7u);
  for (const auto& [id, entry] : seen) {
    EXPECT_EQ(entry.first, 1) << "ticket " << id;
  }
}

TEST(ServiceCallbackTest, MirrorHooksShareTheCanonicalFinish) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());

  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  MatchService service(idx, options);

  GateSink gate;
  SubmitOptions plug_options;
  plug_options.sink = &gate;
  Ticket plug = service.Submit(PaperQueryHypergraph(), plug_options);
  gate.AwaitEntered();  // the plug holds the only admission slot

  // A fresh structure queued behind the plug, plus two sink-less repeats
  // that attach to it as mirrors while it is still unresolved.
  auto shape = [] {
    Hypergraph q;
    q.AddVertex(0);
    q.AddVertex(1);
    (void)q.AddEdge({0, 1});
    return q;
  };
  std::atomic<int> canonical_fires{0}, mirror_fires{0}, cancel_fires{0};
  std::atomic<bool> canonical_was_first{false};
  SubmitOptions canonical_options;
  canonical_options.completion = [&](const QueryOutcome&) {
    canonical_fires.fetch_add(1);
  };
  Ticket canonical = service.Submit(shape(), canonical_options);
  SubmitOptions mirror_options;
  mirror_options.completion = [&](const QueryOutcome& out) {
    mirror_fires.fetch_add(1);
    EXPECT_TRUE(out.mirrored);
    // Mirrors resolve in the same step as their canonical, after it.
    canonical_was_first.store(canonical_fires.load() == 1);
  };
  Ticket mirror = service.Submit(shape(), mirror_options);
  SubmitOptions doomed_options;
  doomed_options.completion = [&](const QueryOutcome& out) {
    cancel_fires.fetch_add(1);
    EXPECT_EQ(out.status, QueryStatus::kCancelled);
  };
  Ticket doomed_mirror = service.Submit(shape(), doomed_options);

  // Cancelling a mirror resolves it (and fires its hooks) immediately,
  // while canonical and sibling stay pending.
  EXPECT_TRUE(doomed_mirror.Cancel());
  EXPECT_EQ(cancel_fires.load(), 1);
  EXPECT_EQ(canonical_fires.load(), 0);
  EXPECT_EQ(mirror_fires.load(), 0);

  gate.Release();
  const QueryOutcome& out = mirror.Wait();
  EXPECT_EQ(out.status, QueryStatus::kOk);
  EXPECT_TRUE(out.mirrored);
  EXPECT_EQ(canonical.Wait().status, QueryStatus::kOk);
  service.Shutdown();  // joins the pool: every hook has fired by now
  EXPECT_EQ(canonical_fires.load(), 1);
  EXPECT_EQ(mirror_fires.load(), 1);
  EXPECT_EQ(cancel_fires.load(), 1);
  EXPECT_TRUE(canonical_was_first.load());
}

// --------------------------------------------------- randomized soak test --

// N submitter threads churn a seeded mix of submit / wait / bounded-wait /
// cancel / tiny-timeout / mirrored-duplicate operations against one
// MatchService; every outcome that claims exact counts is cross-checked
// against MatchSequential, and the per-submit completion hook is counted
// for exactly-once delivery. The seed is deterministic (override with
// HGMATCH_SOAK_SEED) and logged so any failure replays bit-for-bit.
TEST(ServiceSoakTest, RandomizedChurnCrossChecksSequential) {
  uint64_t seed = 0x5eedc0ffee;
  if (const char* env = std::getenv("HGMATCH_SOAK_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  SCOPED_TRACE("soak seed = " + std::to_string(seed) +
               " (re-run with HGMATCH_SOAK_SEED)");

  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  std::vector<Hypergraph> shapes;
  for (uint32_t k : {1u, 2u, 3u}) shapes.push_back(PathQuery(k));
  std::vector<uint64_t> expected;
  for (const Hypergraph& q : shapes) {
    expected.push_back(MatchSequential(idx, q).value().embeddings);
  }

  ServiceOptions options = BaseOptions(4);
  options.max_inflight_queries = 3;
  options.admission = AdmissionPolicy::kWeightedFair;
  MatchService service(idx, options);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 120;
  std::atomic<uint64_t> hook_fires{0};
  // The duplicate-op branch submits a second ticket per op; the ledger
  // below needs the true submission count.
  std::atomic<uint64_t> total_extra_submits{0};
  std::vector<std::vector<std::string>> failures(kThreads);
  // Per-submission hook counters, shared with the hooks themselves: a hook
  // fires just after Wait is released, so exactly-once is asserted only
  // after Shutdown has joined every firing thread.
  std::vector<std::vector<std::shared_ptr<std::atomic<int>>>> fired(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(Mix64(seed) + static_cast<uint64_t>(t));
      uint64_t extra_submits = 0;
      auto fail = [&](int op, const std::string& what) {
        failures[t].push_back("op " + std::to_string(op) + ": " + what);
      };
      for (int op = 0; op < kOpsPerThread; ++op) {
        const size_t shape = rng.NextBounded(shapes.size());
        SubmitOptions so;
        so.tenant_id = static_cast<uint32_t>(t);
        so.weight = 1.0 + static_cast<double>(rng.NextBounded(3));
        auto counter = std::make_shared<std::atomic<int>>(0);
        fired[t].push_back(counter);
        so.completion = [&hook_fires, counter](const QueryOutcome&) {
          hook_fires.fetch_add(1);
          counter->fetch_add(1);
        };
        const uint64_t roll = rng.NextBounded(100);
        if (roll < 40) {
          // Plain submit + wait: must be exact (a sink forces execution,
          // so no mirror can inherit a stranger's cancellation).
          CountSink sink;
          so.sink = &sink;
          Ticket ticket = service.Submit(shapes[shape].Clone(), so);
          const QueryOutcome& out = ticket.Wait();
          if (out.status != QueryStatus::kOk) {
            fail(op, std::string("expected ok, got ") +
                         QueryStatusName(out.status));
          } else if (out.stats.embeddings != expected[shape]) {
            fail(op, "embedding count mismatch");
          }
        } else if (roll < 60) {
          // Sink-less submit: may execute or mirror — either way the
          // outcome must be ok with exact counts. A mirror whose
          // canonical another thread cancels re-dispatches instead of
          // inheriting the cancellation, so no other status is legal.
          Ticket ticket = service.Submit(shapes[shape].Clone(), so);
          const QueryOutcome& out = ticket.Wait();
          if (out.status != QueryStatus::kOk) {
            fail(op, std::string("expected ok, got ") +
                         QueryStatusName(out.status));
          } else if (out.stats.embeddings != expected[shape]) {
            fail(op, "mirrored/executed count mismatch");
          }
        } else if (roll < 70) {
          // Submit + immediate cancel: cancelled (with partial counts) or
          // finished first — both legal, nothing else is.
          CountSink sink;
          so.sink = &sink;
          Ticket ticket = service.Submit(shapes[shape].Clone(), so);
          ticket.Cancel();
          const QueryOutcome& out = ticket.Wait();
          if (out.status != QueryStatus::kOk &&
              out.status != QueryStatus::kCancelled) {
            fail(op, std::string("expected ok/cancelled, got ") +
                         QueryStatusName(out.status));
          } else if (out.status == QueryStatus::kOk &&
                     out.stats.embeddings != expected[shape]) {
            fail(op, "cancel-race count mismatch");
          }
        } else if (roll < 80) {
          // Mirrored duplicate + cancelled canonical: a sink-ful copy (a
          // canonical candidate), a sink-less duplicate that may attach
          // to it as a mirror, then cancel the first. The duplicate must
          // never inherit the cancellation — it re-dispatches and stays
          // exact.
          CountSink sink;
          so.sink = &sink;
          Ticket victim = service.Submit(shapes[shape].Clone(), so);
          SubmitOptions dup;
          dup.tenant_id = so.tenant_id;
          dup.weight = so.weight;
          auto dup_counter = std::make_shared<std::atomic<int>>(0);
          fired[t].push_back(dup_counter);
          dup.completion = [&hook_fires, dup_counter](const QueryOutcome&) {
            hook_fires.fetch_add(1);
            dup_counter->fetch_add(1);
          };
          ++extra_submits;
          Ticket duplicate = service.Submit(shapes[shape].Clone(), dup);
          victim.Cancel();
          const QueryOutcome& vout = victim.Wait();
          if (vout.status != QueryStatus::kOk &&
              vout.status != QueryStatus::kCancelled) {
            fail(op, std::string("victim: expected ok/cancelled, got ") +
                         QueryStatusName(vout.status));
          }
          const QueryOutcome& dout = duplicate.Wait();
          if (dout.status != QueryStatus::kOk) {
            fail(op, std::string("duplicate: expected ok, got ") +
                         QueryStatusName(dout.status));
          } else if (dout.stats.embeddings != expected[shape]) {
            fail(op, "duplicate count mismatch");
          }
        } else if (roll < 90) {
          // Bounded waits loop until resolution: expiry must never resolve
          // or corrupt the ticket.
          CountSink sink;
          so.sink = &sink;
          Ticket ticket = service.Submit(shapes[shape].Clone(), so);
          const QueryOutcome* out = nullptr;
          while ((out = ticket.Wait(0.002)) == nullptr) {
          }
          if (out->status != QueryStatus::kOk ||
              out->stats.embeddings != expected[shape]) {
            fail(op, "bounded-wait outcome mismatch");
          }
        } else {
          // Tiny per-query timeout: ok (everything finished in time, exact
          // counts) or timeout (work dropped) — never anything else.
          CountSink sink;
          so.sink = &sink;
          so.timeout_seconds = rng.NextBounded(2) == 0 ? 1e-7 : 0.001;
          Ticket ticket = service.Submit(shapes[shape].Clone(), so);
          const QueryOutcome& out = ticket.Wait();
          if (out.status == QueryStatus::kOk) {
            if (out.stats.embeddings != expected[shape]) {
              fail(op, "timed submit count mismatch");
            }
          } else if (out.status != QueryStatus::kTimeout) {
            fail(op, std::string("expected ok/timeout, got ") +
                         QueryStatusName(out.status));
          }
        }
      }
      total_extra_submits.fetch_add(extra_submits);
    });
  }
  for (auto& t : submitters) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (const std::string& f : failures[t]) {
      ADD_FAILURE() << "thread " << t << " " << f;
    }
  }

  const ServiceReport report = service.Shutdown();
  const uint64_t total_submitted =
      static_cast<uint64_t>(kThreads) * kOpsPerThread +
      total_extra_submits.load();
  EXPECT_EQ(report.submitted, total_submitted);
  EXPECT_EQ(hook_fires.load(), total_submitted);
  for (int t = 0; t < kThreads; ++t) {
    for (size_t op = 0; op < fired[t].size(); ++op) {
      EXPECT_EQ(fired[t][op]->load(), 1)
          << "thread " << t << " op " << op << " hook fire count";
    }
  }
  EXPECT_EQ(report.executed + report.mirrored + report.rejected +
                report.plan_errors,
            report.submitted);
}

// ---------------------------------------------------- query-set headers --

TEST(QuerySetHeaderTest, HeadersSurfaceAsSubmitOptions) {
  const std::string one = FormatHypergraph(PaperQueryHypergraph());
  const std::string text = "# query 0\n# tenant=7\n# priority=-2\n" + one +
                           "---\n# weight=2.5\n# timeout=1.5\n" + one +
                           "# query 2\n" + one;
  Result<std::vector<QuerySetEntry>> set = ParseQuerySetEntries(text);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set.value().size(), 3u);

  EXPECT_EQ(set.value()[0].submit.tenant_id, 7u);
  EXPECT_EQ(set.value()[0].submit.priority, -2);
  EXPECT_EQ(set.value()[0].submit.weight, 1.0);            // default
  EXPECT_LT(set.value()[0].submit.timeout_seconds, 0);     // inherit

  EXPECT_EQ(set.value()[1].submit.tenant_id, 0u);          // default
  EXPECT_EQ(set.value()[1].submit.weight, 2.5);
  EXPECT_EQ(set.value()[1].submit.timeout_seconds, 1.5);

  // Headers do not leak across separators.
  EXPECT_EQ(set.value()[2].submit.tenant_id, 0u);
  EXPECT_EQ(set.value()[2].submit.priority, 0);
}

TEST(QuerySetHeaderTest, MalformedHeaderIsAParseError) {
  const std::string one = FormatHypergraph(PaperQueryHypergraph());
  for (const char* header :
       {"# tenant=abc", "# tenant=-1", "# priority=high", "# weight=0",
        "# weight=-3", "# timeout=-1", "# timeout=soon"}) {
    Result<std::vector<QuerySetEntry>> set =
        ParseQuerySetEntries(std::string(header) + "\n" + one);
    EXPECT_FALSE(set.ok()) << header;
    EXPECT_NE(set.status().message().find("line 1"), std::string::npos)
        << set.status().ToString();
  }
}

TEST(QuerySetHeaderTest, UnknownCommentKeysStayComments) {
  const std::string one = FormatHypergraph(PaperQueryHypergraph());
  const std::string text =
      "# produced-by=sampler v2\n# note: tenant stuff\n# tenant 5\n" + one;
  Result<std::vector<QuerySetEntry>> set = ParseQuerySetEntries(text);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set.value().size(), 1u);
  EXPECT_EQ(set.value()[0].submit.tenant_id, 0u);  // "# tenant 5" has no '='
}

}  // namespace
}  // namespace hgmatch
