#include "util/set_ops.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hgmatch {
namespace {

using V = std::vector<uint32_t>;

TEST(SetOpsTest, IntersectBasics) {
  V out;
  Intersect({1, 3, 5, 7}, {3, 4, 5, 6}, &out);
  EXPECT_EQ(out, (V{3, 5}));
  Intersect({}, {1, 2}, &out);
  EXPECT_TRUE(out.empty());
  Intersect({1, 2}, {}, &out);
  EXPECT_TRUE(out.empty());
  Intersect({1, 2, 3}, {1, 2, 3}, &out);
  EXPECT_EQ(out, (V{1, 2, 3}));
  Intersect({1, 2}, {3, 4}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SetOpsTest, IntersectGallopPathMatchesMerge) {
  // Force the galloping path with a very asymmetric pair.
  V small = {5, 500, 5000, 49999};
  V large;
  for (uint32_t i = 0; i < 50000; ++i) large.push_back(i);
  V out;
  Intersect(small, large, &out);
  EXPECT_EQ(out, small);
  // And the reversed argument order.
  Intersect(large, small, &out);
  EXPECT_EQ(out, small);
}

TEST(SetOpsTest, IntersectSizeAndInPlace) {
  EXPECT_EQ(IntersectSize({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(IntersectSize({}, {1}), 0u);
  V a = {1, 2, 3, 9};
  IntersectInPlace(&a, {2, 9, 11});
  EXPECT_EQ(a, (V{2, 9}));
}

TEST(SetOpsTest, UnionBasics) {
  V out;
  Union({1, 3}, {2, 3, 4}, &out);
  EXPECT_EQ(out, (V{1, 2, 3, 4}));
  UnionInPlace(&out, {0, 9});
  EXPECT_EQ(out, (V{0, 1, 2, 3, 4, 9}));
  UnionInPlace(&out, {});
  EXPECT_EQ(out.size(), 6u);
}

TEST(SetOpsTest, UnionMany) {
  V a = {1, 4}, b = {2, 4, 8}, c = {0, 8};
  V out;
  UnionMany({&a, &b, &c}, &out);
  EXPECT_EQ(out, (V{0, 1, 2, 4, 8}));
  UnionMany({}, &out);
  EXPECT_TRUE(out.empty());
  UnionMany({&a}, &out);
  EXPECT_EQ(out, a);
  UnionMany({&a, &b}, &out);
  EXPECT_EQ(out, (V{1, 2, 4, 8}));
}

TEST(SetOpsTest, DifferenceAndPredicates) {
  V out;
  Difference({1, 2, 3, 4}, {2, 4, 5}, &out);
  EXPECT_EQ(out, (V{1, 3}));
  EXPECT_TRUE(Contains({1, 5, 9}, 5));
  EXPECT_FALSE(Contains({1, 5, 9}, 4));
  EXPECT_TRUE(Intersects({1, 9}, {9, 10}));
  EXPECT_FALSE(Intersects({1, 9}, {2, 10}));
  EXPECT_TRUE(IsSubset({2, 4}, {1, 2, 3, 4}));
  EXPECT_FALSE(IsSubset({2, 7}, {1, 2, 3, 4}));
  EXPECT_TRUE(IsSubset({}, {1}));
}

TEST(SetOpsTest, InsertSortedAndSortUnique) {
  V a = {2, 6};
  InsertSorted(&a, 4);
  InsertSorted(&a, 4);
  InsertSorted(&a, 1);
  InsertSorted(&a, 9);
  EXPECT_EQ(a, (V{1, 2, 4, 6, 9}));
  V b = {5, 1, 5, 3, 1};
  SortUnique(&b);
  EXPECT_EQ(b, (V{1, 3, 5}));
}

// Property sweep: all ops agree with std::set algebra on random inputs of
// varying density.
class SetOpsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SetOpsPropertyTest, MatchesStdSet) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const uint32_t universe = 1 + rng.NextBounded(200);
    auto sample = [&](size_t n) {
      std::set<uint32_t> s;
      for (size_t i = 0; i < n; ++i) s.insert(rng.NextBounded(universe));
      return V(s.begin(), s.end());
    };
    const V a = sample(rng.NextBounded(100));
    const V b = sample(rng.NextBounded(100));

    std::set<uint32_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
    V expect_i, expect_u, expect_d;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(expect_i));
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::back_inserter(expect_u));
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(expect_d));

    V out;
    Intersect(a, b, &out);
    EXPECT_EQ(out, expect_i);
    EXPECT_EQ(IntersectSize(a, b), expect_i.size());
    Union(a, b, &out);
    EXPECT_EQ(out, expect_u);
    Difference(a, b, &out);
    EXPECT_EQ(out, expect_d);
    EXPECT_EQ(Intersects(a, b), !expect_i.empty());
    EXPECT_EQ(IsSubset(a, b), expect_i.size() == a.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hgmatch
