#include "core/matching_order.h"

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"
#include "util/set_ops.h"

namespace hgmatch {
namespace {

TEST(MatchingOrderTest, PaperExampleOrder) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  // All three query signatures have cardinality 2; ties break to smaller
  // ids, giving the order used throughout the paper's Example V.1:
  // ({u2,u4}, {u0,u1,u2}, {u0,u1,u3,u4}).
  EXPECT_EQ(ComputeMatchingOrder(q, idx), (std::vector<EdgeId>{0, 1, 2}));
}

TEST(MatchingOrderTest, StartsAtMinimumCardinality) {
  // Data: many {A,A} edges, a single {A,B} edge.
  Hypergraph h;
  h.AddVertices(6, 0);
  const VertexId b = h.AddVertex(1);
  (void)h.AddEdge({0, 1});
  (void)h.AddEdge({1, 2});
  (void)h.AddEdge({2, 3});
  (void)h.AddEdge({3, 4});
  (void)h.AddEdge({4, b});
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));

  // Query: edge 0 = {A,A} (cardinality 4), edge 1 = {A,B} (cardinality 1).
  Hypergraph q;
  q.AddVertices(2, 0);
  const VertexId qb = q.AddVertex(1);
  (void)q.AddEdge({0, 1});
  (void)q.AddEdge({1, qb});
  EXPECT_EQ(ComputeMatchingOrder(q, idx), (std::vector<EdgeId>{1, 0}));
}

TEST(MatchingOrderTest, PrefersHigherOverlapOnEqualCardinality) {
  // Data gives each signature distinct cardinalities via repetitions.
  Hypergraph h;
  h.AddVertices(10, 0);
  (void)h.AddEdge({0, 1, 2});
  (void)h.AddEdge({3, 4, 5});
  (void)h.AddEdge({0, 1});
  (void)h.AddEdge({2, 3});
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));

  // Query: start edge {u0,u1,u2} (card 2 < card of pairs? both cards are 2).
  // Edge 1 shares two vertices with edge 0; edge 2 shares one. Equal
  // cardinalities => Card/overlap = 2/2 vs 2/1 => edge 1 goes first.
  Hypergraph q;
  q.AddVertices(4, 0);
  (void)q.AddEdge({0, 1, 2});  // edge 0
  (void)q.AddEdge({2, 3});     // edge 1, overlap 1 with edge 0
  (void)q.AddEdge({0, 1});     // edge 2, overlap 2 with edge 0
  const std::vector<EdgeId> order = ComputeMatchingOrder(q, idx);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);  // 2/2 = 1 beats 2/1 = 2
  EXPECT_EQ(order[2], 1u);
}

TEST(MatchingOrderTest, OrderIsAlwaysConnectedPermutation) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Hypergraph data = GenerateHypergraph(SmallRandomConfig(seed));
    IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));
    GeneratorConfig qc = SmallRandomConfig(seed + 100);
    qc.num_edges = 6;
    Hypergraph q = GenerateHypergraph(qc);
    if (q.NumEdges() == 0) continue;
    const std::vector<EdgeId> order = ComputeMatchingOrder(q, idx);
    ASSERT_EQ(order.size(), q.NumEdges());
    std::vector<uint8_t> seen(q.NumEdges(), 0);
    VertexSet covered;
    for (size_t i = 0; i < order.size(); ++i) {
      EXPECT_LT(order[i], q.NumEdges());
      EXPECT_FALSE(seen[order[i]]);
      seen[order[i]] = 1;
      if (i > 0 && q.IsConnected()) {
        EXPECT_GT(IntersectSize(covered, q.edge(order[i])), 0u)
            << "order not connected at position " << i;
      }
      for (VertexId v : q.edge(order[i])) InsertSorted(&covered, v);
    }
  }
}

TEST(QueryPlanTest, StepPrecomputationOnPaperExample) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<QueryPlan> plan = BuildQueryPlan(q, idx);
  ASSERT_TRUE(plan.ok());
  const QueryPlan& p = plan.value();
  ASSERT_EQ(p.NumSteps(), 3u);

  // Step 0: {u2,u4}, no previous steps, 2 query vertices so far.
  EXPECT_TRUE(p.steps[0].adjacent_prev.empty());
  EXPECT_TRUE(p.steps[0].nonadjacent_prev.empty());
  EXPECT_EQ(p.steps[0].num_query_vertices_after, 2u);

  // Step 1: {u0,u1,u2} shares u2 with step 0.
  ASSERT_EQ(p.steps[1].adjacent_prev.size(), 1u);
  EXPECT_EQ(p.steps[1].adjacent_prev[0].step, 0u);
  EXPECT_EQ(p.steps[1].adjacent_prev[0].shared, (std::vector<VertexId>{2}));
  EXPECT_EQ(p.steps[1].num_query_vertices_after, 4u);
  // u2's degree in the partial query before step 1 is 1 (only edge 0).
  EXPECT_EQ(p.steps[1].shared_info[0][0].degree_before, 1u);
  EXPECT_EQ(p.steps[1].shared_info[0][0].label, 0u);  // A

  // Step 2: {u0,u1,u3,u4} shares u4 with step 0 and u0,u1 with step 1.
  ASSERT_EQ(p.steps[2].adjacent_prev.size(), 2u);
  EXPECT_EQ(p.steps[2].adjacent_prev[0].shared, (std::vector<VertexId>{4}));
  EXPECT_EQ(p.steps[2].adjacent_prev[1].shared, (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(p.steps[2].num_query_vertices_after, 5u);
  EXPECT_TRUE(p.steps[2].nonadjacent_prev.empty());

  // Step 2 profiles: u0 (A, steps {1,2}), u1 (C, {1,2}), u3 (A, {2}),
  // u4 (B, {0,2}), sorted by (label, mask).
  ASSERT_EQ(p.steps[2].query_profiles.size(), 4u);
  const auto& profiles = p.steps[2].query_profiles;
  EXPECT_EQ(profiles[0].label, 0u);  // A
  EXPECT_EQ(profiles[0].steps_mask, 0b100ULL);  // u3: step 2 only
  EXPECT_EQ(profiles[1].label, 0u);
  EXPECT_EQ(profiles[1].steps_mask, 0b110ULL);  // u0: steps 1,2
  EXPECT_EQ(profiles[2].label, 1u);  // B
  EXPECT_EQ(profiles[2].steps_mask, 0b101ULL);  // u4: steps 0,2
  EXPECT_EQ(profiles[3].label, 2u);  // C
  EXPECT_EQ(profiles[3].steps_mask, 0b110ULL);  // u1: steps 1,2
}

TEST(QueryPlanTest, RejectsBadInputs) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph empty;
  empty.AddVertex(0);
  EXPECT_FALSE(BuildQueryPlan(empty, idx).ok());

  Hypergraph q = PaperQueryHypergraph();
  EXPECT_FALSE(BuildQueryPlanWithOrder(q, {0, 1}).ok());     // too short
  EXPECT_FALSE(BuildQueryPlanWithOrder(q, {0, 1, 1}).ok());  // repeat
  EXPECT_FALSE(BuildQueryPlanWithOrder(q, {0, 1, 9}).ok());  // out of range
  EXPECT_TRUE(BuildQueryPlanWithOrder(q, {2, 0, 1}).ok());   // any perm ok
}

TEST(QueryPlanTest, OrderAccessorRoundTrips) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<QueryPlan> plan = BuildQueryPlanWithOrder(q, {2, 0, 1});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().Order(), (std::vector<EdgeId>{2, 0, 1}));
}

}  // namespace
}  // namespace hgmatch
