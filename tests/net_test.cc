// Loopback coverage of the wire front end: frame encode/decode round
// trips and malformed-input rejection (net/protocol.h, no sockets), then
// a real MatchServer + MatchClient over 127.0.0.1 — submit/outcome parity
// with MatchSequential, pipelining, concurrent clients, cancel over the
// wire, connection drops cancelling in-flight queries, protocol errors
// closing the connection, and queue-depth backpressure surfacing as
// kRejected while admitted queries keep exact stats (the acceptance bar
// of the serve subsystem). Socket tests are POSIX-only and skip elsewhere.

#include "net/async_client.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/hgmatch.h"
#include "io/binary_format.h"
#include "io/byte_io.h"
#include "tests/test_fixtures.h"
#include "util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#define HGMATCH_NET_TEST_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace hgmatch {
namespace {

// ------------------------------------------------ protocol (no sockets) --

TEST(ProtocolTest, SubmitFrameRoundTripsOptionsAndQuery) {
  WireSubmit submit;
  submit.request_id = 77;
  submit.tenant_id = 5;
  submit.priority = -3;
  submit.weight = 2.5;
  submit.timeout_seconds = 1.25;
  submit.limit = 42;
  submit.query = PaperQueryHypergraph();

  Result<WireSubmit> decoded = DecodeSubmit(EncodeSubmit(submit));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().request_id, 77u);
  EXPECT_EQ(decoded.value().tenant_id, 5u);
  EXPECT_EQ(decoded.value().priority, -3);
  EXPECT_EQ(decoded.value().weight, 2.5);
  EXPECT_EQ(decoded.value().timeout_seconds, 1.25);
  EXPECT_EQ(decoded.value().limit, 42u);
  EXPECT_EQ(decoded.value().query.NumVertices(), 5u);
  EXPECT_EQ(decoded.value().query.NumEdges(), 3u);
  EXPECT_EQ(decoded.value().query.edge(2), PaperQueryHypergraph().edge(2));
}

TEST(ProtocolTest, OutcomeFrameRoundTripsFullStats) {
  WireOutcome wire;
  wire.request_id = 9;
  wire.outcome.status = QueryStatus::kLimit;
  wire.outcome.mirrored = true;
  wire.outcome.stats.embeddings = 101;
  wire.outcome.stats.candidates = 202;
  wire.outcome.stats.filtered = 150;
  wire.outcome.stats.expansions = 77;
  wire.outcome.stats.limit_hit = true;
  wire.outcome.stats.seconds = 0.5;
  wire.outcome.admit_seconds = 0.25;
  wire.outcome.finish_seconds = 0.75;
  wire.outcome.admit_index = 13;

  Result<WireOutcome> decoded = DecodeOutcome(EncodeOutcome(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const QueryOutcome& out = decoded.value().outcome;
  EXPECT_EQ(decoded.value().request_id, 9u);
  EXPECT_EQ(out.status, QueryStatus::kLimit);
  EXPECT_TRUE(out.mirrored);
  EXPECT_EQ(out.stats.embeddings, 101u);
  EXPECT_EQ(out.stats.candidates, 202u);
  EXPECT_EQ(out.stats.filtered, 150u);
  EXPECT_EQ(out.stats.expansions, 77u);
  EXPECT_TRUE(out.stats.limit_hit);
  EXPECT_EQ(out.stats.seconds, 0.5);
  EXPECT_EQ(out.admit_index, 13u);
}

TEST(ProtocolTest, RejectedFrameRoundTripsReason) {
  for (RejectReason reason :
       {RejectReason::kQueueFull, RejectReason::kRateLimited}) {
    WireRejected rejected;
    rejected.request_id = 321;
    rejected.reason = reason;
    Result<WireRejected> decoded = DecodeRejected(EncodeRejected(rejected));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().request_id, 321u);
    EXPECT_EQ(decoded.value().reason, reason);
  }
  EXPECT_STREQ(RejectReasonName(RejectReason::kQueueFull), "queue-full");
  EXPECT_STREQ(RejectReasonName(RejectReason::kRateLimited), "rate-limited");

  // Truncated, oversized and unknown-reason payloads are corruption.
  const std::string good = EncodeRejected(WireRejected{});
  EXPECT_FALSE(DecodeRejected(good.substr(0, good.size() - 1)).ok());
  EXPECT_FALSE(DecodeRejected(good + "x").ok());
  std::string bad_reason = good;
  bad_reason.back() = 7;
  EXPECT_FALSE(DecodeRejected(bad_reason).ok());
}

TEST(ProtocolTest, StatsFrameRoundTripsIoThreadRows) {
  WireStats stats;
  stats.num_threads = 3;
  stats.connections = 2;
  stats.submitted = 100;
  stats.completed = 90;
  stats.rejected = 4;
  stats.rate_limited = 6;
  stats.cancelled_by_disconnect = 1;
  stats.inflight = 5;
  stats.service_finished = 95;
  stats.service_live_contexts = 3;
  stats.service_retained_slots = 2;
  for (uint64_t i = 0; i < 2; ++i) {
    WireIoThreadStats row;
    row.connections = i + 1;
    row.frames_in = 10 * (i + 1);
    row.frames_out = 11 * (i + 1);
    row.bytes_in = 1000 * (i + 1);
    row.bytes_out = 1001 * (i + 1);
    row.rejects = i;
    stats.io_threads.push_back(row);
  }

  Result<WireStats> decoded = DecodeStats(EncodeStats(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().rate_limited, 6u);
  EXPECT_EQ(decoded.value().service_finished, 95u);
  EXPECT_EQ(decoded.value().service_live_contexts, 3u);
  EXPECT_EQ(decoded.value().service_retained_slots, 2u);
  ASSERT_EQ(decoded.value().io_threads.size(), 2u);
  EXPECT_EQ(decoded.value().io_threads[1].frames_in, 20u);
  EXPECT_EQ(decoded.value().io_threads[1].bytes_out, 2002u);

  // A row-count that disagrees with the remaining bytes is corruption,
  // not an allocation request.
  std::string encoded = EncodeStats(stats);
  EXPECT_FALSE(DecodeStats(encoded.substr(0, encoded.size() - 8)).ok());
}

TEST(ProtocolTest, StatsFrameRoundTripsGraphRows) {
  WireStats stats;
  stats.num_threads = 1;
  WireGraphStats g;
  g.name = "orders";
  g.is_default = true;
  g.queries = 42;
  g.live_tickets = 3;
  g.index_bytes = 123456;
  g.shards = 8;
  stats.graphs.push_back(g);
  g = WireGraphStats();
  g.name = "users";
  stats.graphs.push_back(g);

  Result<WireStats> decoded = DecodeStats(EncodeStats(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().graphs.size(), 2u);
  EXPECT_EQ(decoded.value().graphs[0].name, "orders");
  EXPECT_TRUE(decoded.value().graphs[0].is_default);
  EXPECT_EQ(decoded.value().graphs[0].queries, 42u);
  EXPECT_EQ(decoded.value().graphs[0].live_tickets, 3u);
  EXPECT_EQ(decoded.value().graphs[0].index_bytes, 123456u);
  EXPECT_EQ(decoded.value().graphs[0].shards, 8u);
  EXPECT_EQ(decoded.value().graphs[1].name, "users");
  EXPECT_FALSE(decoded.value().graphs[1].is_default);

  // The graph section is optional on the wire: a pre-catalog payload
  // (nothing after the IO rows) still decodes, with no graph rows. The
  // encoder now emits the graph varint (1 byte here) plus the 17-byte
  // uptime/slow-query tier after the IO rows; strip both to reproduce
  // the v1 byte stream.
  WireStats old_style;
  old_style.num_threads = 1;
  std::string encoded = EncodeStats(old_style);
  const std::string trailer_free = encoded.substr(0, encoded.size() - 18);
  Result<WireStats> old_decoded = DecodeStats(trailer_free);
  ASSERT_TRUE(old_decoded.ok()) << old_decoded.status().ToString();
  EXPECT_TRUE(old_decoded.value().graphs.empty());
}

TEST(ProtocolTest, SubmitFrameCarriesGraphOnlyWhenNegotiated) {
  WireSubmit submit;
  submit.request_id = 9;
  submit.query = PaperQueryHypergraph();
  submit.graph = "orders";

  // Negotiated peers round-trip the route.
  Result<WireSubmit> routed =
      DecodeSubmit(EncodeSubmit(submit, /*with_graph=*/true),
                   /*with_graph=*/true);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed.value().graph, "orders");
  EXPECT_EQ(routed.value().request_id, 9u);
  EXPECT_EQ(routed.value().query.NumEdges(), submit.query.NumEdges());

  // Without the feature the field never reaches the wire, so a v1 decoder
  // sees a byte-identical pre-catalog payload.
  WireSubmit plain;
  plain.request_id = 9;
  plain.query = PaperQueryHypergraph();
  EXPECT_EQ(EncodeSubmit(submit, /*with_graph=*/false), EncodeSubmit(plain));
  Result<WireSubmit> unrouted = DecodeSubmit(EncodeSubmit(submit));
  ASSERT_TRUE(unrouted.ok());
  EXPECT_TRUE(unrouted.value().graph.empty());

  // A graph-name length running past the payload is corruption.
  std::string truncated = EncodeSubmit(submit, /*with_graph=*/true);
  truncated.resize(20);
  EXPECT_FALSE(DecodeSubmit(truncated, /*with_graph=*/true).ok());
}

TEST(ProtocolTest, OutcomeFrameCarriesTraceOnlyWhenNegotiated) {
  WireOutcome wire;
  wire.request_id = 11;
  wire.outcome.stats.embeddings = 7;
  wire.outcome.span.enabled = true;
  wire.outcome.span.submit_seconds = 1.0;
  wire.outcome.span.admit_seconds = 1.25;
  wire.outcome.span.first_task_seconds = 1.5;
  wire.outcome.span.last_task_seconds = 2.0;
  wire.outcome.span.resolve_seconds = 2.25;
  wire.outcome.span.deliver_seconds = 2.5;
  wire.outcome.span.slices.push_back({0, 1.25, 1.5, 1.9});
  wire.outcome.span.slices.push_back({1, 1.3, 0, 2.0});

  // Negotiated peers round-trip the whole timeline, slices included.
  Result<WireOutcome> traced =
      DecodeOutcome(EncodeOutcome(wire, /*with_trace=*/true),
                    /*with_trace=*/true);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  const QuerySpan& span = traced.value().outcome.span;
  EXPECT_TRUE(span.enabled);
  EXPECT_EQ(span.submit_seconds, 1.0);
  EXPECT_EQ(span.admit_seconds, 1.25);
  EXPECT_EQ(span.first_task_seconds, 1.5);
  EXPECT_EQ(span.last_task_seconds, 2.0);
  EXPECT_EQ(span.resolve_seconds, 2.25);
  EXPECT_EQ(span.deliver_seconds, 2.5);
  ASSERT_EQ(span.slices.size(), 2u);
  EXPECT_EQ(span.slices[1].slice, 1u);
  EXPECT_EQ(span.slices[1].first_task_seconds, 0.0);
  EXPECT_EQ(span.slices[1].finish_seconds, 2.0);

  // Without the feature the section never reaches the wire: the payload
  // is byte-identical to a pre-trace encoding of the same outcome.
  WireOutcome plain;
  plain.request_id = 11;
  plain.outcome.stats.embeddings = 7;
  EXPECT_EQ(EncodeOutcome(wire, /*with_trace=*/false), EncodeOutcome(plain));
  Result<WireOutcome> untraced = DecodeOutcome(EncodeOutcome(wire));
  ASSERT_TRUE(untraced.ok());
  EXPECT_FALSE(untraced.value().outcome.span.enabled);

  // An untraced submission on a traced connection carries one "disabled"
  // byte; anything other than 0/1 there is corruption, as is truncation
  // anywhere inside the section.
  WireOutcome quiet;
  std::string encoded = EncodeOutcome(quiet, /*with_trace=*/true);
  Result<WireOutcome> off = DecodeOutcome(encoded, /*with_trace=*/true);
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().outcome.span.enabled);
  encoded.back() = 7;
  EXPECT_FALSE(DecodeOutcome(encoded, /*with_trace=*/true).ok());
  std::string full = EncodeOutcome(wire, /*with_trace=*/true);
  for (size_t cut : {size_t{1}, size_t{8}, size_t{20}}) {
    EXPECT_FALSE(
        DecodeOutcome(std::string_view(full).substr(0, full.size() - cut),
                      /*with_trace=*/true)
            .ok())
        << "cut " << cut;
  }
}

TEST(ProtocolTest, StatsFrameRoundTripsUptimeAndSlowQueries) {
  WireStats stats;
  stats.num_threads = 1;
  stats.uptime_seconds = 12.5;
  stats.monotonic_seconds = 99.25;
  WireSlowQuery slow;
  slow.request_id = 42;
  slow.tenant_id = 3;
  slow.graph = "orders";
  slow.total_seconds = 0.5;
  slow.queue_seconds = 0.1;
  slow.run_seconds = 0.3;
  slow.deliver_seconds = 0.05;
  stats.slow_queries.push_back(slow);
  stats.slow_queries.push_back(WireSlowQuery{});

  Result<WireStats> decoded = DecodeStats(EncodeStats(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().uptime_seconds, 12.5);
  EXPECT_EQ(decoded.value().monotonic_seconds, 99.25);
  ASSERT_EQ(decoded.value().slow_queries.size(), 2u);
  EXPECT_EQ(decoded.value().slow_queries[0].request_id, 42u);
  EXPECT_EQ(decoded.value().slow_queries[0].tenant_id, 3u);
  EXPECT_EQ(decoded.value().slow_queries[0].graph, "orders");
  EXPECT_EQ(decoded.value().slow_queries[0].total_seconds, 0.5);
  EXPECT_EQ(decoded.value().slow_queries[0].queue_seconds, 0.1);
  EXPECT_EQ(decoded.value().slow_queries[0].run_seconds, 0.3);
  EXPECT_EQ(decoded.value().slow_queries[0].deliver_seconds, 0.05);
  EXPECT_EQ(decoded.value().slow_queries[1].request_id, 0u);

  // The tier is optional, exactly like the graph section before it: a
  // pre-observability payload (nothing after the graph rows) still
  // decodes, with zero uptime and no slow rows.
  WireStats bare;
  bare.num_threads = 1;
  std::string encoded = EncodeStats(bare);
  // uptime + monotonic doubles + the varint 0 slow count = 17 bytes.
  const std::string trailer_free = encoded.substr(0, encoded.size() - 17);
  Result<WireStats> old_decoded = DecodeStats(trailer_free);
  ASSERT_TRUE(old_decoded.ok()) << old_decoded.status().ToString();
  EXPECT_EQ(old_decoded.value().uptime_seconds, 0.0);
  EXPECT_TRUE(old_decoded.value().slow_queries.empty());

  // Truncation inside a slow row (or a hostile row count) is corruption.
  std::string full = EncodeStats(stats);
  EXPECT_FALSE(DecodeStats(full.substr(0, full.size() - 3)).ok());
}

TEST(ProtocolTest, CatalogRequestAndReplyRoundTrip) {
  WireCatalogRequest request;
  request.name = "fresh";
  request.path = "/data/fresh.hgb";
  Result<WireCatalogRequest> req =
      DecodeCatalogRequest(EncodeCatalogRequest(request));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().name, "fresh");
  EXPECT_EQ(req.value().path, "/data/fresh.hgb");

  WireCatalogReply reply;
  reply.ok = false;
  reply.message = "remote graph loading is disabled";
  WireGraphStats g;
  g.name = "default";
  g.is_default = true;
  g.shards = 2;
  reply.graphs.push_back(g);
  Result<WireCatalogReply> rep =
      DecodeCatalogReply(EncodeCatalogReply(reply));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_FALSE(rep.value().ok);
  EXPECT_EQ(rep.value().message, reply.message);
  ASSERT_EQ(rep.value().graphs.size(), 1u);
  EXPECT_EQ(rep.value().graphs[0].name, "default");
  EXPECT_EQ(rep.value().graphs[0].shards, 2u);

  // Hostile row counts and truncations are corruption, not allocations.
  std::string encoded = EncodeCatalogReply(reply);
  EXPECT_FALSE(DecodeCatalogReply(encoded.substr(0, 4)).ok());
  EXPECT_FALSE(DecodeCatalogRequest("").ok());
  std::string bomb;
  bomb.push_back(1);           // ok
  AppendVarint(0, &bomb);      // empty message
  AppendVarint(1u << 30, &bomb);  // a billion rows, three bytes left
  bomb.append("abc");
  EXPECT_FALSE(DecodeCatalogReply(bomb).ok());
}

TEST(ProtocolTest, RejectedFrameRoundTripsUnknownGraphReason) {
  WireRejected rejected;
  rejected.request_id = 77;
  rejected.reason = RejectReason::kUnknownGraph;
  Result<WireRejected> decoded = DecodeRejected(EncodeRejected(rejected));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().reason, RejectReason::kUnknownGraph);
  EXPECT_STREQ(RejectReasonName(RejectReason::kUnknownGraph),
               "unknown-graph");
}

TEST(ProtocolTest, FrameReaderReassemblesFragmentedStreams) {
  std::string stream;
  AppendFrame(FrameType::kPing, "hello", &stream);
  AppendFrame(FrameType::kCancel, EncodeRequestId(4), &stream);

  FrameReader reader;
  FrameReader::Frame frame;
  // Feed one byte at a time: frames must surface exactly at completion.
  std::vector<FrameReader::Frame> frames;
  for (char c : stream) {
    reader.Feed(&c, 1);
    Result<bool> next = reader.Next(&frame);
    ASSERT_TRUE(next.ok());
    if (next.value()) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kPing);
  EXPECT_EQ(frames[0].payload, "hello");
  EXPECT_EQ(frames[1].type, FrameType::kCancel);
  EXPECT_EQ(DecodeRequestId(frames[1].payload).value(), 4u);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ProtocolTest, FrameReaderRejectsMalformedHeaders) {
  {
    FrameReader reader;  // wrong magic
    const char garbage[16] = {'X', 'X', 'X', 'X', 1, 0, 0, 0, 0};
    reader.Feed(garbage, sizeof(garbage));
    FrameReader::Frame frame;
    EXPECT_FALSE(reader.Next(&frame).ok());
  }
  {
    FrameReader reader;  // unknown frame type
    std::string header;
    header.append(reinterpret_cast<const char*>(&kWireMagic), 4);
    header.push_back(99);
    header.append(4, '\0');
    reader.Feed(header.data(), header.size());
    FrameReader::Frame frame;
    EXPECT_FALSE(reader.Next(&frame).ok());
  }
  {
    FrameReader reader;  // oversized payload announcement
    std::string header;
    header.append(reinterpret_cast<const char*>(&kWireMagic), 4);
    header.push_back(static_cast<char>(FrameType::kPing));
    const uint32_t huge = kMaxWirePayload + 1;
    header.append(reinterpret_cast<const char*>(&huge), 4);
    reader.Feed(header.data(), header.size());
    FrameReader::Frame frame;
    EXPECT_FALSE(reader.Next(&frame).ok());
  }
}

TEST(ProtocolTest, TruncatedPayloadsAreCorruption) {
  WireSubmit submit;
  submit.query = PaperQueryHypergraph();
  const std::string payload = EncodeSubmit(submit);
  for (size_t cut : {size_t{0}, size_t{8}, size_t{30}, payload.size() - 1}) {
    EXPECT_FALSE(DecodeSubmit(payload.substr(0, cut)).ok()) << cut;
  }
  EXPECT_FALSE(DecodeOutcome("short").ok());
  EXPECT_FALSE(DecodeRequestId("1234").ok());
  EXPECT_FALSE(DecodeStats("x").ok());
  // Trailing junk is as corrupt as missing bytes.
  EXPECT_FALSE(DecodeSubmit(payload + "junk").ok());
}

TEST(ProtocolTest, FeaturesFrameRoundTrips) {
  for (uint32_t features :
       {0u, kFeatureCompression, kFeatureBatch,
        kFeatureCompression | kFeatureBatch, 0xffffffffu}) {
    Result<uint32_t> decoded = DecodeFeatures(EncodeFeatures(features));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), features);
  }
  EXPECT_FALSE(DecodeFeatures("abc").ok());    // short
  EXPECT_FALSE(DecodeFeatures("abcde").ok());  // trailing byte
}

TEST(ProtocolTest, BatchPayloadRoundTripsEntriesInOrder) {
  WireSubmit submit;
  submit.request_id = 5;
  submit.query = PaperQueryHypergraph();
  const std::vector<std::string> entries = {EncodeSubmit(submit), "",
                                            std::string(300, 'x'), "tail"};
  const std::string payload = EncodeBatchPayload(entries);
  Result<std::vector<std::string_view>> decoded = DecodeBatchPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded.value()[i], entries[i]) << "entry " << i;
  }
  // The first entry decodes back to the original submission.
  Result<WireSubmit> back = DecodeSubmit(decoded.value()[0]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().request_id, 5u);
}

TEST(ProtocolTest, BatchPayloadRejectsHostileCountsAndTruncation) {
  // A count far beyond the payload is corruption, not a reserve request.
  std::string hostile;
  AppendVarint(uint64_t{1} << 40, &hostile);
  EXPECT_FALSE(DecodeBatchPayload(hostile).ok());

  // An entry length past the remaining bytes is corruption.
  std::string overrun;
  AppendVarint(1, &overrun);       // one entry...
  AppendVarint(1000, &overrun);    // ...claiming 1000 bytes
  overrun.append("short");
  EXPECT_FALSE(DecodeBatchPayload(overrun).ok());

  // Every strict prefix of a valid payload fails cleanly.
  const std::string good =
      EncodeBatchPayload({std::string(40, 'a'), std::string(9, 'b')});
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeBatchPayload(good.substr(0, cut)).ok()) << cut;
  }
  // Trailing junk too.
  EXPECT_FALSE(DecodeBatchPayload(good + "x").ok());
}

TEST(ProtocolTest, CompressedFrameRoundTripsAndSkipsSmallPayloads) {
  // A large repetitive payload compresses and round-trips through the
  // kCompressed wrapper.
  std::string repetitive;
  for (int i = 0; i < 200; ++i) repetitive += "submit-frame-bytes-";
  std::string stream;
  AppendFrameMaybeCompressed(FrameType::kSubmit, repetitive,
                             /*compress=*/true, &stream);
  FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  FrameReader::Frame frame;
  ASSERT_TRUE(reader.Next(&frame).value());
  ASSERT_EQ(frame.type, FrameType::kCompressed);
  EXPECT_LT(frame.payload.size(), repetitive.size() / 2);
  std::string inner;
  Result<FrameType> type = DecodeCompressedFrame(frame.payload, &inner);
  ASSERT_TRUE(type.ok()) << type.status().ToString();
  EXPECT_EQ(type.value(), FrameType::kSubmit);
  EXPECT_EQ(inner, repetitive);

  // Below the threshold the wrapper is skipped: the frame goes out raw.
  std::string small;
  AppendFrameMaybeCompressed(FrameType::kPing, "tiny", /*compress=*/true,
                             &small);
  FrameReader reader2;
  reader2.Feed(small.data(), small.size());
  ASSERT_TRUE(reader2.Next(&frame).value());
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_EQ(frame.payload, "tiny");
}

TEST(ProtocolTest, CompressedFrameRejectsBombsAndNesting) {
  std::string inner;

  // Inflation bomb: declared raw size past the frame bound must be
  // rejected arithmetically — before any allocation happens.
  std::string bomb;
  bomb.push_back(static_cast<char>(FrameType::kSubmit));
  AppendVarint(uint64_t{kMaxWirePayload} + 1, &bomb);
  bomb.append("whatever");
  EXPECT_FALSE(DecodeCompressedFrame(bomb, &inner).ok());

  // Nested compression wrappers are refused (one level only).
  std::string nested;
  nested.push_back(static_cast<char>(FrameType::kCompressed));
  AppendVarint(100, &nested);
  nested.append("zzzz");
  EXPECT_FALSE(DecodeCompressedFrame(nested, &inner).ok());

  // A declared size that disagrees with the actual decompressed size is
  // corruption.
  std::string repetitive(4096, 'q');
  std::string stream;
  AppendFrameMaybeCompressed(FrameType::kSubmit, repetitive, true, &stream);
  FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  FrameReader::Frame frame;
  ASSERT_TRUE(reader.Next(&frame).value());
  ASSERT_EQ(frame.type, FrameType::kCompressed);
  std::string tampered = frame.payload;
  // Rewrite "[type][varint raw]" with raw+1; the LZSS stream is unchanged.
  std::string header;
  header.push_back(static_cast<char>(FrameType::kSubmit));
  AppendVarint(repetitive.size(), &header);
  std::string wrong_header;
  wrong_header.push_back(static_cast<char>(FrameType::kSubmit));
  AppendVarint(repetitive.size() + 1, &wrong_header);
  ASSERT_EQ(tampered.compare(0, header.size(), header), 0);
  tampered.replace(0, header.size(), wrong_header);
  EXPECT_FALSE(DecodeCompressedFrame(tampered, &inner).ok());

  // Truncated LZSS streams fail cleanly at every cut.
  for (size_t cut = 1; cut < frame.payload.size(); cut += 7) {
    EXPECT_FALSE(
        DecodeCompressedFrame(frame.payload.substr(0, cut), &inner).ok())
        << cut;
  }
}

#if HGMATCH_NET_TEST_SOCKETS

// ----------------------------------------------------- loopback helpers --

Hypergraph PairCliqueData(uint32_t m) {
  Hypergraph h;
  h.AddVertices(m, 0);
  for (VertexId i = 0; i < m; ++i) {
    for (VertexId j = i + 1; j < m; ++j) (void)h.AddEdge({i, j});
  }
  return h;
}

Hypergraph PathQuery(uint32_t k) {
  Hypergraph q;
  q.AddVertices(k + 1, 0);
  for (VertexId v = 0; v < k; ++v) (void)q.AddEdge({v, v + 1});
  return q;
}

ServerOptions LoopbackOptions(uint32_t threads) {
  ServerOptions options;
  options.service.parallel.num_threads = threads;
  options.service.parallel.scan_grain = 1;
  return options;
}

// Polls `predicate` until true or ~10 s passed.
bool EventuallyTrue(const std::function<bool()>& predicate) {
  for (int i = 0; i < 1000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// ------------------------------------------------------- loopback tests --

TEST(NetTest, SubmitOutcomeParityWithSequential) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(2));
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  const Hypergraph query = PaperQueryHypergraph();
  const MatchStats expected = MatchSequential(idx, query).value();

  Result<uint64_t> id = client.Submit(query);
  ASSERT_TRUE(id.ok());
  Result<WireOutcome> reply = client.WaitOutcome(id.value());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().outcome.status, QueryStatus::kOk);
  EXPECT_EQ(reply.value().outcome.stats.embeddings, expected.embeddings);
  EXPECT_FALSE(reply.value().outcome.mirrored);

  // A structurally identical repeat mirrors through the service-side plan
  // cache — over the wire, exactly as in process.
  Result<uint64_t> repeat = client.Submit(query);
  ASSERT_TRUE(repeat.ok());
  Result<WireOutcome> mirrored = client.WaitOutcome(repeat.value());
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(mirrored.value().outcome.stats.embeddings, expected.embeddings);
  EXPECT_TRUE(mirrored.value().outcome.mirrored);

  Result<WireStats> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().submitted, 2u);
  EXPECT_EQ(stats.value().completed, 2u);
  EXPECT_EQ(stats.value().inflight, 0u);
  server.Stop();
}

TEST(NetTest, PipelinedSubmissionsResolveInAnyWaitOrder) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  MatchServer server(idx, LoopbackOptions(2));
  ASSERT_TRUE(server.Start().ok());

  const uint64_t expected1 =
      MatchSequential(idx, PathQuery(1)).value().embeddings;
  const uint64_t expected2 =
      MatchSequential(idx, PathQuery(2)).value().embeddings;
  ASSERT_NE(expected1, expected2);

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::vector<uint64_t> ids;
  for (uint32_t k : {1u, 2u, 1u, 2u, 1u}) {
    Result<uint64_t> id = client.Submit(PathQuery(k));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Wait in reverse: outcomes for other ids are buffered, none are lost.
  for (size_t i = ids.size(); i-- > 0;) {
    Result<WireOutcome> reply = client.WaitOutcome(ids[i]);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().outcome.stats.embeddings,
              i % 2 == 0 ? expected1 : expected2)
        << "query " << i;
  }
  server.Stop();
}

TEST(NetTest, ConcurrentClientsGetExactCounts) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  MatchServer server(idx, LoopbackOptions(4));
  ASSERT_TRUE(server.Start().ok());

  const uint64_t expected1 =
      MatchSequential(idx, PathQuery(1)).value().embeddings;
  const uint64_t expected2 =
      MatchSequential(idx, PathQuery(2)).value().embeddings;

  constexpr int kClients = 3;
  constexpr int kPerClient = 6;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      MatchClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures[c] = kPerClient;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const uint32_t k = 1 + static_cast<uint32_t>((c + i) % 2);
        Result<uint64_t> id = client.Submit(PathQuery(k));
        if (!id.ok()) {
          ++failures[c];
          continue;
        }
        Result<WireOutcome> reply = client.WaitOutcome(id.value());
        if (!reply.ok() ||
            reply.value().outcome.stats.embeddings !=
                (k == 1 ? expected1 : expected2)) {
          ++failures[c];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  server.Stop();
}

TEST(NetTest, CancelOverTheWireStopsAnInFlightQuery) {
  // Path(4) over the 40-clique is far beyond test scale: without the
  // cancel this query runs (effectively) forever.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServerOptions options = LoopbackOptions(2);
  options.service.parallel.scan_grain = 64;
  options.service.task_quota = 64;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<uint64_t> monster = client.Submit(PathQuery(4));
  ASSERT_TRUE(monster.ok());
  ASSERT_TRUE(client.Cancel(monster.value()).ok());
  Result<WireOutcome> reply = client.WaitOutcome(monster.value());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().outcome.status, QueryStatus::kCancelled);

  // The server stays healthy: a fresh cheap query completes exactly.
  const uint64_t cheap_expected =
      MatchSequential(idx, PathQuery(1)).value().embeddings;
  Result<uint64_t> cheap = client.Submit(PathQuery(1));
  ASSERT_TRUE(cheap.ok());
  Result<WireOutcome> cheap_reply = client.WaitOutcome(cheap.value());
  ASSERT_TRUE(cheap_reply.ok());
  EXPECT_EQ(cheap_reply.value().outcome.status, QueryStatus::kOk);
  EXPECT_EQ(cheap_reply.value().outcome.stats.embeddings, cheap_expected);
  server.Stop();
}

TEST(NetTest, CancelOfMirroredDuplicateResolvesWhileCanonicalStillRuns) {
  // A sink-less structural duplicate of a *running* query becomes a plan
  // -cache mirror with no scheduler slot of its own; cancelling it must
  // deliver its kCancelled outcome immediately, not after the canonical
  // eventually finishes (which at this scale is never).
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServerOptions options = LoopbackOptions(2);
  options.service.parallel.scan_grain = 64;
  options.service.task_quota = 64;  // plan_cache stays on (default)
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<uint64_t> canonical = client.Submit(PathQuery(4));
  Result<uint64_t> mirror = client.Submit(PathQuery(4));
  ASSERT_TRUE(canonical.ok() && mirror.ok());

  ASSERT_TRUE(client.Cancel(mirror.value()).ok());
  Result<WireOutcome> mirror_reply = client.WaitOutcome(mirror.value());
  ASSERT_TRUE(mirror_reply.ok());
  EXPECT_EQ(mirror_reply.value().outcome.status, QueryStatus::kCancelled);
  EXPECT_TRUE(mirror_reply.value().outcome.mirrored);

  ASSERT_TRUE(client.Cancel(canonical.value()).ok());
  Result<WireOutcome> canonical_reply =
      client.WaitOutcome(canonical.value());
  ASSERT_TRUE(canonical_reply.ok());
  EXPECT_EQ(canonical_reply.value().outcome.status,
            QueryStatus::kCancelled);
  server.Stop();
}

TEST(NetTest, ConnectionDropCancelsItsInFlightQueries) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServerOptions options = LoopbackOptions(2);
  options.service.parallel.scan_grain = 64;
  options.service.task_quota = 64;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient observer;
  ASSERT_TRUE(observer.Connect("127.0.0.1", server.port()).ok());

  {
    MatchClient doomed;
    ASSERT_TRUE(doomed.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(doomed.Submit(PathQuery(4)).ok());
    // The monster is in flight before the peer vanishes.
    ASSERT_TRUE(EventuallyTrue([&] {
      Result<WireStats> s = observer.Stats();
      return s.ok() && s.value().inflight >= 1;
    }));
    doomed.Close();
  }

  // The drop cancels the orphaned query: in-flight drains without anyone
  // ever waiting on its outcome.
  ASSERT_TRUE(EventuallyTrue([&] {
    Result<WireStats> s = observer.Stats();
    return s.ok() && s.value().cancelled_by_disconnect == 1 &&
           s.value().inflight == 0;
  }));
  server.Stop();
}

// Raw socket for protocol-abuse tests (MatchClient refuses to misbehave).
class RawConn {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool Send(const std::string& bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), 0) ==
           static_cast<ssize_t>(bytes.size());
  }
  void HalfClose() { ::shutdown(fd_, SHUT_WR); }
  // Reads until EOF; returns everything received.
  std::string ReadAll() {
    std::string all;
    char buffer[4096];
    ssize_t got;
    while ((got = ::read(fd_, buffer, sizeof(buffer))) > 0) {
      all.append(buffer, static_cast<size_t>(got));
    }
    return all;
  }

 private:
  int fd_ = -1;
};

void ExpectErrorFrameThenEof(RawConn& conn) {
  const std::string reply = conn.ReadAll();  // EOF proves the server closed
  FrameReader reader;
  reader.Feed(reply.data(), reply.size());
  FrameReader::Frame frame;
  Result<bool> next = reader.Next(&frame);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next.value());
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_FALSE(frame.payload.empty());
}

TEST(NetTest, EofFlushesRepliesEarnedByTheFinalBurst) {
  // EOF means abandonment for *in-flight* work, but replies the final
  // burst already earned (here: PONGs) must still be flushed before the
  // close, not discarded with the connection.
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(1));
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  std::string burst;
  AppendFrame(FrameType::kPing, "one", &burst);
  AppendFrame(FrameType::kPing, "two", &burst);
  ASSERT_TRUE(conn.Send(burst));
  conn.HalfClose();

  const std::string reply = conn.ReadAll();  // until the server closes
  FrameReader reader;
  reader.Feed(reply.data(), reply.size());
  FrameReader::Frame frame;
  std::vector<std::string> pongs;
  while (true) {
    Result<bool> next = reader.Next(&frame);
    ASSERT_TRUE(next.ok());
    if (!next.value()) break;
    ASSERT_EQ(frame.type, FrameType::kPong);
    pongs.push_back(frame.payload);
  }
  EXPECT_EQ(pongs, (std::vector<std::string>{"one", "two"}));
  server.Stop();
}

TEST(NetTest, MalformedFrameGetsErrorFrameAndClose) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(1));
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  ASSERT_TRUE(conn.Send("this is not a valid frame header"));
  ExpectErrorFrameThenEof(conn);
  server.Stop();
}

TEST(NetTest, OversizedFrameGetsErrorFrameAndClose) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(1));
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  std::string header;
  header.append(reinterpret_cast<const char*>(&kWireMagic), 4);
  header.push_back(static_cast<char>(FrameType::kSubmit));
  const uint32_t huge = kMaxWirePayload + 1;
  header.append(reinterpret_cast<const char*>(&huge), 4);
  ASSERT_TRUE(conn.Send(header));
  ExpectErrorFrameThenEof(conn);
  server.Stop();
}

TEST(NetTest, UndecodablePayloadCancelsConnectionQueries) {
  // A frame whose header is fine but whose SUBMIT payload is garbage must
  // also error-and-close — and take the connection's in-flight queries
  // with it.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServerOptions options = LoopbackOptions(2);
  options.service.parallel.scan_grain = 64;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient observer;
  ASSERT_TRUE(observer.Connect("127.0.0.1", server.port()).ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  {
    // A well-formed monster submission...
    WireSubmit submit;
    submit.request_id = 1;
    submit.query = PathQuery(4);
    std::string stream;
    AppendFrame(FrameType::kSubmit, EncodeSubmit(submit), &stream);
    // ...followed by a syntactically valid frame with an undecodable body.
    AppendFrame(FrameType::kSubmit, "definitely not a hypergraph", &stream);
    ASSERT_TRUE(conn.Send(stream));
  }
  ExpectErrorFrameThenEof(conn);
  ASSERT_TRUE(EventuallyTrue([&] {
    Result<WireStats> s = observer.Stats();
    return s.ok() && s.value().cancelled_by_disconnect == 1 &&
           s.value().inflight == 0;
  }));
  server.Stop();
}

TEST(NetTest, BackpressureRejectsOverflowAndAdmittedQueriesStayExact) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServerOptions options = LoopbackOptions(2);
  options.service.parallel.scan_grain = 64;
  options.service.task_quota = 64;
  options.service.max_inflight_queries = 1;
  options.service.max_queued_queries = 1;
  options.service.plan_cache = false;  // repeats must not mirror past the queue
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t cheap_expected =
      MatchSequential(idx, PathQuery(1)).value().embeddings;

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // The monster is admitted synchronously (window was empty) and holds the
  // window; the first cheap query waits (queue depth 1, at the bound); the
  // second cheap query must be shed.
  Result<uint64_t> monster = client.Submit(PathQuery(4));
  Result<uint64_t> waiting = client.Submit(PathQuery(1));
  Result<uint64_t> shed = client.Submit(PathQuery(1));
  ASSERT_TRUE(monster.ok() && waiting.ok() && shed.ok());

  Result<WireOutcome> rejected = client.WaitOutcome(shed.value());
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().outcome.status, QueryStatus::kRejected);

  // Give up on the monster; the waiting query then runs and its counts are
  // exact — backpressure sheds the overflow, never the admitted work.
  ASSERT_TRUE(client.Cancel(monster.value()).ok());
  Result<WireOutcome> cancelled = client.WaitOutcome(monster.value());
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled.value().outcome.status, QueryStatus::kCancelled);

  Result<WireOutcome> completed = client.WaitOutcome(waiting.value());
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(completed.value().outcome.status, QueryStatus::kOk);
  EXPECT_EQ(completed.value().outcome.stats.embeddings, cheap_expected);

  Result<WireStats> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rejected, 1u);
  EXPECT_EQ(stats.value().submitted, 3u);
  server.Stop();
}

TEST(NetTest, RemoteShutdownDrainsAndExits) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(1);
  options.allow_remote_shutdown = true;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<uint64_t> id = client.Submit(PaperQueryHypergraph());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.WaitOutcome(id.value()).ok());
  ASSERT_TRUE(client.RequestShutdown().ok());
  EXPECT_TRUE(server.WaitFor(10.0));
  server.Stop();
}

TEST(NetTest, RemoteShutdownIsRefusedWhenDisabled) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(1));  // shutdown NOT allowed
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.RequestShutdown().ok());  // sends fine...
  EXPECT_FALSE(client.Ping().ok());  // ...but the server errors and closes
  EXPECT_FALSE(server.WaitFor(0.2));  // and keeps serving
  server.Stop();
}

TEST(NetTest, PollFallbackStillDeliversOutcomes) {
  // ServerOptions::completion_wakeups = false keeps the legacy 2 ms ticket
  // poll alive as an operational escape hatch (and as the baseline of the
  // bench_net_loopback latency comparison); parity, pipelining and cancel
  // must hold there too.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  ServerOptions options = LoopbackOptions(2);
  options.completion_wakeups = false;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t expected1 =
      MatchSequential(idx, PathQuery(1)).value().embeddings;
  const uint64_t expected2 =
      MatchSequential(idx, PathQuery(2)).value().embeddings;

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::vector<uint64_t> ids;
  for (uint32_t k : {1u, 2u, 1u}) {
    Result<uint64_t> id = client.Submit(PathQuery(k));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (size_t i = ids.size(); i-- > 0;) {
    Result<WireOutcome> reply = client.WaitOutcome(ids[i]);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().outcome.stats.embeddings,
              i % 2 == 0 ? expected1 : expected2);
  }
  server.Stop();
}

TEST(NetTest, PollFallbackDeliversRedispatchedMirrorOutcomes) {
  // Regression: the poll fallback's sweep gate (finished_queries) is read
  // lock-free while the service resolves a canonical and settles its
  // mirrors under its resolve lock. The gate must only advance once the
  // mirrors are settled too — a bump in between let the sweep latch past a
  // mirror and strand its outcome forever (this test then hangs into its
  // TIMEOUT). The mirror does not inherit the canonical's cancellation:
  // it re-dispatches and its outcome arrives with its own exact counts.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  const uint64_t expected =
      MatchSequential(idx, PathQuery(4)).value().embeddings;
  ServerOptions options = LoopbackOptions(2);
  options.service.parallel.scan_grain = 64;
  options.service.task_quota = 64;  // plan_cache stays on (default)
  options.completion_wakeups = false;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<uint64_t> canonical = client.Submit(PathQuery(4));
  Result<uint64_t> mirror = client.Submit(PathQuery(4));  // attaches in flight
  ASSERT_TRUE(canonical.ok() && mirror.ok());
  ASSERT_TRUE(client.Cancel(canonical.value()).ok());

  // Both outcomes must arrive: the canonical's cancellation, and the
  // re-dispatched mirror's own complete run.
  Result<WireOutcome> canonical_reply = client.WaitOutcome(canonical.value());
  ASSERT_TRUE(canonical_reply.ok());
  EXPECT_EQ(canonical_reply.value().outcome.status, QueryStatus::kCancelled);
  Result<WireOutcome> mirror_reply = client.WaitOutcome(mirror.value());
  ASSERT_TRUE(mirror_reply.ok());
  EXPECT_EQ(mirror_reply.value().outcome.status, QueryStatus::kOk);
  EXPECT_FALSE(mirror_reply.value().outcome.mirrored);
  EXPECT_EQ(mirror_reply.value().outcome.stats.embeddings, expected);
  server.Stop();
}

// ------------------------------------------- negotiated batch/compression --

TEST(NetTest, HelloNegotiatesBatchAndCompressionAndKeepsExactCounts) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  ServerOptions options = LoopbackOptions(2);
  options.enable_compression = true;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t expected1 =
      MatchSequential(idx, PathQuery(1)).value().embeddings;
  const uint64_t expected2 =
      MatchSequential(idx, PathQuery(2)).value().embeddings;

  AsyncClientOptions copts;
  copts.request_features = kFeatureBatch | kFeatureCompression;
  MatchClient client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(client.features(), kFeatureBatch | kFeatureCompression);

  const Hypergraph q1 = PathQuery(1);
  const Hypergraph q2 = PathQuery(2);
  constexpr size_t kQueries = 24;
  std::vector<const Hypergraph*> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    queries.push_back(i % 2 == 0 ? &q1 : &q2);
  }
  Result<std::vector<uint64_t>> ids = client.SubmitBatch(queries);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids.value().size(), kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    Result<WireOutcome> reply = client.WaitOutcome(ids.value()[i]);
    ASSERT_TRUE(reply.ok()) << "query " << i;
    EXPECT_EQ(reply.value().outcome.stats.embeddings,
              i % 2 == 0 ? expected1 : expected2)
        << "query " << i;
  }

  // Framing economy: the whole set crossed in a handful of frames (one
  // HELLO + one batch chunk here), not one frame per query.
  const ClientTransferStats ts = client.TransferStats();
  EXPECT_LE(ts.frames_sent, 3u);
  EXPECT_LT(ts.frames_received, kQueries);
  EXPECT_GT(ts.bytes_sent, 0u);
  EXPECT_GT(ts.bytes_received, 0u);
  server.Stop();
}

TEST(NetTest, CompressionGrantRequiresServerOptIn) {
  // The server always grants batching but only grants compression when
  // the operator enabled it; the client degrades gracefully.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  MatchServer server(idx, LoopbackOptions(2));  // enable_compression off
  ASSERT_TRUE(server.Start().ok());

  AsyncClientOptions copts;
  copts.request_features = kFeatureBatch | kFeatureCompression;
  MatchClient client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(client.features(), kFeatureBatch);

  const uint64_t expected =
      MatchSequential(idx, PathQuery(1)).value().embeddings;
  const Hypergraph q = PathQuery(1);
  Result<std::vector<uint64_t>> ids =
      client.SubmitBatch({&q, &q, &q});
  ASSERT_TRUE(ids.ok());
  for (uint64_t id : ids.value()) {
    Result<WireOutcome> reply = client.WaitOutcome(id);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().outcome.stats.embeddings, expected);
  }
  server.Stop();
}

TEST(NetTest, SubmitBatchFallsBackToPerQueryFramesWithoutNegotiation) {
  // A client that never sent HELLO can still call SubmitBatch: it decays
  // to per-query SUBMIT frames against any server.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  MatchServer server(idx, LoopbackOptions(2));
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;  // request_features = 0: no HELLO at all
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(client.features(), 0u);

  const uint64_t expected =
      MatchSequential(idx, PathQuery(1)).value().embeddings;
  const Hypergraph q = PathQuery(1);
  Result<std::vector<uint64_t>> ids = client.SubmitBatch({&q, &q});
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids.value().size(), 2u);
  for (uint64_t id : ids.value()) {
    Result<WireOutcome> reply = client.WaitOutcome(id);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().outcome.stats.embeddings, expected);
  }
  server.Stop();
}

TEST(NetTest, PreHelloClientInteropsWithCompressionEnabledServer) {
  // Old-client/new-server interop: a client that never sends HELLO gets
  // the plain v1 byte stream even from a server with compression enabled.
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(2);
  options.enable_compression = true;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  const MatchStats expected =
      MatchSequential(idx, PaperQueryHypergraph()).value();
  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());
  Result<uint64_t> id = client.Submit(PaperQueryHypergraph());
  ASSERT_TRUE(id.ok());
  Result<WireOutcome> reply = client.WaitOutcome(id.value());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().outcome.stats.embeddings, expected.embeddings);
  server.Stop();
}

TEST(NetTest, BatchSubmitWithoutHelloIsAProtocolError) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(1));
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  WireSubmit submit;
  submit.request_id = 1;
  submit.query = PaperQueryHypergraph();
  std::string stream;
  AppendFrame(FrameType::kBatchSubmit,
              EncodeBatchPayload({EncodeSubmit(submit)}), &stream);
  ASSERT_TRUE(conn.Send(stream));
  ExpectErrorFrameThenEof(conn);
  server.Stop();
}

TEST(NetTest, DuplicateRequestIdsInsideABatchCloseTheConnection) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(1));
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  WireSubmit submit;
  submit.request_id = 9;  // twice in one frame
  submit.query = PaperQueryHypergraph();
  std::string stream;
  AppendFrame(FrameType::kHello, EncodeFeatures(kFeatureBatch), &stream);
  AppendFrame(FrameType::kBatchSubmit,
              EncodeBatchPayload({EncodeSubmit(submit), EncodeSubmit(submit)}),
              &stream);
  ASSERT_TRUE(conn.Send(stream));

  // The reply must be the HELLO grant followed by kError-and-close; no
  // outcome for either duplicate sneaks out.
  const std::string reply = conn.ReadAll();
  FrameReader reader;
  reader.Feed(reply.data(), reply.size());
  FrameReader::Frame frame;
  ASSERT_TRUE(reader.Next(&frame).value());
  EXPECT_EQ(frame.type, FrameType::kHelloReply);
  ASSERT_TRUE(reader.Next(&frame).value());
  EXPECT_EQ(frame.type, FrameType::kError);
  server.Stop();
}

TEST(NetTest, CompressedInflationBombIsRejectedWithError) {
  // A negotiated peer sending a kCompressed wrapper whose declared raw
  // size exceeds the frame bound must get kError-and-close — the server
  // rejects by arithmetic, it never allocates the declared size.
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(1);
  options.enable_compression = true;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  std::string bomb;
  bomb.push_back(static_cast<char>(FrameType::kSubmit));
  AppendVarint(uint64_t{1} << 40, &bomb);  // a terabyte, allegedly
  bomb.append(64, '\x55');
  std::string stream;
  AppendFrame(FrameType::kHello, EncodeFeatures(kFeatureCompression),
              &stream);
  AppendFrame(FrameType::kCompressed, bomb, &stream);
  ASSERT_TRUE(conn.Send(stream));

  const std::string reply = conn.ReadAll();
  FrameReader reader;
  reader.Feed(reply.data(), reply.size());
  FrameReader::Frame frame;
  ASSERT_TRUE(reader.Next(&frame).value());
  EXPECT_EQ(frame.type, FrameType::kHelloReply);
  ASSERT_TRUE(reader.Next(&frame).value());
  EXPECT_EQ(frame.type, FrameType::kError);
  server.Stop();
}

// ------------------------------------------------------ protocol fuzzing --

// Seeded protocol fuzz harness: take valid frames, mutate them (bit flips,
// truncation, oversized/undersized length fields, random type bytes,
// garbage payloads, random garbage streams), replay each mutant on a fresh
// connection against a live server, and require that the server either
// ignores the bytes, answers valid frames, or answers one kError and
// closes — and that it never crashes, leaks (the ASan/UBSan CI job runs
// this suite), wedges, or stops serving well-formed clients. The seed is
// deterministic (override with HGMATCH_FUZZ_SEED) and logged on failure so
// any crash replays bit-for-bit.
// The harness body, parameterised over the reactor width so the identical
// barrage runs against both the single IO thread and a 4-thread reactor
// (where a mutant's connection, an honest probe's and the acceptor live on
// different threads).
void FuzzMutatedFramesAgainstServer(uint32_t io_threads) {
  uint64_t seed = 0xfeedface2024;
  if (const char* env = std::getenv("HGMATCH_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  SCOPED_TRACE("fuzz seed = " + std::to_string(seed) +
               " (re-run with HGMATCH_FUZZ_SEED)");
  Rng rng(seed + io_threads);  // distinct mutation walk per reactor width

  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(2);
  options.max_connections = 8;
  options.io_threads = io_threads;
  options.enable_compression = true;  // the negotiated paths get fuzzed too
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  // The corpus of valid byte streams the mutations start from.
  std::vector<std::string> corpus;
  {
    std::string s;
    AppendFrame(FrameType::kPing, "fuzz", &s);
    corpus.push_back(s);
  }
  {
    WireSubmit submit;
    submit.request_id = 1;
    submit.query = PaperQueryHypergraph();
    std::string s;
    AppendFrame(FrameType::kSubmit, EncodeSubmit(submit), &s);
    corpus.push_back(s);
  }
  {
    std::string s;
    AppendFrame(FrameType::kCancel, EncodeRequestId(7), &s);
    AppendFrame(FrameType::kStats, "", &s);
    corpus.push_back(s);
  }
  {
    std::string s;
    AppendFrame(FrameType::kShutdown, "", &s);  // disabled => error path
    corpus.push_back(s);
  }
  {
    // HELLO then a two-entry batch: the negotiated batch path.
    std::string s;
    AppendFrame(FrameType::kHello,
                EncodeFeatures(kFeatureBatch | kFeatureCompression), &s);
    WireSubmit a;
    a.request_id = 11;
    a.query = PaperQueryHypergraph();
    WireSubmit b;
    b.request_id = 12;
    b.query = PaperQueryHypergraph();
    AppendFrame(FrameType::kBatchSubmit,
                EncodeBatchPayload({EncodeSubmit(a), EncodeSubmit(b)}), &s);
    corpus.push_back(s);
  }
  {
    // HELLO then a compressed SUBMIT wrapper: the kCompressed unwrap path.
    std::string s;
    AppendFrame(FrameType::kHello, EncodeFeatures(kFeatureCompression), &s);
    WireSubmit submit;
    submit.request_id = 13;
    submit.query = PaperQueryHypergraph();
    AppendFrameMaybeCompressed(FrameType::kSubmit, EncodeSubmit(submit),
                               /*compress=*/true, &s);
    corpus.push_back(s);
  }
  {
    // HELLO then an inflation bomb: a kCompressed wrapper declaring an
    // absurd raw size. The decode bound must hold under every mutation.
    std::string bomb;
    bomb.push_back(static_cast<char>(FrameType::kSubmit));
    AppendVarint(uint64_t{1} << 42, &bomb);
    bomb.append(128, '\x55');
    std::string s;
    AppendFrame(FrameType::kHello, EncodeFeatures(kFeatureCompression), &s);
    AppendFrame(FrameType::kCompressed, bomb, &s);
    corpus.push_back(s);
  }

  // Checks one server reply stream: every complete frame parses, only
  // server->client frame types appear, and an error frame (if any) is
  // final. Trailing partial bytes are impossible — the server writes whole
  // frames — so any parse failure is a real server bug.
  auto check_reply = [](const std::string& reply, int iteration) {
    FrameReader reader;
    reader.Feed(reply.data(), reply.size());
    FrameReader::Frame frame;
    bool saw_error = false;
    while (true) {
      Result<bool> next = reader.Next(&frame);
      ASSERT_TRUE(next.ok()) << "iteration " << iteration
                             << ": unparseable server reply";
      if (!next.value()) break;
      ASSERT_FALSE(saw_error) << "iteration " << iteration
                              << ": frames after kError";
      switch (frame.type) {
        case FrameType::kOutcome:
        case FrameType::kRejected:
        case FrameType::kPong:
        case FrameType::kStatsReply:
        case FrameType::kHelloReply:
        case FrameType::kBatchOutcome:
        case FrameType::kCompressed:
          break;  // legal replies to a mutant that stayed well-formed
        case FrameType::kError:
          saw_error = true;
          break;
        default:
          FAIL() << "iteration " << iteration
                 << ": server sent client->server frame type "
                 << static_cast<int>(frame.type);
      }
    }
    EXPECT_EQ(reader.buffered(), 0u)
        << "iteration " << iteration << ": truncated trailing frame";
  };

  constexpr int kIterations = 250;
  for (int i = 0; i < kIterations; ++i) {
    std::string bytes = corpus[rng.NextBounded(corpus.size())];
    switch (rng.NextBounded(6)) {
      case 0:  // bit flips
        for (uint64_t flips = 1 + rng.NextBounded(8); flips > 0; --flips) {
          const size_t pos = rng.NextBounded(bytes.size());
          bytes[pos] = static_cast<char>(
              bytes[pos] ^ static_cast<char>(1u << rng.NextBounded(8)));
        }
        break;
      case 1:  // truncation
        bytes.resize(rng.NextBounded(bytes.size()));
        break;
      case 2: {  // length-field rewrite: oversized, undersized, or huge
        if (bytes.size() >= kWireHeaderBytes) {
          uint32_t len;
          switch (rng.NextBounded(3)) {
            case 0: len = kMaxWirePayload + 1; break;       // over the bound
            case 1: len = static_cast<uint32_t>(            // wrong but legal
                        rng.NextBounded(kMaxWirePayload)); break;
            default: len = 0xffffffffu; break;              // absurd
          }
          bytes.replace(5, 4, reinterpret_cast<const char*>(&len), 4);
        }
        break;
      }
      case 3:  // random type byte
        if (bytes.size() >= kWireHeaderBytes) {
          bytes[4] = static_cast<char>(rng.NextBounded(256));
        }
        break;
      case 4: {  // garbage payload under a valid header
        const uint32_t len = static_cast<uint32_t>(rng.NextBounded(512));
        std::string garbage(len, '\0');
        for (char& c : garbage) c = static_cast<char>(rng.Next64());
        bytes.clear();
        AppendFrame(static_cast<FrameType>(
                        1 + rng.NextBounded(15)),  // any defined type
                    garbage, &bytes);
        break;
      }
      default: {  // pure random garbage stream
        bytes.resize(1 + rng.NextBounded(2048));
        for (char& c : bytes) c = static_cast<char>(rng.Next64());
        break;
      }
    }

    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port())) << "iteration " << i;
    if (!bytes.empty()) {
      if (!conn.Send(bytes)) continue;  // server already slammed the door
    }
    conn.HalfClose();
    // ReadAll returns at server close: EOF always ends the exchange — a
    // wedged connection would hang here and fail through the CTest
    // TIMEOUT.
    check_reply(conn.ReadAll(), i);

    if (i % 25 == 0) {
      // Liveness probe: a well-formed client is still served exactly.
      MatchClient probe;
      ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()).ok())
          << "iteration " << i;
      ASSERT_TRUE(probe.Ping().ok()) << "iteration " << i;
      Result<uint64_t> id = probe.Submit(PaperQueryHypergraph());
      ASSERT_TRUE(id.ok()) << "iteration " << i;
      Result<WireOutcome> reply = probe.WaitOutcome(id.value());
      ASSERT_TRUE(reply.ok()) << "iteration " << i;
      EXPECT_EQ(reply.value().outcome.stats.embeddings, 2u)
          << "iteration " << i;
    }
  }

  // The fuzz barrage must not have wedged bookkeeping: the server still
  // reports zero in-flight work once everything settled.
  ASSERT_TRUE(EventuallyTrue([&] { return server.Stats().inflight == 0; }));
  server.Stop();
}

TEST(NetFuzzTest, MutatedFramesNeverCrashTheServer) {
  FuzzMutatedFramesAgainstServer(1);
}

TEST(NetFuzzTest, MutatedFramesNeverCrashTheFourThreadReactor) {
  FuzzMutatedFramesAgainstServer(4);
}

TEST(NetTest, ConnectionLimitTurnsExtrasAway) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(1);
  options.max_connections = 1;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(first.Ping().ok());  // the slot-holder is fully served

  RawConn second;
  ASSERT_TRUE(second.Connect(server.port()));
  ExpectErrorFrameThenEof(second);
  ASSERT_TRUE(first.Ping().ok());  // unaffected
  server.Stop();
}

// ---------------------------------------------- multi-threaded reactor --

TEST(NetReactorTest, SixtyFourClientsOverFourIoThreadsKeepExactCounts) {
  // The headline invariant of the reactor redesign: connections spread
  // over four IO threads (pinned by fd hash) behave exactly like the
  // single-threaded front end — every client gets its own exact counts,
  // no reply ever crosses to another connection's socket.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  ServerOptions options = LoopbackOptions(2);
  options.io_threads = 4;
  options.max_connections = 128;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t expected1 =
      MatchSequential(idx, PathQuery(1)).value().embeddings;
  const uint64_t expected2 =
      MatchSequential(idx, PathQuery(2)).value().embeddings;

  constexpr int kClients = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      MatchClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        ++failures;
        return;
      }
      std::vector<uint64_t> ids;
      for (uint32_t k : {1u, 2u}) {  // pipelined: submit both, then wait
        Result<uint64_t> id = client.Submit(PathQuery(k));
        if (!id.ok()) {
          ++failures;
          return;
        }
        ids.push_back(id.value());
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        Result<WireOutcome> reply = client.WaitOutcome(ids[i]);
        if (!reply.ok() ||
            reply.value().outcome.status != QueryStatus::kOk ||
            reply.value().outcome.stats.embeddings !=
                (i == 0 ? expected1 : expected2)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_TRUE(EventuallyTrue([&] { return server.Stats().inflight == 0; }));
  WireStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 2u * kClients);
  EXPECT_EQ(stats.completed, 2u * kClients);
  ASSERT_EQ(stats.io_threads.size(), 4u);
  uint64_t frames_in = 0;
  for (const WireIoThreadStats& row : stats.io_threads) {
    frames_in += row.frames_in;
  }
  EXPECT_GE(frames_in, 2u * kClients);  // every submit frame was counted
  server.Stop();
}

TEST(NetReactorTest, PollFallbackComposesOnlyWithOneIoThread) {
  // The legacy 2 ms ticket poll scans one thread's ticket tables; with
  // completion wakeups off a multi-thread reactor would strand outcomes,
  // so Start() must refuse the combination outright...
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(1);
  options.completion_wakeups = false;
  options.io_threads = 2;
  {
    MatchServer server(idx, options);
    EXPECT_FALSE(server.Start().ok());
  }
  // ...while the supported single-thread shape still starts and serves.
  options.io_threads = 1;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());
  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());
  server.Stop();
}

TEST(NetReactorTest, StatsReportOneRowPerIoThreadAndServiceGauges) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(2);
  options.io_threads = 2;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient a;
  MatchClient b;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()).ok());
  Result<uint64_t> id = a.Submit(PaperQueryHypergraph());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(a.WaitOutcome(id.value()).ok());
  ASSERT_TRUE(b.Ping().ok());

  Result<WireStats> reply = a.Stats();
  ASSERT_TRUE(reply.ok());
  const WireStats& stats = reply.value();
  EXPECT_EQ(stats.connections, 2u);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.service_finished, 1u);
  EXPECT_EQ(stats.service_live_contexts, 0u);
  ASSERT_EQ(stats.io_threads.size(), 2u);
  uint64_t row_connections = 0;
  uint64_t frames_in = 0;
  uint64_t bytes_out = 0;
  for (const WireIoThreadStats& row : stats.io_threads) {
    row_connections += row.connections;
    frames_in += row.frames_in;
    bytes_out += row.bytes_out;
  }
  EXPECT_EQ(row_connections, 2u);  // per-thread rows sum to the gauge
  EXPECT_GE(frames_in, 3u);        // submit + ping + stats at minimum
  EXPECT_GT(bytes_out, 0u);
  server.Stop();
}

TEST(NetTest, RateLimiterShedsFastTenantAndSparesOthers) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(2);
  // Burst is max(rate, 1): one token up front, then a refill so slow the
  // test cannot race it. The first submit per tenant is admitted, every
  // later one is shed.
  options.max_submits_per_sec = 0.001;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  SubmitOptions fast;
  fast.tenant_id = 7;
  Result<uint64_t> first = client.Submit(PaperQueryHypergraph(), fast);
  ASSERT_TRUE(first.ok());
  Result<WireOutcome> first_reply = client.WaitOutcome(first.value());
  ASSERT_TRUE(first_reply.ok());
  EXPECT_EQ(first_reply.value().outcome.status, QueryStatus::kOk);

  // Same tenant, bucket empty: shed at the edge with the rate-limit
  // reason, distinct from queue-full backpressure.
  Result<uint64_t> second = client.Submit(PaperQueryHypergraph(), fast);
  ASSERT_TRUE(second.ok());
  Result<WireOutcome> second_reply = client.WaitOutcome(second.value());
  ASSERT_TRUE(second_reply.ok());
  EXPECT_EQ(second_reply.value().outcome.status, QueryStatus::kRejected);
  EXPECT_EQ(second_reply.value().reject_reason, RejectReason::kRateLimited);

  // Another tenant has its own bucket and is untouched.
  SubmitOptions other;
  other.tenant_id = 8;
  Result<uint64_t> third = client.Submit(PaperQueryHypergraph(), other);
  ASSERT_TRUE(third.ok());
  Result<WireOutcome> third_reply = client.WaitOutcome(third.value());
  ASSERT_TRUE(third_reply.ok());
  EXPECT_EQ(third_reply.value().outcome.status, QueryStatus::kOk);

  // Shed submissions never reached the service: only the two admitted
  // ones count as submitted, and the shed one is tallied separately from
  // queue-full rejections.
  WireStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rate_limited, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  server.Stop();
}

// ----------------------------------------------------- async client API --

TEST(AsyncClientTest, CallbacksFireExactlyOncePerSubmit) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(8));
  MatchServer server(idx, LoopbackOptions(2));
  ASSERT_TRUE(server.Start().ok());
  const uint64_t expected =
      MatchSequential(idx, PathQuery(1)).value().embeddings;

  AsyncMatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  constexpr int kSubmits = 16;
  std::mutex mu;
  std::unordered_map<uint64_t, int> fired;       // id -> callback count
  std::unordered_map<uint64_t, bool> exact;      // id -> reply was exact
  std::vector<uint64_t> ids;
  for (int i = 0; i < kSubmits; ++i) {
    Result<uint64_t> id = client.Submit(
        PathQuery(1), {}, [&](const AsyncOutcome& result) {
          std::lock_guard<std::mutex> lock(mu);
          ++fired[result.request_id];
          exact[result.request_id] =
              result.transport.ok() &&
              result.wire.outcome.status == QueryStatus::kOk &&
              result.wire.outcome.stats.embeddings == expected;
        });
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  ASSERT_TRUE(EventuallyTrue([&] {
    std::lock_guard<std::mutex> lock(mu);
    return fired.size() == kSubmits;
  }));
  client.Close();  // teardown must not re-fire already-resolved callbacks

  std::lock_guard<std::mutex> lock(mu);
  for (uint64_t id : ids) {
    EXPECT_EQ(fired[id], 1) << "request " << id;
    EXPECT_TRUE(exact[id]) << "request " << id;
  }
  server.Stop();
}

TEST(AsyncClientTest, ConnectionDropFailsEveryPendingCallback) {
  // Three monster queries are parked in flight when the server goes away:
  // each pending callback must fire (exactly once) with a not-ok
  // transport status — no request is left dangling.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServerOptions options = LoopbackOptions(2);
  options.service.parallel.scan_grain = 64;
  options.service.task_quota = 64;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  AsyncMatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  std::mutex mu;
  std::unordered_map<uint64_t, int> fired;
  std::unordered_map<uint64_t, bool> failed;
  for (int i = 0; i < 3; ++i) {
    Result<uint64_t> id = client.Submit(
        PathQuery(4), {}, [&](const AsyncOutcome& result) {
          std::lock_guard<std::mutex> lock(mu);
          ++fired[result.request_id];
          failed[result.request_id] = !result.transport.ok();
        });
    ASSERT_TRUE(id.ok());
  }
  ASSERT_TRUE(EventuallyTrue([&] { return server.Stats().inflight == 3; }));
  server.Stop();

  ASSERT_TRUE(EventuallyTrue([&] {
    std::lock_guard<std::mutex> lock(mu);
    return fired.size() == 3;
  }));
  std::unique_lock<std::mutex> lock(mu);
  for (const auto& [id, count] : fired) {
    EXPECT_EQ(count, 1) << "request " << id;
    EXPECT_TRUE(failed[id]) << "request " << id;
  }
  lock.unlock();
  client.Close();
}

TEST(AsyncClientTest, CancelAfterSubmitResolvesTheCallbackExactlyOnce) {
  // The cancel-right-after-submit race: whichever side wins inside the
  // server (inline rejection, queued cancel, in-flight cancel), the
  // callback resolves exactly once with a real outcome.
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServerOptions options = LoopbackOptions(2);
  options.service.parallel.scan_grain = 64;
  options.service.task_quota = 64;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  AsyncMatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  std::mutex mu;
  int fired = 0;
  AsyncOutcome seen;
  Result<uint64_t> monster = client.Submit(
      PathQuery(4), {}, [&](const AsyncOutcome& result) {
        std::lock_guard<std::mutex> lock(mu);
        ++fired;
        seen = result;
      });
  ASSERT_TRUE(monster.ok());
  ASSERT_TRUE(client.Cancel(monster.value()).ok());

  ASSERT_TRUE(EventuallyTrue([&] {
    std::lock_guard<std::mutex> lock(mu);
    return fired > 0;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(fired, 1);
    ASSERT_TRUE(seen.transport.ok()) << seen.transport.ToString();
    // At this scale the monster cannot have finished first.
    EXPECT_EQ(seen.wire.outcome.status, QueryStatus::kCancelled);
  }
  client.Close();
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(fired, 1);  // Close() must not fire it again
  }
  server.Stop();
}

TEST(AsyncClientTest, InflightWindowBlocksSubmitUntilASlotFrees) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServerOptions options = LoopbackOptions(2);
  options.service.parallel.scan_grain = 64;
  options.service.task_quota = 64;
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  AsyncClientOptions window;
  window.max_inflight = 1;
  AsyncMatchClient client(window);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  std::mutex mu;
  int fired = 0;
  OutcomeCallback count = [&](const AsyncOutcome&) {
    std::lock_guard<std::mutex> lock(mu);
    ++fired;
  };
  Result<uint64_t> monster = client.Submit(PathQuery(4), {}, count);
  ASSERT_TRUE(monster.ok());

  // The window (1) is held by the monster, so this Submit must park...
  std::atomic<bool> second_returned{false};
  std::thread submitter([&] {
    Result<uint64_t> second = client.Submit(PathQuery(1), {}, count);
    EXPECT_TRUE(second.ok());
    second_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(second_returned.load());

  // ...until the monster's (cancelled) outcome frees the slot.
  ASSERT_TRUE(client.Cancel(monster.value()).ok());
  ASSERT_TRUE(EventuallyTrue([&] { return second_returned.load(); }));
  submitter.join();
  ASSERT_TRUE(EventuallyTrue([&] {
    std::lock_guard<std::mutex> lock(mu);
    return fired == 2;
  }));
  client.Close();
  server.Stop();
}

// ------------------------------------------------------- catalog tests --

// The serving-tier acceptance flow: a server hosting two named graphs; a
// catalog-negotiated client lists them, loads a third from disk, routes
// submits by graph id, unloads a graph with queries still in flight (no
// outcome lost or wrong), and a pre-catalog client keeps working against
// the default graph over the same server.
TEST(NetCatalogTest, EndToEndMultiGraphServing) {
  std::vector<NamedGraph> graphs;
  graphs.push_back({"small", PaperDataHypergraph()});
  graphs.push_back({"big", PairCliqueData(8)});
  ServerOptions options = LoopbackOptions(2);
  options.allow_remote_load = true;
  MatchServer server(std::move(graphs), options);
  ASSERT_TRUE(server.Start().ok());

  IndexedHypergraph small_idx =
      IndexedHypergraph::Build(PaperDataHypergraph());
  IndexedHypergraph big_idx = IndexedHypergraph::Build(PairCliqueData(8));
  const Hypergraph query = PathQuery(2);
  const MatchStats want_small = MatchSequential(small_idx, query).value();
  const MatchStats want_big = MatchSequential(big_idx, query).value();
  ASSERT_NE(want_small.embeddings, want_big.embeddings);

  AsyncClientOptions copts;
  copts.request_features = kFeatureCatalog | kFeatureBatch;
  MatchClient client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE((client.features() & kFeatureCatalog) != 0);

  // LIST: both preloaded graphs, the first one default.
  Result<WireCatalogReply> list = client.ListGraphs();
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_TRUE(list.value().ok);
  ASSERT_EQ(list.value().graphs.size(), 2u);
  EXPECT_EQ(list.value().graphs[0].name, "small");
  EXPECT_TRUE(list.value().graphs[0].is_default);

  // LOAD a third graph from the server's filesystem.
  const std::string third_path =
      ::testing::TempDir() + "/net_catalog_third.hgb";
  ASSERT_TRUE(
      SaveHypergraphBinary(PairCliqueData(5), third_path).ok());
  Result<WireCatalogReply> loaded = client.LoadGraph("third", third_path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().ok) << loaded.value().message;
  EXPECT_EQ(loaded.value().graphs.size(), 3u);
  IndexedHypergraph third_idx = IndexedHypergraph::Build(PairCliqueData(5));
  const MatchStats want_third = MatchSequential(third_idx, query).value();

  // Route by graph id; each name resolves to its own exact counts.
  Result<uint64_t> to_small = client.SubmitTo("small", query);
  Result<uint64_t> to_big = client.SubmitTo("big", query);
  Result<uint64_t> to_third = client.SubmitTo("third", query);
  Result<uint64_t> to_default = client.Submit(query);
  ASSERT_TRUE(to_small.ok() && to_big.ok() && to_third.ok() &&
              to_default.ok());
  EXPECT_EQ(client.WaitOutcome(to_small.value())
                .value().outcome.stats.embeddings,
            want_small.embeddings);
  EXPECT_EQ(client.WaitOutcome(to_big.value())
                .value().outcome.stats.embeddings,
            want_big.embeddings);
  EXPECT_EQ(client.WaitOutcome(to_third.value())
                .value().outcome.stats.embeddings,
            want_third.embeddings);
  EXPECT_EQ(client.WaitOutcome(to_default.value())
                .value().outcome.stats.embeddings,
            want_small.embeddings);

  // A batch routed to one graph stays exact, too.
  std::vector<const Hypergraph*> batch{&query, &query};
  Result<std::vector<uint64_t>> batch_ids =
      client.SubmitBatchTo("big", batch);
  ASSERT_TRUE(batch_ids.ok());
  for (uint64_t id : batch_ids.value()) {
    EXPECT_EQ(client.WaitOutcome(id).value().outcome.stats.embeddings,
              want_big.embeddings);
  }

  // UNLOAD with queries in flight: fire a burst at "big", unload it
  // immediately, and every already-accepted outcome still arrives exact.
  std::vector<uint64_t> inflight;
  for (int i = 0; i < 8; ++i) {
    Result<uint64_t> id = client.SubmitTo("big", PathQuery(3));
    ASSERT_TRUE(id.ok());
    inflight.push_back(id.value());
  }
  Result<WireCatalogReply> unloaded = client.UnloadGraph("big");
  ASSERT_TRUE(unloaded.ok());
  EXPECT_TRUE(unloaded.value().ok) << unloaded.value().message;
  const MatchStats want_inflight =
      MatchSequential(big_idx, PathQuery(3)).value();
  for (uint64_t id : inflight) {
    Result<WireOutcome> outcome = client.WaitOutcome(id);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().outcome.status, QueryStatus::kOk);
    EXPECT_EQ(outcome.value().outcome.stats.embeddings,
              want_inflight.embeddings);
  }

  // Submits to the unloaded graph are typed rejections now, and the
  // connection survives them.
  Result<uint64_t> gone = client.SubmitTo("big", query);
  ASSERT_TRUE(gone.ok());
  Result<WireOutcome> rejected = client.WaitOutcome(gone.value());
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().outcome.status, QueryStatus::kRejected);
  EXPECT_EQ(rejected.value().reject_reason, RejectReason::kUnknownGraph);
  ASSERT_TRUE(client.Ping().ok());

  // Per-graph stats rows ride the plain STATS surface.
  Result<WireStats> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().graphs.size(), 2u);  // big is gone
  EXPECT_EQ(stats.value().graphs[0].name, "small");
  EXPECT_TRUE(stats.value().graphs[0].is_default);
  EXPECT_GT(stats.value().graphs[0].index_bytes, 0u);

  // A pre-catalog client (no HELLO at all) still speaks the v1 byte
  // stream against the default graph of the very same server.
  MatchClient legacy;
  ASSERT_TRUE(legacy.Connect("127.0.0.1", server.port()).ok());
  Result<uint64_t> legacy_id = legacy.Submit(query);
  ASSERT_TRUE(legacy_id.ok());
  EXPECT_EQ(legacy.WaitOutcome(legacy_id.value())
                .value().outcome.stats.embeddings,
            want_small.embeddings);

  client.Close();
  legacy.Close();
  server.Stop();
}

TEST(NetCatalogTest, UnknownGraphRejectsWithoutClosingConnection) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(2));
  ASSERT_TRUE(server.Start().ok());

  AsyncClientOptions copts;
  copts.request_features = kFeatureCatalog;
  MatchClient client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  Result<uint64_t> id = client.SubmitTo("nope", PaperQueryHypergraph());
  ASSERT_TRUE(id.ok());
  Result<WireOutcome> reply = client.WaitOutcome(id.value());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().outcome.status, QueryStatus::kRejected);
  EXPECT_EQ(reply.value().reject_reason, RejectReason::kUnknownGraph);

  // The connection is intact and the default graph still answers.
  Result<uint64_t> ok_id = client.Submit(PaperQueryHypergraph());
  ASSERT_TRUE(ok_id.ok());
  EXPECT_EQ(client.WaitOutcome(ok_id.value()).value().outcome.status,
            QueryStatus::kOk);
  server.Stop();
}

TEST(NetCatalogTest, RemoteLoadNeedsServerOptIn) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(2));  // allow_remote_load off
  ASSERT_TRUE(server.Start().ok());

  AsyncClientOptions copts;
  copts.request_features = kFeatureCatalog;
  MatchClient client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  Result<WireCatalogReply> denied =
      client.LoadGraph("x", "/tmp/anything.hgb");
  ASSERT_TRUE(denied.ok());  // transport fine, verb refused
  EXPECT_FALSE(denied.value().ok);
  // LIST (and the connection) still work after the refusal.
  Result<WireCatalogReply> list = client.ListGraphs();
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list.value().ok);
  ASSERT_EQ(list.value().graphs.size(), 1u);
  EXPECT_EQ(list.value().graphs[0].name, "default");
  server.Stop();
}

TEST(NetCatalogTest, GraphRoutingRequiresNegotiatedFeature) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(2));
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;  // no HELLO, no features
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_FALSE(client.SubmitTo("any", PaperQueryHypergraph()).ok());
  EXPECT_FALSE(client.ListGraphs().ok());
  // The empty route is the v1 stream and keeps working.
  Result<uint64_t> id = client.Submit(PaperQueryHypergraph());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(client.WaitOutcome(id.value()).value().outcome.status,
            QueryStatus::kOk);
  server.Stop();
}

// Scatter-gather behind the wire: a sharded server fans every submission
// across K scan slices and merged counts stay exactly sequential.
TEST(NetCatalogTest, ShardedServerKeepsExactCountsOverTheWire) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(7));
  const Hypergraph query = PathQuery(2);
  const MatchStats expected = MatchSequential(idx, query).value();

  for (uint32_t shards : {2u, 8u}) {
    ServerOptions options = LoopbackOptions(4);
    options.service.shards = shards;
    MatchServer server(idx, options);
    ASSERT_TRUE(server.Start().ok());

    MatchClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::vector<uint64_t> ids;
    for (int i = 0; i < 6; ++i) {
      Result<uint64_t> id = client.Submit(query);
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    for (uint64_t id : ids) {
      Result<WireOutcome> reply = client.WaitOutcome(id);
      ASSERT_TRUE(reply.ok());
      EXPECT_EQ(reply.value().outcome.stats.embeddings,
                expected.embeddings)
          << "shards " << shards;
    }
    Result<WireStats> stats = client.Stats();
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats.value().graphs.size(), 1u);
    EXPECT_EQ(stats.value().graphs[0].shards, shards);
    server.Stop();
  }
}

// ----------------------------------------------------- observability --

// A trace-negotiated peer gets the end-to-end timeline back on every
// outcome — ordered stamps through delivery — while an un-negotiated
// peer on the same server keeps span-free (byte-identical) outcomes.
TEST(NetObsTest, TraceNegotiationCarriesOrderedSpansOverTheWire) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(2));
  ASSERT_TRUE(server.Start().ok());

  AsyncClientOptions copts;
  copts.request_features = kFeatureTrace;
  MatchClient traced(copts);
  ASSERT_TRUE(traced.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE((traced.features() & kFeatureTrace) != 0);

  Result<uint64_t> id = traced.Submit(PaperQueryHypergraph());
  ASSERT_TRUE(id.ok());
  Result<WireOutcome> reply = traced.WaitOutcome(id.value());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const QuerySpan& span = reply.value().outcome.span;
  EXPECT_TRUE(span.enabled);
  EXPECT_GT(span.submit_seconds, 0.0);
  EXPECT_GE(span.admit_seconds, span.submit_seconds);
  EXPECT_GE(span.first_task_seconds, span.admit_seconds);
  EXPECT_GE(span.last_task_seconds, span.first_task_seconds);
  EXPECT_GE(span.resolve_seconds, span.last_task_seconds);
  // The deliver stamp is taken as the reactor writes the frame — the one
  // stage only the wire layer can see.
  EXPECT_GE(span.deliver_seconds, span.resolve_seconds);
  EXPECT_GT(span.TotalSeconds(), 0.0);

  MatchClient plain;
  ASSERT_TRUE(plain.Connect("127.0.0.1", server.port()).ok());
  Result<uint64_t> pid = plain.Submit(PaperQueryHypergraph());
  ASSERT_TRUE(pid.ok());
  Result<WireOutcome> preply = plain.WaitOutcome(pid.value());
  ASSERT_TRUE(preply.ok());
  EXPECT_FALSE(preply.value().outcome.span.enabled);
  server.Stop();
}

// The one terminal path with no span at all: an unknown-graph submission
// is answered inline at the protocol layer before any ticket — and
// therefore any span — exists. A traced peer gets a clean reject (span
// disabled, nothing half-finalised) and the connection keeps delivering
// traced outcomes afterwards.
TEST(NetObsTest, UnknownGraphRejectKeepsTracedConnectionCoherent) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchServer server(idx, LoopbackOptions(2));
  ASSERT_TRUE(server.Start().ok());

  AsyncClientOptions copts;
  copts.request_features = kFeatureTrace | kFeatureCatalog;
  MatchClient client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  Result<uint64_t> bogus = client.SubmitTo("nope", PaperQueryHypergraph());
  ASSERT_TRUE(bogus.ok());
  Result<WireOutcome> rejected = client.WaitOutcome(bogus.value());
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().outcome.status, QueryStatus::kRejected);
  EXPECT_EQ(rejected.value().reject_reason, RejectReason::kUnknownGraph);
  EXPECT_FALSE(rejected.value().outcome.span.enabled);

  Result<uint64_t> good = client.Submit(PaperQueryHypergraph());
  ASSERT_TRUE(good.ok());
  Result<WireOutcome> reply = client.WaitOutcome(good.value());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().outcome.status, QueryStatus::kOk);
  EXPECT_TRUE(reply.value().outcome.span.enabled);
  server.Stop();
}

// The slow-query ring: with a threshold every query crosses, finished
// queries appear in STATS — locally and over the wire — with coherent
// timing decomposition and the uptime tier populated.
TEST(NetObsTest, SlowQueryRingSurfacesThroughStats) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(2);
  options.slow_query_ms = 1e-6;  // everything qualifies
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    Result<uint64_t> id = client.Submit(PathQuery(1));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (uint64_t id : ids) ASSERT_TRUE(client.WaitOutcome(id).ok());

  Result<WireStats> reply = client.Stats();
  ASSERT_TRUE(reply.ok());
  const WireStats& stats = reply.value();
  EXPECT_GT(stats.uptime_seconds, 0.0);
  EXPECT_GT(stats.monotonic_seconds, 0.0);
  ASSERT_EQ(stats.slow_queries.size(), 3u);
  for (const WireSlowQuery& slow : stats.slow_queries) {
    EXPECT_EQ(slow.graph, "default");
    EXPECT_GT(slow.total_seconds, 0.0);
    EXPECT_GE(slow.queue_seconds, 0.0);
    EXPECT_GE(slow.run_seconds, 0.0);
    EXPECT_GE(slow.deliver_seconds, 0.0);
    EXPECT_GE(slow.total_seconds,
              slow.run_seconds);  // the parts nest inside the whole
  }
  // The local snapshot agrees with the wire round trip.
  EXPECT_EQ(server.Stats().slow_queries.size(), 3u);
  server.Stop();
}

// One raw HTTP/1.0 exchange against the second listener: GET /metrics
// returns Prometheus text exposition with the latency histograms the
// query traffic just populated; anything else is answered, not hung.
TEST(NetObsTest, MetricsEndpointServesPrometheusText) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServerOptions options = LoopbackOptions(2);
  options.metrics_port = 0;  // ephemeral
  MatchServer server(idx, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.metrics_port(), 0);

  MatchClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<uint64_t> id = client.Submit(PaperQueryHypergraph());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.WaitOutcome(id.value()).ok());

  auto http_get = [&](const std::string& request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.metrics_port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buf[4096];
    ssize_t got;
    while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      response.append(buf, static_cast<size_t>(got));
    }
    ::close(fd);
    return response;
  };

  const std::string scrape = http_get("GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(scrape.find("200 OK"), std::string::npos);
  EXPECT_NE(scrape.find("text/plain"), std::string::npos);
  EXPECT_NE(scrape.find("# TYPE hgmatch_queries_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(scrape.find("# TYPE hgmatch_query_run_seconds histogram"),
            std::string::npos);
  // The query we just ran populated the latency histograms: at least one
  // non-zero cumulative +Inf bucket row must be present.
  EXPECT_NE(scrape.find("hgmatch_queue_wait_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_EQ(scrape.find("hgmatch_queue_wait_seconds_count 0\n"),
            std::string::npos);
  EXPECT_NE(scrape.find("hgmatch_server_uptime_seconds"), std::string::npos);
  EXPECT_NE(scrape.find("hgmatch_server_connections 1\n"),
            std::string::npos);

  // Wrong path and wrong method get proper statuses, not a hang; the
  // main query port is untouched by scrape traffic.
  EXPECT_NE(http_get("GET /nope HTTP/1.0\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(http_get("POST /metrics HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
  ASSERT_TRUE(client.Ping().ok());
  server.Stop();
}

#endif  // HGMATCH_NET_TEST_SOCKETS

}  // namespace
}  // namespace hgmatch
