#include <gtest/gtest.h>

#include "baseline/backtracking.h"
#include "baseline/bipartite.h"
#include "baseline/ihs_filter.h"
#include "baseline/ordering.h"
#include "core/reference.h"
#include "util/set_ops.h"
#include "gen/query_gen.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

TEST(IhsFilterTest, LabelAndDegreeGate) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  IhsFilter filter(idx);
  // u4 (B, degree 2 in q) can only match v4 (the unique B, degree 4).
  EXPECT_TRUE(filter.Passes(q, 4, 4));
  // u4 cannot match any A or C vertex.
  EXPECT_FALSE(filter.Passes(q, 4, 0));
  EXPECT_FALSE(filter.Passes(q, 4, 1));
}

TEST(IhsFilterTest, SignatureConditionPrunes) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  IhsFilter filter(idx);
  auto candidates = filter.BuildCandidates(q);
  ASSERT_EQ(candidates.size(), 5u);
  // u4 -> {v4} only.
  EXPECT_EQ(candidates[4], (std::vector<VertexId>{4}));
  // u1 is the C vertex incident to both {A,A,C} and {A,A,B,C} hyperedges:
  // v1 qualifies; v5 (C) is incident to e4 {A,A,C} and e6 {A,A,B,C} too.
  EXPECT_EQ(candidates[1], (std::vector<VertexId>{1, 5}));
  // Every candidate passes the single-pair test (internal consistency).
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    for (VertexId v : candidates[u]) {
      EXPECT_TRUE(filter.Passes(q, u, v));
    }
  }
}

TEST(IhsFilterTest, ExactSafety) {
  // Every data vertex used by any true embedding must survive the filter
  // for the query vertex it is matched to. With the paper example the two
  // embeddings map u0->v0/v3, u1->v1/v5, u2->v2/v6, u3->v3?? — derive from
  // the reference instead of hand-coding.
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  IhsFilter filter(idx);
  auto candidates = filter.BuildCandidates(q);
  // Known embedding 1: f = {u0->v0, u1->v1, u2->v2, u3->v3? ...}
  // (e1,e3,e5): u2->v2, u4->v4, u0,u1 in e3∩e5 => u0->v0, u1->v1, u3->v6.
  const std::pair<VertexId, VertexId> f1[] = {
      {0, 0}, {1, 1}, {2, 2}, {3, 6}, {4, 4}};
  for (auto [u, v] : f1) {
    EXPECT_TRUE(Contains(candidates[u], v)) << "u" << u << "->v" << v;
  }
}

TEST(OrderingTest, CoreForestLeafClassification) {
  // A "triangle with a tail": u0,u1,u2 pairwise connected (core),
  // u3 hangs off u2 (leaf).
  Hypergraph q;
  q.AddVertices(4, 0);
  (void)q.AddEdge({0, 1});
  (void)q.AddEdge({1, 2});
  (void)q.AddEdge({0, 2});
  (void)q.AddEdge({2, 3});
  auto tier = ClassifyCoreForestLeaf(q);
  EXPECT_EQ(tier[0], 0);
  EXPECT_EQ(tier[1], 0);
  EXPECT_EQ(tier[2], 0);
  EXPECT_EQ(tier[3], 2);
}

TEST(OrderingTest, AllStrategiesGiveConnectedPermutations) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    // Sample real queries (every vertex lies in some hyperedge; connected).
    Hypergraph data = GenerateHypergraph(SmallRandomConfig(seed));
    Rng rng(seed);
    Result<Hypergraph> sampled =
        SampleQuery(data, QuerySettings{"t", 5, 2, 100}, &rng);
    if (!sampled.ok()) continue;
    Hypergraph q = std::move(sampled.value());
    if (q.NumEdges() == 0 || !q.IsConnected()) continue;
    std::vector<size_t> sizes(q.NumVertices(), 10);
    for (auto strategy :
         {VertexOrderStrategy::kGqlStyle, VertexOrderStrategy::kCflStyle,
          VertexOrderStrategy::kDafStyle, VertexOrderStrategy::kCeciStyle}) {
      auto order = ComputeVertexOrder(q, sizes, strategy);
      ASSERT_EQ(order.size(), q.NumVertices());
      std::vector<uint8_t> seen(q.NumVertices(), 0);
      for (size_t i = 0; i < order.size(); ++i) {
        ASSERT_LT(order[i], q.NumVertices());
        EXPECT_FALSE(seen[order[i]]);
        seen[order[i]] = 1;
        if (i > 0) {
          // Connected: shares a hyperedge with an earlier vertex.
          bool connected = false;
          const VertexSet adj = q.AdjacentVertices(order[i]);
          for (size_t j = 0; j < i; ++j) {
            connected |= Contains(adj, order[j]);
          }
          EXPECT_TRUE(connected) << "strategy " << static_cast<int>(strategy)
                                 << " position " << i;
        }
      }
    }
  }
}

TEST(BacktrackingTest, PaperExampleVertexCount) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  for (auto strategy :
       {VertexOrderStrategy::kGqlStyle, VertexOrderStrategy::kCflStyle,
        VertexOrderStrategy::kDafStyle, VertexOrderStrategy::kCeciStyle}) {
    BaselineOptions options;
    options.order = strategy;
    Result<BaselineResult> r = MatchByVertex(idx, q, options);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().embeddings, 2u)
        << "strategy " << static_cast<int>(strategy);
  }
}

// Property sweep: every baseline configuration equals the vertex-mapping
// oracle on random instances.
class BaselineOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineOracleTest, MatchesVertexOracle) {
  const uint64_t seed = GetParam();
  GeneratorConfig config = SmallRandomConfig(seed);
  config.num_vertices = 14 + seed % 6;  // keep the O(|V|!) oracle tractable
  config.num_edges = 18;
  Hypergraph data = GenerateHypergraph(config);
  IndexedHypergraph idx = IndexedHypergraph::Build(data.Clone());

  Rng rng(seed * 131 + 5);
  QuerySettings settings{"t", 2, 2, 100};
  Result<Hypergraph> q = SampleQuery(data, settings, &rng);
  ASSERT_TRUE(q.ok());
  if (q.value().NumVertices() > 9) GTEST_SKIP() << "oracle too slow";

  const uint64_t expected = ReferenceVertexMatchCount(data, q.value());

  for (bool ihs : {true, false}) {
    for (bool adjacency : {true, false}) {
      for (bool failing : {true, false}) {
        BaselineOptions options;
        options.use_ihs = ihs;
        options.adjacency_pruning = adjacency;
        options.failing_sets = failing;
        Result<BaselineResult> r = MatchByVertex(idx, q.value(), options);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r.value().embeddings, expected)
            << "ihs=" << ihs << " adj=" << adjacency << " fs=" << failing;
      }
    }
  }

  // The bipartite strawman agrees with the vertex oracle too (DESIGN.md).
  Result<pairwise::PairwiseResult> bg = MatchViaBipartite(data, q.value());
  ASSERT_TRUE(bg.ok());
  EXPECT_EQ(bg.value().embeddings, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineOracleTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(BacktrackingTest, NamedBaselinesRun) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<BaselineResult> cfl = MatchCflH(idx, q);
  Result<BaselineResult> daf = MatchDafH(idx, q);
  Result<BaselineResult> ceci = MatchCeciH(idx, q);
  ASSERT_TRUE(cfl.ok());
  ASSERT_TRUE(daf.ok());
  ASSERT_TRUE(ceci.ok());
  EXPECT_EQ(cfl.value().embeddings, 2u);
  EXPECT_EQ(daf.value().embeddings, 2u);
  EXPECT_EQ(ceci.value().embeddings, 2u);
}

TEST(BacktrackingTest, TimeoutReported) {
  // A pathological instance: large symmetric data, tiny timeout.
  Hypergraph h;
  h.AddVertices(60, 0);
  for (VertexId a = 0; a < 30; ++a) {
    for (VertexId b = 30; b < 40; ++b) (void)h.AddEdge({a, b});
  }
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));
  Hypergraph q;
  q.AddVertices(5, 0);
  (void)q.AddEdge({0, 1});
  (void)q.AddEdge({1, 2});
  (void)q.AddEdge({2, 3});
  (void)q.AddEdge({3, 4});
  BaselineOptions options;
  options.timeout_seconds = 0.02;
  Result<BaselineResult> r = MatchByVertex(idx, q, options);
  ASSERT_TRUE(r.ok());
  // Either it finished fast or it reports the timeout; with this blow-up it
  // should time out, but don't flake on fast machines.
  if (r.value().timed_out) {
    EXPECT_LT(r.value().seconds, 1.0);
  }
}

TEST(BipartiteTest, ConversionShape) {
  Hypergraph h = PaperDataHypergraph();
  pairwise::Graph g = ConvertToBipartite(h, h.NumLabels());
  // 7 original + 6 hyperedge vertices; one pairwise edge per incidence.
  EXPECT_EQ(g.NumVertices(), 13u);
  EXPECT_EQ(g.NumEdges(), h.NumIncidences());
  // Edge-vertices carry label base + arity.
  EXPECT_EQ(g.label(7), h.NumLabels() + 2);   // e1 has arity 2
  EXPECT_EQ(g.label(11), h.NumLabels() + 4);  // e5 has arity 4
  // Vertex labels preserved.
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.label(v), h.label(v));
  // Bipartite: no edge between two original vertices.
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 7));  // v2 in e1
}

TEST(BipartiteTest, PaperExampleViaBipartite) {
  Hypergraph data = PaperDataHypergraph();
  Hypergraph q = PaperQueryHypergraph();
  Result<pairwise::PairwiseResult> r = MatchViaBipartite(data, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().embeddings, 2u);
}

TEST(PairwiseGraphTest, BuildAndQuery) {
  pairwise::Graph g = pairwise::Graph::Build(
      {0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}, {1, 0}, {2, 2}});
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);  // dup {0,1} and self-loop removed
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(PairwiseMatcherTest, TrianglesInClique) {
  // K4, all same label; triangle query has 4*3*2 = 24 label-preserving
  // injective mappings.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId a = 0; a < 4; ++a) {
    for (VertexId b = a + 1; b < 4; ++b) edges.emplace_back(a, b);
  }
  pairwise::Graph data = pairwise::Graph::Build({0, 0, 0, 0}, edges);
  pairwise::Graph query =
      pairwise::Graph::Build({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  Result<pairwise::PairwiseResult> r = pairwise::MatchPairwise(data, query);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().embeddings, 24u);
}

TEST(PairwiseMatcherTest, LabelsRestrict) {
  pairwise::Graph data =
      pairwise::Graph::Build({0, 1, 0}, {{0, 1}, {1, 2}});
  pairwise::Graph query = pairwise::Graph::Build({0, 1}, {{0, 1}});
  Result<pairwise::PairwiseResult> r = pairwise::MatchPairwise(data, query);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().embeddings, 2u);  // (v0,v1) and (v2,v1)
}

}  // namespace
}  // namespace hgmatch
