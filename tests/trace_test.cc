// Coverage of per-query spans (obs/trace.h + SubmitOptions::trace): the
// span is finalised exactly once on every terminal path — ok, embedding
// limit, timeout, cancel-while-queued, cancel-while-running, shed by
// backpressure, plan-cache mirror — with monotonically ordered stamps for
// the stages that actually happened and zeros for the ones that did not.
// Sharded execution contributes one slice row per shard. The suite runs
// in the TSan matrix: stamps cross from pool workers to the waiter.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/hgmatch.h"
#include "obs/trace.h"
#include "parallel/service.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

Hypergraph PairCliqueData(uint32_t m) {
  Hypergraph h;
  h.AddVertices(m, 0);
  for (VertexId i = 0; i < m; ++i) {
    for (VertexId j = i + 1; j < m; ++j) (void)h.AddEdge({i, j});
  }
  return h;
}

Hypergraph PathQuery(uint32_t k) {
  Hypergraph q;
  q.AddVertices(k + 1, 0);
  for (VertexId v = 0; v < k; ++v) (void)q.AddEdge({v, v + 1});
  return q;
}

ServiceOptions BaseOptions(uint32_t threads) {
  ServiceOptions o;
  o.parallel.num_threads = threads;
  o.parallel.scan_grain = 1;
  return o;
}

SubmitOptions Traced() {
  SubmitOptions so;
  so.trace = true;
  return so;
}

// The invariants every finalised span must satisfy, whatever the path:
// nonzero stamps are ordered, zero stamps mark stages that never ran.
void ExpectWellFormed(const QuerySpan& span) {
  EXPECT_TRUE(span.enabled);
  EXPECT_GT(span.submit_seconds, 0.0);
  double prev = span.submit_seconds;
  for (double stamp : {span.admit_seconds, span.first_task_seconds,
                       span.last_task_seconds, span.resolve_seconds}) {
    if (stamp == 0) continue;
    EXPECT_GE(stamp, prev);
    prev = stamp;
  }
  EXPECT_GE(span.TotalSeconds(), 0.0);
}

TEST(TraceTest, UntracedSubmissionCarriesNoSpan) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchService service(idx, BaseOptions(2));
  Ticket t = service.Submit(PaperQueryHypergraph());
  EXPECT_FALSE(t.Wait().span.enabled);
  EXPECT_EQ(t.Wait().span.submit_seconds, 0.0);
  service.Shutdown();
}

TEST(TraceTest, OkQueryHasEveryStageInOrder) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchService service(idx, BaseOptions(2));
  Ticket t = service.Submit(PaperQueryHypergraph(), Traced());
  const QueryOutcome& out = t.Wait();
  EXPECT_EQ(out.status, QueryStatus::kOk);
  ExpectWellFormed(out.span);
  // A completed query ran every stage.
  EXPECT_GT(out.span.admit_seconds, 0.0);
  EXPECT_GT(out.span.first_task_seconds, 0.0);
  EXPECT_GT(out.span.last_task_seconds, 0.0);
  EXPECT_GT(out.span.resolve_seconds, 0.0);
  service.Shutdown();
}

TEST(TraceTest, LimitAndTimeoutSpansFinalise) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(24));
  MatchService service(idx, BaseOptions(2));

  SubmitOptions limited = Traced();
  limited.limit = 1;
  Ticket lim = service.Submit(PathQuery(2), limited);
  EXPECT_EQ(lim.Wait().status, QueryStatus::kLimit);
  ExpectWellFormed(lim.Wait().span);

  SubmitOptions timed = Traced();
  timed.timeout_seconds = 1e-9;  // expires at the first task boundary
  Ticket to = service.Submit(PathQuery(4), timed);
  EXPECT_EQ(to.Wait().status, QueryStatus::kTimeout);
  ExpectWellFormed(to.Wait().span);
  service.Shutdown();
}

TEST(TraceTest, CancelledQueuedSpanHasNoAdmitStamp) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  options.plan_cache = false;
  MatchService service(idx, options);

  Ticket monster = service.Submit(PathQuery(4), Traced());  // holds the slot
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  Ticket queued = service.Submit(PathQuery(1), Traced());
  EXPECT_TRUE(queued.Cancel());
  const QueryOutcome* out = queued.TryGet();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->status, QueryStatus::kCancelled);
  ExpectWellFormed(out->span);
  // Never admitted, never ran: only submit and resolve are stamped.
  EXPECT_EQ(out->span.admit_seconds, 0.0);
  EXPECT_EQ(out->span.first_task_seconds, 0.0);
  EXPECT_GT(out->span.resolve_seconds, 0.0);

  EXPECT_TRUE(monster.Cancel());
  const QueryOutcome& mout = monster.Wait();
  EXPECT_EQ(mout.status, QueryStatus::kCancelled);
  // Cancelled mid-run: it was admitted and ran tasks before stopping.
  ExpectWellFormed(mout.span);
  EXPECT_GT(mout.span.admit_seconds, 0.0);
  service.Shutdown();
}

TEST(TraceTest, ShedSubmissionStillFinalisesItsSpan) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PairCliqueData(40));
  ServiceOptions options = BaseOptions(2);
  options.max_inflight_queries = 1;
  options.max_queued_queries = 1;
  options.plan_cache = false;
  MatchService service(idx, options);

  Ticket plug = service.Submit(PathQuery(4), Traced());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Ticket waiting = service.Submit(PathQuery(1), Traced());
  Ticket shed = service.Submit(PathQuery(1), Traced());
  const QueryOutcome* out = shed.TryGet();
  ASSERT_NE(out, nullptr);  // backpressure resolves synchronously
  EXPECT_EQ(out->status, QueryStatus::kRejected);
  ExpectWellFormed(out->span);
  EXPECT_EQ(out->span.admit_seconds, 0.0);  // never admitted

  EXPECT_TRUE(plug.Cancel());
  (void)plug.Wait();
  (void)waiting.Wait();
  service.Shutdown();
}

TEST(TraceTest, MirrorCarriesCanonicalSpanWithOwnResolve) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchService service(idx, BaseOptions(2));

  Ticket canonical = service.Submit(PaperQueryHypergraph(), Traced());
  const QueryOutcome& cout_ = canonical.Wait();
  EXPECT_EQ(cout_.status, QueryStatus::kOk);
  ExpectWellFormed(cout_.span);

  // Identical sink-less repeat: resolved from the plan-cache record.
  Ticket mirror = service.Submit(PaperQueryHypergraph(), Traced());
  const QueryOutcome& mout = mirror.Wait();
  EXPECT_EQ(mout.status, QueryStatus::kOk);
  EXPECT_TRUE(mout.mirrored);
  ExpectWellFormed(mout.span);
  // The mirror shares the canonical's execution stamps but resolved at
  // its own (later or equal) instant.
  EXPECT_EQ(mout.span.first_task_seconds, cout_.span.first_task_seconds);
  EXPECT_GE(mout.span.resolve_seconds, cout_.span.resolve_seconds);
  service.Shutdown();
}

TEST(TraceTest, ShardedQueryCollectsOneSliceRowPerShard) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  ServiceOptions options = BaseOptions(2);
  options.shards = 3;
  MatchService service(idx, options);

  Ticket t = service.Submit(PaperQueryHypergraph(), Traced());
  const QueryOutcome& out = t.Wait();
  EXPECT_EQ(out.status, QueryStatus::kOk);
  ExpectWellFormed(out.span);
  ASSERT_EQ(out.span.slices.size(), 3u);
  std::vector<bool> seen(3, false);
  for (const TraceSlice& s : out.span.slices) {
    ASSERT_LT(s.slice, 3u);
    EXPECT_FALSE(seen[s.slice]);  // each shard reports exactly once
    seen[s.slice] = true;
    if (s.finish_seconds > 0 && s.admit_seconds > 0) {
      EXPECT_GE(s.finish_seconds, s.admit_seconds);
    }
  }
  service.Shutdown();
}

TEST(TraceTest, ConcurrentTracedQueriesFinaliseExactlyOnce) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  MatchService service(idx, BaseOptions(4));
  std::vector<Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    tickets.push_back(service.Submit(PaperQueryHypergraph(), Traced()));
  }
  for (Ticket& t : tickets) {
    const QueryOutcome& out = t.Wait();
    ExpectWellFormed(out.span);
    // Wait() twice returns the same stored span, not a re-finalised one.
    EXPECT_EQ(t.Wait().span.resolve_seconds, out.span.resolve_seconds);
  }
  service.Shutdown();
}

TEST(TraceTest, TimelineRendersStagesAndDashes) {
  QuerySpan span;
  span.enabled = true;
  span.submit_seconds = 1.0;
  span.admit_seconds = 1.001;
  span.first_task_seconds = 0;  // never ran
  span.last_task_seconds = 0;
  span.resolve_seconds = 1.002;
  const std::string text = span.Timeline();
  EXPECT_NE(text.find("submit"), std::string::npos);
  EXPECT_NE(text.find("admit"), std::string::npos);
  EXPECT_NE(text.find("+1.000 ms"), std::string::npos);    // admit offset
  EXPECT_NE(text.find("first-task   -"), std::string::npos);  // skipped stage
}

TEST(TraceTest, MonotonicSecondsAdvances) {
  const double a = MonotonicSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = MonotonicSeconds();
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace hgmatch
