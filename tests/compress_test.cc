// Tests of the LZSS codec (io/compress.h), the varint layer (io/byte_io.h),
// and the v2 compressed on-disk hypergraph format built on both
// (io/binary_format.h).

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>

#include "gen/generator.h"
#include "io/binary_format.h"
#include "io/byte_io.h"
#include "io/compress.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

std::string RoundTrip(const std::string& raw) {
  std::string packed;
  LzssCompress(raw, &packed);
  std::string back;
  Status s = LzssDecompress(packed, raw.size(), &back);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return back;
}

TEST(LzssTest, EmptyInput) {
  std::string packed;
  LzssCompress("", &packed);
  EXPECT_TRUE(packed.empty());
  std::string back;
  EXPECT_TRUE(LzssDecompress(packed, 0, &back).ok());
  EXPECT_TRUE(back.empty());
}

TEST(LzssTest, ShortLiteralsRoundTrip) {
  for (const std::string raw : {"a", "ab", "abc", "hello, world"}) {
    EXPECT_EQ(RoundTrip(raw), raw);
  }
}

TEST(LzssTest, RunsCollapseAndRoundTrip) {
  const std::string raw(100000, 'x');
  std::string packed;
  LzssCompress(raw, &packed);
  // A pure run is matches overlapping their own output: ~2.25 bytes per 18.
  EXPECT_LT(packed.size(), raw.size() / 6);
  std::string back;
  ASSERT_TRUE(LzssDecompress(packed, raw.size(), &back).ok());
  EXPECT_EQ(back, raw);
}

TEST(LzssTest, RepeatedStructureCompresses) {
  // The shape of a batched SUBMIT payload: many near-identical records.
  std::string raw;
  for (int i = 0; i < 2000; ++i) {
    raw += "record with mostly shared bytes #";
    raw += static_cast<char>('a' + i % 7);
  }
  std::string packed;
  LzssCompress(raw, &packed);
  EXPECT_LT(packed.size(), raw.size() / 4);
  std::string back;
  ASSERT_TRUE(LzssDecompress(packed, raw.size(), &back).ok());
  EXPECT_EQ(back, raw);
}

TEST(LzssTest, RandomInputsRoundTripExactly) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t len = static_cast<size_t>(rng() % 5000);
    // Small alphabets make matches common; large ones make literals common.
    const int alphabet = 1 + static_cast<int>(rng() % 255);
    std::string raw(len, '\0');
    for (char& c : raw) c = static_cast<char>(rng() % alphabet);
    EXPECT_EQ(RoundTrip(raw), raw);
  }
}

TEST(LzssTest, IncompressibleInputStaysBounded) {
  std::mt19937_64 rng(11);
  std::string raw(8192, '\0');
  for (char& c : raw) c = static_cast<char>(rng());
  std::string packed;
  LzssCompress(raw, &packed);
  // Documented worst case: one control byte per eight items, plus one group.
  EXPECT_LE(packed.size(), raw.size() + raw.size() / 8 + 1);
}

TEST(LzssTest, DecompressRejectsTruncatedToken) {
  std::string packed;
  LzssCompress(std::string(500, 'q'), &packed);
  ASSERT_GT(packed.size(), 3u);
  std::string back;
  EXPECT_FALSE(
      LzssDecompress(std::string_view(packed).substr(0, packed.size() - 1),
                     500, &back)
          .ok());
}

TEST(LzssTest, DecompressRejectsMatchBeforeStart) {
  // Control byte tagging item 0 as a match, then a token with distance 9
  // into an empty output.
  const std::string bad = {'\x01', '\x80', '\x00'};
  std::string back;
  Status s = LzssDecompress(bad, 100, &back);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(LzssTest, DecompressBoundsOutputSize) {
  // An inflation bomb: a valid stream decoding to far more than the bound
  // claimed out of band must fail instead of allocating.
  const std::string raw(100000, 'z');
  std::string packed;
  LzssCompress(raw, &packed);
  std::string back;
  EXPECT_FALSE(LzssDecompress(packed, 1000, &back).ok());
  EXPECT_LE(back.size(), 1000u + kLzssMaxMatch);
}

TEST(LzssTest, AdversarialRandomStreamsNeverOverrun) {
  // Random bytes fed straight to the decoder: any outcome is fine except a
  // crash or output past the declared bound.
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(rng() % 300, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    const size_t bound = rng() % 600;
    std::string back;
    (void)LzssDecompress(garbage, bound, &back);
    EXPECT_LE(back.size(), bound + kLzssMaxMatch);
  }
}

TEST(VarintTest, RoundTripBoundaries) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             ~uint64_t{0}};
  std::string buf;
  for (uint64_t v : values) AppendVarint(v, &buf);
  ByteReader r(buf);
  for (uint64_t v : values) EXPECT_EQ(ReadVarint(r), v);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(VarintTest, TruncatedStreamFailsReader) {
  std::string buf;
  AppendVarint(1ull << 40, &buf);
  ByteReader r(std::string_view(buf).substr(0, 2));
  (void)ReadVarint(r);
  EXPECT_FALSE(r.ok());
}

TEST(VarintTest, OverlongEncodingFailsReader) {
  // Eleven continuation bytes: more than any 64-bit value needs.
  const std::string overlong(11, '\x80');
  ByteReader r(overlong);
  (void)ReadVarint(r);
  EXPECT_FALSE(r.ok());

  // Ten bytes whose last carries bits past the 64th.
  std::string past(9, '\x80');
  past.push_back('\x7f');
  ByteReader r2(past);
  (void)ReadVarint(r2);
  EXPECT_FALSE(r2.ok());
}

TEST(BinaryV2Test, InMemoryRoundTripMatchesV1) {
  const Hypergraph h = PaperDataHypergraph();
  std::string v2;
  AppendHypergraphCompressed(h, &v2);
  Result<Hypergraph> back = DecodeHypergraphBinary(v2.data(), v2.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  std::string v1_orig, v1_back;
  AppendHypergraphBinary(h, &v1_orig);
  AppendHypergraphBinary(back.value(), &v1_back);
  EXPECT_EQ(v1_orig, v1_back);
}

TEST(BinaryV2Test, GeneratedGraphRoundTripsAndShrinks) {
  const Hypergraph h = GenerateHypergraph(SmallRandomConfig(99));

  std::string v1, v2;
  AppendHypergraphBinary(h, &v1);
  AppendHypergraphCompressed(h, &v2);
  // Delta+varint alone beats fixed-width ids; LZSS only helps further.
  EXPECT_LT(v2.size(), v1.size());

  Result<Hypergraph> back = DecodeHypergraphBinary(v2.data(), v2.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  std::string v1_back;
  AppendHypergraphBinary(back.value(), &v1_back);
  EXPECT_EQ(v1_back, v1);
}

TEST(BinaryV2Test, MultiChunkBodyRoundTrips) {
  // Enough incidences that the compact body spans several chunks.
  Hypergraph h;
  h.AddVertices(200000, 0);
  std::mt19937_64 rng(3);
  for (int e = 0; e < 120000; ++e) {
    VertexSet m;
    const int arity = 2 + static_cast<int>(rng() % 5);
    for (int k = 0; k < arity; ++k) {
      m.push_back(static_cast<VertexId>(rng() % 200000));
    }
    (void)h.AddEdge(std::move(m));
  }
  std::string v2;
  AppendHypergraphCompressed(h, &v2);
  ASSERT_GT(v2.size(), 4u + 24u + 9u);  // sanity: header + >=1 chunk

  Result<Hypergraph> back = DecodeHypergraphBinary(v2.data(), v2.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  std::string a, b;
  AppendHypergraphBinary(h, &a);
  AppendHypergraphBinary(back.value(), &b);
  EXPECT_EQ(a, b);
}

TEST(BinaryV2Test, TruncationAtEveryPrefixFailsCleanly) {
  const Hypergraph h = PaperDataHypergraph();
  std::string v2;
  AppendHypergraphCompressed(h, &v2);
  for (size_t cut = 0; cut < v2.size(); ++cut) {
    Result<Hypergraph> r = DecodeHypergraphBinary(v2.data(), cut);
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(BinaryV2Test, MutatedImagesNeverCrash) {
  const Hypergraph h = GenerateHypergraph(SmallRandomConfig(5));
  std::string v2;
  AppendHypergraphCompressed(h, &v2);
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bad = v2;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      bad[rng() % bad.size()] ^= static_cast<char>(1u << (rng() % 8));
    }
    // Must return (ok or error), not crash, hang, or over-allocate.
    (void)DecodeHypergraphBinary(bad.data(), bad.size());
  }
}

TEST(BinaryV2Test, HostileHeaderCountsAreBoundedByInput)
{
  // A tiny image declaring 2^40 vertices must fail from input exhaustion,
  // not attempt the full loop.
  std::string bad;
  AppendValue<uint32_t>(kBinaryMagicV2, &bad);
  AppendValue<uint64_t>(1ull << 40, &bad);  // |V|
  AppendValue<uint64_t>(0, &bad);           // |E|
  AppendValue<uint64_t>(0, &bad);           // incidences
  Result<Hypergraph> r = DecodeHypergraphBinary(bad.data(), bad.size());
  EXPECT_FALSE(r.ok());
}

TEST(BinaryV2Test, ChunkDeclaringOversizeRawIsRejected) {
  std::string bad;
  AppendValue<uint32_t>(kBinaryMagicV2, &bad);
  AppendValue<uint64_t>(1, &bad);
  AppendValue<uint64_t>(0, &bad);
  AppendValue<uint64_t>(0, &bad);
  AppendValue<uint32_t>(kBinaryChunkBytes + 1, &bad);  // raw too large
  AppendValue<uint32_t>(1, &bad);
  AppendValue<uint8_t>(0, &bad);
  bad.push_back('\0');
  Result<Hypergraph> r = DecodeHypergraphBinary(bad.data(), bad.size());
  EXPECT_FALSE(r.ok());
}

TEST(BinaryV2Test, SaveLoadParityBothVersions) {
  const Hypergraph h = GenerateHypergraph(SmallRandomConfig(23));
  const std::string dir = ::testing::TempDir();

  for (const bool compress : {false, true}) {
    const std::string path =
        dir + (compress ? "/parity_v2.hgb" : "/parity_v1.hgb");
    ASSERT_TRUE(SaveHypergraphBinary(h, path, compress).ok());
    Result<Hypergraph> back = LoadHypergraphBinary(path);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    std::string a, b;
    AppendHypergraphBinary(h, &a);
    AppendHypergraphBinary(back.value(), &b);
    EXPECT_EQ(a, b) << "compress=" << compress;
    std::remove(path.c_str());
  }
}

TEST(BinaryV2Test, V1FilesStillLoad) {
  // Backward compatibility: files written before the v2 bump (i.e. with
  // compress=false, the old writer's exact image) load unchanged.
  const Hypergraph h = PaperDataHypergraph();
  const std::string path = ::testing::TempDir() + "/legacy_v1.hgb";
  ASSERT_TRUE(SaveHypergraphBinary(h, path, /*compress=*/false).ok());

  std::string v1;
  AppendHypergraphBinary(h, &v1);
  // The uncompressed file image is byte-identical to the v1 wire image.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string file_bytes(v1.size() + 1, '\0');
  const size_t got = std::fread(file_bytes.data(), 1, file_bytes.size(), f);
  std::fclose(f);
  file_bytes.resize(got);
  EXPECT_EQ(file_bytes, v1);

  Result<Hypergraph> back = LoadHypergraphBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().NumEdges(), h.NumEdges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hgmatch
