#include "parallel/batch_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/hgmatch.h"
#include "gen/generator.h"
#include "gen/query_gen.h"
#include "io/loader.h"
#include "io/writer.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

// Deterministic small workload: a mix of sampled (guaranteed non-empty
// result) and generated queries against one random data hypergraph.
std::vector<Hypergraph> MixedQueries(const Hypergraph& data, size_t count) {
  std::vector<Hypergraph> queries;
  Rng rng(91);
  for (size_t i = 0; i < count; ++i) {
    const uint32_t k = 2 + static_cast<uint32_t>(i % 3);
    Result<Hypergraph> sampled =
        SampleQuery(data, QuerySettings{"batch", k, 2, 200}, &rng);
    if (sampled.ok()) {
      queries.push_back(std::move(sampled.value()));
    } else {
      GeneratorConfig qc = SmallRandomConfig(40 + i);
      qc.num_edges = k;
      queries.push_back(GenerateHypergraph(qc));
    }
  }
  return queries;
}

TEST(BatchRunnerTest, CountsMatchSequentialPerQuery) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(9));
  std::vector<Hypergraph> queries = MixedQueries(data, 8);
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));

  std::vector<uint64_t> expected;
  for (const Hypergraph& q : queries) {
    Result<MatchStats> seq = MatchSequential(idx, q);
    ASSERT_TRUE(seq.ok());
    expected.push_back(seq.value().embeddings);
  }

  for (uint32_t threads : {1u, 2u, 4u}) {
    BatchOptions options;
    options.parallel.num_threads = threads;
    options.parallel.scan_grain = 2;
    const BatchResult r = RunBatch(idx, queries, options);
    ASSERT_EQ(r.queries.size(), queries.size());
    uint64_t total = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(r.queries[i].status.ok());
      EXPECT_EQ(r.queries[i].stats.embeddings, expected[i])
          << "query " << i << ", " << threads << " threads";
      total += expected[i];
    }
    EXPECT_EQ(r.total.embeddings, total);
    EXPECT_EQ(r.completed, queries.size());
    EXPECT_EQ(r.workers.size(), threads);
  }
}

TEST(BatchRunnerTest, PaperExampleRepeatedQueries) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  std::vector<Hypergraph> queries;
  for (int i = 0; i < 5; ++i) queries.push_back(PaperQueryHypergraph());

  BatchOptions options;
  options.parallel.num_threads = 3;
  options.parallel.scan_grain = 1;
  const BatchResult r = RunBatch(idx, queries, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.queries[i].stats.embeddings, 2u) << "query " << i;
  }
  EXPECT_EQ(r.total.embeddings, 10u);
  EXPECT_EQ(r.completed, 5u);
  EXPECT_GT(r.peak_task_bytes, 0u);
  // The four repeats are plan-cache hits onto the first copy's plan.
  EXPECT_EQ(r.plan_cache_hits, 4u);
  EXPECT_EQ(r.unique_plans, 1u);
}

TEST(BatchRunnerTest, PlanCacheDisabledPlansEveryCopy) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  std::vector<Hypergraph> queries;
  for (int i = 0; i < 5; ++i) queries.push_back(PaperQueryHypergraph());

  BatchOptions options;
  options.parallel.num_threads = 3;
  options.plan_cache = false;
  const BatchResult r = RunBatch(idx, queries, options);
  EXPECT_EQ(r.plan_cache_hits, 0u);
  EXPECT_EQ(r.unique_plans, 5u);
  EXPECT_EQ(r.total.embeddings, 10u);
  EXPECT_EQ(r.completed, 5u);
}

TEST(BatchRunnerTest, PlanCacheDistinguishesNearDuplicates) {
  // Same edge-signature multisets but different structure must not share a
  // plan or counts: the cache key is exact structural identity.
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  std::vector<Hypergraph> queries;
  queries.push_back(PaperQueryHypergraph());
  {
    // Same vertices, but the {A,B} edge uses u3 (also label A) instead of
    // u2 — structurally different, signature multiset identical.
    Hypergraph q;
    const Label A = 0, B = 1, C = 2;
    for (Label l : {A, C, A, A, B}) q.AddVertex(l);
    (void)q.AddEdge({3, 4});
    (void)q.AddEdge({0, 1, 2});
    (void)q.AddEdge({0, 1, 3, 4});
    queries.push_back(std::move(q));
  }

  const BatchResult r = RunBatch(idx, queries, BatchOptions{});
  EXPECT_EQ(r.plan_cache_hits, 0u);
  EXPECT_EQ(r.unique_plans, 2u);
  Result<MatchStats> seq0 = MatchSequential(idx, queries[0]);
  Result<MatchStats> seq1 = MatchSequential(idx, queries[1]);
  ASSERT_TRUE(seq0.ok());
  ASSERT_TRUE(seq1.ok());
  EXPECT_EQ(r.queries[0].stats.embeddings, seq0.value().embeddings);
  EXPECT_EQ(r.queries[1].stats.embeddings, seq1.value().embeddings);
}

TEST(BatchRunnerTest, PlanCacheWithSinksStillEmitsPerCopy) {
  // Repeated queries that carry sinks share the compiled plan but execute
  // individually, so every sink observes its own exact embedding stream.
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  std::vector<Hypergraph> queries;
  for (int i = 0; i < 3; ++i) queries.push_back(PaperQueryHypergraph());

  std::vector<CollectSink> collect(queries.size());
  std::vector<EmbeddingSink*> sinks;
  for (CollectSink& s : collect) sinks.push_back(&s);

  BatchOptions options;
  options.parallel.num_threads = 3;
  const BatchResult r = RunBatch(idx, queries, options, &sinks);
  EXPECT_EQ(r.plan_cache_hits, 2u);
  EXPECT_EQ(r.unique_plans, 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(collect[i].count(), 2u) << "query " << i;
    EXPECT_EQ(r.queries[i].stats.embeddings, 2u) << "query " << i;
  }
}

TEST(BatchRunnerTest, SinksReceiveExactEmbeddings) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(11));
  std::vector<Hypergraph> queries = MixedQueries(data, 4);
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));

  std::vector<CollectSink> collect(queries.size());
  std::vector<EmbeddingSink*> sinks;
  for (CollectSink& s : collect) sinks.push_back(&s);

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.scan_grain = 2;
  const BatchResult r = RunBatch(idx, queries, options, &sinks);

  for (size_t i = 0; i < queries.size(); ++i) {
    Result<QueryPlan> plan = BuildQueryPlan(queries[i], idx);
    ASSERT_TRUE(plan.ok());
    CollectSink seq;
    ExecutePlanSequential(idx, plan.value(), MatchOptions{}, &seq);
    auto a = seq.embeddings();
    auto b = collect[i].embeddings();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "query " << i;
    EXPECT_EQ(r.queries[i].stats.embeddings, collect[i].count());
  }
}

TEST(BatchRunnerTest, PlanningFailureIsIsolated) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  std::vector<Hypergraph> queries;
  queries.push_back(PaperQueryHypergraph());
  queries.emplace_back();  // empty query: planning fails
  queries.push_back(PaperQueryHypergraph());

  const BatchResult r = RunBatch(idx, queries, BatchOptions{});
  ASSERT_EQ(r.queries.size(), 3u);
  EXPECT_TRUE(r.queries[0].status.ok());
  EXPECT_FALSE(r.queries[1].status.ok());
  EXPECT_TRUE(r.queries[2].status.ok());
  EXPECT_EQ(r.queries[0].stats.embeddings, 2u);
  EXPECT_EQ(r.queries[1].stats.embeddings, 0u);
  EXPECT_EQ(r.queries[2].stats.embeddings, 2u);
  EXPECT_EQ(r.completed, 2u);
}

TEST(BatchRunnerTest, PerQueryLimitStopsEachQuery) {
  Hypergraph h;
  h.AddVertices(100, 0);
  for (VertexId v = 0; v + 1 < 100; ++v) (void)h.AddEdge({v, v + 1});
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));
  Hypergraph q;
  q.AddVertices(3, 0);
  (void)q.AddEdge({0, 1});
  (void)q.AddEdge({1, 2});
  std::vector<Hypergraph> queries;
  queries.push_back(q.Clone());
  queries.push_back(q.Clone());

  BatchOptions options;
  options.parallel.num_threads = 2;
  options.parallel.limit = 3;
  const BatchResult r = RunBatch(idx, queries, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(r.queries[i].stats.limit_hit) << "query " << i;
    EXPECT_GE(r.queries[i].stats.embeddings, 3u) << "query " << i;
  }
  EXPECT_EQ(r.completed, 0u);
}

TEST(BatchRunnerTest, NoStealMeansZeroSteals) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(7));
  std::vector<Hypergraph> queries = MixedQueries(data, 4);
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));

  BatchOptions options;
  options.parallel.num_threads = 4;
  options.parallel.work_stealing = false;
  const BatchResult r = RunBatch(idx, queries, options);
  for (const WorkerReport& w : r.workers) EXPECT_EQ(w.steals, 0u);
  EXPECT_EQ(r.completed, queries.size());
}

TEST(BatchRunnerTest, EmptyBatchIsOk) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  const BatchResult r = RunBatch(idx, {}, BatchOptions{});
  EXPECT_TRUE(r.queries.empty());
  EXPECT_EQ(r.total.embeddings, 0u);
  EXPECT_EQ(r.completed, 0u);
}

TEST(QuerySetIoTest, ParseSeparatorsAndSampleOutput) {
  const Hypergraph q = PaperQueryHypergraph();
  const std::string one = FormatHypergraph(q);
  // "# query i" headers (hgmatch sample output) and "---" both separate.
  const std::string text =
      "# query 0\n" + one + "---\n" + one + "\n# query 2\n" + one;
  Result<std::vector<Hypergraph>> set = ParseQuerySet(text);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set.value().size(), 3u);
  for (const Hypergraph& parsed : set.value()) {
    EXPECT_EQ(parsed.NumVertices(), q.NumVertices());
    EXPECT_EQ(parsed.NumEdges(), q.NumEdges());
  }
}

TEST(QuerySetIoTest, BadBlockReportsIndex) {
  Result<std::vector<Hypergraph>> set =
      ParseQuerySet("v 0 0\ne 0\n---\nnonsense line\n");
  ASSERT_FALSE(set.ok());
  EXPECT_NE(set.status().message().find("query block 1"), std::string::npos);
}

TEST(QuerySetIoTest, EmptyAndWhitespaceBlocksSkipped) {
  Result<std::vector<Hypergraph>> set =
      ParseQuerySet("---\n\n---\nv 0 0\ne 0\n---\n  \n");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set.value().size(), 1u);
}

}  // namespace
}  // namespace hgmatch
