#include "core/hgmatch.h"

#include <gtest/gtest.h>

#include "core/reference.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

TEST(SequentialEngineTest, PaperExampleFindsBothEmbeddings) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  CollectSink sink;
  Result<MatchStats> stats = MatchSequential(idx, q, MatchOptions{}, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().embeddings, 2u);
  ASSERT_EQ(sink.embeddings().size(), 2u);
  // Matching order is (0,1,2), so tuples are already per query edge id:
  // (e1,e3,e5) = (0,2,4) and (e2,e4,e6) = (1,3,5).
  std::vector<Embedding> got = sink.embeddings();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got[0], (Embedding{0, 2, 4}));
  EXPECT_EQ(got[1], (Embedding{1, 3, 5}));
}

TEST(SequentialEngineTest, AgreesWithReferenceOnPaperExample) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  MatchStats ref = ReferenceEdgeTupleMatch(idx, q);
  Result<MatchStats> got = MatchSequential(idx, q);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().embeddings, ref.embeddings);
}

TEST(SequentialEngineTest, SingleEdgeQueryCountsSignatureTable) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  // Query = one {A,B} hyperedge: matches e1 and e2.
  Hypergraph q;
  const VertexId a = q.AddVertex(0);
  const VertexId b = q.AddVertex(1);
  (void)q.AddEdge({a, b});
  Result<MatchStats> stats = MatchSequential(idx, q);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().embeddings, 2u);
}

TEST(SequentialEngineTest, NoMatchWhenSignatureMissing) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q;
  const VertexId b = q.AddVertex(1);
  const VertexId c = q.AddVertex(2);
  (void)q.AddEdge({b, c});  // {B,C} table does not exist
  Result<MatchStats> stats = MatchSequential(idx, q);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().embeddings, 0u);
}

TEST(SequentialEngineTest, LimitStopsEnumeration) {
  // Data with many embeddings of a single-edge query.
  Hypergraph h;
  h.AddVertices(40, 0);
  for (VertexId v = 0; v + 1 < 40; ++v) (void)h.AddEdge({v, v + 1});
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));
  Hypergraph q;
  q.AddVertices(2, 0);
  (void)q.AddEdge({0, 1});
  MatchOptions options;
  options.limit = 5;
  Result<MatchStats> stats = MatchSequential(idx, q, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().embeddings, 5u);
  EXPECT_TRUE(stats.value().limit_hit);
}

TEST(SequentialEngineTest, StrictValidationChangesNothing) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Hypergraph data = GenerateHypergraph(SmallRandomConfig(seed));
    IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));
    GeneratorConfig qc = SmallRandomConfig(seed + 50);
    qc.num_edges = 3;
    qc.num_vertices = 8;
    Hypergraph q = GenerateHypergraph(qc);
    if (q.NumEdges() == 0) continue;
    MatchOptions strict;
    strict.strict_validation = true;
    Result<MatchStats> plain = MatchSequential(idx, q);
    Result<MatchStats> checked = MatchSequential(idx, q, strict);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(checked.ok());
    // Theorem V.2's incremental check must agree with the exact check.
    EXPECT_EQ(plain.value().embeddings, checked.value().embeddings)
        << "Algorithm 5 disagreed with exact validation at seed " << seed;
  }
}

TEST(SequentialEngineTest, StatsCountersAreCoherent) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<MatchStats> stats = MatchSequential(idx, q);
  ASSERT_TRUE(stats.ok());
  // candidates >= filtered >= embeddings (Fig 9's three bars).
  EXPECT_GE(stats.value().candidates, stats.value().filtered);
  EXPECT_GE(stats.value().filtered, stats.value().embeddings);
  EXPECT_GT(stats.value().expansions, 0u);
  EXPECT_GE(stats.value().seconds, 0.0);
}

TEST(SequentialEngineTest, RejectsEmptyQuery) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q;
  q.AddVertex(0);
  EXPECT_FALSE(MatchSequential(idx, q).ok());
}

TEST(ReferenceTest, VertexSemanticsOnPaperExample) {
  // The paper example's two hyperedge-tuple embeddings each admit exactly
  // one vertex bijection, so both semantics agree here.
  Hypergraph data = PaperDataHypergraph();
  Hypergraph q = PaperQueryHypergraph();
  EXPECT_EQ(ReferenceVertexMatchCount(data, q), 2u);
}

TEST(ReferenceTest, VertexSemanticsCountsSymmetries) {
  // One data edge {A,A}; query edge {A,A}: a single hyperedge-tuple but two
  // vertex mappings (the two vertices are interchangeable).
  Hypergraph data;
  data.AddVertices(2, 0);
  (void)data.AddEdge({0, 1});
  Hypergraph q;
  q.AddVertices(2, 0);
  (void)q.AddEdge({0, 1});
  EXPECT_EQ(ReferenceVertexMatchCount(data, q), 2u);

  IndexedHypergraph idx = IndexedHypergraph::Build(data.Clone());
  MatchStats tuple = ReferenceEdgeTupleMatch(idx, q);
  EXPECT_EQ(tuple.embeddings, 1u);
  Result<MatchStats> hg = MatchSequential(idx, q);
  ASSERT_TRUE(hg.ok());
  EXPECT_EQ(hg.value().embeddings, 1u);
}

}  // namespace
}  // namespace hgmatch
