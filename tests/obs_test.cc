// Coverage of the metrics registry (obs/metrics.h): histogram bucket
// math cross-checked against the brute-force quantile on the raw samples
// (util/stats.h), concurrent counter/histogram updates from many threads
// (the TSan matrix runs this suite), Prometheus text rendering, the
// disabled-registry no-op path, and label escaping. No sockets, no
// service — the registry is a leaf.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace hgmatch {
namespace {

TEST(MetricsTest, CounterAddsAcrossShards) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test_total");
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(MetricsTest, SameNameAndLabelsReturnsSameHandle) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total", "reason=\"a\"");
  Counter* b = reg.GetCounter("x_total", "reason=\"a\"");
  Counter* other = reg.GetCounter("x_total", "reason=\"b\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Add();
  EXPECT_EQ(b->Value(), 1u);
  EXPECT_EQ(other->Value(), 0u);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("temp");
  g->Set(3.5);
  g->Set(-1.25);
  EXPECT_EQ(g->Value(), -1.25);
}

TEST(MetricsTest, HistogramBucketBoundsGrowBySqrtTwo) {
  // Bound 0 is 1 us; every even offset doubles (sqrt(2)^2 == 2 exactly
  // would accumulate float error, so compare with tolerance).
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), 1e-6);
  for (size_t k = 0; k + 3 < Histogram::kNumBuckets; k += 2) {
    EXPECT_NEAR(Histogram::BucketBound(k + 2) / Histogram::BucketBound(k),
                2.0, 1e-9);
  }
  EXPECT_TRUE(std::isinf(
      Histogram::BucketBound(Histogram::kNumBuckets - 1)));
}

TEST(MetricsTest, HistogramBucketIndexMatchesBounds) {
  // A value exactly on a bound lands in that bound's bucket (le
  // semantics); a hair above lands in the next.
  for (size_t k = 0; k + 1 < Histogram::kNumBuckets; ++k) {
    const double bound = Histogram::BucketBound(k);
    EXPECT_EQ(Histogram::BucketIndex(bound), k);
    EXPECT_EQ(Histogram::BucketIndex(bound * 1.0001), k + 1);
  }
  // Garbage and extremes stay in range.
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e12), Histogram::kNumBuckets - 1);
}

TEST(MetricsTest, HistogramQuantilesTrackBruteForceWithinBucketError) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat_seconds");
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over 2 us .. ~50 ms: exercises ~30 buckets.
    const double v = 2e-6 * std::pow(10.0, 4.4 * rng.NextDouble());
    samples.push_back(v);
    h->Observe(v);
  }
  EXPECT_EQ(h->Count(), samples.size());

  double sum = 0;
  for (double v : samples) sum += v;
  EXPECT_NEAR(h->Sum(), sum, sum * 1e-9);
  EXPECT_DOUBLE_EQ(h->Max(), *std::max_element(samples.begin(),
                                               samples.end()));

  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = QuantileSorted(samples, q);
    const double approx = h->Quantile(q);
    // A log-bucketed histogram is exact to within one bucket: the
    // estimate must land inside [exact/growth, exact*growth].
    EXPECT_GE(approx, exact / 1.4143) << "q=" << q;
    EXPECT_LE(approx, exact * 1.4143) << "q=" << q;
  }
}

TEST(MetricsTest, EmptyHistogramQuantileIsZeroAtEveryPoint) {
  // Pins the documented contract (obs/metrics.h): a histogram with no
  // observations returns 0 from Quantile — not NaN, not infinity, not a
  // bucket bound — at every probe point including the extremes. Dashboards
  // divide by and alert on these values, so the zero must stay exact.
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("never_observed_seconds");
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h->Quantile(q), 0.0) << "q=" << q;
  }
  // Still zero after a reset-like sequence of lookups (Quantile must not
  // mutate state), and count/sum agree that nothing was observed.
  EXPECT_EQ(h->Quantile(0.5), 0.0);
  EXPECT_EQ(h->Count(), 0u);
}

TEST(MetricsTest, HistogramQuantileEdgeCases) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("edge_seconds");
  EXPECT_EQ(h->Quantile(0.5), 0.0);  // empty
  h->Observe(1e-3);
  // One sample: every quantile falls in its bucket.
  const size_t k = Histogram::BucketIndex(1e-3);
  EXPECT_LE(h->Quantile(0.0), Histogram::BucketBound(k));
  EXPECT_LE(h->Quantile(1.0), Histogram::BucketBound(k));
  EXPECT_GT(h->Quantile(1.0), k == 0 ? 0.0 : Histogram::BucketBound(k - 1));
  // The +Inf bucket reports its finite lower bound, not infinity.
  h->Observe(1e9);
  EXPECT_FALSE(std::isinf(h->Quantile(1.0)));
}

TEST(MetricsTest, ConcurrentUpdatesFromManyThreadsSumExactly) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("contended_total");
  Histogram* h = reg.GetHistogram("contended_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Observe(1e-6 * (1 + ((t + i) % 1000)));
        // Concurrent reads race the writes by design; they must be
        // TSan-clean and internally consistent, not exact.
        if (i % 4096 == 0) {
          (void)c->Value();
          (void)h->Quantile(0.5);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, DisabledRegistryDropsWrites) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("idle_total");
  Histogram* h = reg.GetHistogram("idle_seconds");
  reg.set_enabled(false);
  c->Add(100);
  h->Observe(0.5);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
  reg.set_enabled(true);
  c->Add(1);
  EXPECT_EQ(c->Value(), 1u);
}

TEST(MetricsTest, RenderPrometheusEmitsTypedFamilies) {
  MetricsRegistry reg;
  reg.GetCounter("req_total", "reason=\"queue-full\"")->Add(3);
  reg.GetGauge("load")->Set(1.5);
  Histogram* h = reg.GetHistogram("lat_seconds");
  h->Observe(1e-5);
  h->Observe(1e-2);

  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{reason=\"queue-full\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE load gauge\n"), std::string::npos);
  EXPECT_NE(text.find("load 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2\n"), std::string::npos);
  // Cumulative rows: the 1e-5 observation is counted again under every
  // higher bound (pick one mid-grid bound and check it counts both).
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.131072\"} 2\n"),
            std::string::npos);
}

TEST(MetricsTest, RenderMergesLabelsWithBucketLe) {
  MetricsRegistry reg;
  reg.GetHistogram("sharded_seconds", "shard=\"3\"")->Observe(1e-6);
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("sharded_seconds_bucket{shard=\"3\",le=\"1e-06\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("sharded_seconds_sum{shard=\"3\"}"),
            std::string::npos);
}

TEST(MetricsTest, EscapeLabelValueHandlesSpecials) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(MetricsTest, DefaultRegistryIsProcessWideSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace hgmatch
