#include <gtest/gtest.h>

#include <cstdio>

#include "core/hgmatch.h"
#include "gen/dataset_profiles.h"
#include "gen/generator.h"
#include "gen/knowledge_base.h"
#include "gen/query_gen.h"
#include "io/binary_format.h"
#include "io/loader.h"
#include "io/writer.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

TEST(GeneratorTest, Deterministic) {
  GeneratorConfig c = SmallRandomConfig(9);
  Hypergraph a = GenerateHypergraph(c);
  Hypergraph b = GenerateHypergraph(c);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e));
  }
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.label(v), b.label(v));
  }
}

TEST(GeneratorTest, RespectsConfigBounds) {
  GeneratorConfig c;
  c.seed = 4;
  c.num_vertices = 120;
  c.num_edges = 300;
  c.num_labels = 5;
  c.arity_min = 2;
  c.arity_max = 7;
  Hypergraph h = GenerateHypergraph(c);
  EXPECT_EQ(h.NumVertices(), 120u);
  EXPECT_LE(h.NumEdges(), 300u);
  EXPECT_GE(h.NumEdges(), 250u);  // dedup loses a few at most here
  EXPECT_LE(h.MaxArity(), 7u);
  EXPECT_LE(h.NumLabels(), 5u);
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    EXPECT_GE(h.arity(e), 2u);
  }
}

TEST(GeneratorTest, ArityDistributions) {
  GeneratorConfig c;
  c.arity_min = 3;
  c.arity_max = 9;
  Rng rng(1);
  c.arity_dist = ArityDistribution::kUniform;
  for (int i = 0; i < 200; ++i) {
    const uint32_t a = SampleArity(c, &rng);
    EXPECT_GE(a, 3u);
    EXPECT_LE(a, 9u);
  }
  c.arity_dist = ArityDistribution::kGeometric;
  c.arity_param = 0.5;
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint32_t a = SampleArity(c, &rng);
    EXPECT_GE(a, 3u);
    EXPECT_LE(a, 9u);
    sum += a;
  }
  EXPECT_NEAR(sum / 5000, 4.0, 0.3);  // 3 + 1/p - 1 = 4
  c.arity_dist = ArityDistribution::kZipf;
  c.arity_param = 1.2;
  for (int i = 0; i < 200; ++i) {
    const uint32_t a = SampleArity(c, &rng);
    EXPECT_GE(a, 3u);
    EXPECT_LE(a, 9u);
  }
}

TEST(GeneratorTest, SkewProducesHeavyTail) {
  GeneratorConfig c;
  c.seed = 10;
  c.num_vertices = 500;
  c.num_edges = 800;
  c.num_labels = 3;
  c.vertex_skew = 1.0;
  Hypergraph h = GenerateHypergraph(c);
  uint32_t max_deg = 0;
  uint64_t sum_deg = 0;
  for (VertexId v = 0; v < h.NumVertices(); ++v) {
    max_deg = std::max(max_deg, h.degree(v));
    sum_deg += h.degree(v);
  }
  const double avg = static_cast<double>(sum_deg) / h.NumVertices();
  EXPECT_GT(max_deg, 5 * avg) << "expected a heavy-tailed degree sequence";
}

TEST(DatasetProfilesTest, AllTenPresentInPaperOrder) {
  const auto& profiles = AllDatasetProfiles();
  ASSERT_EQ(profiles.size(), 10u);
  const char* expected[] = {"HC", "MA", "CH", "CP", "SB",
                            "HB", "WT", "TC", "SA", "AR"};
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(profiles[i].name, expected[i]);
  EXPECT_NE(FindDatasetProfile("WT"), nullptr);
  EXPECT_EQ(FindDatasetProfile("XX"), nullptr);
}

TEST(DatasetProfilesTest, SmallProfilesMatchPaperShape) {
  // Generate the small datasets at full scale and check the shape stats
  // land near Table II.
  for (const char* name : {"HC", "CH", "CP", "SB"}) {
    const DatasetProfile* p = FindDatasetProfile(name);
    ASSERT_NE(p, nullptr);
    Hypergraph h = p->Generate(1.0);
    EXPECT_EQ(h.NumVertices(), p->paper_vertices) << name;
    EXPECT_GE(h.NumEdges(), p->paper_edges * 9 / 10) << name;
    EXPECT_LE(h.MaxArity(), p->paper_max_arity) << name;
    EXPECT_LE(h.NumLabels(), p->paper_labels) << name;
    // Average arity within a factor ~2 of the paper's.
    EXPECT_GT(h.AverageArity(), p->paper_avg_arity / 2.5) << name;
    EXPECT_LT(h.AverageArity(), p->paper_avg_arity * 2.5) << name;
  }
}

TEST(DatasetProfilesTest, LargeProfilesDefaultScaledDown) {
  EXPECT_LT(FindDatasetProfile("SA")->default_scale, 1.0);
  EXPECT_LT(FindDatasetProfile("AR")->default_scale, 1.0);
  EXPECT_DOUBLE_EQ(FindDatasetProfile("HC")->default_scale, 1.0);
}

TEST(QueryGenTest, SamplesSatisfyTableThreeOrFallBack) {
  const DatasetProfile* p = FindDatasetProfile("SB");
  Hypergraph data = p->Generate(0.5);
  Rng rng(3);
  for (const QuerySettings& settings : kAllQuerySettings) {
    Result<Hypergraph> q = SampleQuery(data, settings, &rng);
    ASSERT_TRUE(q.ok()) << settings.name;
    EXPECT_EQ(q.value().NumEdges(), settings.num_edges);
    EXPECT_TRUE(q.value().IsConnected());
  }
}

TEST(QueryGenTest, SampledQueryAlwaysHasAnEmbedding) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(6));
  IndexedHypergraph idx = IndexedHypergraph::Build(data.Clone());
  Rng rng(66);
  for (int i = 0; i < 5; ++i) {
    QuerySettings settings{"t", 3, 2, 100};
    Result<Hypergraph> q = SampleQuery(data, settings, &rng);
    ASSERT_TRUE(q.ok());
    Result<MatchStats> stats = MatchSequential(idx, q.value());
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats.value().embeddings, 1u);
  }
}

TEST(QueryGenTest, SampleQueriesReturnsRequestedCount) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(8));
  auto queries = SampleQueries(data, kQ2, 10, 99);
  EXPECT_EQ(queries.size(), 10u);
  // Deterministic in the seed.
  auto again = SampleQueries(data, kQ2, 10, 99);
  ASSERT_EQ(again.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(FormatHypergraph(queries[i]), FormatHypergraph(again[i]));
  }
}

TEST(KnowledgeBaseTest, PlantedPatternsAreFound) {
  KbConfig config;
  Hypergraph kb = GenerateKnowledgeBase(config);
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(kb));

  Result<MatchStats> q1 = MatchSequential(idx, KbQueryMultiTeamPlayer());
  ASSERT_TRUE(q1.ok());
  // Each planted player contributes at least one (unordered pair counted
  // twice by edge-tuple order) match; background facts may add more.
  EXPECT_GE(q1.value().embeddings,
            2u * (config.planted_multi_team_players - 1));

  Result<MatchStats> q2 = MatchSequential(idx, KbQueryRecastCharacter());
  ASSERT_TRUE(q2.ok());
  EXPECT_GE(q2.value().embeddings,
            2u * (config.planted_recast_characters - 1));
}

TEST(KnowledgeBaseTest, TypeNames) {
  EXPECT_STREQ(KbTypeName(kPlayer), "Player");
  EXPECT_STREQ(KbTypeName(kSeason), "Season");
  EXPECT_STREQ(KbTypeName(99), "Unknown");
}

TEST(IoTest, RoundTrip) {
  Hypergraph h = PaperDataHypergraph();
  const std::string text = FormatHypergraph(h);
  Result<Hypergraph> parsed = ParseHypergraph(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Hypergraph& g = parsed.value();
  ASSERT_EQ(g.NumVertices(), h.NumVertices());
  ASSERT_EQ(g.NumEdges(), h.NumEdges());
  for (VertexId v = 0; v < h.NumVertices(); ++v) {
    EXPECT_EQ(g.label(v), h.label(v));
  }
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    EXPECT_EQ(g.edge(e), h.edge(e));
  }
}

TEST(IoTest, FileRoundTrip) {
  Hypergraph h = GenerateHypergraph(SmallRandomConfig(2));
  const std::string path = ::testing::TempDir() + "/hg_io_test.hg";
  ASSERT_TRUE(SaveHypergraph(h, path).ok());
  Result<Hypergraph> loaded = LoadHypergraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(FormatHypergraph(loaded.value()), FormatHypergraph(h));
  std::remove(path.c_str());
}

TEST(IoTest, BinaryFileRoundTripsInBothOnDiskVersions) {
  // The binary writer defaults to the compressed v2 (HGM2) layout; the
  // --v1 escape hatch writes the uncompressed v1 layout. Both must load
  // back to an identical hypergraph through the same entry point.
  Hypergraph h = GenerateHypergraph(SmallRandomConfig(2));
  const std::string v2 = ::testing::TempDir() + "/hg_io_test_v2.hgb";
  const std::string v1 = ::testing::TempDir() + "/hg_io_test_v1.hgb";
  ASSERT_TRUE(SaveHypergraphBinary(h, v2).ok());
  ASSERT_TRUE(SaveHypergraphBinary(h, v1, /*compress=*/false).ok());
  for (const std::string& path : {v2, v1}) {
    Result<Hypergraph> loaded = LoadHypergraphBinary(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(FormatHypergraph(loaded.value()), FormatHypergraph(h)) << path;
  }
  std::remove(v2.c_str());
  std::remove(v1.c_str());
}

TEST(IoTest, ParserAcceptsCommentsAndBlankLines) {
  Result<Hypergraph> h = ParseHypergraph(
      "# a comment\n"
      "\n"
      "v 0 3\n"
      "v 1 4\n"
      "e 0 1\n");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().NumVertices(), 2u);
  EXPECT_EQ(h.value().NumEdges(), 1u);
  EXPECT_EQ(h.value().label(1), 4u);
}

TEST(IoTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseHypergraph("x 1 2\n").ok());          // unknown tag
  EXPECT_FALSE(ParseHypergraph("v 0\n").ok());            // missing label
  EXPECT_FALSE(ParseHypergraph("v 0 1\ne\n").ok());       // empty edge
  EXPECT_FALSE(ParseHypergraph("v 0 1\nv 0 2\ne 0\n").ok());  // dup vertex
  EXPECT_FALSE(ParseHypergraph("v 0 1\nv 2 1\ne 0\n").ok());  // sparse ids
  EXPECT_FALSE(ParseHypergraph("v 0 1\ne 0 5\n").ok());   // unknown vertex
  EXPECT_FALSE(LoadHypergraph("/nonexistent/p.hg").ok()); // io error
}

}  // namespace
}  // namespace hgmatch
