#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "core/hgmatch.h"
#include "parallel/bfs_executor.h"
#include "gen/query_gen.h"
#include "parallel/dataflow.h"
#include "parallel/executor.h"
#include "parallel/task.h"
#include "parallel/ws_deque.h"
#include "tests/test_fixtures.h"

namespace hgmatch {
namespace {

TEST(WsDequeTest, LifoForOwner) {
  WorkStealingDeque<int64_t> d;
  for (int64_t i = 0; i < 10; ++i) d.Push(i);
  EXPECT_EQ(d.SizeApprox(), 10);
  int64_t out;
  for (int64_t i = 9; i >= 0; --i) {
    ASSERT_TRUE(d.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(d.Pop(&out));
  EXPECT_TRUE(d.EmptyApprox());
}

TEST(WsDequeTest, StealsOldestFirst) {
  WorkStealingDeque<int64_t> d;
  for (int64_t i = 0; i < 5; ++i) d.Push(i);
  int64_t out;
  ASSERT_TRUE(d.Steal(&out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(d.Steal(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(d.Pop(&out));
  EXPECT_EQ(out, 4);
}

TEST(WsDequeTest, GrowsPastInitialCapacity) {
  WorkStealingDeque<int64_t> d(4);
  for (int64_t i = 0; i < 1000; ++i) d.Push(i);
  EXPECT_EQ(d.SizeApprox(), 1000);
  int64_t out;
  ASSERT_TRUE(d.Pop(&out));
  EXPECT_EQ(out, 999);
  ASSERT_TRUE(d.Steal(&out));
  EXPECT_EQ(out, 0);
}

// Concurrency stress: one owner pushes/pops while thieves steal; every
// element must be consumed exactly once.
TEST(WsDequeTest, ConcurrentStealLosesNothing) {
  constexpr int64_t kItems = 200000;
  constexpr int kThieves = 3;
  WorkStealingDeque<int64_t> deque;
  std::atomic<int64_t> consumed_sum{0};
  std::atomic<int64_t> consumed_count{0};
  std::atomic<bool> done{false};

  auto thief = [&] {
    int64_t v;
    while (!done.load(std::memory_order_acquire)) {
      if (deque.Steal(&v)) {
        consumed_sum.fetch_add(v, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
    while (deque.Steal(&v)) {
      consumed_sum.fetch_add(v, std::memory_order_relaxed);
      consumed_count.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) thieves.emplace_back(thief);

  int64_t local_sum = 0, local_count = 0;
  for (int64_t i = 0; i < kItems; ++i) {
    deque.Push(i);
    if (i % 3 == 0) {
      int64_t v;
      if (deque.Pop(&v)) {
        local_sum += v;
        ++local_count;
      }
    }
  }
  int64_t v;
  while (deque.Pop(&v)) {
    local_sum += v;
    ++local_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(local_count + consumed_count.load(), kItems);
  EXPECT_EQ(local_sum + consumed_sum.load(), kItems * (kItems - 1) / 2);
}

TEST(TaskTest, LayoutAndAccounting) {
  int owner_tag = 0;  // any context pointer; the scheduler passes its own
  Task* scan = Task::NewScan(&owner_tag, 3, 17);
  EXPECT_EQ(scan->kind, Task::Kind::kScan);
  EXPECT_EQ(scan->owner, &owner_tag);
  EXPECT_EQ(scan->scan_lo, 3u);
  EXPECT_EQ(scan->scan_hi, 17u);
  EXPECT_EQ(scan->SizeBytes(), sizeof(Task));
  Task::Free(scan);

  const EdgeId prefix[] = {7, 9};
  Task* expand = Task::NewExpand(&owner_tag, prefix, 2, 11);
  EXPECT_EQ(expand->kind, Task::Kind::kExpand);
  EXPECT_EQ(expand->depth, 3u);
  EXPECT_EQ(expand->edges[0], 7u);
  EXPECT_EQ(expand->edges[1], 9u);
  EXPECT_EQ(expand->edges[2], 11u);
  EXPECT_EQ(expand->SizeBytes(), sizeof(Task) + 3 * sizeof(EdgeId));
  Task::Free(expand);
}

TEST(TaskMemoryTrackerTest, TracksPeak) {
  TaskMemoryTracker t;
  t.OnAlloc(100);
  t.OnAlloc(50);
  EXPECT_EQ(t.current_bytes(), 150u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.OnFree(100);
  t.OnAlloc(20);
  EXPECT_EQ(t.current_bytes(), 70u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Reset();
  EXPECT_EQ(t.peak_bytes(), 0u);
}

TEST(ParallelExecutorTest, PaperExampleAllThreadCounts) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  for (uint32_t threads : {1u, 2u, 3u, 8u}) {
    ParallelOptions options;
    options.num_threads = threads;
    options.scan_grain = 1;
    Result<ParallelResult> r = MatchParallel(idx, q, options);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().stats.embeddings, 2u) << threads << " threads";
    EXPECT_EQ(r.value().workers.size(), threads);
  }
}

TEST(ParallelExecutorTest, SinkReceivesAllEmbeddingsExactlyOnce) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(5));
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));
  GeneratorConfig qc = SmallRandomConfig(55);
  qc.num_edges = 3;
  Hypergraph q = GenerateHypergraph(qc);
  ASSERT_GT(q.NumEdges(), 0u);

  Result<QueryPlan> plan = BuildQueryPlan(q, idx);
  ASSERT_TRUE(plan.ok());
  CollectSink seq_sink;
  ExecutePlanSequential(idx, plan.value(), MatchOptions{}, &seq_sink);

  ParallelOptions options;
  options.num_threads = 4;
  CollectSink par_sink;
  ExecutePlanParallel(idx, plan.value(), options, &par_sink);

  auto a = seq_sink.embeddings();
  auto b = par_sink.embeddings();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ParallelExecutorTest, WorkerReportsAccount) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(3));
  Rng rng(33);
  Result<Hypergraph> sampled =
      SampleQuery(data, QuerySettings{"t", 2, 2, 100}, &rng);
  ASSERT_TRUE(sampled.ok());
  Hypergraph q = std::move(sampled.value());
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));
  ParallelOptions options;
  options.num_threads = 2;
  Result<ParallelResult> r = MatchParallel(idx, q, options);
  ASSERT_TRUE(r.ok());
  uint64_t executed = 0, spawned = 0;
  for (const WorkerReport& w : r.value().workers) {
    executed += w.tasks_executed;
    spawned += w.tasks_spawned;
  }
  // Every spawned task is executed (or drained, but nothing stops early
  // here).
  EXPECT_EQ(executed, spawned);
  EXPECT_GT(executed, 0u);
  EXPECT_GT(r.value().peak_task_bytes, 0u);
}

TEST(ParallelExecutorTest, LimitStops) {
  Hypergraph h;
  h.AddVertices(100, 0);
  for (VertexId v = 0; v + 1 < 100; ++v) (void)h.AddEdge({v, v + 1});
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));
  Hypergraph q;
  q.AddVertices(3, 0);
  (void)q.AddEdge({0, 1});
  (void)q.AddEdge({1, 2});
  ParallelOptions options;
  options.num_threads = 2;
  options.limit = 3;
  Result<ParallelResult> r = MatchParallel(idx, q, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().stats.limit_hit);
  EXPECT_GE(r.value().stats.embeddings, 3u);
}

TEST(ParallelExecutorTest, NoStealMeansZeroSteals) {
  Hypergraph data = GenerateHypergraph(SmallRandomConfig(7));
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(data));
  GeneratorConfig qc = SmallRandomConfig(77);
  qc.num_edges = 2;
  Hypergraph q = GenerateHypergraph(qc);
  ParallelOptions options;
  options.num_threads = 4;
  options.work_stealing = false;
  Result<ParallelResult> r = MatchParallel(idx, q, options);
  ASSERT_TRUE(r.ok());
  for (const WorkerReport& w : r.value().workers) {
    EXPECT_EQ(w.steals, 0u);
  }
}

TEST(BfsExecutorTest, MaterialisesMoreThanTaskScheduler) {
  // A query with a large intermediate blow-up: BFS must report peak bytes
  // at least as large as the number of level-1 results, while the task
  // scheduler's peak stays near the deque bound.
  Hypergraph h;
  h.AddVertices(200, 0);
  for (VertexId v = 0; v + 1 < 200; ++v) (void)h.AddEdge({v, v + 1});
  IndexedHypergraph idx = IndexedHypergraph::Build(std::move(h));
  Hypergraph q;
  q.AddVertices(4, 0);
  (void)q.AddEdge({0, 1});
  (void)q.AddEdge({1, 2});
  (void)q.AddEdge({2, 3});

  Result<QueryPlan> plan = BuildQueryPlan(q, idx);
  ASSERT_TRUE(plan.ok());
  ParallelOptions options;
  options.num_threads = 2;
  BfsResult bfs = ExecutePlanBfs(idx, plan.value(), options);
  ParallelResult task = ExecutePlanParallel(idx, plan.value(), options);
  EXPECT_EQ(bfs.stats.embeddings, task.stats.embeddings);
  EXPECT_GT(bfs.peak_bytes, 0u);
}

TEST(DataflowTest, GraphShapeAndPrinting) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  Result<QueryPlan> plan = BuildQueryPlan(q, idx);
  ASSERT_TRUE(plan.ok());
  DataflowGraph g = DataflowGraph::FromPlan(plan.value());
  ASSERT_EQ(g.operators().size(), 4u);  // SCAN, EXPAND, EXPAND, SINK
  EXPECT_EQ(g.operators()[0].kind, DataflowGraph::OperatorKind::kScan);
  EXPECT_EQ(g.operators()[1].kind, DataflowGraph::OperatorKind::kExpand);
  EXPECT_EQ(g.operators()[3].kind, DataflowGraph::OperatorKind::kSink);
  const std::string s = g.ToString(&idx);
  EXPECT_NE(s.find("SCAN{A,B} [card=2]"), std::string::npos);
  EXPECT_NE(s.find("SINK"), std::string::npos);
}

TEST(DataflowTest, FilterSinkDropsAndCounts) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  CountSink count;
  // Keep only embeddings whose first matched hyperedge is e1 (id 0).
  FilterSink filter([](const EdgeId* edges, uint32_t) { return edges[0] == 0; },
                    &count);
  Result<MatchStats> stats = MatchSequential(idx, q, MatchOptions{}, &filter);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(filter.seen(), 2u);
  EXPECT_EQ(filter.passed(), 1u);
  EXPECT_EQ(count.count(), 1u);
}

TEST(DataflowTest, GroupCountSinkAggregates) {
  IndexedHypergraph idx = IndexedHypergraph::Build(PaperDataHypergraph());
  Hypergraph q = PaperQueryHypergraph();
  GroupCountSink groups(
      [](const EdgeId* edges, uint32_t) { return uint64_t{edges[0]}; });
  ASSERT_TRUE(MatchSequential(idx, q, MatchOptions{}, &groups).ok());
  ASSERT_EQ(groups.counts().size(), 2u);
  EXPECT_EQ(groups.counts().at(0), 1u);  // group of e1
  EXPECT_EQ(groups.counts().at(1), 1u);  // group of e2
}

}  // namespace
}  // namespace hgmatch
