#ifndef HGMATCH_PAIRWISE_GRAPH_H_
#define HGMATCH_PAIRWISE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace hgmatch::pairwise {

using hgmatch::Label;
using hgmatch::VertexId;

/// A conventional (pairwise) undirected vertex-labelled simple graph in CSR
/// form. This substrate exists because the bipartite-conversion strawman
/// (Section I / Fig 2) reduces subhypergraph matching to conventional
/// subgraph matching; the RapidMatch comparison in the paper's experiments
/// runs on exactly such converted graphs.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from labels and an undirected edge list (self-loops and
  /// duplicate edges are removed).
  static Graph Build(std::vector<Label> labels,
                     std::vector<std::pair<VertexId, VertexId>> edges);

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return num_edges_; }
  size_t NumLabels() const { return num_labels_; }

  Label label(VertexId v) const { return labels_[v]; }

  uint32_t degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbour list of v.
  const VertexId* NeighborsBegin(VertexId v) const {
    return adjacency_.data() + offsets_[v];
  }
  const VertexId* NeighborsEnd(VertexId v) const {
    return adjacency_.data() + offsets_[v + 1];
  }

  /// True iff {a, b} is an edge (binary search on the smaller list).
  bool HasEdge(VertexId a, VertexId b) const;

  uint64_t MemoryBytes() const {
    return labels_.size() * sizeof(Label) +
           adjacency_.size() * sizeof(VertexId) +
           offsets_.size() * sizeof(uint64_t);
  }

 private:
  std::vector<Label> labels_;
  std::vector<uint64_t> offsets_;   // size |V|+1
  std::vector<VertexId> adjacency_;  // size 2|E|
  size_t num_edges_ = 0;
  size_t num_labels_ = 0;
};

}  // namespace hgmatch::pairwise

#endif  // HGMATCH_PAIRWISE_GRAPH_H_
