#include "pairwise/graph.h"

#include <algorithm>

namespace hgmatch::pairwise {

Graph Graph::Build(std::vector<Label> labels,
                   std::vector<std::pair<VertexId, VertexId>> edges) {
  Graph g;
  g.labels_ = std::move(labels);
  for (Label l : g.labels_) {
    if (l + 1 > g.num_labels_) g.num_labels_ = l + 1;
  }
  // Canonicalise: a < b, drop self-loops, dedupe.
  for (auto& [a, b] : edges) {
    if (a > b) std::swap(a, b);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const auto& e) { return e.first == e.second; }),
              edges.end());
  g.num_edges_ = edges.size();

  const size_t n = g.labels_.size();
  std::vector<uint32_t> deg(n, 0);
  for (const auto& [a, b] : edges) {
    ++deg[a];
    ++deg[b];
  }
  g.offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.adjacency_.resize(g.offsets_[n]);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    g.adjacency_[cursor[a]++] = b;
    g.adjacency_[cursor[b]++] = a;
  }
  for (size_t v = 0; v < n; ++v) {
    std::sort(g.adjacency_.begin() + g.offsets_[v],
              g.adjacency_.begin() + g.offsets_[v + 1]);
  }
  return g;
}

bool Graph::HasEdge(VertexId a, VertexId b) const {
  if (degree(a) > degree(b)) std::swap(a, b);
  return std::binary_search(NeighborsBegin(a), NeighborsEnd(a), b);
}

}  // namespace hgmatch::pairwise
