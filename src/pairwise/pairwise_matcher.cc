#include "pairwise/pairwise_matcher.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/timer.h"

namespace hgmatch::pairwise {

namespace {

class Backtracker {
 public:
  Backtracker(const Graph& data, const Graph& query,
              const PairwiseOptions& options)
      : data_(data),
        query_(query),
        options_(options),
        deadline_(hgmatch::Deadline::After(options.timeout_seconds)) {
    // LDF candidate filter.
    candidates_.resize(query.NumVertices());
    for (VertexId v = 0; v < data.NumVertices(); ++v) {
      for (VertexId u = 0; u < query.NumVertices(); ++u) {
        if (query.label(u) == data.label(v) &&
            query.degree(u) <= data.degree(v)) {
          candidates_[u].push_back(v);
        }
      }
    }
    ComputeOrder();
    mapping_.assign(query.NumVertices(), hgmatch::kInvalidVertex);
    used_.assign(data.NumVertices(), 0);
  }

  PairwiseResult Run() {
    hgmatch::Timer timer;
    bool any_empty = false;
    for (const auto& c : candidates_) any_empty |= c.empty();
    if (!any_empty && query_.NumVertices() > 0) Recurse(0);
    result_.seconds = timer.ElapsedSeconds();
    return result_;
  }

 private:
  // Greedy connected minimum-candidate order; for each position also
  // remember one already-matched neighbour ("pivot") whose image's
  // neighbour list seeds the runtime candidates.
  void ComputeOrder() {
    const size_t n = query_.NumVertices();
    std::vector<uint8_t> used(n, 0);
    order_.reserve(n);
    pivot_.assign(n, hgmatch::kInvalidVertex);
    for (size_t i = 0; i < n; ++i) {
      VertexId best = hgmatch::kInvalidVertex;
      bool best_connected = false;
      size_t best_size = std::numeric_limits<size_t>::max();
      for (VertexId u = 0; u < n; ++u) {
        if (used[u]) continue;
        VertexId piv = hgmatch::kInvalidVertex;
        for (const VertexId* w = query_.NeighborsBegin(u);
             w != query_.NeighborsEnd(u); ++w) {
          if (used[*w]) {
            piv = *w;
            break;
          }
        }
        const bool connected = piv != hgmatch::kInvalidVertex || i == 0;
        if ((connected && !best_connected) ||
            (connected == best_connected && candidates_[u].size() < best_size)) {
          best = u;
          best_connected = connected;
          best_size = candidates_[u].size();
          pivot_[i] = piv;
        }
      }
      used[best] = 1;
      order_.push_back(best);
    }
    // Recompute pivots against final positions (first matched neighbour).
    std::vector<uint32_t> pos(n);
    for (uint32_t i = 0; i < n; ++i) pos[order_[i]] = i;
    for (uint32_t i = 0; i < n; ++i) {
      const VertexId u = order_[i];
      pivot_[i] = hgmatch::kInvalidVertex;
      for (const VertexId* w = query_.NeighborsBegin(u);
           w != query_.NeighborsEnd(u); ++w) {
        if (pos[*w] < i) {
          pivot_[i] = *w;
          break;
        }
      }
    }
  }

  bool ShouldStop() {
    if (result_.timed_out || result_.limit_hit) return true;
    if (++poll_counter_ >= 4096) {
      poll_counter_ = 0;
      if (deadline_.Expired()) result_.timed_out = true;
    }
    return result_.timed_out;
  }

  // Checks every query edge between u and an already-matched vertex.
  bool Consistent(VertexId u, VertexId v) const {
    for (const VertexId* w = query_.NeighborsBegin(u);
         w != query_.NeighborsEnd(u); ++w) {
      const VertexId fw = mapping_[*w];
      if (fw == hgmatch::kInvalidVertex) continue;
      if (!data_.HasEdge(v, fw)) return false;
    }
    return true;
  }

  void TryCandidate(uint32_t depth, VertexId u, VertexId v) {
    if (used_[v] || query_.label(u) != data_.label(v)) return;
    if (query_.degree(u) > data_.degree(v)) return;
    if (!Consistent(u, v)) return;
    mapping_[u] = v;
    used_[v] = 1;
    Recurse(depth + 1);
    used_[v] = 0;
    mapping_[u] = hgmatch::kInvalidVertex;
  }

  void Recurse(uint32_t depth) {
    ++result_.recursions;
    if (ShouldStop()) return;
    if (depth == order_.size()) {
      ++result_.embeddings;
      if (options_.limit != 0 && result_.embeddings >= options_.limit) {
        result_.limit_hit = true;
      }
      return;
    }
    const VertexId u = order_[depth];
    const VertexId piv = pivot_[depth];
    if (piv != hgmatch::kInvalidVertex) {
      // Candidates come from the image neighbourhood of the pivot.
      const VertexId fp = mapping_[piv];
      for (const VertexId* v = data_.NeighborsBegin(fp);
           v != data_.NeighborsEnd(fp) && !result_.timed_out; ++v) {
        TryCandidate(depth, u, *v);
        if (result_.limit_hit) return;
      }
    } else {
      for (VertexId v : candidates_[u]) {
        TryCandidate(depth, u, v);
        if (result_.timed_out || result_.limit_hit) return;
      }
    }
  }

  const Graph& data_;
  const Graph& query_;
  const PairwiseOptions& options_;
  const hgmatch::Deadline deadline_;

  std::vector<std::vector<VertexId>> candidates_;
  std::vector<VertexId> order_;
  std::vector<VertexId> pivot_;
  std::vector<VertexId> mapping_;
  std::vector<uint8_t> used_;
  uint64_t poll_counter_ = 0;
  PairwiseResult result_;
};

}  // namespace

hgmatch::Result<PairwiseResult> MatchPairwise(const Graph& data,
                                              const Graph& query,
                                              const PairwiseOptions& options) {
  if (query.NumVertices() == 0) {
    return hgmatch::Status::InvalidArgument("query graph must be non-empty");
  }
  Backtracker search(data, query, options);
  return search.Run();
}

}  // namespace hgmatch::pairwise
