#ifndef HGMATCH_PAIRWISE_PAIRWISE_MATCHER_H_
#define HGMATCH_PAIRWISE_PAIRWISE_MATCHER_H_

#include <cstdint>

#include "pairwise/graph.h"
#include "util/status.h"

namespace hgmatch::pairwise {

struct PairwiseOptions {
  double timeout_seconds = 0;
  uint64_t limit = 0;
};

struct PairwiseResult {
  uint64_t embeddings = 0;  // injective label-preserving vertex mappings
  uint64_t recursions = 0;
  bool timed_out = false;
  bool limit_hit = false;
  double seconds = 0;
};

/// Conventional backtracking subgraph matching on pairwise graphs
/// (non-induced subgraph isomorphism): label-and-degree candidate filter,
/// greedy connected minimum-candidate matching order, and runtime candidate
/// computation by intersecting the neighbour lists of matched neighbours.
/// This is the standard framework of [53]/[70] that the RapidMatch
/// comparison runs on top of (after bipartite conversion; see
/// baseline/bipartite.h).
hgmatch::Result<PairwiseResult> MatchPairwise(
    const Graph& data, const Graph& query, const PairwiseOptions& options = {});

}  // namespace hgmatch::pairwise

#endif  // HGMATCH_PAIRWISE_PAIRWISE_MATCHER_H_
