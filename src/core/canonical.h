#ifndef HGMATCH_CORE_CANONICAL_H_
#define HGMATCH_CORE_CANONICAL_H_

#include <cstdint>
#include <string>

#include "core/hypergraph.h"

namespace hgmatch {

/// Bounds of the canonical-labelling search (CanonicalQueryKey). Query
/// hypergraphs are tiny next to data hypergraphs, so the defaults cover
/// every realistic query; anything larger (or a pathological symmetric
/// instance that exhausts the search budget) falls back to the exact
/// structural key, which is always correct — it just stops deduplicating
/// renamed copies.
struct CanonicalOptions {
  /// Size cutoff: queries with more vertices or hyperedges than this skip
  /// canonicalisation entirely and use the exact key.
  uint32_t max_vertices = 32;
  uint32_t max_edges = 64;

  /// Budget on individualisation-refinement search nodes. Label-free
  /// highly symmetric queries are the only instances that branch much;
  /// when the budget runs out the search aborts to the exact key rather
  /// than burn unbounded CPU on a cache key.
  uint32_t max_search_nodes = 4096;
};

/// Cache key of a query hypergraph, canonical under isomorphism when the
/// graph fits the bounds.
struct CanonicalKey {
  /// The key: a one-byte scheme marker ('C' canonical, 'X' exact) followed
  /// by the certificate / exact structure, so keys from the two schemes can
  /// never collide.
  std::string key;

  /// The exact structural key (unprefixed; see ExactQueryKey), always
  /// computed — callers classify a cache hit as "isomorphic" by comparing
  /// the stored entry's exact key with this one.
  std::string exact;

  /// True iff `key` is a canonical certificate: any isomorphic hypergraph
  /// (vertices renamed, hyperedges reordered) maps to the same key, and —
  /// because the certificate encodes the full labelled structure under a
  /// bijection — equal keys imply isomorphic hypergraphs. False when the
  /// size cutoff or search budget forced the exact-key fallback.
  bool isomorphism_invariant = false;
};

/// Exact structural identity key: the vertex labels, then every hyperedge's
/// arity, member vertex ids and hyperedge label, in id order. Two
/// hypergraphs have equal exact keys iff they are structurally identical
/// (same labels on the same ids, same hyperedges over the same ids) — the
/// pre-isomorphism plan-cache key.
std::string ExactQueryKey(const Hypergraph& q);

/// Canonical labelling of a small query hypergraph (the plan cache's
/// isomorphism-aware key). Colour refinement alternates vertex and
/// hyperedge colours — a hyperedge's initial colour is its signature
/// partition key of Definition IV.1 (sorted member-label multiset plus the
/// hyperedge label), exactly the invariant the matching engine already
/// canonicalises per edge — and a bounded individualisation-refinement
/// search over the refined partition picks the lexicographically smallest
/// certificate, which is invariant under vertex renaming and hyperedge
/// reordering. Exceeding the size cutoff or the node budget returns the
/// exact key (correct, merely less deduplicating).
CanonicalKey CanonicalQueryKey(const Hypergraph& q,
                               const CanonicalOptions& options = {});

}  // namespace hgmatch

#endif  // HGMATCH_CORE_CANONICAL_H_
