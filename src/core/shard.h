#ifndef HGMATCH_CORE_SHARD_H_
#define HGMATCH_CORE_SHARD_H_

#include <cstdint>
#include <vector>

#include "core/hypergraph.h"
#include "util/status.h"

namespace hgmatch {

/// Storage sharding of a data hypergraph: split one hypergraph into K
/// parts so each part can be indexed (and served) independently, with
/// every signature table kept intact *per part* — a part's hyperedges are
/// grouped by the same SignatureKeyOf partition key as the full index, so
/// per-shard candidate generation is unchanged (Section IV.B).
///
/// The split is per-table contiguous slicing: hyperedges of each
/// signature table (ascending edge ids) are cut into K near-equal
/// contiguous ranges, and part k receives the k-th range of *every*
/// table. All vertices (ids and labels) are replicated into every part —
/// hyperedges reference vertices by id, and vertex storage is small next
/// to incidence lists. Consequences:
///  * every signature present in the full graph is present (possibly
///    empty) in each part's range computation, so no table is lost;
///  * edge ids renumber within a part; matching semantics depend only on
///    (vertex set, label) content, so results are unaffected;
///  * the union of the parts' hyperedge sets is exactly the original
///    hyperedge set, and parts are pairwise edge-disjoint.

/// Assigns each hyperedge of `h` to one of `num_shards` parts by slicing
/// each signature table contiguously. Returns a vector of NumEdges()
/// entries in [0, num_shards). num_shards == 0 is treated as 1.
std::vector<uint32_t> AssignShards(const Hypergraph& h, uint32_t num_shards);

/// Splits `h` into `num_shards` parts per AssignShards. Each part carries
/// every vertex of `h` (identical ids and labels) and its slice of the
/// hyperedges (with their labels).
std::vector<Hypergraph> SplitHypergraph(const Hypergraph& h,
                                        uint32_t num_shards);

/// Reassembles the union of `parts`. All parts must agree on the vertex
/// set (count and labels); the parts' hyperedge sets must be pairwise
/// disjoint (as SplitHypergraph produces). Fails with InvalidArgument on
/// a vertex mismatch or an overlapping hyperedge.
Result<Hypergraph> MergeShards(const std::vector<Hypergraph>& parts);

}  // namespace hgmatch

#endif  // HGMATCH_CORE_SHARD_H_
