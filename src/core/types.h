#ifndef HGMATCH_CORE_TYPES_H_
#define HGMATCH_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace hgmatch {

/// Identifier of a vertex in a hypergraph. Vertices are densely numbered
/// from 0 to |V|-1.
using VertexId = uint32_t;

/// Identifier of a hyperedge in a hypergraph. Hyperedges are densely numbered
/// from 0 to |E|-1 in insertion order.
using EdgeId = uint32_t;

/// Vertex label. Labels are densely numbered from 0 to |Sigma|-1.
using Label = uint32_t;

/// Identifier of a hyperedge-signature partition (Section IV.B).
using PartitionId = uint32_t;

/// Sentinel meaning "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel meaning "no hyperedge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Sentinel meaning "no label".
inline constexpr Label kInvalidLabel = std::numeric_limits<Label>::max();

/// Sentinel meaning "no partition".
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

/// A set of vertices, always kept sorted ascending and duplicate-free.
using VertexSet = std::vector<VertexId>;

/// A set of hyperedge ids, always kept sorted ascending and duplicate-free.
using EdgeSet = std::vector<EdgeId>;

}  // namespace hgmatch

#endif  // HGMATCH_CORE_TYPES_H_
