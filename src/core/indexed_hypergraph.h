#ifndef HGMATCH_CORE_INDEXED_HYPERGRAPH_H_
#define HGMATCH_CORE_INDEXED_HYPERGRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/hypergraph.h"
#include "core/partition.h"
#include "core/signature.h"
#include "core/types.h"

namespace hgmatch {

/// The product of HGMatch's offline preprocessing stage (Section IV.A):
/// the data hypergraph stored as per-signature hyperedge tables, each with
/// its lightweight inverted hyperedge index. Built once per data hypergraph;
/// no further auxiliary structure is created at query time.
class IndexedHypergraph {
 public:
  /// Builds the partitioned storage + inverted indexes. Takes ownership of
  /// the hypergraph (the raw structure is still accessible via graph()).
  static IndexedHypergraph Build(Hypergraph graph);

  IndexedHypergraph(IndexedHypergraph&&) = default;
  IndexedHypergraph& operator=(IndexedHypergraph&&) = default;
  IndexedHypergraph(const IndexedHypergraph&) = delete;
  IndexedHypergraph& operator=(const IndexedHypergraph&) = delete;

  const Hypergraph& graph() const { return graph_; }

  const std::vector<Partition>& partitions() const { return partitions_; }

  /// The partition holding all hyperedges of signature s, or nullptr when no
  /// data hyperedge has that signature.
  const Partition* FindPartition(const Signature& s) const;

  /// Hyperedge cardinality Card(s, H) = number of data hyperedges with
  /// signature s (Definition V.2). O(1) after the hash lookup.
  size_t Cardinality(const Signature& s) const;

  /// Partition that contains data hyperedge e.
  PartitionId PartitionOf(EdgeId e) const { return edge_partition_[e]; }

  /// Posting list he(v, s): incident hyperedges of v with signature s,
  /// ascending global ids. Empty if the signature or vertex is absent.
  const EdgeSet& Postings(const Signature& s, VertexId v) const;

  /// Total bytes of all inverted indexes + table headers (Exp-1 metric).
  uint64_t IndexBytes() const;

 private:
  IndexedHypergraph() = default;

  Hypergraph graph_;
  std::vector<Partition> partitions_;
  std::unordered_map<Signature, PartitionId, SignatureHash> by_signature_;
  std::vector<PartitionId> edge_partition_;
};

}  // namespace hgmatch

#endif  // HGMATCH_CORE_INDEXED_HYPERGRAPH_H_
