#ifndef HGMATCH_CORE_VALIDATION_H_
#define HGMATCH_CORE_VALIDATION_H_

#include <cstdint>

#include "core/hypergraph.h"
#include "core/types.h"

namespace hgmatch {

/// Exact consistency check of a (partial or complete) match-by-hyperedge
/// assignment: given query hyperedges (order[0..n-1]) matched to data
/// hyperedges (matched[0..n-1]), decides whether an injective, label- and
/// incidence-preserving vertex bijection f exists between the vertices of
/// the partial query and the vertices of the partial embedding
/// (Lemma V.1 generalised to the whole prefix).
///
/// The check is exact and runs in O(total incidences * log): group the
/// vertices on both sides into (label, incidence step mask) classes; a
/// consistent bijection exists iff every class has the same population on
/// both sides. Sufficiency: map each query vertex to any same-class data
/// vertex; incidence masks then guarantee f(e_qj) ⊆ m_j with equal arity
/// (signatures match by construction), hence f(e_qj) = m_j. Necessity: any
/// valid f preserves each vertex's class. This is Theorem V.2 applied to
/// *all* vertices rather than only the last hyperedge's.
///
/// Requires n <= 64 and that `matched` contains no duplicate data edge.
bool EmbeddingConsistent(const Hypergraph& query, const Hypergraph& data,
                         const EdgeId* order, const EdgeId* matched,
                         uint32_t n);

}  // namespace hgmatch

#endif  // HGMATCH_CORE_VALIDATION_H_
