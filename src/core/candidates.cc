#include "core/candidates.h"

#include <algorithm>

#include "core/validation.h"
#include "util/set_ops.h"

namespace hgmatch {

Expander::Expander(const IndexedHypergraph& data, const QueryPlan& plan)
    : data_(&data), plan_(&plan) {}

void Expander::BuildVertexCounts(const EdgeId* embedding, uint32_t step) {
  counts_.clear();
  const Hypergraph& h = data_->graph();
  for (uint32_t j = 0; j < step; ++j) {
    for (VertexId v : h.edge(embedding[j])) counts_.emplace_back(v, 1u);
  }
  std::sort(counts_.begin(), counts_.end());
  // Collapse runs of the same vertex into (vertex, multiplicity).
  size_t w = 0;
  for (size_t r = 0; r < counts_.size();) {
    const VertexId v = counts_[r].first;
    uint32_t c = 0;
    while (r < counts_.size() && counts_[r].first == v) {
      ++c;
      ++r;
    }
    counts_[w++] = {v, c};
  }
  counts_.resize(w);
}

uint32_t Expander::CountOf(VertexId v) const {
  auto it = std::lower_bound(
      counts_.begin(), counts_.end(), std::make_pair(v, 0u),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == counts_.end() || it->first != v) return 0;
  return it->second;
}

void Expander::GenerateCandidatesImpl(const EdgeId* embedding, uint32_t step,
                                      std::vector<EdgeId>* out) {
  out->clear();
  const PlanStep& s = plan_->steps[step];
  const Partition* part = data_->FindPartition(s.signature);
  if (part == nullptr) return;  // Observation V.1: no table, no candidates.

  if (s.adjacent_prev.empty()) {
    // SCAN semantics: first hyperedge of the order (or of a disconnected
    // component) matches every hyperedge of its signature table.
    *out = part->edges();
  } else {
    const Hypergraph& h = data_->graph();

    // Line 1: vertices matched by non-adjacent query hyperedges must not be
    // incident to the new hyperedge (Observation V.3).
    non_incident_.clear();
    for (uint32_t j : s.nonadjacent_prev) {
      const VertexSet& fe = h.edge(embedding[j]);
      non_incident_.insert(non_incident_.end(), fe.begin(), fe.end());
    }
    SortUnique(&non_incident_);

    // Lines 3-7: for each shared query vertex u, collect V_incdt (the data
    // vertices that may be matched to u: Observations V.2/V.3/V.4), union
    // their posting lists in this signature's table, and intersect across
    // all shared vertices.
    bool first = true;
    for (size_t a = 0; a < s.adjacent_prev.size(); ++a) {
      const auto& ap = s.adjacent_prev[a];
      const VertexSet& fe = h.edge(embedding[ap.step]);
      for (size_t k = 0; k < ap.shared.size(); ++k) {
        const PlanStep::SharedVertexInfo info = s.shared_info[a][k];
        incident_scratch_.clear();
        for (VertexId v : fe) {
          if (h.label(v) != info.label) continue;
          if (CountOf(v) != info.degree_before) continue;
          if (Contains(non_incident_, v)) continue;
          incident_scratch_.push_back(v);  // fe sorted => scratch sorted
        }
        if (incident_scratch_.empty()) {
          out->clear();
          return;
        }
        list_ptrs_.clear();
        for (VertexId v : incident_scratch_) {
          const EdgeSet& postings = part->Postings(v);
          if (!postings.empty()) list_ptrs_.push_back(&postings);
        }
        UnionMany(list_ptrs_, &union_scratch_);
        if (first) {
          out->swap(union_scratch_);
          first = false;
        } else {
          Intersect(*out, union_scratch_, &intersect_scratch_);
          out->swap(intersect_scratch_);
        }
        if (out->empty()) return;
      }
    }
  }

  // A data hyperedge can appear in at most one embedding position (query
  // hyperedges are distinct vertex sets and f is injective); drop matched
  // edges that share this signature so downstream validation never sees a
  // duplicate.
  for (uint32_t j = 0; j < step; ++j) {
    if (data_->PartitionOf(embedding[j]) != part->id()) continue;
    auto it = std::lower_bound(out->begin(), out->end(), embedding[j]);
    if (it != out->end() && *it == embedding[j]) out->erase(it);
  }
}

bool Expander::IsValidImpl(const EdgeId* embedding, uint32_t step, EdgeId c,
                           bool* vertex_count_ok) {
  *vertex_count_ok = false;
  const PlanStep& s = plan_->steps[step];
  const Hypergraph& h = data_->graph();

  // Observation V.5: |V(q')| must equal |V(H_m')|.
  uint32_t new_vertices = 0;
  for (VertexId v : h.edge(c)) {
    if (CountOf(v) == 0) ++new_vertices;
  }
  const uint32_t distinct_after =
      static_cast<uint32_t>(counts_.size()) + new_vertices;
  if (distinct_after != s.num_query_vertices_after) return false;
  *vertex_count_ok = true;

  // Theorem V.2: the multiset of vertex profiles of the new hyperedge's
  // vertices must equal the precomputed query-side profiles.
  data_profiles_.clear();
  for (VertexId v : h.edge(c)) {
    PlanStep::Profile p;
    p.label = h.label(v);
    p.steps_mask = 1ULL << step;  // v ∈ m'[step] = c
    for (uint32_t j = 0; j < step; ++j) {
      if (Contains(h.edge(embedding[j]), v)) p.steps_mask |= 1ULL << j;
    }
    data_profiles_.push_back(p);
  }
  std::sort(data_profiles_.begin(), data_profiles_.end());
  return data_profiles_ == s.query_profiles;
}

void Expander::Expand(const EdgeId* embedding, uint32_t step,
                      std::vector<EdgeId>* out_valid, MatchStats* stats) {
  BuildVertexCounts(embedding, step);
  GenerateCandidatesImpl(embedding, step, &candidate_scratch_);
  stats->candidates += candidate_scratch_.size();
  out_valid->clear();
  for (EdgeId c : candidate_scratch_) {
    bool vertex_count_ok = false;
    if (IsValidImpl(embedding, step, c, &vertex_count_ok)) {
      out_valid->push_back(c);
    }
    if (vertex_count_ok) ++stats->filtered;
  }
  ++stats->expansions;
}

void Expander::GenerateCandidates(const EdgeId* embedding, uint32_t step,
                                  std::vector<EdgeId>* out) {
  BuildVertexCounts(embedding, step);
  GenerateCandidatesImpl(embedding, step, out);
}

bool Expander::IsValidEmbedding(const EdgeId* embedding, uint32_t step,
                                EdgeId c, bool* vertex_count_ok) {
  BuildVertexCounts(embedding, step);
  return IsValidImpl(embedding, step, c, vertex_count_ok);
}

bool Expander::VerifyExact(const EdgeId* embedding, uint32_t size) const {
  std::vector<EdgeId> order;
  order.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    order.push_back(plan_->steps[i].query_edge);
  }
  return EmbeddingConsistent(*plan_->query, data_->graph(), order.data(),
                             embedding, size);
}

}  // namespace hgmatch
