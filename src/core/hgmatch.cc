#include "core/hgmatch.h"

#include <vector>

#include "util/timer.h"

namespace hgmatch {

MatchStats ExecutePlanSequential(const IndexedHypergraph& data,
                                 const QueryPlan& plan,
                                 const MatchOptions& options,
                                 EmbeddingSink* sink) {
  MatchStats stats;
  Timer timer;
  const Deadline deadline = Deadline::After(options.timeout_seconds);
  const uint32_t n = plan.NumSteps();

  Expander expander(data, plan);
  std::vector<std::vector<EdgeId>> level_valid(n);
  std::vector<size_t> cursor(n, 0);
  std::vector<EdgeId> embedding(n, kInvalidEdge);

  expander.Expand(embedding.data(), 0, &level_valid[0], &stats);
  int depth = 0;
  uint64_t steps_since_poll = 0;

  while (depth >= 0) {
    if (++steps_since_poll >= 4096) {
      steps_since_poll = 0;
      if (deadline.Expired()) {
        stats.timed_out = true;
        break;
      }
    }
    if (cursor[depth] >= level_valid[depth].size()) {
      // This subtree is exhausted; backtrack.
      cursor[depth] = 0;
      level_valid[depth].clear();
      --depth;
      continue;
    }
    const EdgeId c = level_valid[depth][cursor[depth]++];
    embedding[depth] = c;
    if (static_cast<uint32_t>(depth) + 1 == n) {
      if (options.strict_validation &&
          !expander.VerifyExact(embedding.data(), n)) {
        continue;  // Never taken if Algorithm 5 is exact; tests assert this.
      }
      ++stats.embeddings;
      if (sink != nullptr) sink->Emit(embedding.data(), n);
      if (options.limit != 0 && stats.embeddings >= options.limit) {
        stats.limit_hit = true;
        break;
      }
    } else {
      ++depth;
      expander.Expand(embedding.data(), depth, &level_valid[depth], &stats);
      cursor[depth] = 0;
    }
  }

  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Result<MatchStats> MatchSequential(const IndexedHypergraph& data,
                                   const Hypergraph& query,
                                   const MatchOptions& options,
                                   EmbeddingSink* sink) {
  Result<QueryPlan> plan = BuildQueryPlan(query, data);
  if (!plan.ok()) return plan.status();
  return ExecutePlanSequential(data, plan.value(), options, sink);
}

}  // namespace hgmatch
