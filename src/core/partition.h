#ifndef HGMATCH_CORE_PARTITION_H_
#define HGMATCH_CORE_PARTITION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/signature.h"
#include "core/types.h"

namespace hgmatch {

/// A hyperedge table (Section IV.B): all data hyperedges sharing one
/// hyperedge signature, together with the table's inverted hyperedge index
/// (Section IV.C) mapping each vertex that occurs in the table to the sorted
/// posting list of its incident hyperedges *within this table*.
///
/// Posting lists store global edge ids in ascending order, so candidate
/// generation (Algorithm 4) is plain sorted-set algebra over posting lists:
/// he(v, S(e_q)) is a single hash lookup followed by set unions and
/// intersections.
class Partition {
 public:
  Partition(PartitionId id, Signature signature)
      : id_(id), signature_(std::move(signature)) {}

  PartitionId id() const { return id_; }
  const Signature& signature() const { return signature_; }

  /// All hyperedges in this table, ascending by global edge id. This count
  /// is the hyperedge cardinality Card(e_q, H) for any query hyperedge whose
  /// signature equals this table's (Definition V.2), available in O(1).
  const EdgeSet& edges() const { return edges_; }
  size_t size() const { return edges_.size(); }

  /// Posting list of v within this table: he(v, S) sorted ascending.
  /// Returns an empty list when v does not occur in the table.
  const EdgeSet& Postings(VertexId v) const;

  /// Number of distinct vertices appearing in the table.
  size_t NumIndexedVertices() const { return index_.size(); }

  /// Appends a hyperedge (must be called with ascending global edge ids;
  /// this keeps every posting list sorted without a separate sort pass).
  void Add(EdgeId e, const VertexSet& vertices);

  /// Estimated memory of the inverted index (posting lists + table header),
  /// reported by Exp-1.
  uint64_t IndexBytes() const;

 private:
  PartitionId id_;
  Signature signature_;
  EdgeSet edges_;
  std::unordered_map<VertexId, EdgeSet> index_;
};

}  // namespace hgmatch

#endif  // HGMATCH_CORE_PARTITION_H_
