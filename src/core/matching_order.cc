#include "core/matching_order.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "util/set_ops.h"

namespace hgmatch {

std::vector<EdgeId> QueryPlan::Order() const {
  std::vector<EdgeId> order;
  order.reserve(steps.size());
  for (const PlanStep& s : steps) order.push_back(s.query_edge);
  return order;
}

std::vector<EdgeId> ComputeMatchingOrder(const Hypergraph& query,
                                         const IndexedHypergraph& data) {
  const size_t n = query.NumEdges();
  std::vector<EdgeId> order;
  order.reserve(n);
  if (n == 0) return order;

  // Cardinalities are O(1) lookups into the partition headers (Def V.2).
  std::vector<size_t> card(n);
  for (EdgeId e = 0; e < n; ++e) {
    card[e] = data.Cardinality(SignatureKeyOf(query, e));
  }

  std::vector<uint8_t> used(n, 0);
  // V_phi: vertices covered by the partial order so far, sorted.
  VertexSet covered;

  auto append = [&](EdgeId e) {
    order.push_back(e);
    used[e] = 1;
    for (VertexId v : query.edge(e)) InsertSorted(&covered, v);
  };

  // Line 1: start edge = argmin cardinality (ties -> smaller id).
  EdgeId start = 0;
  for (EdgeId e = 1; e < n; ++e) {
    if (card[e] < card[start]) start = e;
  }
  append(start);

  // Lines 3-5: repeatedly add the connected edge minimising Card / overlap.
  while (order.size() < n) {
    EdgeId best = kInvalidEdge;
    double best_score = std::numeric_limits<double>::infinity();
    for (EdgeId e = 0; e < n; ++e) {
      if (used[e]) continue;
      const size_t overlap = IntersectSize(covered, query.edge(e));
      if (overlap == 0) continue;
      const double score =
          static_cast<double>(card[e]) / static_cast<double>(overlap);
      if (score < best_score) {
        best_score = score;
        best = e;
      }
    }
    if (best == kInvalidEdge) {
      // Disconnected query: start the next component at its cheapest edge.
      for (EdgeId e = 0; e < n; ++e) {
        if (used[e]) continue;
        if (best == kInvalidEdge || card[e] < card[best]) best = e;
      }
    }
    append(best);
  }
  return order;
}

namespace {

// Greedy connected order with an arbitrary per-edge score (smaller first).
std::vector<EdgeId> GreedyConnected(const Hypergraph& query,
                                    const std::vector<double>& score) {
  const size_t n = query.NumEdges();
  std::vector<EdgeId> order;
  order.reserve(n);
  std::vector<uint8_t> used(n, 0);
  VertexSet covered;
  while (order.size() < n) {
    EdgeId best = kInvalidEdge;
    bool best_connected = false;
    for (EdgeId e = 0; e < n; ++e) {
      if (used[e]) continue;
      const bool connected =
          order.empty() || IntersectSize(covered, query.edge(e)) > 0;
      const bool better =
          best == kInvalidEdge || (connected && !best_connected) ||
          (connected == best_connected && score[e] < score[best]);
      if (better) {
        best = e;
        best_connected = connected;
      }
    }
    used[best] = 1;
    order.push_back(best);
    for (VertexId v : query.edge(best)) InsertSorted(&covered, v);
  }
  return order;
}

}  // namespace

std::vector<EdgeId> ComputeMatchingOrderVariant(const Hypergraph& query,
                                                const IndexedHypergraph& data,
                                                OrderVariant variant) {
  const size_t n = query.NumEdges();
  switch (variant) {
    case OrderVariant::kCardinality:
      return ComputeMatchingOrder(query, data);
    case OrderVariant::kConnectedOnly: {
      std::vector<double> score(n);
      for (EdgeId e = 0; e < n; ++e) score[e] = static_cast<double>(e);
      return GreedyConnected(query, score);
    }
    case OrderVariant::kMaxCardinality: {
      std::vector<double> score(n);
      for (EdgeId e = 0; e < n; ++e) {
        score[e] =
            -static_cast<double>(data.Cardinality(SignatureKeyOf(query, e)));
      }
      return GreedyConnected(query, score);
    }
    case OrderVariant::kAsGiven: {
      std::vector<EdgeId> order(n);
      for (EdgeId e = 0; e < n; ++e) order[e] = e;
      return order;
    }
  }
  return {};
}

namespace {

// Fills the order-dependent precomputation of one plan step.
void CompileStep(const Hypergraph& query, const std::vector<EdgeId>& order,
                 uint32_t i, PlanStep* step) {
  const EdgeId eq = order[i];
  step->query_edge = eq;
  step->signature = SignatureKeyOf(query, eq);

  const VertexSet& eq_vertices = query.edge(eq);

  // Partition previous steps into adjacent / non-adjacent (Obs V.2, V.3).
  for (uint32_t j = 0; j < i; ++j) {
    const VertexSet& prev = query.edge(order[j]);
    std::vector<VertexId> shared;
    Intersect(prev, eq_vertices, &shared);
    if (shared.empty()) {
      step->nonadjacent_prev.push_back(j);
    } else {
      step->adjacent_prev.push_back({j, std::move(shared)});
    }
  }

  // Degree of each shared vertex in the partial query BEFORE this step
  // (Obs V.4), i.e. the number of previous steps whose edge contains it.
  step->shared_info.resize(step->adjacent_prev.size());
  for (size_t a = 0; a < step->adjacent_prev.size(); ++a) {
    const auto& ap = step->adjacent_prev[a];
    auto& infos = step->shared_info[a];
    infos.reserve(ap.shared.size());
    for (VertexId u : ap.shared) {
      uint32_t deg = 0;
      for (uint32_t j = 0; j < i; ++j) {
        if (Contains(query.edge(order[j]), u)) ++deg;
      }
      infos.push_back({query.label(u), deg});
    }
  }

  // |V(q')| after this step (Obs V.5).
  VertexSet all;
  for (uint32_t j = 0; j <= i; ++j) {
    const VertexSet& e = query.edge(order[j]);
    all.insert(all.end(), e.begin(), e.end());
  }
  SortUnique(&all);
  step->num_query_vertices_after = static_cast<uint32_t>(all.size());

  // Query-side vertex profiles of eq's vertices w.r.t. the partial query
  // after this step (Def V.3): since the partial embedding m is duplicate
  // free, comparing sets of matched data hyperedges {f(e)} is equivalent to
  // comparing sets of step indices, which are known statically.
  for (VertexId u : eq_vertices) {
    PlanStep::Profile p;
    p.label = query.label(u);
    for (uint32_t j = 0; j <= i; ++j) {
      if (Contains(query.edge(order[j]), u)) p.steps_mask |= 1ULL << j;
    }
    step->query_profiles.push_back(p);
  }
  std::sort(step->query_profiles.begin(), step->query_profiles.end());
}

Result<QueryPlan> Compile(const Hypergraph& query, std::vector<EdgeId> order) {
  if (query.NumEdges() == 0) {
    return Status::InvalidArgument("query hypergraph has no hyperedges");
  }
  if (query.NumEdges() > 64) {
    return Status::InvalidArgument(
        "query hypergraphs are limited to 64 hyperedges");
  }
  if (order.size() != query.NumEdges()) {
    return Status::InvalidArgument("matching order must cover every query "
                                   "hyperedge exactly once");
  }
  std::vector<uint8_t> seen(query.NumEdges(), 0);
  for (EdgeId e : order) {
    if (e >= query.NumEdges() || seen[e]) {
      return Status::InvalidArgument("matching order is not a permutation");
    }
    seen[e] = 1;
  }
  static std::atomic<uint64_t> next_uid{1};
  QueryPlan plan;
  plan.query = &query;
  plan.uid = next_uid.fetch_add(1, std::memory_order_relaxed);
  plan.steps.resize(order.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    CompileStep(query, order, i, &plan.steps[i]);
  }
  return plan;
}

}  // namespace

Result<QueryPlan> BuildQueryPlan(const Hypergraph& query,
                                 const IndexedHypergraph& data) {
  return Compile(query, ComputeMatchingOrder(query, data));
}

Result<QueryPlan> BuildQueryPlanWithOrder(const Hypergraph& query,
                                          std::vector<EdgeId> order) {
  return Compile(query, std::move(order));
}

}  // namespace hgmatch
