#ifndef HGMATCH_CORE_REFERENCE_H_
#define HGMATCH_CORE_REFERENCE_H_

#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"
#include "core/result.h"

namespace hgmatch {

/// Brute-force oracle with HGMatch's *edge-tuple* result semantics: counts
/// injective assignments of query hyperedges (in query-edge-id order) to
/// signature-equal data hyperedges that admit a consistent vertex bijection
/// (checked exactly via EmbeddingConsistent at every prefix). Exponential;
/// only for tests on small inputs. Embeddings are emitted indexed by query
/// edge id.
MatchStats ReferenceEdgeTupleMatch(const IndexedHypergraph& data,
                                   const Hypergraph& query,
                                   const MatchOptions& options = {},
                                   EmbeddingSink* sink = nullptr);

/// Brute-force oracle with *vertex-mapping* semantics (Definition III.3
/// taken literally): counts injective, label-preserving vertex mappings f
/// such that the image of every query hyperedge is a data hyperedge. This
/// is the result notion enumerated naturally by match-by-vertex baselines.
uint64_t ReferenceVertexMatchCount(const Hypergraph& data,
                                   const Hypergraph& query);

}  // namespace hgmatch

#endif  // HGMATCH_CORE_REFERENCE_H_
