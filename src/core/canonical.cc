#include "core/canonical.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "core/types.h"

namespace hgmatch {

namespace {

void AppendU32(std::string* s, uint32_t v) {
  char b[sizeof(v)];
  std::memcpy(b, &v, sizeof(v));
  s->append(b, sizeof(b));
}

// Rank-compresses ordered signatures into dense colours 0..k-1 preserving
// signature order; returns k. The colour of an element is the rank of its
// signature, so colours are a pure function of the signature multiset —
// the property that keeps every step of the search isomorphism-invariant.
template <typename Sig>
uint32_t CompressColours(const std::vector<Sig>& sigs,
                         std::vector<uint32_t>* colours) {
  const uint32_t n = static_cast<uint32_t>(sigs.size());
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&sigs](uint32_t a, uint32_t b) {
    return sigs[a] < sigs[b];
  });
  colours->assign(n, 0);
  uint32_t colour = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (i > 0 && sigs[order[i - 1]] < sigs[order[i]]) ++colour;
    (*colours)[order[i]] = colour;
  }
  return n == 0 ? 0 : colour + 1;
}

// Individualisation-refinement canonizer over one (tiny) query hypergraph.
// The refined colour partition is invariant under isomorphism, the target
// cell and the set of individualisation choices depend only on that
// partition, and every choice is explored — so the lexicographically
// smallest leaf certificate is a canonical form. The node budget turns
// pathological symmetric instances into a clean abort (exact-key fallback)
// instead of a factorial search.
class Canonizer {
 public:
  Canonizer(const Hypergraph& q, const CanonicalOptions& options)
      : q_(q),
        options_(options),
        n_(static_cast<uint32_t>(q.NumVertices())),
        m_(static_cast<uint32_t>(q.NumEdges())) {}

  // Runs the search from the label-induced initial colouring. Returns
  // false when the node budget ran out.
  bool Run(std::string* certificate) {
    std::vector<Label> labels(n_);
    for (VertexId v = 0; v < n_; ++v) labels[v] = q_.label(v);
    std::vector<uint32_t> vcol;
    CompressColours(labels, &vcol);
    Search(std::move(vcol));
    if (aborted_ || !have_best_) return false;
    *certificate = std::move(best_);
    return true;
  }

 private:
  // One round of alternating hyperedge/vertex colour refinement to a fixed
  // point. A hyperedge's signature is (its previous colour, its label, the
  // sorted multiset of member colours) — the colour-refined generalisation
  // of the Definition IV.1 partition key, whose initial round reproduces
  // exactly that key's classes; a vertex's signature is (its previous
  // colour, the sorted multiset of incident hyperedge colours). Both
  // include the previous colour, so partitions only ever split and the
  // fixed point is reached once neither colour count grows.
  void Refine(std::vector<uint32_t>* vcol_io) {
    std::vector<uint32_t>& vcol = *vcol_io;
    std::vector<uint32_t> ecol(m_, 0);
    uint32_t num_vcol = 0;
    uint32_t num_ecol = 0;
    for (;;) {
      std::vector<std::vector<uint32_t>> esig(m_);
      for (EdgeId e = 0; e < m_; ++e) {
        std::vector<uint32_t>& s = esig[e];
        s.reserve(q_.arity(e) + 2);
        s.push_back(ecol[e]);
        s.push_back(q_.edge_label(e));
        for (VertexId v : q_.edge(e)) s.push_back(vcol[v]);
        std::sort(s.begin() + 2, s.end());
      }
      const uint32_t new_ecol = CompressColours(esig, &ecol);
      std::vector<std::vector<uint32_t>> vsig(n_);
      for (VertexId v = 0; v < n_; ++v) {
        std::vector<uint32_t>& s = vsig[v];
        s.reserve(q_.degree(v) + 1);
        s.push_back(vcol[v]);
        for (EdgeId e : q_.incident(v)) s.push_back(ecol[e]);
        std::sort(s.begin() + 1, s.end());
      }
      const uint32_t new_vcol = CompressColours(vsig, &vcol);
      if (new_vcol == num_vcol && new_ecol == num_ecol) return;
      num_vcol = new_vcol;
      num_ecol = new_ecol;
    }
  }

  // The certificate of a discrete colouring: the full labelled structure
  // with vertices renumbered by colour rank and hyperedges (renumbered,
  // member-sorted, label-tagged) in sorted order. Equal certificates of
  // two hypergraphs exhibit an isomorphism between them.
  std::string Certificate(const std::vector<uint32_t>& vcol) const {
    std::string cert;
    cert.reserve(4 * (2 + n_ + m_) + 4 * q_.NumIncidences() + 4 * m_);
    AppendU32(&cert, n_);
    std::vector<VertexId> by_rank(n_);
    for (VertexId v = 0; v < n_; ++v) by_rank[vcol[v]] = v;
    for (uint32_t r = 0; r < n_; ++r) AppendU32(&cert, q_.label(by_rank[r]));
    AppendU32(&cert, m_);
    std::vector<std::string> edges;
    edges.reserve(m_);
    for (EdgeId e = 0; e < m_; ++e) {
      std::vector<uint32_t> members;
      members.reserve(q_.arity(e));
      for (VertexId v : q_.edge(e)) members.push_back(vcol[v]);
      std::sort(members.begin(), members.end());
      std::string es;
      es.reserve(4 * (members.size() + 2));
      AppendU32(&es, static_cast<uint32_t>(members.size()));
      for (uint32_t r : members) AppendU32(&es, r);
      AppendU32(&es, q_.edge_label(e));
      edges.push_back(std::move(es));
    }
    std::sort(edges.begin(), edges.end());
    for (const std::string& es : edges) cert += es;
    return cert;
  }

  void Search(std::vector<uint32_t> vcol) {
    if (aborted_ || ++nodes_ > options_.max_search_nodes) {
      aborted_ = true;
      return;
    }
    Refine(&vcol);
    // Target cell: the smallest colour with more than one vertex — a
    // choice that depends only on the (invariant) partition.
    std::vector<uint32_t> count(n_, 0);
    for (uint32_t c : vcol) ++count[c];
    uint32_t target = n_;
    for (uint32_t c = 0; c < n_; ++c) {
      if (count[c] > 1) {
        target = c;
        break;
      }
    }
    if (target == n_) {  // discrete: every vertex its own colour
      std::string cert = Certificate(vcol);
      if (!have_best_ || cert < best_) {
        best_ = std::move(cert);
        have_best_ = true;
      }
      return;
    }
    // Individualise each vertex of the target cell in turn: it keeps the
    // cell's colour alone, its classmates (and every later colour) shift
    // up one, and refinement propagates the split.
    for (VertexId v = 0; v < n_; ++v) {
      if (vcol[v] != target) continue;
      std::vector<uint32_t> child(vcol);
      for (VertexId u = 0; u < n_; ++u) {
        if (child[u] > target || (child[u] == target && u != v)) ++child[u];
      }
      Search(std::move(child));
      if (aborted_) return;
    }
  }

  const Hypergraph& q_;
  const CanonicalOptions& options_;
  const uint32_t n_;
  const uint32_t m_;
  uint32_t nodes_ = 0;
  bool aborted_ = false;
  bool have_best_ = false;
  std::string best_;
};

}  // namespace

std::string ExactQueryKey(const Hypergraph& q) {
  std::string key;
  key.reserve(16 + q.NumVertices() * sizeof(Label) +
              q.NumIncidences() * sizeof(VertexId) +
              q.NumEdges() * (sizeof(Label) + sizeof(uint64_t)));
  auto append = [&key](const void* data, size_t bytes) {
    key.append(static_cast<const char*>(data), bytes);
  };
  const uint64_t nv = q.NumVertices();
  append(&nv, sizeof(nv));
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    const Label l = q.label(v);
    append(&l, sizeof(l));
  }
  for (EdgeId e = 0; e < q.NumEdges(); ++e) {
    const VertexSet& vs = q.edge(e);
    const uint64_t arity = vs.size();
    append(&arity, sizeof(arity));
    append(vs.data(), vs.size() * sizeof(VertexId));
    const Label el = q.edge_label(e);
    append(&el, sizeof(el));
  }
  return key;
}

CanonicalKey CanonicalQueryKey(const Hypergraph& q,
                               const CanonicalOptions& options) {
  CanonicalKey out;
  out.exact = ExactQueryKey(q);
  if (q.NumVertices() > options.max_vertices ||
      q.NumEdges() > options.max_edges) {
    out.key = 'X' + out.exact;
    return out;
  }
  Canonizer canonizer(q, options);
  std::string cert;
  if (!canonizer.Run(&cert)) {
    out.key = 'X' + out.exact;
    return out;
  }
  out.key = 'C' + std::move(cert);
  out.isomorphism_invariant = true;
  return out;
}

}  // namespace hgmatch
