#include "core/shard.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/signature.h"

namespace hgmatch {

std::vector<uint32_t> AssignShards(const Hypergraph& h, uint32_t num_shards) {
  const uint32_t k = std::max<uint32_t>(1, num_shards);
  std::vector<uint32_t> assign(h.NumEdges(), 0);
  if (k == 1) return assign;
  // Group hyperedges by partition key; iterating edges in id order keeps
  // each group ascending, so the slices below are contiguous id ranges
  // within their table.
  std::unordered_map<Signature, std::vector<EdgeId>, SignatureHash> tables;
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    tables[SignatureKeyOf(h, e)].push_back(e);
  }
  for (const auto& [key, edges] : tables) {
    const uint64_t n = edges.size();
    for (uint64_t s = 0; s < k; ++s) {
      const uint64_t lo = n * s / k;
      const uint64_t hi = n * (s + 1) / k;
      for (uint64_t i = lo; i < hi; ++i) {
        assign[edges[i]] = static_cast<uint32_t>(s);
      }
    }
  }
  return assign;
}

std::vector<Hypergraph> SplitHypergraph(const Hypergraph& h,
                                        uint32_t num_shards) {
  const uint32_t k = std::max<uint32_t>(1, num_shards);
  const std::vector<uint32_t> assign = AssignShards(h, k);
  std::vector<Hypergraph> parts(k);
  for (Hypergraph& part : parts) {
    for (VertexId v = 0; v < h.NumVertices(); ++v) {
      part.AddVertex(h.label(v));
    }
  }
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    // The source is a valid simple hypergraph, so re-adding its edges
    // into a part with the same vertex ids cannot fail.
    (void)parts[assign[e]].AddEdge(h.edge(e), h.edge_label(e));
  }
  return parts;
}

Result<Hypergraph> MergeShards(const std::vector<Hypergraph>& parts) {
  Hypergraph merged;
  if (parts.empty()) return merged;
  const Hypergraph& first = parts[0];
  for (size_t p = 1; p < parts.size(); ++p) {
    if (parts[p].NumVertices() != first.NumVertices()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(p) + " has " +
          std::to_string(parts[p].NumVertices()) + " vertices, shard 0 has " +
          std::to_string(first.NumVertices()));
    }
    for (VertexId v = 0; v < first.NumVertices(); ++v) {
      if (parts[p].label(v) != first.label(v)) {
        return Status::InvalidArgument(
            "shard " + std::to_string(p) + " disagrees with shard 0 on the "
            "label of vertex " + std::to_string(v));
      }
    }
  }
  for (VertexId v = 0; v < first.NumVertices(); ++v) {
    merged.AddVertex(first.label(v));
  }
  for (size_t p = 0; p < parts.size(); ++p) {
    for (EdgeId e = 0; e < parts[p].NumEdges(); ++e) {
      const size_t before = merged.NumEdges();
      Result<EdgeId> added = merged.AddEdge(parts[p].edge(e),
                                            parts[p].edge_label(e));
      if (!added.ok()) return added.status();
      if (merged.NumEdges() == before) {
        return Status::InvalidArgument(
            "shards overlap: hyperedge " + std::to_string(e) + " of shard " +
            std::to_string(p) + " already present");
      }
    }
  }
  return merged;
}

}  // namespace hgmatch
