#include "core/indexed_hypergraph.h"

namespace hgmatch {

namespace {
const EdgeSet kEmptyPostings;
}  // namespace

IndexedHypergraph IndexedHypergraph::Build(Hypergraph graph) {
  IndexedHypergraph out;
  out.graph_ = std::move(graph);
  const Hypergraph& h = out.graph_;
  out.edge_partition_.resize(h.NumEdges(), kInvalidPartition);
  // Edge ids are visited in ascending order, so Partition::Add keeps every
  // posting list sorted with no extra sort pass.
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    Signature s = SignatureKeyOf(h, e);
    auto [it, inserted] = out.by_signature_.try_emplace(
        s, static_cast<PartitionId>(out.partitions_.size()));
    if (inserted) {
      out.partitions_.emplace_back(it->second, std::move(s));
    }
    out.partitions_[it->second].Add(e, h.edge(e));
    out.edge_partition_[e] = it->second;
  }
  return out;
}

const Partition* IndexedHypergraph::FindPartition(const Signature& s) const {
  auto it = by_signature_.find(s);
  if (it == by_signature_.end()) return nullptr;
  return &partitions_[it->second];
}

size_t IndexedHypergraph::Cardinality(const Signature& s) const {
  const Partition* p = FindPartition(s);
  return p == nullptr ? 0 : p->size();
}

const EdgeSet& IndexedHypergraph::Postings(const Signature& s,
                                           VertexId v) const {
  const Partition* p = FindPartition(s);
  if (p == nullptr) return kEmptyPostings;
  return p->Postings(v);
}

uint64_t IndexedHypergraph::IndexBytes() const {
  uint64_t bytes = edge_partition_.size() * sizeof(PartitionId);
  for (const Partition& p : partitions_) bytes += p.IndexBytes();
  return bytes;
}

}  // namespace hgmatch
