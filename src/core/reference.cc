#include "core/reference.h"

#include <algorithm>
#include <vector>

#include "core/signature.h"
#include "core/validation.h"
#include "util/set_ops.h"
#include "util/timer.h"

namespace hgmatch {

namespace {

struct EdgeTupleSearch {
  const IndexedHypergraph* data;
  const Hypergraph* query;
  const MatchOptions* options;
  EmbeddingSink* sink;
  Deadline deadline;
  MatchStats stats;

  std::vector<EdgeId> order;     // query edge ids 0..n-1
  std::vector<EdgeId> matched;   // data edge per position
  std::vector<const EdgeSet*> candidates;  // per position: signature table

  void Recurse(uint32_t depth) {
    const uint32_t n = static_cast<uint32_t>(order.size());
    if (stats.timed_out || stats.limit_hit) return;
    if (deadline.Expired()) {
      stats.timed_out = true;
      return;
    }
    if (depth == n) {
      ++stats.embeddings;
      if (sink != nullptr) sink->Emit(matched.data(), n);
      if (options->limit != 0 && stats.embeddings >= options->limit) {
        stats.limit_hit = true;
      }
      return;
    }
    for (EdgeId c : *candidates[depth]) {
      bool used = false;
      for (uint32_t j = 0; j < depth; ++j) {
        if (matched[j] == c) {
          used = true;
          break;
        }
      }
      if (used) continue;
      matched[depth] = c;
      // Exact prefix consistency: a prefix with no consistent bijection can
      // never extend to a full embedding (restriction argument).
      if (EmbeddingConsistent(*query, data->graph(), order.data(),
                              matched.data(), depth + 1)) {
        Recurse(depth + 1);
        if (stats.timed_out || stats.limit_hit) return;
      }
    }
  }
};

}  // namespace

MatchStats ReferenceEdgeTupleMatch(const IndexedHypergraph& data,
                                   const Hypergraph& query,
                                   const MatchOptions& options,
                                   EmbeddingSink* sink) {
  Timer timer;
  EdgeTupleSearch search;
  search.data = &data;
  search.query = &query;
  search.options = &options;
  search.sink = sink;
  search.deadline = Deadline::After(options.timeout_seconds);

  const uint32_t n = static_cast<uint32_t>(query.NumEdges());
  search.order.resize(n);
  search.matched.resize(n, kInvalidEdge);
  search.candidates.resize(n);
  static const EdgeSet kEmpty;
  for (EdgeId e = 0; e < n; ++e) {
    search.order[e] = e;
    const Partition* p = data.FindPartition(SignatureKeyOf(query, e));
    search.candidates[e] = (p == nullptr) ? &kEmpty : &p->edges();
  }
  if (n > 0) search.Recurse(0);
  search.stats.seconds = timer.ElapsedSeconds();
  return search.stats;
}

namespace {

struct VertexSearch {
  const Hypergraph* data;
  const Hypergraph* query;
  std::vector<VertexId> mapping;  // f(u) per query vertex, kInvalidVertex=∅
  std::vector<uint8_t> used;      // data vertex already an image
  uint64_t count = 0;

  // Checks Theorem III.2 incrementally: every query hyperedge whose
  // vertices are all mapped after assigning u must map onto a data edge.
  bool EdgesSatisfied(VertexId u) const {
    for (EdgeId e : query->incident(u)) {
      VertexSet image;
      bool complete = true;
      for (VertexId w : query->edge(e)) {
        if (mapping[w] == kInvalidVertex) {
          complete = false;
          break;
        }
        image.push_back(mapping[w]);
      }
      if (!complete) continue;
      SortUnique(&image);
      // Search the image among the incident edges of the first image
      // vertex; hyperedge labels must agree as well (footnote 2).
      bool found = false;
      for (EdgeId de : data->incident(image[0])) {
        if (data->edge(de) == image &&
            data->edge_label(de) == query->edge_label(e)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  void Recurse(VertexId u) {
    if (u == query->NumVertices()) {
      ++count;
      return;
    }
    for (VertexId v = 0; v < data->NumVertices(); ++v) {
      if (used[v] || data->label(v) != query->label(u)) continue;
      if (data->degree(v) < query->degree(u)) continue;
      mapping[u] = v;
      used[v] = 1;
      if (EdgesSatisfied(u)) Recurse(u + 1);
      used[v] = 0;
      mapping[u] = kInvalidVertex;
    }
  }
};

}  // namespace

uint64_t ReferenceVertexMatchCount(const Hypergraph& data,
                                   const Hypergraph& query) {
  VertexSearch search;
  search.data = &data;
  search.query = &query;
  search.mapping.assign(query.NumVertices(), kInvalidVertex);
  search.used.assign(data.NumVertices(), 0);
  search.Recurse(0);
  return search.count;
}

}  // namespace hgmatch
