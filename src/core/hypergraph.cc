#include "core/hypergraph.h"

#include <algorithm>

#include "util/rng.h"
#include "util/set_ops.h"

namespace hgmatch {

uint64_t HashVertexSet(const VertexSet& vertices) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (VertexId v : vertices) {
    h = Mix64(h ^ (static_cast<uint64_t>(v) + 0x100000001b3ULL));
  }
  return h;
}

Hypergraph Hypergraph::Clone() const {
  Hypergraph copy;
  copy.labels_ = labels_;
  copy.edges_ = edges_;
  copy.edge_labels_ = edge_labels_;
  copy.incident_ = incident_;
  copy.edge_hash_ = edge_hash_;
  copy.num_labels_ = num_labels_;
  copy.num_edge_labels_ = num_edge_labels_;
  copy.max_arity_ = max_arity_;
  copy.total_incidences_ = total_incidences_;
  return copy;
}

VertexId Hypergraph::AddVertex(Label label) {
  labels_.push_back(label);
  incident_.emplace_back();
  if (label + 1 > num_labels_) num_labels_ = label + 1;
  return static_cast<VertexId>(labels_.size() - 1);
}

VertexId Hypergraph::AddVertices(size_t count, Label label) {
  const VertexId first = static_cast<VertexId>(labels_.size());
  labels_.resize(labels_.size() + count, label);
  incident_.resize(incident_.size() + count);
  if (count > 0 && label + 1 > num_labels_) num_labels_ = label + 1;
  return first;
}

Result<EdgeId> Hypergraph::AddEdge(VertexSet vertices, Label edge_label) {
  SortUnique(&vertices);
  if (vertices.empty()) {
    return Status::InvalidArgument("hyperedge must be non-empty");
  }
  if (vertices.back() >= labels_.size()) {
    return Status::InvalidArgument("hyperedge mentions unknown vertex " +
                                   std::to_string(vertices.back()));
  }
  const uint64_t h = Mix64(HashVertexSet(vertices) ^ edge_label);
  auto it = edge_hash_.find(h);
  if (it != edge_hash_.end()) {
    for (EdgeId existing : it->second) {
      if (edges_[existing] == vertices &&
          edge_labels_[existing] == edge_label) {
        return existing;
      }
    }
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  max_arity_ = std::max(max_arity_, static_cast<uint32_t>(vertices.size()));
  total_incidences_ += vertices.size();
  if (edge_label + 1 > num_edge_labels_) num_edge_labels_ = edge_label + 1;
  for (VertexId v : vertices) incident_[v].push_back(id);
  edges_.push_back(std::move(vertices));
  edge_labels_.push_back(edge_label);
  edge_hash_[h].push_back(id);
  return id;
}

EdgeId Hypergraph::FindEdge(VertexSet vertices, Label edge_label) const {
  SortUnique(&vertices);
  auto it = edge_hash_.find(Mix64(HashVertexSet(vertices) ^ edge_label));
  if (it != edge_hash_.end()) {
    for (EdgeId e : it->second) {
      if (edges_[e] == vertices && edge_labels_[e] == edge_label) return e;
    }
  }
  return kInvalidEdge;
}

double Hypergraph::AverageArity() const {
  if (edges_.empty()) return 0;
  return static_cast<double>(total_incidences_) /
         static_cast<double>(edges_.size());
}

VertexSet Hypergraph::AdjacentVertices(VertexId v) const {
  VertexSet out;
  for (EdgeId e : incident_[v]) {
    out.insert(out.end(), edges_[e].begin(), edges_[e].end());
  }
  SortUnique(&out);
  // Remove v itself.
  auto it = std::lower_bound(out.begin(), out.end(), v);
  if (it != out.end() && *it == v) out.erase(it);
  return out;
}

EdgeSet Hypergraph::AdjacentEdges(EdgeId e) const {
  EdgeSet out;
  for (VertexId v : edges_[e]) {
    out.insert(out.end(), incident_[v].begin(), incident_[v].end());
  }
  SortUnique(&out);
  auto it = std::lower_bound(out.begin(), out.end(), e);
  if (it != out.end() && *it == e) out.erase(it);
  return out;
}

bool Hypergraph::IsConnected() const {
  if (edges_.empty()) return true;
  std::vector<uint8_t> edge_seen(edges_.size(), 0);
  std::vector<uint8_t> vertex_seen(labels_.size(), 0);
  std::vector<EdgeId> stack = {0};
  edge_seen[0] = 1;
  size_t reached = 1;
  while (!stack.empty()) {
    const EdgeId e = stack.back();
    stack.pop_back();
    for (VertexId v : edges_[e]) {
      if (vertex_seen[v]) continue;
      vertex_seen[v] = 1;
      for (EdgeId next : incident_[v]) {
        if (!edge_seen[next]) {
          edge_seen[next] = 1;
          ++reached;
          stack.push_back(next);
        }
      }
    }
  }
  return reached == edges_.size();
}

uint64_t Hypergraph::MemoryBytes() const {
  uint64_t bytes = labels_.size() * sizeof(Label);
  // Each incidence appears once in an edge list and once in a vertex list.
  bytes += 2 * total_incidences_ * sizeof(VertexId);
  bytes += edges_.size() * sizeof(VertexSet);
  bytes += incident_.size() * sizeof(EdgeSet);
  return bytes;
}

}  // namespace hgmatch
