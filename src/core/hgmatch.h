#ifndef HGMATCH_CORE_HGMATCH_H_
#define HGMATCH_CORE_HGMATCH_H_

#include "core/candidates.h"
#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"
#include "core/matching_order.h"
#include "core/result.h"
#include "util/status.h"

namespace hgmatch {

/// Single-threaded match-by-hyperedge enumeration (Algorithm 2 executed
/// with the LIFO task schedule of Section VI.B, i.e. depth-first over the
/// task tree, which bounds memory to one candidate list per plan step).
/// Embeddings are emitted to `sink` (may be null to only count) in matching
/// order; see QueryPlan::Order() for the query-edge order of the tuple.
MatchStats ExecutePlanSequential(const IndexedHypergraph& data,
                                 const QueryPlan& plan,
                                 const MatchOptions& options,
                                 EmbeddingSink* sink);

/// Convenience wrapper: plans the query (Algorithm 3) and runs
/// ExecutePlanSequential. Fails if the query is empty or exceeds 64
/// hyperedges.
Result<MatchStats> MatchSequential(const IndexedHypergraph& data,
                                   const Hypergraph& query,
                                   const MatchOptions& options = {},
                                   EmbeddingSink* sink = nullptr);

}  // namespace hgmatch

#endif  // HGMATCH_CORE_HGMATCH_H_
