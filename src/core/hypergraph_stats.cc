#include "core/hypergraph_stats.h"

#include <algorithm>
#include <cstdio>

namespace hgmatch {

namespace {

// Gini coefficient of a non-negative sample (sorted internally).
double Gini(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double cum = 0, weighted = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    cum += values[i];
    weighted += values[i] * static_cast<double>(i + 1);
  }
  if (cum == 0) return 0;
  const double n = static_cast<double>(values.size());
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace

HypergraphStats ComputeStats(const Hypergraph& h) {
  HypergraphStats s;
  s.num_vertices = h.NumVertices();
  s.num_edges = h.NumEdges();
  s.num_labels = h.NumLabels();
  s.num_incidences = h.NumIncidences();
  s.max_arity = h.MaxArity();
  s.avg_arity = h.AverageArity();
  s.connected = h.IsConnected();

  s.arity_histogram.assign(static_cast<size_t>(s.max_arity) + 1, 0);
  for (EdgeId e = 0; e < h.NumEdges(); ++e) ++s.arity_histogram[h.arity(e)];

  s.label_counts.assign(s.num_labels, 0);
  std::vector<double> degrees;
  degrees.reserve(h.NumVertices());
  uint64_t degree_sum = 0;
  for (VertexId v = 0; v < h.NumVertices(); ++v) {
    if (h.label(v) < s.label_counts.size()) ++s.label_counts[h.label(v)];
    const uint32_t d = h.degree(v);
    s.max_degree = std::max(s.max_degree, d);
    degree_sum += d;
    degrees.push_back(static_cast<double>(d));
  }
  s.avg_degree = h.NumVertices() == 0
                     ? 0
                     : static_cast<double>(degree_sum) /
                           static_cast<double>(h.NumVertices());
  s.degree_histogram.assign(static_cast<size_t>(s.max_degree) + 1, 0);
  for (VertexId v = 0; v < h.NumVertices(); ++v) {
    ++s.degree_histogram[h.degree(v)];
  }
  s.degree_gini = Gini(std::move(degrees));
  return s;
}

std::string HypergraphStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "|V|=%llu |E|=%llu |Sigma|=%llu incidences=%llu\n"
                "arity: max=%u avg=%.2f\n"
                "degree: max=%u avg=%.2f gini=%.3f\n"
                "connected=%s",
                static_cast<unsigned long long>(num_vertices),
                static_cast<unsigned long long>(num_edges),
                static_cast<unsigned long long>(num_labels),
                static_cast<unsigned long long>(num_incidences), max_arity,
                avg_arity, max_degree, avg_degree, degree_gini,
                connected ? "yes" : "no");
  return buf;
}

PartitionStats ComputePartitionStats(const IndexedHypergraph& index) {
  PartitionStats s;
  s.num_partitions = index.partitions().size();
  if (s.num_partitions == 0) return s;
  std::vector<uint64_t> sizes;
  uint64_t total = 0;
  for (const Partition& p : index.partitions()) {
    sizes.push_back(p.size());
    total += p.size();
    s.largest_partition = std::max<uint64_t>(s.largest_partition, p.size());
  }
  s.avg_partition_size =
      static_cast<double>(total) / static_cast<double>(s.num_partitions);
  std::sort(sizes.rbegin(), sizes.rend());
  uint64_t top = 0;
  for (size_t i = 0; i < std::min<size_t>(10, sizes.size()); ++i) {
    top += sizes[i];
  }
  s.top10_fraction =
      total == 0 ? 0 : static_cast<double>(top) / static_cast<double>(total);
  return s;
}

std::string PartitionStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "signature tables=%llu largest=%llu avg=%.1f top10=%.1f%%",
                static_cast<unsigned long long>(num_partitions),
                static_cast<unsigned long long>(largest_partition),
                avg_partition_size, 100 * top10_fraction);
  return buf;
}

}  // namespace hgmatch
