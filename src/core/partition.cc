#include "core/partition.h"

namespace hgmatch {

namespace {
const EdgeSet kEmptyPostings;
}  // namespace

const EdgeSet& Partition::Postings(VertexId v) const {
  auto it = index_.find(v);
  if (it == index_.end()) return kEmptyPostings;
  return it->second;
}

void Partition::Add(EdgeId e, const VertexSet& vertices) {
  edges_.push_back(e);
  for (VertexId v : vertices) index_[v].push_back(e);
}

uint64_t Partition::IndexBytes() const {
  uint64_t bytes = signature_.size() * sizeof(Label);
  bytes += edges_.size() * sizeof(EdgeId);
  for (const auto& [v, postings] : index_) {
    (void)v;
    bytes += sizeof(VertexId) + postings.size() * sizeof(EdgeId) +
             sizeof(EdgeSet);
  }
  return bytes;
}

}  // namespace hgmatch
