#include "core/validation.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace hgmatch {

namespace {

// Builds the sorted list of (label, incidence mask) classes, one entry per
// distinct vertex appearing in edges[order[0..n-1]].
void BuildClasses(const Hypergraph& h, const EdgeId* edges, uint32_t n,
                  std::vector<std::pair<VertexId, uint64_t>>* scratch,
                  std::vector<std::pair<Label, uint64_t>>* classes) {
  scratch->clear();
  for (uint32_t j = 0; j < n; ++j) {
    for (VertexId v : h.edge(edges[j])) {
      scratch->emplace_back(v, 1ULL << j);
    }
  }
  std::sort(scratch->begin(), scratch->end());
  classes->clear();
  size_t i = 0;
  while (i < scratch->size()) {
    const VertexId v = (*scratch)[i].first;
    uint64_t mask = 0;
    while (i < scratch->size() && (*scratch)[i].first == v) {
      mask |= (*scratch)[i].second;
      ++i;
    }
    classes->emplace_back(h.label(v), mask);
  }
  std::sort(classes->begin(), classes->end());
}

}  // namespace

bool EmbeddingConsistent(const Hypergraph& query, const Hypergraph& data,
                         const EdgeId* order, const EdgeId* matched,
                         uint32_t n) {
  std::vector<std::pair<VertexId, uint64_t>> scratch;
  std::vector<std::pair<Label, uint64_t>> query_classes;
  std::vector<std::pair<Label, uint64_t>> data_classes;
  BuildClasses(query, order, n, &scratch, &query_classes);
  BuildClasses(data, matched, n, &scratch, &data_classes);
  // Sorted multisets of classes must be identical (equal class populations).
  return query_classes == data_classes;
}

}  // namespace hgmatch
