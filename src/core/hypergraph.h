#ifndef HGMATCH_CORE_HYPERGRAPH_H_
#define HGMATCH_CORE_HYPERGRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace hgmatch {

/// An undirected, vertex-labelled simple hypergraph H = (V, E, l, Sigma)
/// (Definition III.1). Vertices carry a label; hyperedges are non-empty sets
/// of vertices. The structure is append-only: vertices and hyperedges are
/// added once and never removed, which matches the offline-preprocess /
/// online-query lifecycle of HGMatch (Section IV.A).
///
/// Invariants maintained by this class:
///  * every hyperedge's vertex list is sorted ascending and duplicate-free
///    ("repeated vertices in one hyperedge" are removed, as in the paper's
///    dataset preprocessing, Section VII.A);
///  * no two hyperedges contain the same vertex set (repeated hyperedges are
///    rejected at insert);
///  * each vertex's incident-hyperedge list he(v) is sorted ascending.
class Hypergraph {
 public:
  Hypergraph() = default;

  // Movable but not copyable by accident: copies of multi-GB hypergraphs
  // should be explicit via Clone().
  Hypergraph(Hypergraph&&) = default;
  Hypergraph& operator=(Hypergraph&&) = default;
  Hypergraph(const Hypergraph&) = delete;
  Hypergraph& operator=(const Hypergraph&) = delete;

  /// Deep copy, for tests and tools that genuinely need one.
  Hypergraph Clone() const;

  /// Adds a vertex with the given label and returns its id (ids are dense,
  /// starting at 0).
  VertexId AddVertex(Label label);

  /// Adds `count` vertices sharing one label; returns the first new id.
  VertexId AddVertices(size_t count, Label label);

  /// Adds a hyperedge over `vertices` (order/duplicates irrelevant; the set
  /// is canonicalised), optionally carrying a hyperedge label
  /// (paper footnote 2: edge-labelled hypergraphs add an equality
  /// constraint on hyperedge labels, which this library folds into the
  /// signature partition key). Returns the new edge id, or the id of the
  /// existing identical (vertex set, label) hyperedge (the hypergraph stays
  /// simple), or InvalidArgument if the set is empty or mentions an unknown
  /// vertex. Unlabelled hyperedges carry label 0.
  Result<EdgeId> AddEdge(VertexSet vertices, Label edge_label = 0);

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Number of distinct labels actually used (max label + 1 over vertices).
  size_t NumLabels() const { return num_labels_; }

  Label label(VertexId v) const { return labels_[v]; }

  /// The (sorted) vertex set of a hyperedge.
  const VertexSet& edge(EdgeId e) const { return edges_[e]; }

  /// Arity a(e): number of vertices in the hyperedge.
  uint32_t arity(EdgeId e) const {
    return static_cast<uint32_t>(edges_[e].size());
  }

  /// Incident hyperedges he(v), sorted ascending by edge id.
  const EdgeSet& incident(VertexId v) const { return incident_[v]; }

  /// Degree d(v) = |he(v)|.
  uint32_t degree(VertexId v) const {
    return static_cast<uint32_t>(incident_[v].size());
  }

  /// Maximum arity over all hyperedges (0 if edgeless).
  uint32_t MaxArity() const { return max_arity_; }

  /// Average arity a_H = sum a(e) / |E| (0 if edgeless).
  double AverageArity() const;

  /// Total number of (vertex, hyperedge) incidences = sum of arities.
  uint64_t NumIncidences() const { return total_incidences_; }

  /// All vertices adjacent to v (vertices sharing a hyperedge with v,
  /// excluding v itself), sorted. Computed on demand.
  VertexSet AdjacentVertices(VertexId v) const;

  /// All hyperedges adjacent to e (sharing at least one vertex, excluding e),
  /// sorted. Computed on demand.
  EdgeSet AdjacentEdges(EdgeId e) const;

  /// Hyperedge label (0 unless set at AddEdge).
  Label edge_label(EdgeId e) const { return edge_labels_[e]; }

  /// Number of distinct hyperedge labels in use (max + 1; 1 when only the
  /// default label 0 occurs, 0 when edgeless).
  size_t NumEdgeLabels() const { return num_edge_labels_; }

  /// Returns the id of the hyperedge with exactly this vertex set (order
  /// and duplicates in `vertices` are irrelevant) and this hyperedge label,
  /// or kInvalidEdge when absent. O(1) expected (content hash).
  EdgeId FindEdge(VertexSet vertices, Label edge_label = 0) const;

  /// True iff the hyperedge set is connected when viewed as a graph whose
  /// nodes are hyperedges and whose links are shared vertices. Vertices in
  /// no hyperedge are ignored. An edgeless hypergraph counts as connected.
  bool IsConnected() const;

  /// Estimated in-memory size of the raw hypergraph: labels plus all
  /// hyperedge vertex lists plus incidence lists (what the paper calls the
  /// "graph size" in Exp-1).
  uint64_t MemoryBytes() const;

 private:
  std::vector<Label> labels_;
  std::vector<VertexSet> edges_;
  std::vector<Label> edge_labels_;
  std::vector<EdgeSet> incident_;
  // Dedup map: 64-bit content hash of the canonical vertex set -> edge ids
  // with that hash (collisions resolved by full comparison).
  std::unordered_map<uint64_t, std::vector<EdgeId>> edge_hash_;
  size_t num_labels_ = 0;
  size_t num_edge_labels_ = 0;
  uint32_t max_arity_ = 0;
  uint64_t total_incidences_ = 0;
};

/// 64-bit content hash of a canonical (sorted, unique) vertex set.
uint64_t HashVertexSet(const VertexSet& vertices);

}  // namespace hgmatch

#endif  // HGMATCH_CORE_HYPERGRAPH_H_
