#ifndef HGMATCH_CORE_HYPERGRAPH_STATS_H_
#define HGMATCH_CORE_HYPERGRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"

namespace hgmatch {

/// Descriptive statistics of a hypergraph, in the shape of the paper's
/// Table II plus the distributional detail (degree/arity/label histograms)
/// that the workload generator is calibrated against. Used by the CLI's
/// `stats` command and by tests that validate generated datasets.
struct HypergraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t num_labels = 0;
  uint64_t num_incidences = 0;
  uint32_t max_arity = 0;
  double avg_arity = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0;
  bool connected = false;

  /// histogram[i] = number of hyperedges with arity i (index 0 unused).
  std::vector<uint64_t> arity_histogram;
  /// histogram[i] = number of vertices with degree i.
  std::vector<uint64_t> degree_histogram;
  /// count of vertices per label, indexed by label.
  std::vector<uint64_t> label_counts;

  /// Gini coefficient of the degree sequence in [0, 1] — 0 means all
  /// vertices participate equally, values near 1 mean a few hubs dominate
  /// (the workload-skew signal motivating work stealing, Section VI.C).
  double degree_gini = 0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Computes all statistics in one pass over the hypergraph.
HypergraphStats ComputeStats(const Hypergraph& h);

/// Signature-table statistics of an indexed hypergraph: number of tables,
/// largest table, and the skew of table sizes (how concentrated hyperedges
/// are in few signatures — the property that makes SCAN selective).
struct PartitionStats {
  uint64_t num_partitions = 0;
  uint64_t largest_partition = 0;
  double avg_partition_size = 0;
  /// Fraction of all hyperedges in the 10 largest tables.
  double top10_fraction = 0;

  std::string ToString() const;
};

PartitionStats ComputePartitionStats(const IndexedHypergraph& index);

}  // namespace hgmatch

#endif  // HGMATCH_CORE_HYPERGRAPH_STATS_H_
