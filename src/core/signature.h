#ifndef HGMATCH_CORE_SIGNATURE_H_
#define HGMATCH_CORE_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/hypergraph.h"
#include "core/types.h"

namespace hgmatch {

/// Hyperedge signature S(e) (Definition IV.1): the multiset of vertex labels
/// contained in a hyperedge, canonicalised as a sorted vector (a sorted
/// vector is the canonical form of a multiset over an ordered domain, so two
/// hyperedges have equal signatures iff their label multisets are equal).
using Signature = std::vector<Label>;

/// Signature of hyperedge e of h.
Signature SignatureOf(const Hypergraph& h, EdgeId e);

/// Partition key of hyperedge e: the signature S(e), extended with the
/// hyperedge label when it is non-zero (encoded in the high bit so it can
/// never collide with a vertex label). Two hyperedges fall into the same
/// hyperedge table iff their keys are equal, which realises the paper's
/// footnote-2 extension to edge-labelled hypergraphs: matched hyperedges
/// automatically agree on both the vertex-label multiset and the hyperedge
/// label. For label-0 (unlabelled) hyperedges the key equals the signature.
Signature SignatureKeyOf(const Hypergraph& h, EdgeId e);

/// Marker folded into partition keys for non-zero hyperedge labels.
inline constexpr Label kEdgeLabelKeyBit = 0x80000000u;

/// Signature of an explicit vertex set of h.
Signature SignatureOfVertices(const Hypergraph& h, const VertexSet& vertices);

/// 64-bit hash of a canonical signature, for use as hash-map key.
uint64_t HashSignature(const Signature& s);

/// Hash functor for unordered containers keyed by Signature.
struct SignatureHash {
  size_t operator()(const Signature& s) const {
    return static_cast<size_t>(HashSignature(s));
  }
};

/// Debug rendering, e.g. "{A,A,C}" with labels printed as letters when below
/// 26 and as numbers otherwise.
std::string SignatureToString(const Signature& s);

}  // namespace hgmatch

#endif  // HGMATCH_CORE_SIGNATURE_H_
