#ifndef HGMATCH_CORE_MATCHING_ORDER_H_
#define HGMATCH_CORE_MATCHING_ORDER_H_

#include <cstdint>
#include <vector>

#include "core/indexed_hypergraph.h"
#include "core/signature.h"
#include "core/types.h"
#include "util/status.h"

namespace hgmatch {

/// One step of a compiled query plan: the i-th query hyperedge of the
/// matching order together with everything about it that depends only on the
/// query and the order (not on data), precomputed once per query so that the
/// per-embedding expansion work of Algorithms 4 and 5 is pure set algebra.
struct PlanStep {
  /// Query hyperedge matched at this step (id in the query hypergraph).
  EdgeId query_edge = kInvalidEdge;

  /// S(e_q): partition key into the data hypergraph.
  Signature signature;

  /// Previous steps j < i whose query hyperedge is adjacent to this one
  /// (Observation V.2), and for each such j the shared query vertices
  /// u in order[j] ∩ order[i] (Algorithm 4 lines 3-4).
  struct AdjacentPrev {
    uint32_t step = 0;
    std::vector<VertexId> shared;  // sorted query vertex ids
  };
  std::vector<AdjacentPrev> adjacent_prev;

  /// Previous steps j < i not adjacent to this edge (Observation V.3);
  /// their matched vertices form V_nonincdt in Algorithm 4 line 1.
  std::vector<uint32_t> nonadjacent_prev;

  /// For every shared query vertex u (flattened across adjacent_prev, same
  /// iteration order): label l_q(u) and degree d_q'(u) in the partial query
  /// BEFORE this step (Algorithm 4 line 5 / Observation V.4).
  struct SharedVertexInfo {
    Label label = kInvalidLabel;
    uint32_t degree_before = 0;
  };
  // Parallel to adjacent_prev.
  std::vector<std::vector<SharedVertexInfo>> shared_info;

  /// |V(q')| of the partial query AFTER this step (Observation V.5).
  uint32_t num_query_vertices_after = 0;

  /// Vertex profiles of the vertices of this step's query hyperedge,
  /// relative to the partial query AFTER this step (Definition V.3 /
  /// Theorem V.2): (label, set of step indices j <= i whose query hyperedge
  /// contains the vertex). The step set is encoded as a 64-bit mask — query
  /// hypergraphs are limited to 64 hyperedges, far above any practical
  /// pattern size — so profiles are POD and multiset comparison is a sort +
  /// memcmp. Stored sorted so two profile multisets compare with ==.
  struct Profile {
    Label label = kInvalidLabel;
    uint64_t steps_mask = 0;

    bool operator==(const Profile&) const = default;
    bool operator<(const Profile& other) const {
      if (label != other.label) return label < other.label;
      return steps_mask < other.steps_mask;
    }
  };
  std::vector<Profile> query_profiles;  // sorted ascending
};

/// A compiled query: matching order ϕ (Definition V.1) plus per-step
/// precomputation. Built once per (query, data) pair by the plan generator
/// (Fig 3); the dataflow graph SCAN -> EXPAND* -> SINK follows the steps.
struct QueryPlan {
  const Hypergraph* query = nullptr;  // not owned

  /// Process-unique plan identity (1-based; 0 = unassigned), stamped at
  /// compilation. Engines key cached per-plan state (e.g. the scheduler's
  /// per-worker expanders) by uid rather than by plan address, so a freed
  /// plan whose heap address gets reused can never alias another plan's
  /// cached state.
  uint64_t uid = 0;

  std::vector<PlanStep> steps;

  uint32_t NumSteps() const { return static_cast<uint32_t>(steps.size()); }

  /// The matching order as a list of query edge ids.
  std::vector<EdgeId> Order() const;
};

/// Computes the matching order of Algorithm 3: start from the query
/// hyperedge with minimum cardinality Card(e, H), then repeatedly append the
/// connected hyperedge minimising Card(e, H) / |V_ϕ ∩ e|. Ties break toward
/// the smaller edge id so plans are deterministic. If the query hypergraph
/// is disconnected the order falls back to the minimum-cardinality edge of
/// the next component (documented deviation: the paper assumes connected
/// queries; candidate generation then degenerates to a partition scan for
/// the first edge of each further component).
std::vector<EdgeId> ComputeMatchingOrder(const Hypergraph& query,
                                         const IndexedHypergraph& data);

/// Builds a full query plan for `query` against `data` using
/// ComputeMatchingOrder. Fails on an empty query.
Result<QueryPlan> BuildQueryPlan(const Hypergraph& query,
                                 const IndexedHypergraph& data);

/// Builds a plan with a caller-supplied matching order (any permutation of
/// the query edge ids). Used by tests and by order-ablation benchmarks.
Result<QueryPlan> BuildQueryPlanWithOrder(const Hypergraph& query,
                                          std::vector<EdgeId> order);

/// Matching-order ablation variants (bench_ablation_order): Algorithm 3 is
/// compared against orders that drop one of its two ingredients.
enum class OrderVariant {
  kCardinality,     // Algorithm 3: min cardinality / max overlap
  kConnectedOnly,   // any connected order, ignoring cardinality (edge-id
                    // driven) — isolates the benefit of cardinality info
  kMaxCardinality,  // adversarial: *max* cardinality first (still connected)
  kAsGiven,         // query edge ids in declaration order (may disconnect)
};

/// Computes the requested order variant.
std::vector<EdgeId> ComputeMatchingOrderVariant(const Hypergraph& query,
                                                const IndexedHypergraph& data,
                                                OrderVariant variant);

}  // namespace hgmatch

#endif  // HGMATCH_CORE_MATCHING_ORDER_H_
