#include "core/signature.h"

#include <algorithm>

#include "util/rng.h"

namespace hgmatch {

Signature SignatureOf(const Hypergraph& h, EdgeId e) {
  return SignatureOfVertices(h, h.edge(e));
}

Signature SignatureKeyOf(const Hypergraph& h, EdgeId e) {
  Signature s = SignatureOfVertices(h, h.edge(e));
  if (h.edge_label(e) != 0) {
    s.push_back(kEdgeLabelKeyBit | h.edge_label(e));
  }
  return s;
}

Signature SignatureOfVertices(const Hypergraph& h, const VertexSet& vertices) {
  Signature s;
  s.reserve(vertices.size());
  for (VertexId v : vertices) s.push_back(h.label(v));
  std::sort(s.begin(), s.end());
  return s;
}

uint64_t HashSignature(const Signature& s) {
  uint64_t h = 0x51ed270b0a3c1b25ULL;
  for (Label l : s) {
    h = Mix64(h ^ (static_cast<uint64_t>(l) + 0x9e3779b97f4a7c15ULL));
  }
  return h;
}

std::string SignatureToString(const Signature& s) {
  std::string out = "{";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += ",";
    if (s[i] < 26) {
      out += static_cast<char>('A' + s[i]);
    } else {
      out += std::to_string(s[i]);
    }
  }
  out += "}";
  return out;
}

}  // namespace hgmatch
