#ifndef HGMATCH_CORE_CANDIDATES_H_
#define HGMATCH_CORE_CANDIDATES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/indexed_hypergraph.h"
#include "core/matching_order.h"
#include "core/result.h"
#include "core/types.h"

namespace hgmatch {

/// Reusable per-thread expansion state: candidate generation (Algorithm 4)
/// plus embedding validation (Algorithm 5) for one compiled query against
/// one indexed data hypergraph. Buffers grow to the working-set size of the
/// query and are then reused, so the steady-state hot path performs no
/// allocation. The parallel engine creates one Expander per worker thread;
/// an Expander itself is not thread-safe.
class Expander {
 public:
  /// `data` and `plan` must outlive the Expander.
  Expander(const IndexedHypergraph& data, const QueryPlan& plan);

  /// The EXPAND operator body: given the partial embedding
  /// m = embedding[0..step-1], appends to *out_valid every data hyperedge c
  /// such that m + c is a valid partial embedding of the first step+1 query
  /// hyperedges. Runs Algorithm 4 then Algorithm 5 on each candidate, and
  /// accumulates the candidates/filtered counters of Fig 9 into *stats.
  /// For step 0 this is the SCAN operator (full signature-table scan).
  void Expand(const EdgeId* embedding, uint32_t step,
              std::vector<EdgeId>* out_valid, MatchStats* stats);

  /// Standalone GenerateHyperedgeCandidates (Algorithm 4); sorted output.
  /// Prefer Expand() in hot loops.
  void GenerateCandidates(const EdgeId* embedding, uint32_t step,
                          std::vector<EdgeId>* out);

  /// Standalone IsValidEmbedding (Algorithm 5) for candidate `c` appended
  /// at `step`. `vertex_count_ok` reports whether the Observation V.5 check
  /// passed (the "Filtered" counter of Fig 9). Prefer Expand() in hot loops.
  bool IsValidEmbedding(const EdgeId* embedding, uint32_t step, EdgeId c,
                        bool* vertex_count_ok);

  /// Exact re-verification of a (partial or complete) embedding through the
  /// global vertex-class argument (see validation.h). Used by strict mode
  /// and tests.
  bool VerifyExact(const EdgeId* embedding, uint32_t size) const;

  const QueryPlan& plan() const { return *plan_; }
  const IndexedHypergraph& data() const { return *data_; }

 private:
  // Rebuilds vertex -> multiplicity for embedding[0..step-1] into counts_
  // (sorted by vertex id). Must be called before the *Impl helpers.
  void BuildVertexCounts(const EdgeId* embedding, uint32_t step);

  // Binary search in counts_; zero when absent.
  uint32_t CountOf(VertexId v) const;

  // Algorithm 4 / Algorithm 5 bodies; require counts_ to be current.
  void GenerateCandidatesImpl(const EdgeId* embedding, uint32_t step,
                              std::vector<EdgeId>* out);
  bool IsValidImpl(const EdgeId* embedding, uint32_t step, EdgeId c,
                   bool* vertex_count_ok);

  const IndexedHypergraph* data_;
  const QueryPlan* plan_;

  // Scratch, reused across calls.
  std::vector<std::pair<VertexId, uint32_t>> counts_;   // d_Hm(v)
  std::vector<VertexId> non_incident_;                  // V_nonincdt, sorted
  std::vector<VertexId> incident_scratch_;              // V_incdt per u
  std::vector<EdgeId> union_scratch_;                   // per-u posting union
  std::vector<EdgeId> intersect_scratch_;
  std::vector<EdgeId> candidate_scratch_;               // Expand() candidates
  std::vector<const std::vector<EdgeId>*> list_ptrs_;   // UnionMany inputs
  std::vector<PlanStep::Profile> data_profiles_;        // Algorithm 5 side
};

}  // namespace hgmatch

#endif  // HGMATCH_CORE_CANDIDATES_H_
