#ifndef HGMATCH_CORE_RESULT_H_
#define HGMATCH_CORE_RESULT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.h"

namespace hgmatch {

/// An embedding in match-by-hyperedge form: the i-th entry is the data
/// hyperedge matched to the i-th query hyperedge of the matching order
/// (m = (e_H1, ..., e_Hn), Section III.A).
using Embedding = std::vector<EdgeId>;

/// Consumer of complete embeddings (the SINK dataflow operator's logic,
/// Section VI.A). Implementations must be thread-safe when used with the
/// parallel executor, which may call Emit concurrently.
class EmbeddingSink {
 public:
  virtual ~EmbeddingSink() = default;

  /// Called once per embedding; `edges` has exactly |E(q)| entries, ordered
  /// by the matching order. The pointed-to storage is only valid during the
  /// call.
  virtual void Emit(const EdgeId* edges, uint32_t size) = 0;
};

/// Counts embeddings without storing them (the evaluation mode used by all
/// experiments in the paper, Section VII.A "Metrics").
class CountSink : public EmbeddingSink {
 public:
  void Emit(const EdgeId*, uint32_t) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Stores up to `cap` embeddings (and counts all of them).
class CollectSink : public EmbeddingSink {
 public:
  explicit CollectSink(size_t cap = SIZE_MAX) : cap_(cap) {}

  void Emit(const EdgeId* edges, uint32_t size) override {
    ++count_;
    if (embeddings_.size() < cap_) {
      embeddings_.emplace_back(edges, edges + size);
    }
  }

  uint64_t count() const { return count_; }
  const std::vector<Embedding>& embeddings() const { return embeddings_; }

 private:
  size_t cap_;
  uint64_t count_ = 0;
  std::vector<Embedding> embeddings_;
};

/// Adapts a std::function. Handy in examples and tests.
class CallbackSink : public EmbeddingSink {
 public:
  explicit CallbackSink(std::function<void(const EdgeId*, uint32_t)> fn)
      : fn_(std::move(fn)) {}

  void Emit(const EdgeId* edges, uint32_t size) override { fn_(edges, size); }

 private:
  std::function<void(const EdgeId*, uint32_t)> fn_;
};

/// Execution statistics of one matching run. The counter triple
/// (candidates, filtered, embeddings) reproduces the quantities of the
/// paper's Exp-3 (Fig 9): `candidates` counts hyperedges produced by
/// Algorithm 4, `filtered` those surviving the vertex-count check
/// (Observation V.5), and `embeddings` the final validated results.
struct MatchStats {
  uint64_t embeddings = 0;
  uint64_t candidates = 0;
  uint64_t filtered = 0;
  uint64_t expansions = 0;  // number of EXPAND task executions
  bool timed_out = false;
  bool limit_hit = false;
  double seconds = 0;

  MatchStats& operator+=(const MatchStats& other) {
    embeddings += other.embeddings;
    candidates += other.candidates;
    filtered += other.filtered;
    expansions += other.expansions;
    timed_out = timed_out || other.timed_out;
    limit_hit = limit_hit || other.limit_hit;
    return *this;
  }
};

/// Options shared by all matchers in this library.
struct MatchOptions {
  /// Per-query wall-clock timeout in seconds; <= 0 disables (paper Exp-2
  /// uses 1 hour; our benches default to a few seconds at laptop scale).
  double timeout_seconds = 0;

  /// Stop after this many embeddings; 0 = unlimited.
  uint64_t limit = 0;

  /// When true, completed embeddings are re-verified with an exact
  /// bijection search in addition to Algorithm 5 (used by tests; the paper's
  /// validation is Algorithm 5 alone).
  bool strict_validation = false;
};

}  // namespace hgmatch

#endif  // HGMATCH_CORE_RESULT_H_
