#include "util/set_ops.h"

#include <algorithm>
#include <queue>

namespace hgmatch {
namespace {

// Sizes more asymmetric than this ratio take the galloping (binary-search)
// path; the constant follows common practice in search-engine posting-list
// kernels.
constexpr size_t kGallopRatio = 32;

// Galloping intersection: for each element of the small list, locate it in
// the large list via exponential + binary search, advancing a frontier.
void IntersectGallop(const std::vector<uint32_t>& small,
                     const std::vector<uint32_t>& large,
                     std::vector<uint32_t>* out) {
  size_t lo = 0;
  for (uint32_t x : small) {
    // Exponential probe from the current frontier.
    size_t step = 1;
    size_t hi = lo;
    while (hi < large.size() && large[hi] < x) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    if (hi > large.size()) hi = large.size();
    const auto it = std::lower_bound(large.begin() + lo, large.begin() + hi, x);
    lo = static_cast<size_t>(it - large.begin());
    if (lo < large.size() && large[lo] == x) {
      out->push_back(x);
      ++lo;
    }
    if (lo >= large.size()) break;
  }
}

void IntersectMerge(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b,
                    std::vector<uint32_t>* out) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

void Intersect(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
               std::vector<uint32_t>* out) {
  out->clear();
  if (a.empty() || b.empty()) return;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  out->reserve(small.size());
  if (large.size() / (small.size() + 1) >= kGallopRatio) {
    IntersectGallop(small, large, out);
  } else {
    IntersectMerge(a, b, out);
  }
}

size_t IntersectSize(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

void IntersectInPlace(std::vector<uint32_t>* a,
                      const std::vector<uint32_t>& b) {
  std::vector<uint32_t> tmp;
  Intersect(*a, b, &tmp);
  a->swap(tmp);
}

void Union(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
           std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(*out));
}

void UnionInPlace(std::vector<uint32_t>* a, const std::vector<uint32_t>& b) {
  if (b.empty()) return;
  std::vector<uint32_t> tmp;
  Union(*a, b, &tmp);
  a->swap(tmp);
}

void UnionMany(const std::vector<const std::vector<uint32_t>*>& inputs,
               std::vector<uint32_t>* out) {
  out->clear();
  if (inputs.empty()) return;
  if (inputs.size() == 1) {
    *out = *inputs[0];
    return;
  }
  if (inputs.size() == 2) {
    Union(*inputs[0], *inputs[1], out);
    return;
  }
  // K-way merge with a min-heap over (value, input index, position).
  struct Cursor {
    uint32_t value;
    uint32_t input;
    uint32_t pos;
    bool operator>(const Cursor& other) const { return value > other.value; }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<Cursor>> heap;
  size_t total = 0;
  for (uint32_t k = 0; k < inputs.size(); ++k) {
    total += inputs[k]->size();
    if (!inputs[k]->empty()) heap.push({(*inputs[k])[0], k, 0});
  }
  out->reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    if (out->empty() || out->back() != c.value) out->push_back(c.value);
    const auto& in = *inputs[c.input];
    if (c.pos + 1 < in.size()) heap.push({in[c.pos + 1], c.input, c.pos + 1});
  }
}

void Difference(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
                std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(*out));
}

bool Contains(const std::vector<uint32_t>& a, uint32_t x) {
  return std::binary_search(a.begin(), a.end(), x);
}

bool Intersects(const std::vector<uint32_t>& a,
                const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

bool IsSubset(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  if (a.size() > b.size()) return false;
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

void InsertSorted(std::vector<uint32_t>* a, uint32_t x) {
  auto it = std::lower_bound(a->begin(), a->end(), x);
  if (it == a->end() || *it != x) a->insert(it, x);
}

void SortUnique(std::vector<uint32_t>* a) {
  std::sort(a->begin(), a->end());
  a->erase(std::unique(a->begin(), a->end()), a->end());
}

}  // namespace hgmatch
