#ifndef HGMATCH_UTIL_STATUS_H_
#define HGMATCH_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace hgmatch {

/// Error codes used across the library. Modelled after the common
/// database-library convention (cf. arrow::Status / rocksdb::Status):
/// functions that can fail return a Status (or Result<T>) instead of
/// throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kTimeout,
  kOutOfRange,
  kInternal,
};

/// Lightweight status object: either OK (no allocation) or an error code
/// with a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. The value may only be
/// accessed when ok() is true.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse
  /// (`return value;` / `return Status::IOError(...)`), matching the
  /// convention of arrow::Result.
  Result(T value) : value_(std::move(value)) {}           // NOLINT
  Result(Status status) : status_(std::move(status)) {}   // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace hgmatch

#endif  // HGMATCH_UTIL_STATUS_H_
