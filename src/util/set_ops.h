#ifndef HGMATCH_UTIL_SET_OPS_H_
#define HGMATCH_UTIL_SET_OPS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace hgmatch {

/// Sorted-set algebra on duplicate-free ascending uint32 vectors.
///
/// These kernels are the workhorse of HGMatch's candidate generation
/// (Algorithm 4): posting lists of the inverted hyperedge index are unioned
/// per incident vertex and the per-vertex unions are intersected. The paper
/// notes these operations "can be implemented very efficiently on modern
/// hardware"; we provide a scalar merge path plus a galloping path that is
/// automatically selected when the input sizes are very asymmetric.

/// out = a ∩ b. `out` is cleared first. Aliasing with inputs is not allowed.
void Intersect(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
               std::vector<uint32_t>* out);

/// Returns |a ∩ b| without materialising the intersection.
size_t IntersectSize(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b);

/// In-place: a = a ∩ b.
void IntersectInPlace(std::vector<uint32_t>* a, const std::vector<uint32_t>& b);

/// out = a ∪ b. `out` is cleared first. Aliasing with inputs is not allowed.
void Union(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
           std::vector<uint32_t>* out);

/// In-place: a = a ∪ b (uses a scratch buffer internally).
void UnionInPlace(std::vector<uint32_t>* a, const std::vector<uint32_t>& b);

/// out = union of all input lists (k-way merge). `inputs` may be empty, in
/// which case `out` is cleared. Pointers must be non-null.
void UnionMany(const std::vector<const std::vector<uint32_t>*>& inputs,
               std::vector<uint32_t>* out);

/// out = a \ b. `out` is cleared first.
void Difference(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
                std::vector<uint32_t>* out);

/// True iff x ∈ a (binary search).
bool Contains(const std::vector<uint32_t>& a, uint32_t x);

/// True iff a ∩ b is non-empty (early-exit merge/gallop).
bool Intersects(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b);

/// True iff a ⊆ b.
bool IsSubset(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b);

/// Inserts x into sorted vector a, keeping it sorted; no-op if present.
void InsertSorted(std::vector<uint32_t>* a, uint32_t x);

/// Sorts and removes duplicates in place.
void SortUnique(std::vector<uint32_t>* a);

}  // namespace hgmatch

#endif  // HGMATCH_UTIL_SET_OPS_H_
