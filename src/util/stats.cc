#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hgmatch {

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.q1 = QuantileSorted(samples, 0.25);
  s.median = QuantileSorted(samples, 0.5);
  s.q3 = QuantileSorted(samples, 0.75);
  double sum = 0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

std::string Summary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g n=%zu",
                min, q1, median, q3, max, mean, count);
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
  } else if (bytes < 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGB", bytes / (1024.0 * 1024 * 1024));
  }
  return buf;
}

std::string HumanCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

double GeoMean(const std::vector<double>& samples) {
  if (samples.empty()) return 0;
  double log_sum = 0;
  for (double x : samples) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace hgmatch
