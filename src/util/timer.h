#ifndef HGMATCH_UTIL_TIMER_H_
#define HGMATCH_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hgmatch {

/// Monotonic wall-clock timer.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget. `Infinite()` never expires. Matchers poll this every
/// few thousand search steps to honour the per-query timeouts used in the
/// paper's Table IV experiment.
class Deadline {
 public:
  /// Deadline that expires `seconds` from now; non-positive means infinite.
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds > 0) {
      d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(seconds));
      d.infinite_ = false;
    }
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool Expired() const {
    return !infinite_ && Clock::now() >= expiry_;
  }

  bool IsInfinite() const { return infinite_; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point expiry_{};
  bool infinite_ = true;
};

}  // namespace hgmatch

#endif  // HGMATCH_UTIL_TIMER_H_
