#ifndef HGMATCH_UTIL_STATS_H_
#define HGMATCH_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hgmatch {

/// Five-number summary (min, q1, median, q3, max) plus mean, as used to
/// report box-plot style distributions (paper Fig 6).
struct Summary {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
  size_t count = 0;

  std::string ToString() const;
};

/// Computes the summary of a sample (copies and sorts internally).
Summary Summarize(std::vector<double> samples);

/// Linear-interpolated quantile of a *sorted* sample, q in [0,1].
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Formats a byte count as "123B" / "4.5KB" / "6.7MB" / "8.9GB".
std::string HumanBytes(uint64_t bytes);

/// Formats a count with thousands separators.
std::string HumanCount(uint64_t n);

/// Geometric mean of strictly positive samples; returns 0 for empty input.
double GeoMean(const std::vector<double>& samples);

}  // namespace hgmatch

#endif  // HGMATCH_UTIL_STATS_H_
