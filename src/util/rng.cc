#include "util/rng.h"

#include <cmath>

namespace hgmatch {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(&s);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire multiply-shift; bias is negligible for bound << 2^64.
  unsigned __int128 m =
      static_cast<unsigned __int128>(Next64()) * static_cast<unsigned __int128>(bound);
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextRange(uint64_t lo, uint64_t hi) {
  return lo + NextBounded(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return NextBounded(n);
  // Rejection sampling (Devroye) against the continuous Zipf envelope;
  // constant expected number of iterations for any s.
  const double t = std::pow(static_cast<double>(n), 1.0 - s);
  while (true) {
    const double u = NextDouble();
    const double v = NextDouble();
    // Inverse of the envelope CDF.
    double x;
    if (s == 1.0) {
      x = std::pow(static_cast<double>(n), u);
    } else {
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const uint64_t k = static_cast<uint64_t>(x);
    if (k >= n) continue;
    const double ratio = std::pow((k + 1.0) / (x > 1.0 ? x : 1.0), s);
    if (v * x / (k + 1.0) <= ratio) return k;
  }
}

uint64_t Rng::NextGeometric(double p) {
  if (p >= 1.0) return 1;
  const double u = NextDouble();
  return 1 + static_cast<uint64_t>(std::log1p(-u) / std::log1p(-p));
}

}  // namespace hgmatch
