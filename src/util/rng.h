#ifndef HGMATCH_UTIL_RNG_H_
#define HGMATCH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hgmatch {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// splitmix64. All randomised components of the library (dataset generators,
/// query samplers, work-stealing victim selection) use this generator so that
/// experiments are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator. Uses splitmix64 to spread the seed over the
  /// full 256-bit state so that nearby seeds yield independent streams.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform in [0, bound). Requires bound > 0. Uses Lemire's multiply-shift
  /// rejection-free approximation, adequate for non-cryptographic sampling.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Zipf-distributed value in [0, n) with skew parameter s >= 0.
  /// s == 0 degenerates to uniform. Uses inverse-CDF over a precomputed
  /// table when n is small, rejection sampling otherwise.
  uint64_t NextZipf(uint64_t n, double s);

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Geometric number of trials >= 1 with success probability p in (0,1].
  uint64_t NextGeometric(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// splitmix64 step; exposed for hashing use elsewhere.
uint64_t SplitMix64(uint64_t* state);

/// One-shot 64-bit mix suitable for combining hash values.
uint64_t Mix64(uint64_t x);

}  // namespace hgmatch

#endif  // HGMATCH_UTIL_RNG_H_
