#include "baseline/ordering.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/set_ops.h"

namespace hgmatch {

namespace {

// Adjacency lists of the query's vertex-adjacency graph (two vertices are
// adjacent iff they share a hyperedge).
std::vector<VertexSet> BuildAdjacency(const Hypergraph& query) {
  std::vector<VertexSet> adj(query.NumVertices());
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    adj[u] = query.AdjacentVertices(u);
  }
  return adj;
}

// Greedy connected order minimising a per-vertex score.
template <typename ScoreFn>
std::vector<VertexId> GreedyConnectedOrder(const Hypergraph& query,
                                           const std::vector<VertexSet>& adj,
                                           ScoreFn score) {
  const size_t n = query.NumVertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<uint8_t> used(n, 0);
  std::vector<uint8_t> frontier(n, 0);

  auto pick = [&](bool restrict_frontier) {
    VertexId best = kInvalidVertex;
    double best_score = std::numeric_limits<double>::infinity();
    for (VertexId u = 0; u < n; ++u) {
      if (used[u]) continue;
      if (restrict_frontier && !frontier[u]) continue;
      const double s = score(u);
      if (s < best_score) {
        best_score = s;
        best = u;
      }
    }
    return best;
  };

  while (order.size() < n) {
    VertexId next = pick(!order.empty());
    if (next == kInvalidVertex) next = pick(false);  // disconnected query
    used[next] = 1;
    order.push_back(next);
    for (VertexId w : adj[next]) {
      if (!used[w]) frontier[w] = 1;
    }
  }
  return order;
}

// BFS levels from `root` over the adjacency graph; unreachable vertices get
// level UINT32_MAX and are appended afterwards.
std::vector<uint32_t> BfsLevels(const std::vector<VertexSet>& adj,
                                VertexId root) {
  std::vector<uint32_t> level(adj.size(), UINT32_MAX);
  std::deque<VertexId> queue = {root};
  level[root] = 0;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId w : adj[u]) {
      if (level[w] == UINT32_MAX) {
        level[w] = level[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return level;
}

std::vector<VertexId> BfsOrder(const Hypergraph& query,
                               const std::vector<VertexSet>& adj,
                               const std::vector<size_t>& cand, VertexId root) {
  std::vector<uint32_t> level = BfsLevels(adj, root);
  std::vector<VertexId> order(query.NumVertices());
  for (VertexId u = 0; u < order.size(); ++u) order[u] = u;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (level[a] != level[b]) return level[a] < level[b];
    return cand[a] < cand[b];
  });
  return order;
}

}  // namespace

std::vector<uint8_t> ClassifyCoreForestLeaf(const Hypergraph& query) {
  const size_t n = query.NumVertices();
  std::vector<VertexSet> adj = BuildAdjacency(query);
  std::vector<uint32_t> deg(n);
  for (VertexId u = 0; u < n; ++u) deg[u] = static_cast<uint32_t>(adj[u].size());

  // Iteratively peel degree<=1 vertices; survivors form the 2-core.
  std::vector<uint8_t> removed(n, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < n; ++u) {
      if (removed[u] || deg[u] > 1) continue;
      removed[u] = 1;
      changed = true;
      for (VertexId w : adj[u]) {
        if (!removed[w] && deg[w] > 0) --deg[w];
      }
    }
  }

  std::vector<uint8_t> tier(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    if (!removed[u]) {
      tier[u] = 0;  // core
    } else if (adj[u].size() <= 1) {
      tier[u] = 2;  // leaf
    } else {
      tier[u] = 1;  // forest
    }
  }
  return tier;
}

std::vector<VertexId> ComputeVertexOrder(
    const Hypergraph& query, const std::vector<size_t>& candidate_sizes,
    VertexOrderStrategy strategy) {
  const std::vector<VertexSet> adj = BuildAdjacency(query);
  const auto& cand = candidate_sizes;

  switch (strategy) {
    case VertexOrderStrategy::kGqlStyle:
      return GreedyConnectedOrder(query, adj, [&](VertexId u) {
        return static_cast<double>(cand[u]);
      });

    case VertexOrderStrategy::kCflStyle: {
      const std::vector<uint8_t> tier = ClassifyCoreForestLeaf(query);
      // Tier dominates; candidate size breaks ties (leaves go last, which
      // postpones their Cartesian products as CFL intends).
      return GreedyConnectedOrder(query, adj, [&](VertexId u) {
        return static_cast<double>(tier[u]) * 1e12 +
               static_cast<double>(cand[u]);
      });
    }

    case VertexOrderStrategy::kDafStyle: {
      // Root = argmin |C(u)| / d(u) over the adjacency graph.
      VertexId root = 0;
      double best = std::numeric_limits<double>::infinity();
      for (VertexId u = 0; u < query.NumVertices(); ++u) {
        const double d = std::max<size_t>(1, adj[u].size());
        const double s = static_cast<double>(cand[u]) / d;
        if (s < best) {
          best = s;
          root = u;
        }
      }
      return BfsOrder(query, adj, cand, root);
    }

    case VertexOrderStrategy::kCeciStyle: {
      // Root = smallest candidate set among maximum-degree vertices.
      size_t max_deg = 0;
      for (const auto& a : adj) max_deg = std::max(max_deg, a.size());
      VertexId root = 0;
      size_t best = SIZE_MAX;
      for (VertexId u = 0; u < query.NumVertices(); ++u) {
        if (adj[u].size() == max_deg && cand[u] < best) {
          best = cand[u];
          root = u;
        }
      }
      return BfsOrder(query, adj, cand, root);
    }
  }
  return {};
}

}  // namespace hgmatch
