#include "baseline/backtracking.h"

#include <algorithm>
#include <vector>

#include "baseline/ihs_filter.h"
#include "util/set_ops.h"
#include "util/timer.h"

namespace hgmatch {

namespace {

// Failing-set value meaning "an embedding was found below; never prune".
constexpr uint64_t kFullSet = ~0ULL;

class VertexBacktracker {
 public:
  VertexBacktracker(const IndexedHypergraph& data, const Hypergraph& query,
                    const BaselineOptions& options)
      : data_(data.graph()),
        query_(query),
        options_(options),
        deadline_(Deadline::After(options.timeout_seconds)) {
    // Candidate sets: IHS filter, or plain label-degree filtering.
    if (options.use_ihs) {
      IhsFilter filter(data);
      candidates_ = filter.BuildCandidates(query);
    } else {
      candidates_.resize(query.NumVertices());
      for (VertexId v = 0; v < data_.NumVertices(); ++v) {
        for (VertexId u = 0; u < query.NumVertices(); ++u) {
          if (query.label(u) == data_.label(v) &&
              query.degree(u) <= data_.degree(v)) {
            candidates_[u].push_back(v);
          }
        }
      }
    }
    std::vector<size_t> sizes;
    sizes.reserve(candidates_.size());
    for (const auto& c : candidates_) sizes.push_back(c.size());
    order_ = ComputeVertexOrder(query, sizes, options.order);

    mapping_.assign(query.NumVertices(), kInvalidVertex);
    owner_.assign(data_.NumVertices(), kInvalidVertex);
    edge_matched_.assign(query.NumEdges(), 0);
    // Matched query neighbours of each vertex, filled as the order runs.
    position_.assign(query.NumVertices(), UINT32_MAX);
    for (uint32_t i = 0; i < order_.size(); ++i) position_[order_[i]] = i;
    for (VertexId u = 0; u < query.NumVertices(); ++u) {
      adjacency_.push_back(query.AdjacentVertices(u));
    }
  }

  BaselineResult Run() {
    Timer timer;
    if (!candidates_.empty()) {
      bool any_empty = false;
      for (const auto& c : candidates_) any_empty |= c.empty();
      if (!any_empty) Recurse(0);
    }
    result_.seconds = timer.ElapsedSeconds();
    return result_;
  }

 private:
  uint64_t Mask(VertexId u) const {
    return options_.failing_sets ? (1ULL << u) : 0;
  }

  bool ShouldStop() {
    if (result_.timed_out || result_.limit_hit) return true;
    if (++poll_counter_ >= 4096) {
      poll_counter_ = 0;
      if (deadline_.Expired()) {
        result_.timed_out = true;
        return true;
      }
    }
    return false;
  }

  // Theorem III.2: every query hyperedge completed by assigning u must map
  // onto a data hyperedge. `edge_matched_` counts matched member vertices
  // per query edge; on completion the image set is looked up by content
  // hash. On failure *fail_mask is set to the edge's vertex mask.
  bool EdgesSatisfied(VertexId u, uint64_t* fail_mask) {
    for (EdgeId e : query_.incident(u)) {
      if (edge_matched_[e] != query_.arity(e)) continue;
      image_scratch_.clear();
      for (VertexId w : query_.edge(e)) image_scratch_.push_back(mapping_[w]);
      if (data_.FindEdge(image_scratch_, query_.edge_label(e)) ==
          kInvalidEdge) {
        if (options_.failing_sets) {
          *fail_mask = 0;
          for (VertexId w : query_.edge(e)) *fail_mask |= 1ULL << w;
        }
        return false;
      }
    }
    return true;
  }

  // Local adjacency pruning: v must share a data hyperedge with the image
  // of every matched query neighbour of u.
  bool AdjacentToMatched(VertexId u, VertexId v, uint64_t* fail_mask) {
    for (VertexId w : adjacency_[u]) {
      const VertexId fv = mapping_[w];
      if (fv == kInvalidVertex) continue;
      if (!Intersects(data_.incident(v), data_.incident(fv))) {
        *fail_mask = Mask(u) | Mask(w);
        return false;
      }
    }
    return true;
  }

  // Returns the failing set of this subtree (kFullSet when an embedding was
  // found below, which disables ancestor pruning).
  uint64_t Recurse(uint32_t depth) {
    ++result_.recursions;
    if (depth == order_.size()) {
      ++result_.embeddings;
      if (options_.limit != 0 && result_.embeddings >= options_.limit) {
        result_.limit_hit = true;
      }
      return kFullSet;
    }
    const VertexId u = order_[depth];
    uint64_t failing = Mask(u);
    bool found = false;

    for (VertexId v : candidates_[u]) {
      if (ShouldStop()) break;
      ++result_.candidates_checked;
      if (owner_[v] != kInvalidVertex) {
        failing |= Mask(u) | Mask(owner_[v]);
        continue;
      }
      uint64_t fail_mask = 0;
      if (options_.adjacency_pruning && !AdjacentToMatched(u, v, &fail_mask)) {
        failing |= fail_mask;
        continue;
      }
      mapping_[u] = v;
      owner_[v] = u;
      for (EdgeId e : query_.incident(u)) ++edge_matched_[e];
      if (EdgesSatisfied(u, &fail_mask)) {
        const uint64_t child = Recurse(depth + 1);
        if (child == kFullSet) {
          found = true;
        } else if (options_.failing_sets && !found &&
                   !(child & (1ULL << u))) {
          // The subtree failed for reasons independent of u's assignment:
          // no other candidate for u can help (DAF backjumping).
          for (EdgeId e : query_.incident(u)) --edge_matched_[e];
          owner_[v] = kInvalidVertex;
          mapping_[u] = kInvalidVertex;
          return child;
        } else {
          failing |= child;
        }
      } else {
        failing |= fail_mask;
      }
      for (EdgeId e : query_.incident(u)) --edge_matched_[e];
      owner_[v] = kInvalidVertex;
      mapping_[u] = kInvalidVertex;
      if (result_.timed_out || result_.limit_hit) break;
    }
    return found ? kFullSet : failing;
  }

  const Hypergraph& data_;
  const Hypergraph& query_;
  const BaselineOptions& options_;
  const Deadline deadline_;

  std::vector<std::vector<VertexId>> candidates_;
  std::vector<VertexId> order_;
  std::vector<uint32_t> position_;
  std::vector<VertexSet> adjacency_;
  std::vector<VertexId> mapping_;   // f(u), per query vertex
  std::vector<VertexId> owner_;     // inverse of f, per data vertex
  std::vector<uint32_t> edge_matched_;
  VertexSet image_scratch_;
  uint64_t poll_counter_ = 0;
  BaselineResult result_;
};

}  // namespace

Result<BaselineResult> MatchByVertex(const IndexedHypergraph& data,
                                     const Hypergraph& query,
                                     const BaselineOptions& options) {
  if (query.NumVertices() == 0 || query.NumEdges() == 0) {
    return Status::InvalidArgument("query hypergraph must be non-empty");
  }
  if (options.failing_sets && query.NumVertices() > 64) {
    return Status::InvalidArgument(
        "failing-set pruning supports at most 64 query vertices");
  }
  VertexBacktracker search(data, query, options);
  return search.Run();
}

namespace {

Result<BaselineResult> RunNamed(const IndexedHypergraph& data,
                                const Hypergraph& query,
                                VertexOrderStrategy order, bool failing_sets,
                                double timeout_seconds) {
  BaselineOptions options;
  options.order = order;
  options.failing_sets = failing_sets && query.NumVertices() <= 64;
  options.timeout_seconds = timeout_seconds;
  return MatchByVertex(data, query, options);
}

}  // namespace

Result<BaselineResult> MatchCflH(const IndexedHypergraph& data,
                                 const Hypergraph& query,
                                 double timeout_seconds) {
  return RunNamed(data, query, VertexOrderStrategy::kCflStyle, false,
                  timeout_seconds);
}

Result<BaselineResult> MatchDafH(const IndexedHypergraph& data,
                                 const Hypergraph& query,
                                 double timeout_seconds) {
  return RunNamed(data, query, VertexOrderStrategy::kDafStyle, true,
                  timeout_seconds);
}

Result<BaselineResult> MatchCeciH(const IndexedHypergraph& data,
                                  const Hypergraph& query,
                                  double timeout_seconds) {
  return RunNamed(data, query, VertexOrderStrategy::kCeciStyle, false,
                  timeout_seconds);
}

}  // namespace hgmatch
