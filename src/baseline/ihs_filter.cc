#include "baseline/ihs_filter.h"

#include <algorithm>

#include "core/signature.h"
#include "util/set_ops.h"

namespace hgmatch {

namespace {

// Builds a sorted (key, count) histogram in place.
template <typename K>
void BuildHistogram(std::vector<std::pair<K, uint32_t>>* hist) {
  std::sort(hist->begin(), hist->end());
  size_t w = 0;
  for (size_t r = 0; r < hist->size();) {
    const K key = (*hist)[r].first;
    uint32_t c = 0;
    while (r < hist->size() && (*hist)[r].first == key) {
      c += (*hist)[r].second;
      ++r;
    }
    (*hist)[w++] = {key, c};
  }
  hist->resize(w);
}

// True iff every (key, count) of `a` is dominated by `b`'s count for the
// same key. Both histograms sorted by key.
template <typename K>
bool HistogramDominated(const std::vector<std::pair<K, uint32_t>>& a,
                        const std::vector<std::pair<K, uint32_t>>& b) {
  size_t j = 0;
  for (const auto& [key, count] : a) {
    while (j < b.size() && b[j].first < key) ++j;
    if (j >= b.size() || b[j].first != key || b[j].second < count) {
      return false;
    }
  }
  return true;
}

}  // namespace

IhsFilter::IhsFilter(const IndexedHypergraph& data)
    : data_(data), adj_size_(data.graph().NumVertices(), UINT32_MAX) {}

uint32_t IhsFilter::AdjacencySize(VertexId v) {
  if (adj_size_[v] == UINT32_MAX) {
    adj_size_[v] =
        static_cast<uint32_t>(data_.graph().AdjacentVertices(v).size());
  }
  return adj_size_[v];
}

bool IhsFilter::Passes(const Hypergraph& query, VertexId u, VertexId v) {
  const Hypergraph& data = data_.graph();
  // Condition 1: label and degree.
  if (query.label(u) != data.label(v)) return false;
  if (query.degree(u) > data.degree(v)) return false;

  // Condition 2: number of adjacent vertices.
  const uint32_t adj_u =
      static_cast<uint32_t>(query.AdjacentVertices(u).size());
  if (adj_u > AdjacencySize(v)) return false;

  // Condition 3: arity containment. Query-side histogram.
  query_arity_hist_.clear();
  for (EdgeId e : query.incident(u)) {
    query_arity_hist_.emplace_back(query.arity(e), 1u);
  }
  BuildHistogram(&query_arity_hist_);
  std::vector<std::pair<uint32_t, uint32_t>> data_arity_hist;
  for (EdgeId e : data.incident(v)) {
    data_arity_hist.emplace_back(data.arity(e), 1u);
  }
  BuildHistogram(&data_arity_hist);
  if (!HistogramDominated(query_arity_hist_, data_arity_hist)) return false;

  // Condition 4: incident hyperedge signatures. Signatures are identified
  // with data partition ids; a query signature absent from the data
  // immediately disqualifies every v.
  query_sig_hist_.clear();
  for (EdgeId e : query.incident(u)) {
    const Partition* p = data_.FindPartition(SignatureKeyOf(query, e));
    if (p == nullptr) return false;
    query_sig_hist_.emplace_back(p->id(), 1u);
  }
  BuildHistogram(&query_sig_hist_);
  std::vector<std::pair<PartitionId, uint32_t>> data_sig_hist;
  for (EdgeId e : data.incident(v)) {
    data_sig_hist.emplace_back(data_.PartitionOf(e), 1u);
  }
  BuildHistogram(&data_sig_hist);
  return HistogramDominated(query_sig_hist_, data_sig_hist);
}

std::vector<std::vector<VertexId>> IhsFilter::BuildCandidates(
    const Hypergraph& query) {
  const Hypergraph& data = data_.graph();
  std::vector<std::vector<VertexId>> candidates(query.NumVertices());
  // Group data vertices by label once to avoid |V(q)| full scans.
  std::vector<std::vector<VertexId>> by_label(data.NumLabels());
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    by_label[data.label(v)].push_back(v);
  }
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    const Label l = query.label(u);
    if (l >= by_label.size()) continue;
    for (VertexId v : by_label[l]) {
      if (Passes(query, u, v)) candidates[u].push_back(v);
    }
  }
  return candidates;
}

}  // namespace hgmatch
