#include "baseline/bipartite.h"

#include <algorithm>

namespace hgmatch {

pairwise::Graph ConvertToBipartite(const Hypergraph& h, size_t label_base) {
  std::vector<Label> labels;
  labels.reserve(h.NumVertices() + h.NumEdges());
  for (VertexId v = 0; v < h.NumVertices(); ++v) labels.push_back(h.label(v));
  // Injective encoding of (hyperedge label, arity) above the vertex-label
  // range: equal-label, equal-arity hyperedge vertices — and only those —
  // may match.
  const size_t arity_span = static_cast<size_t>(h.MaxArity()) + 1;
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    labels.push_back(static_cast<Label>(label_base +
                                        h.edge_label(e) * arity_span +
                                        h.arity(e)));
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(h.NumIncidences());
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    const VertexId edge_vertex = static_cast<VertexId>(h.NumVertices() + e);
    for (VertexId v : h.edge(e)) edges.emplace_back(v, edge_vertex);
  }
  return pairwise::Graph::Build(std::move(labels), std::move(edges));
}

Result<pairwise::PairwiseResult> MatchViaBipartite(
    const Hypergraph& data, const Hypergraph& query,
    const pairwise::PairwiseOptions& options) {
  const size_t label_base = std::max(data.NumLabels(), query.NumLabels());
  const pairwise::Graph data_bg = ConvertToBipartite(data, label_base);
  const pairwise::Graph query_bg = ConvertToBipartite(query, label_base);
  return pairwise::MatchPairwise(data_bg, query_bg, options);
}

}  // namespace hgmatch
