#ifndef HGMATCH_BASELINE_ORDERING_H_
#define HGMATCH_BASELINE_ORDERING_H_

#include <cstdint>
#include <vector>

#include "core/hypergraph.h"
#include "core/types.h"

namespace hgmatch {

/// Matching-order strategies of the match-by-vertex baselines. The paper
/// extends the published CFL / DAF / CECI implementations with the generic
/// hyperedge constraint (Theorem III.2) and the IHS filter; what
/// distinguishes the three algorithms inside that common framework is
/// chiefly how they order query vertices, which these strategies reproduce:
///
///  * kGqlStyle  — greedy minimum-candidate-set order (the classic GQL
///                 heuristic), connectivity-constrained.
///  * kCflStyle  — CFL's core-forest-leaf decomposition: 2-core vertices
///                 first, then forest (internal tree) vertices, then
///                 degree-1 leaves, each tier ordered by candidate count
///                 (postponing the "Cartesian products" of leaves).
///  * kDafStyle  — DAF's rooted-DAG BFS order: root = min |C(u)|/d(u),
///                 then BFS levels with candidate-size tie-break (a
///                 topological order of the query DAG).
///  * kCeciStyle — CECI's BFS-tree order from the root chosen as the vertex
///                 with the smallest candidate set among max-degree
///                 vertices.
///
/// Every strategy returns a connected order whenever the query is connected
/// (each vertex after the first shares a hyperedge with an earlier vertex).
enum class VertexOrderStrategy { kGqlStyle, kCflStyle, kDafStyle, kCeciStyle };

/// Computes a vertex matching order. `candidate_sizes[u]` is |C(u)| from
/// the IHS filter (used as the cost signal, as in the original algorithms).
std::vector<VertexId> ComputeVertexOrder(
    const Hypergraph& query, const std::vector<size_t>& candidate_sizes,
    VertexOrderStrategy strategy);

/// Classifies query vertices for kCflStyle: 0 = core (in the 2-core of the
/// adjacency structure), 1 = forest, 2 = leaf (degree-1 in the adjacency
/// graph). Exposed for tests.
std::vector<uint8_t> ClassifyCoreForestLeaf(const Hypergraph& query);

}  // namespace hgmatch

#endif  // HGMATCH_BASELINE_ORDERING_H_
