#ifndef HGMATCH_BASELINE_BACKTRACKING_H_
#define HGMATCH_BASELINE_BACKTRACKING_H_

#include <cstdint>

#include "baseline/ordering.h"
#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"
#include "util/status.h"

namespace hgmatch {

/// Options of the generic match-by-vertex framework (Algorithm 1 extended
/// to hypergraphs with the constraint of Theorem III.2, Section III.B).
struct BaselineOptions {
  /// Matching-order strategy distinguishing the CFL-H / DAF-H / CECI-H
  /// baselines.
  VertexOrderStrategy order = VertexOrderStrategy::kGqlStyle;

  /// Candidate-vertex filtering: IHS filter [30] (the paper adds it to all
  /// baselines); false falls back to label + degree only.
  bool use_ihs = true;

  /// Local pruning: a candidate must share a data hyperedge with the image
  /// of every already-matched query neighbour (what the CS/embedding-
  /// cluster auxiliary structures of DAF/CECI provide locally). Exact-safe.
  bool adjacency_pruning = true;

  /// DAF-style pruning by failing sets (backjumping). Requires
  /// |V(q)| <= 64.
  bool failing_sets = false;

  double timeout_seconds = 0;
  uint64_t limit = 0;  // stop after this many embeddings; 0 = unlimited
};

/// Result of a match-by-vertex run. NOTE the semantics: `embeddings` counts
/// injective *vertex mappings* f (Definition III.3), the result notion a
/// backtracking matcher enumerates naturally; see DESIGN.md §1 for how this
/// relates to HGMatch's hyperedge-tuple count.
struct BaselineResult {
  uint64_t embeddings = 0;
  uint64_t recursions = 0;
  uint64_t candidates_checked = 0;
  bool timed_out = false;
  bool limit_hit = false;
  double seconds = 0;
};

/// Runs the extended backtracking framework. Fails if the query is empty,
/// or if failing_sets is requested with more than 64 query vertices.
Result<BaselineResult> MatchByVertex(const IndexedHypergraph& data,
                                     const Hypergraph& query,
                                     const BaselineOptions& options = {});

/// Named baselines as configured in the paper's experiments (all use the
/// IHS filter; DAF-H additionally uses failing-set pruning).
Result<BaselineResult> MatchCflH(const IndexedHypergraph& data,
                                 const Hypergraph& query,
                                 double timeout_seconds = 0);
Result<BaselineResult> MatchDafH(const IndexedHypergraph& data,
                                 const Hypergraph& query,
                                 double timeout_seconds = 0);
Result<BaselineResult> MatchCeciH(const IndexedHypergraph& data,
                                  const Hypergraph& query,
                                  double timeout_seconds = 0);

}  // namespace hgmatch

#endif  // HGMATCH_BASELINE_BACKTRACKING_H_
