#ifndef HGMATCH_BASELINE_IHS_FILTER_H_
#define HGMATCH_BASELINE_IHS_FILTER_H_

#include <cstdint>
#include <vector>

#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"
#include "core/types.h"

namespace hgmatch {

/// The incident hyperedge structure (IHS) candidate-vertex filter of
/// Ha et al. [30], as added by the paper to every match-by-vertex baseline
/// (Section III.B). A data vertex v enters the candidate set of query
/// vertex u iff
///   1. l(u) = l(v) and d(u) <= d(v)                       (degree & label)
///   2. |adj(u)| <= |adj(v)|                               (adjacent nodes)
///   3. for every arity a, |he_a(u)| <= |he_a(v)|          (arity containment)
///   4. for every incident signature s, the number of u's incident query
///      hyperedges with signature s does not exceed the number of v's
///      incident data hyperedges with signature s          (hyperedge labels)
/// Condition 4 is the per-signature-multiplicity reading of the paper's
/// "∃e1,e2, ∀σ, |e1(σ)| = |e2(σ)|" condition; it is exact-safe (any valid
/// embedding maps u's incident hyperedges to *distinct*, signature-equal
/// data hyperedges incident to v) and subsumes 1 and 3, which are still
/// evaluated first as cheap early exits.
class IhsFilter {
 public:
  /// `data` must outlive the filter. Per-data-vertex statistics (adjacency
  /// size, arity histogram) are memoised lazily: the filter touches only
  /// data vertices whose label occurs in a query.
  explicit IhsFilter(const IndexedHypergraph& data);

  /// Candidate vertex set of each query vertex (indexed by query vertex
  /// id), sorted ascending. Any empty set proves the query has no
  /// embedding.
  std::vector<std::vector<VertexId>> BuildCandidates(const Hypergraph& query);

  /// Single-pair test (conditions 1-4); exposed for tests.
  bool Passes(const Hypergraph& query, VertexId u, VertexId v);

 private:
  uint32_t AdjacencySize(VertexId v);

  const IndexedHypergraph& data_;
  // Lazily-memoised |adj(v)|; UINT32_MAX = not yet computed.
  std::vector<uint32_t> adj_size_;
  // Scratch for per-call histograms.
  std::vector<std::pair<uint32_t, uint32_t>> query_arity_hist_;
  std::vector<std::pair<PartitionId, uint32_t>> query_sig_hist_;
};

}  // namespace hgmatch

#endif  // HGMATCH_BASELINE_IHS_FILTER_H_
