#ifndef HGMATCH_BASELINE_BIPARTITE_H_
#define HGMATCH_BASELINE_BIPARTITE_H_

#include "core/hypergraph.h"
#include "pairwise/graph.h"
#include "pairwise/pairwise_matcher.h"
#include "util/status.h"

namespace hgmatch {

/// The bipartite-conversion strawman (Section I, Fig 2): a hypergraph
/// H = (V, E) becomes a pairwise graph whose vertices are V ∪ E and whose
/// edges are the (vertex, hyperedge) incidences. Original vertices keep
/// their labels; each hyperedge vertex receives the reserved label
/// `num_original_labels + arity`. Labelling hyperedge vertices by arity
/// makes the reduction *exact* for non-induced subgraph isomorphism: a
/// query hyperedge-vertex of arity a maps only to data hyperedge-vertices
/// of the same arity, and its a matched neighbours then exhaust the data
/// hyperedge's members, so subset containment implies set equality.
///
/// `label_base` must be >= the number of labels of every hypergraph that
/// will be matched against the result (use the data hypergraph's
/// NumLabels() for both conversions so labels align).
pairwise::Graph ConvertToBipartite(const Hypergraph& h, size_t label_base);

/// The paper's RapidMatch comparison path: convert both hypergraphs to
/// bipartite pairwise graphs and run conventional subgraph matching.
/// `embeddings` counts pairwise vertex mappings, which correspond 1:1 to
/// the injective vertex mappings of Definition III.3 (the hyperedge-vertex
/// assignment is uniquely determined in a simple hypergraph).
Result<pairwise::PairwiseResult> MatchViaBipartite(
    const Hypergraph& data, const Hypergraph& query,
    const pairwise::PairwiseOptions& options = {});

}  // namespace hgmatch

#endif  // HGMATCH_BASELINE_BIPARTITE_H_
