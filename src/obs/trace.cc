#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace hgmatch {

double MonotonicSeconds() {
  // The epoch is captured once, at first use anywhere in the process, so
  // every subsystem shares one origin and stamps stay small (printable as
  // short offsets instead of raw steady_clock ticks).
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

double QuerySpan::TotalSeconds() const {
  double last = submit_seconds;
  last = std::max(last, admit_seconds);
  last = std::max(last, first_task_seconds);
  last = std::max(last, last_task_seconds);
  last = std::max(last, resolve_seconds);
  last = std::max(last, deliver_seconds);
  return last - submit_seconds;
}

namespace {

void MergeMin(double* into, double from) {
  if (from <= 0) return;
  if (*into <= 0 || from < *into) *into = from;
}

void MergeMax(double* into, double from) {
  if (from > *into) *into = from;
}

void AppendStage(std::string* out, const char* name, double stamp,
                 double submit) {
  char buf[128];
  if (stamp <= 0) {
    std::snprintf(buf, sizeof(buf), "  %-12s -\n", name);
  } else {
    std::snprintf(buf, sizeof(buf), "  %-12s +%.3f ms\n", name,
                  (stamp - submit) * 1e3);
  }
  out->append(buf);
}

}  // namespace

void QuerySpan::MergeFrom(const QuerySpan& other) {
  enabled = enabled || other.enabled;
  MergeMin(&submit_seconds, other.submit_seconds);
  MergeMin(&admit_seconds, other.admit_seconds);
  MergeMin(&first_task_seconds, other.first_task_seconds);
  MergeMax(&last_task_seconds, other.last_task_seconds);
  MergeMax(&resolve_seconds, other.resolve_seconds);
  MergeMax(&deliver_seconds, other.deliver_seconds);
}

std::string QuerySpan::Timeline() const {
  std::string out;
  if (!enabled) {
    out = "trace: (not recorded)\n";
    return out;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), "trace: total %.3f ms\n",
                TotalSeconds() * 1e3);
  out.append(buf);
  AppendStage(&out, "submit", submit_seconds, submit_seconds);
  AppendStage(&out, "admit", admit_seconds, submit_seconds);
  AppendStage(&out, "first-task", first_task_seconds, submit_seconds);
  AppendStage(&out, "last-task", last_task_seconds, submit_seconds);
  AppendStage(&out, "resolve", resolve_seconds, submit_seconds);
  AppendStage(&out, "deliver", deliver_seconds, submit_seconds);
  for (const TraceSlice& s : slices) {
    if (s.first_task_seconds > 0) {
      std::snprintf(buf, sizeof(buf),
                    "  slice %-6u admit +%.3f ms  first-task +%.3f ms  "
                    "finish +%.3f ms\n",
                    s.slice, (s.admit_seconds - submit_seconds) * 1e3,
                    (s.first_task_seconds - submit_seconds) * 1e3,
                    (s.finish_seconds - submit_seconds) * 1e3);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  slice %-6u admit +%.3f ms  first-task -  finish "
                    "+%.3f ms\n",
                    s.slice, (s.admit_seconds - submit_seconds) * 1e3,
                    (s.finish_seconds - submit_seconds) * 1e3);
    }
    out.append(buf);
  }
  return out;
}

}  // namespace hgmatch
