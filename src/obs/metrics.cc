#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace hgmatch {

namespace {

/// Smallest finite bucket bound: 1 microsecond. Everything the engine
/// times (queue waits, task latencies) bottoms out around here; byte and
/// count histograms simply use the low buckets less.
constexpr double kFirstBound = 1e-6;

/// Bounds grow by sqrt(2) per bucket: 2x per two buckets, 55 finite
/// bounds span 1 us .. ~190 s which covers every latency the server can
/// produce inside its own timeouts.
constexpr double kGrowth = 1.4142135623730951;

struct BoundTable {
  double bounds[Histogram::kNumBuckets];
  BoundTable() {
    double b = kFirstBound;
    for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
      bounds[i] = b;
      b *= kGrowth;
    }
    bounds[Histogram::kNumBuckets - 1] =
        std::numeric_limits<double>::infinity();
  }
};

const BoundTable& Bounds() {
  static const BoundTable table;
  return table;
}

void AtomicMax(std::atomic<double>* cell, double v) {
  double cur = cell->load(std::memory_order_relaxed);
  while (v > cur &&
         !cell->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* cell, double v) {
  double cur = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(cur, cur + v,
                                      std::memory_order_relaxed)) {
  }
}

/// Formats a double the way Prometheus text exposition expects: full
/// precision, "+Inf" for infinity.
std::string FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '"': out.append("\\\""); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

size_t MetricShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::BucketBound(size_t k) { return Bounds().bounds[k]; }

size_t Histogram::BucketIndex(double v) {
  const double* bounds = Bounds().bounds;
  // First bucket swallows everything <= 1 us (including garbage negative
  // inputs); the +Inf bucket catches the rest, so the search range is the
  // finite interior bounds only.
  const double* end = bounds + kNumBuckets - 1;
  const double* it = std::lower_bound(bounds, end, v);
  return static_cast<size_t>(it - bounds);
}

void Histogram::Observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  Shard& s = shards_[MetricShardIndex()];
  s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&s.sum, v);
  AtomicMax(&s.max, v);
}

uint64_t Histogram::Count() const { return CumulativeCount(kNumBuckets - 1); }

double Histogram::Sum() const {
  double total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Max() const {
  double m = 0;
  for (const Shard& s : shards_) {
    m = std::max(m, s.max.load(std::memory_order_relaxed));
  }
  return m;
}

uint64_t Histogram::CumulativeCount(size_t k) const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i <= k && i < kNumBuckets; ++i) {
      total += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Quantile(double q) const {
  uint64_t counts[kNumBuckets] = {};
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      uint64_t c = s.buckets[i].load(std::memory_order_relaxed);
      counts[i] += c;
      total += c;
    }
  }
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation, 1-based, at least 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      const double hi = Bounds().bounds[i];
      const double lo = i == 0 ? 0.0 : Bounds().bounds[i - 1];
      if (std::isinf(hi)) return lo;
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[i];
  }
  return Max();
}

struct MetricsRegistry::Entry {
  std::string name;
  std::string labels;
  char kind;  // 'c' counter, 'g' gauge, 'h' histogram
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instrumented subsystems may outlive static
  // destruction order, and cached handles must stay valid for the life
  // of the process.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      std::string_view labels,
                                                      char kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels && e->kind == kind) {
      return e.get();
    }
  }
  auto e = std::make_unique<Entry>();
  e->name.assign(name);
  e->labels.assign(labels);
  e->kind = kind;
  switch (kind) {
    case 'c':
      e->counter.reset(new Counter(&enabled_));
      break;
    case 'g':
      e->gauge.reset(new Gauge());
      break;
    default:
      e->histogram.reset(new Histogram(&enabled_));
      break;
  }
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  return FindOrCreate(name, labels, 'c')->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  return FindOrCreate(name, labels, 'g')->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view labels) {
  return FindOrCreate(name, labels, 'h')->histogram.get();
}

namespace {

void AppendLabelled(std::string* out, const std::string& name,
                    const std::string& labels, const std::string& extra,
                    const std::string& value) {
  out->append(name);
  if (!labels.empty() || !extra.empty()) {
    out->push_back('{');
    out->append(labels);
    if (!labels.empty() && !extra.empty()) out->push_back(',');
    out->append(extra);
    out->push_back('}');
  }
  out->push_back(' ');
  out->append(value);
  out->push_back('\n');
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  std::string last_family;
  for (const auto& e : entries_) {
    if (e->name != last_family) {
      last_family = e->name;
      out.append("# TYPE ");
      out.append(e->name);
      switch (e->kind) {
        case 'c':
          out.append(" counter\n");
          break;
        case 'g':
          out.append(" gauge\n");
          break;
        default:
          out.append(" histogram\n");
          break;
      }
    }
    switch (e->kind) {
      case 'c':
        AppendLabelled(&out, e->name, e->labels, "",
                       std::to_string(e->counter->Value()));
        break;
      case 'g':
        AppendLabelled(&out, e->name, e->labels, "",
                       FormatValue(e->gauge->Value()));
        break;
      default: {
        const Histogram* h = e->histogram.get();
        // Cumulative bucket rows; collapse runs of empty high buckets by
        // emitting every bucket anyway — scrapers expect the full grid
        // and 56 rows per histogram is cheap.
        for (size_t k = 0; k < Histogram::kNumBuckets; ++k) {
          AppendLabelled(&out, e->name + "_bucket", e->labels,
                         "le=\"" + FormatValue(Histogram::BucketBound(k)) +
                             "\"",
                         std::to_string(h->CumulativeCount(k)));
        }
        AppendLabelled(&out, e->name + "_sum", e->labels, "",
                       FormatValue(h->Sum()));
        AppendLabelled(&out, e->name + "_count", e->labels, "",
                       std::to_string(h->Count()));
        break;
      }
    }
  }
  return out;
}

}  // namespace hgmatch
