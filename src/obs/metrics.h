#ifndef HGMATCH_OBS_METRICS_H_
#define HGMATCH_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hgmatch {

/// Shards of every hot-path metric cell: threads scatter over the shards
/// by a cheap thread-local slot id, so concurrent Add/Observe calls from
/// the pool workers and the IO threads do not contend on one cache line.
/// Reads (scrapes) sum the shards — scrape cost is irrelevant next to
/// write-path contention.
inline constexpr size_t kMetricShards = 16;

/// This thread's shard index, assigned round-robin at first use.
size_t MetricShardIndex();

/// Escapes a string for use as a Prometheus label value (backslash,
/// double quote and newline), e.g.
/// `"graph=\"" + EscapeLabelValue(name) + "\""`.
std::string EscapeLabelValue(std::string_view value);

class MetricsRegistry;

/// A monotonically increasing counter. Add() is lock-free and wait-free:
/// one enabled-flag load plus one relaxed fetch_add on a per-thread shard.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[MetricShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  const std::atomic<bool>* enabled_;
  Shard shards_[kMetricShards];
};

/// A point-in-time value (last write wins). Set() is a relaxed store; no
/// sharding — gauges are written from slow paths (scrapes, snapshots).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0};
};

/// A log-bucketed latency/size histogram: bucket k spans
/// (bound[k-1], bound[k]] with bounds growing by a factor of sqrt(2) from
/// 1 microsecond, so p50/p90/p99 read off the buckets are exact to within
/// ~41% of the true value — the resolution a dashboard needs, at the cost
/// of one binary search plus one relaxed fetch_add per observation.
/// Sum and max are tracked exactly (per-shard CAS).
class Histogram {
 public:
  /// Number of finite bucket bounds; bucket kNumBuckets-1 is +Inf.
  static constexpr size_t kNumBuckets = 56;

  /// Upper bound of bucket k in seconds (+Inf for the last bucket).
  static double BucketBound(size_t k);

  /// Index of the bucket that counts `v` (negative values land in
  /// bucket 0).
  static size_t BucketIndex(double v);

  void Observe(double v);

  uint64_t Count() const;
  double Sum() const;
  double Max() const;

  /// Cumulative count of every observation <= BucketBound(k).
  uint64_t CumulativeCount(size_t k) const;

  /// Quantile q in [0, 1], linearly interpolated inside the bucket that
  /// crosses rank q*Count(). Returns 0 for an empty histogram; the last
  /// (+Inf) bucket reports its finite lower bound.
  double Quantile(double q) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kNumBuckets];
    std::atomic<double> sum{0};
    std::atomic<double> max{0};
  };
  const std::atomic<bool>* enabled_;
  Shard shards_[kMetricShards];
};

/// Process-wide registry of named metrics, rendered as Prometheus text
/// exposition. Registration (GetCounter/GetGauge/GetHistogram) takes a
/// mutex and returns a stable pointer — resolve the pointer once at setup
/// and keep it; the write path through the returned handle is lock-free.
/// Metric names follow Prometheus conventions (hgmatch_*_total,
/// hgmatch_*_seconds); `labels` is the literal label body without braces
/// (e.g. `reason="queue-full"`), empty for unlabelled metrics. The same
/// (name, labels) pair always returns the same handle.
///
/// The registry can be disabled (set_enabled(false)): every handle's write
/// path then degrades to one relaxed load + branch — the "compiled in but
/// idle" cost the overhead bench measures.
class MetricsRegistry {
 public:
  // Both out of line: inline defaults would instantiate the entries_
  // vector's cleanup with Entry still incomplete.
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default instance every subsystem instruments into.
  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view name, std::string_view labels = "");
  Gauge* GetGauge(std::string_view name, std::string_view labels = "");
  Histogram* GetHistogram(std::string_view name,
                          std::string_view labels = "");

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Renders every registered metric in Prometheus text exposition format
  /// (one # TYPE line per family, histograms as cumulative _bucket rows
  /// plus _sum/_count). Safe to call concurrently with writes: counts are
  /// relaxed snapshots.
  std::string RenderPrometheus() const;

 private:
  struct Entry;
  Entry* FindOrCreate(std::string_view name, std::string_view labels,
                      char kind);

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{true};
  // Registration order; pointers are stable because entries are
  // heap-allocated and never removed.
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace hgmatch

#endif  // HGMATCH_OBS_METRICS_H_
