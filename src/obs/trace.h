#ifndef HGMATCH_OBS_TRACE_H_
#define HGMATCH_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hgmatch {

/// Seconds since a process-wide monotonic epoch (the first call in the
/// process). Every span stamp across every layer — scheduler workers,
/// service resolution, reactor delivery — uses this one clock, so stamps
/// taken on different threads and different pools are directly
/// comparable. Never goes backwards, unaffected by wall-clock jumps.
double MonotonicSeconds();

/// One scatter-gather slice's contribution to a traced query: when the
/// slice was admitted by its scheduler, when its first task ran, and when
/// it finished. All stamps are MonotonicSeconds(); 0 means "never
/// happened" (e.g. a slice cancelled before running a task).
struct TraceSlice {
  uint32_t slice = 0;
  double admit_seconds = 0;
  double first_task_seconds = 0;
  double finish_seconds = 0;
};

/// The end-to-end timeline of one query, filled in as it crosses layers:
///
///   submit      SubmitOptions accepted by the scheduler (or service)
///   admit       admission window granted; tasks may now be seeded
///   first_task  first worker began executing a task for this query
///   last_task   final task retired (pending count hit zero)
///   resolve     MatchService resolved the ticket (outcome visible)
///   deliver     reactor wrote the OUTCOME frame to the client socket
///
/// Stamps are MonotonicSeconds(); 0 means the stage never happened (a
/// rejected query has only submit/resolve, a cancelled-queued query never
/// gets first_task). Spans are recorded only when `enabled` — set from
/// SubmitOptions::trace — so untraced queries pay nothing beyond the
/// always-on metric stamps.
struct QuerySpan {
  bool enabled = false;
  double submit_seconds = 0;
  double admit_seconds = 0;
  double first_task_seconds = 0;
  double last_task_seconds = 0;
  double resolve_seconds = 0;
  double deliver_seconds = 0;
  /// Per-shard rows when the service fanned the query over scan slices.
  std::vector<TraceSlice> slices;

  /// Latest stamp minus submit: the query's total visible latency so far.
  double TotalSeconds() const;

  /// Merges a shard slice's span into this (the fan parent's) span:
  /// earliest submit/admit/first_task, latest last_task. Zero stamps on
  /// either side never win a min.
  void MergeFrom(const QuerySpan& other);

  /// Multi-line human-readable timeline (relative offsets from submit),
  /// as printed by `hgmatch query --trace`.
  std::string Timeline() const;
};

}  // namespace hgmatch

#endif  // HGMATCH_OBS_TRACE_H_
