#ifndef HGMATCH_GEN_QUERY_GEN_H_
#define HGMATCH_GEN_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "core/hypergraph.h"
#include "util/rng.h"
#include "util/status.h"

namespace hgmatch {

/// One query class of the paper's Table III: number of query hyperedges and
/// the admissible range of distinct query vertices.
struct QuerySettings {
  const char* name;
  uint32_t num_edges;
  uint32_t min_vertices;
  uint32_t max_vertices;
};

/// The paper's four query classes (Table III).
inline constexpr QuerySettings kQ2{"q2", 2, 5, 15};
inline constexpr QuerySettings kQ3{"q3", 3, 10, 20};
inline constexpr QuerySettings kQ4{"q4", 4, 10, 30};
inline constexpr QuerySettings kQ6{"q6", 6, 15, 35};
inline constexpr QuerySettings kAllQuerySettings[] = {kQ2, kQ3, kQ4, kQ6};

/// Samples a connected query hypergraph as a random walk over the data
/// hypergraph's hyperedges (Section VII.A): start at a random hyperedge,
/// repeatedly add a random hyperedge adjacent to those already collected,
/// until `settings.num_edges` distinct hyperedges are gathered; accept if
/// the number of distinct vertices lies in [min_vertices, max_vertices].
/// By construction the query has at least one embedding in `data`.
///
/// When `max_attempts` walks all miss the vertex range (possible on
/// low-arity datasets whose k-edge subhypergraphs are simply smaller than
/// min_vertices), the last connected sample is accepted regardless of the
/// range, so every (dataset, class) pair yields queries — a documented
/// relaxation of Table III.
///
/// Returns NotFound only if `data` has no hyperedge or every walk failed to
/// reach `num_edges` distinct hyperedges (disconnected tiny data).
Result<Hypergraph> SampleQuery(const Hypergraph& data,
                               const QuerySettings& settings, Rng* rng,
                               uint32_t max_attempts = 200);

/// Samples `count` queries (seeded deterministically). Queries that cannot
/// be sampled are skipped, so the result may be shorter than `count`.
std::vector<Hypergraph> SampleQueries(const Hypergraph& data,
                                      const QuerySettings& settings,
                                      size_t count, uint64_t seed);

}  // namespace hgmatch

#endif  // HGMATCH_GEN_QUERY_GEN_H_
