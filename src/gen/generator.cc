#include "gen/generator.h"

#include <algorithm>

#include "util/set_ops.h"

namespace hgmatch {

uint32_t SampleArity(const GeneratorConfig& config, Rng* rng) {
  const uint32_t lo = std::max(1u, config.arity_min);
  const uint32_t hi = std::max(lo, config.arity_max);
  switch (config.arity_dist) {
    case ArityDistribution::kUniform:
      return static_cast<uint32_t>(rng->NextRange(lo, hi));
    case ArityDistribution::kGeometric: {
      const double p =
          config.arity_param > 0 && config.arity_param <= 1.0
              ? config.arity_param
              : 0.5;
      const uint64_t a = lo + rng->NextGeometric(p) - 1;
      return static_cast<uint32_t>(std::min<uint64_t>(a, hi));
    }
    case ArityDistribution::kZipf:
      return lo + static_cast<uint32_t>(
                      rng->NextZipf(hi - lo + 1, config.arity_param));
  }
  return lo;
}

Hypergraph GenerateHypergraph(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Hypergraph h;

  // Labels: Zipf-skewed over a shuffled alphabet so label 0 is not always
  // the most frequent one.
  std::vector<Label> alphabet(config.num_labels);
  for (Label l = 0; l < config.num_labels; ++l) alphabet[l] = l;
  rng.Shuffle(&alphabet);
  for (uint32_t i = 0; i < config.num_vertices; ++i) {
    const uint64_t pick = rng.NextZipf(config.num_labels, config.label_skew);
    h.AddVertex(alphabet[pick]);
  }

  // Vertex picking: Zipf over a shuffled permutation => heavy-tailed
  // degrees without correlating degree and vertex id.
  std::vector<VertexId> perm(config.num_vertices);
  for (VertexId v = 0; v < config.num_vertices; ++v) perm[v] = v;
  rng.Shuffle(&perm);

  // Label classes in permuted order, for thematic (label-local) picking.
  std::vector<std::vector<VertexId>> by_label(config.num_labels);
  if (config.label_locality > 0) {
    for (VertexId v : perm) by_label[h.label(v)].push_back(v);
  }

  const uint64_t max_attempts = 10ULL * config.num_edges + 100;
  uint64_t attempts = 0;
  uint32_t added = 0;
  VertexSet members;
  while (added < config.num_edges && attempts < max_attempts) {
    ++attempts;
    const uint32_t arity =
        std::min<uint32_t>(SampleArity(config, &rng), config.num_vertices);
    members.clear();
    // Rejection-sample distinct members; for arities close to |V| fall back
    // to a partial shuffle.
    if (arity * 4 >= config.num_vertices) {
      std::vector<VertexId> pool(perm);
      for (uint32_t i = 0; i < arity; ++i) {
        const uint64_t j = i + rng.NextBounded(pool.size() - i);
        std::swap(pool[i], pool[j]);
        members.push_back(pool[i]);
      }
    } else {
      // Theme of this hyperedge (only used when locality is enabled).
      const Label theme =
          config.label_locality > 0
              ? static_cast<Label>(
                    rng.NextZipf(config.num_labels, config.label_skew))
              : 0;
      const std::vector<VertexId>* theme_class =
          config.label_locality > 0 && !by_label[theme].empty()
              ? &by_label[theme]
              : nullptr;
      uint32_t tries = 0;
      while (members.size() < arity && tries < 64 * arity) {
        ++tries;
        VertexId v;
        if (theme_class != nullptr &&
            rng.NextBernoulli(config.label_locality)) {
          v = (*theme_class)[rng.NextZipf(theme_class->size(),
                                          config.vertex_skew)];
        } else {
          v = perm[rng.NextZipf(config.num_vertices, config.vertex_skew)];
        }
        if (!Contains(members, v)) InsertSorted(&members, v);
      }
      if (members.empty()) continue;
    }
    const size_t before = h.NumEdges();
    (void)h.AddEdge(members);  // duplicate edges return the existing id
    if (h.NumEdges() > before) ++added;
  }
  return h;
}

}  // namespace hgmatch
