#include "gen/dataset_profiles.h"

#include <algorithm>
#include <cmath>

namespace hgmatch {

Hypergraph DatasetProfile::Generate(double scale) const {
  GeneratorConfig scaled = config;
  scaled.num_vertices = std::max<uint32_t>(
      8, static_cast<uint32_t>(std::llround(config.num_vertices * scale)));
  scaled.num_edges = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::llround(config.num_edges * scale)));
  scaled.arity_max = std::min(scaled.arity_max, scaled.num_vertices);
  return GenerateHypergraph(scaled);
}

namespace {

// Geometric success probability targeting the given mean arity.
double GeoP(double mean, uint32_t arity_min) {
  const double extra = std::max(0.05, mean - arity_min);
  return 1.0 / (extra + 1.0);
}

DatasetProfile Make(std::string name, std::string description, uint64_t v,
                    uint64_t e, uint64_t labels, uint32_t amax, double aavg,
                    double vertex_skew, double label_skew,
                    double label_locality, double default_scale) {
  DatasetProfile p;
  p.name = std::move(name);
  p.description = std::move(description);
  p.paper_vertices = v;
  p.paper_edges = e;
  p.paper_labels = labels;
  p.paper_max_arity = amax;
  p.paper_avg_arity = aavg;
  p.default_scale = default_scale;

  GeneratorConfig& c = p.config;
  c.seed = 0x48474d;  // deterministic per-profile streams via name hash below
  for (char ch : p.name) c.seed = c.seed * 131 + static_cast<uint8_t>(ch);
  c.num_vertices = static_cast<uint32_t>(v);
  c.num_edges = static_cast<uint32_t>(e);
  c.num_labels = static_cast<uint32_t>(labels);
  c.arity_min = aavg < 3.0 ? 2 : 2;
  c.arity_max = amax;
  c.arity_dist = ArityDistribution::kGeometric;
  c.arity_param = GeoP(aavg, c.arity_min);
  c.vertex_skew = vertex_skew;
  c.label_skew = label_skew;
  c.label_locality = label_locality;
  return p;
}

std::vector<DatasetProfile> BuildProfiles() {
  std::vector<DatasetProfile> out;
  // name, description, |V|, |E|, |Sigma|, amax, avg arity,
  // vertex skew, label skew, default scale.
  out.push_back(Make("HC", "US House committees (members per committee)",
                     1290, 331, 2, 81, 34.8, 0.4, 0.3, 0.0, 1.0));
  out.push_back(Make("MA", "MathOverflow answers (users per question)",
                     73851, 5444, 1456, 1784, 24.2, 0.8, 1.2, 0.85, 1.0));
  out.push_back(Make("CH", "High-school contact groups", 327, 7818, 9, 5, 2.3,
                     0.5, 0.7, 0.6, 1.0));
  out.push_back(Make("CP", "Primary-school contact groups", 242, 12704, 11, 5,
                     2.4, 0.5, 0.7, 0.6, 1.0));
  out.push_back(Make("SB", "US Senate bill cosponsors", 294, 20584, 2, 99, 8.0,
                     0.7, 0.3, 0.0, 1.0));
  out.push_back(Make("HB", "US House bill cosponsors", 1494, 52960, 2, 399,
                     20.5, 0.7, 0.3, 0.0, 1.0));
  out.push_back(Make("WT", "Walmart trips (products per basket)", 88860, 65507,
                     11, 25, 6.6, 0.8, 1.0, 0.8, 1.0));
  out.push_back(Make("TC", "Trivago clicks (hotels per session)", 172738,
                     212483, 160, 85, 4.1, 0.8, 1.2, 0.8, 1.0));
  out.push_back(Make("SA", "StackOverflow answers (users per question)",
                     15211989, 1103193, 56502, 61315, 23.7, 0.9, 1.5, 0.85,
                     1.0 / 16));
  out.push_back(Make("AR", "Amazon reviews (reviewers per product)", 2268264,
                     4239108, 29, 9350, 17.1, 0.9, 0.8, 0.85, 1.0 / 16));
  return out;
}

}  // namespace

const std::vector<DatasetProfile>& AllDatasetProfiles() {
  static const std::vector<DatasetProfile>& profiles =
      *new std::vector<DatasetProfile>(BuildProfiles());
  return profiles;
}

const DatasetProfile* FindDatasetProfile(const std::string& name) {
  for (const DatasetProfile& p : AllDatasetProfiles()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace hgmatch
