#include "gen/knowledge_base.h"

#include <vector>

#include "util/rng.h"

namespace hgmatch {

const char* KbTypeName(Label type) {
  switch (type) {
    case kPlayer:
      return "Player";
    case kTeam:
      return "Team";
    case kMatch:
      return "Match";
    case kActor:
      return "Actor";
    case kCharacter:
      return "Character";
    case kTvShow:
      return "TVShow";
    case kSeason:
      return "Season";
    case kAward:
      return "Award";
    case kFilm:
      return "Film";
    case kDirector:
      return "Director";
    default:
      return "Unknown";
  }
}

namespace {

// Dense id ranges per entity type.
struct EntityRanges {
  VertexId first[kNumKbTypes];
  uint32_t count[kNumKbTypes];

  VertexId Pick(Label type, Rng* rng, double skew = 0.7) const {
    return first[type] +
           static_cast<VertexId>(rng->NextZipf(count[type], skew));
  }
};

}  // namespace

Hypergraph GenerateKnowledgeBase(const KbConfig& config) {
  Rng rng(config.seed);
  Hypergraph h;
  EntityRanges r;
  const uint32_t counts[kNumKbTypes] = {
      config.players, config.teams,    config.matches, config.actors,
      config.characters, config.tv_shows, config.seasons, config.awards,
      config.films,   config.directors};
  for (Label t = 0; t < kNumKbTypes; ++t) {
    r.first[t] = h.AddVertices(counts[t], t);
    r.count[t] = counts[t];
  }

  // Planted Query-1 instances: one player, two distinct teams, two distinct
  // matches. Matches are drawn without reuse bias so the two facts differ.
  for (uint32_t i = 0; i < config.planted_multi_team_players; ++i) {
    const VertexId p = r.first[kPlayer] + (i % r.count[kPlayer]);
    const VertexId t1 = r.first[kTeam] + (i % r.count[kTeam]);
    const VertexId t2 =
        r.first[kTeam] + ((i + 1 + i / r.count[kTeam]) % r.count[kTeam]);
    const VertexId m1 = r.first[kMatch] + ((2 * i) % r.count[kMatch]);
    const VertexId m2 = r.first[kMatch] + ((2 * i + 1) % r.count[kMatch]);
    if (t1 != t2 && m1 != m2) {
      (void)h.AddEdge({p, t1, m1});
      (void)h.AddEdge({p, t2, m2});
    }
  }

  // Planted Query-2 instances: same character and show, two actors, two
  // seasons.
  for (uint32_t i = 0; i < config.planted_recast_characters; ++i) {
    const VertexId c = r.first[kCharacter] + (i % r.count[kCharacter]);
    const VertexId s = r.first[kTvShow] + (i % r.count[kTvShow]);
    const VertexId a1 = r.first[kActor] + ((2 * i) % r.count[kActor]);
    const VertexId a2 = r.first[kActor] + ((2 * i + 1) % r.count[kActor]);
    const VertexId se1 = r.first[kSeason] + (i % r.count[kSeason]);
    const VertexId se2 = r.first[kSeason] + ((i + 1) % r.count[kSeason]);
    if (a1 != a2 && se1 != se2) {
      (void)h.AddEdge({a1, c, s, se1});
      (void)h.AddEdge({a2, c, s, se2});
    }
  }

  // Background facts (Zipf-skewed participation, as in real KBs).
  for (uint32_t i = 0; i < config.player_facts; ++i) {
    (void)h.AddEdge({r.Pick(kPlayer, &rng), r.Pick(kTeam, &rng),
                     r.Pick(kMatch, &rng)});
  }
  for (uint32_t i = 0; i < config.acting_facts; ++i) {
    (void)h.AddEdge({r.Pick(kActor, &rng), r.Pick(kCharacter, &rng),
                     r.Pick(kTvShow, &rng), r.Pick(kSeason, &rng)});
  }
  for (uint32_t i = 0; i < config.award_facts; ++i) {
    (void)h.AddEdge(
        {r.Pick(kActor, &rng), r.Pick(kAward, &rng), r.Pick(kFilm, &rng)});
  }
  for (uint32_t i = 0; i < config.directing_facts; ++i) {
    (void)h.AddEdge({r.Pick(kDirector, &rng), r.Pick(kFilm, &rng),
                     r.Pick(kActor, &rng)});
  }
  return h;
}

Hypergraph KbQueryMultiTeamPlayer() {
  Hypergraph q;
  const VertexId p = q.AddVertex(kPlayer);
  const VertexId t1 = q.AddVertex(kTeam);
  const VertexId m1 = q.AddVertex(kMatch);
  const VertexId t2 = q.AddVertex(kTeam);
  const VertexId m2 = q.AddVertex(kMatch);
  (void)q.AddEdge({p, t1, m1});
  (void)q.AddEdge({p, t2, m2});
  return q;
}

Hypergraph KbQueryRecastCharacter() {
  Hypergraph q;
  const VertexId c = q.AddVertex(kCharacter);
  const VertexId s = q.AddVertex(kTvShow);
  const VertexId a1 = q.AddVertex(kActor);
  const VertexId se1 = q.AddVertex(kSeason);
  const VertexId a2 = q.AddVertex(kActor);
  const VertexId se2 = q.AddVertex(kSeason);
  (void)q.AddEdge({a1, c, s, se1});
  (void)q.AddEdge({a2, c, s, se2});
  return q;
}

}  // namespace hgmatch
