#ifndef HGMATCH_GEN_GENERATOR_H_
#define HGMATCH_GEN_GENERATOR_H_

#include <cstdint>

#include "core/hypergraph.h"
#include "util/rng.h"

namespace hgmatch {

/// Distribution of hyperedge arities.
enum class ArityDistribution {
  kUniform,    // uniform over [arity_min, arity_max]
  kGeometric,  // arity_min + Geometric(arity_param) - 1, capped at arity_max
  kZipf,       // arity_min + Zipf(arity_max - arity_min + 1, arity_param)
};

/// Configuration of the synthetic hypergraph generator. The generator is
/// the offline substitute for the paper's public datasets (DESIGN.md §2.4):
/// it reproduces the published shape statistics — vertex count, hyperedge
/// count, label alphabet, arity distribution bounded by the published
/// maximum, and heavy-tailed vertex degrees via Zipf-skewed vertex picking —
/// which are the properties the measured effects depend on.
struct GeneratorConfig {
  uint64_t seed = 1;
  uint32_t num_vertices = 1000;
  uint32_t num_edges = 1000;
  uint32_t num_labels = 4;

  ArityDistribution arity_dist = ArityDistribution::kGeometric;
  uint32_t arity_min = 2;
  uint32_t arity_max = 10;
  /// kGeometric: success probability p (mean arity ≈ arity_min + 1/p - 1);
  /// kZipf: skew s.
  double arity_param = 0.5;

  /// Zipf skew of vertex selection; > 0 yields power-law-ish vertex degrees
  /// (the workload disparity that motivates work stealing, Section VI.C).
  double vertex_skew = 0.6;

  /// Zipf skew of label assignment; > 0 makes some labels much more common
  /// (as in real datasets with small alphabets).
  double label_skew = 0.5;

  /// Per-hyperedge label locality in [0, 1]: each hyperedge draws a "theme"
  /// label, and each member vertex comes from the theme's label class with
  /// this probability (otherwise from the global distribution). Real
  /// hypergraphs are strongly thematic (a shopper's basket, a user's
  /// reviews, a committee), which is what makes hyperedge signatures
  /// collide and gives queries non-trivial result counts; 0 disables.
  double label_locality = 0.0;
};

/// Generates a simple labelled hypergraph. Repeated hyperedges and repeated
/// vertices within a hyperedge are removed (as in the paper's dataset
/// preprocessing), so the result can have slightly fewer than
/// `config.num_edges` hyperedges when the space of distinct edges is tight.
/// Deterministic in `config.seed`.
Hypergraph GenerateHypergraph(const GeneratorConfig& config);

/// Samples one arity from the configured distribution (exposed for tests).
uint32_t SampleArity(const GeneratorConfig& config, Rng* rng);

}  // namespace hgmatch

#endif  // HGMATCH_GEN_GENERATOR_H_
