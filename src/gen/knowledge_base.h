#ifndef HGMATCH_GEN_KNOWLEDGE_BASE_H_
#define HGMATCH_GEN_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <string>

#include "core/hypergraph.h"

namespace hgmatch {

/// Entity types of the synthetic JF17K-like knowledge hypergraph used by
/// the Section VII.D case study. Each vertex's label is its type, exactly
/// as in the paper's JF17K setup ("the label for each vertex representing
/// its type").
enum KbType : Label {
  kPlayer = 0,
  kTeam = 1,
  kMatch = 2,
  kActor = 3,
  kCharacter = 4,
  kTvShow = 5,
  kSeason = 6,
  kAward = 7,
  kFilm = 8,
  kDirector = 9,
  kNumKbTypes = 10,
};

const char* KbTypeName(Label type);

/// Configuration of the knowledge-base generator. JF17K is a subset of
/// non-binary Freebase relations; this generator emits n-ary facts of the
/// two relation kinds the paper's case study quotes —
/// (Player, Team, Match) and (Actor, Character, TVShow, Season) — plus two
/// distractor relations, with Zipf-skewed entity participation. A known
/// number of "planted" instances guarantees both case-study queries have
/// answers whose counts the example program verifies.
struct KbConfig {
  uint64_t seed = 17;

  uint32_t players = 400;
  uint32_t teams = 60;
  uint32_t matches = 300;
  uint32_t actors = 300;
  uint32_t characters = 200;
  uint32_t tv_shows = 80;
  uint32_t seasons = 12;
  uint32_t awards = 40;
  uint32_t films = 150;
  uint32_t directors = 80;

  uint32_t player_facts = 3000;   // (Player, Team, Match)
  uint32_t acting_facts = 2500;   // (Actor, Character, TVShow, Season)
  uint32_t award_facts = 800;     // (Actor, Award, Film)
  uint32_t directing_facts = 600; // (Director, Film, Actor)

  /// Planted instances of case-study Query 1: a player who represented two
  /// different teams in two different matches.
  uint32_t planted_multi_team_players = 25;

  /// Planted instances of case-study Query 2: a character in a show played
  /// by two different actors in different seasons.
  uint32_t planted_recast_characters = 15;
};

/// Generates the knowledge hypergraph. Deterministic in `config.seed`.
Hypergraph GenerateKnowledgeBase(const KbConfig& config);

/// Case-study Query 1 (Fig 13a): "football players who represented
/// different teams in different matches" — two (Player, Team, Match)
/// hyperedges sharing only the player.
Hypergraph KbQueryMultiTeamPlayer();

/// Case-study Query 2 (Fig 13b): "actors who played the same character in
/// a TV show on different seasons" — two (Actor, Character, TVShow, Season)
/// hyperedges sharing the character and the show.
Hypergraph KbQueryRecastCharacter();

}  // namespace hgmatch

#endif  // HGMATCH_GEN_KNOWLEDGE_BASE_H_
