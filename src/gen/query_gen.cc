#include "gen/query_gen.h"

#include <algorithm>
#include <unordered_map>

#include "util/set_ops.h"

namespace hgmatch {

namespace {

// One random walk: collects `k` distinct, connected hyperedges of `data`.
// Returns false when the walk gets stuck (isolated component smaller than k).
bool WalkEdges(const Hypergraph& data, uint32_t k, Rng* rng,
               std::vector<EdgeId>* out) {
  out->clear();
  const EdgeId start =
      static_cast<EdgeId>(rng->NextBounded(data.NumEdges()));
  EdgeSet collected = {start};
  out->push_back(start);
  uint32_t stuck = 0;
  while (out->size() < k && stuck < 64) {
    // Pick a random collected hyperedge, then a random vertex in it, then a
    // random incident hyperedge of that vertex.
    const EdgeId from = (*out)[rng->NextBounded(out->size())];
    const VertexSet& members = data.edge(from);
    const VertexId v = members[rng->NextBounded(members.size())];
    const EdgeSet& incident = data.incident(v);
    const EdgeId next =
        incident[rng->NextBounded(incident.size())];
    if (Contains(collected, next)) {
      ++stuck;
      continue;
    }
    stuck = 0;
    InsertSorted(&collected, next);
    out->push_back(next);
  }
  return out->size() == k;
}

// Builds a standalone query hypergraph from data hyperedges: vertices are
// renumbered densely (in ascending data-vertex order), labels copied.
Hypergraph ExtractQuery(const Hypergraph& data,
                        const std::vector<EdgeId>& edges) {
  VertexSet vertices;
  for (EdgeId e : edges) {
    const VertexSet& members = data.edge(e);
    vertices.insert(vertices.end(), members.begin(), members.end());
  }
  SortUnique(&vertices);
  std::unordered_map<VertexId, VertexId> remap;
  remap.reserve(vertices.size());
  Hypergraph q;
  for (VertexId v : vertices) {
    remap[v] = q.AddVertex(data.label(v));
  }
  for (EdgeId e : edges) {
    VertexSet members;
    for (VertexId v : data.edge(e)) members.push_back(remap[v]);
    (void)q.AddEdge(std::move(members));
  }
  return q;
}

}  // namespace

Result<Hypergraph> SampleQuery(const Hypergraph& data,
                               const QuerySettings& settings, Rng* rng,
                               uint32_t max_attempts) {
  if (data.NumEdges() == 0) {
    return Status::NotFound("data hypergraph has no hyperedges");
  }
  std::vector<EdgeId> edges;
  bool have_fallback = false;
  std::vector<EdgeId> fallback;
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (!WalkEdges(data, settings.num_edges, rng, &edges)) continue;
    VertexSet vertices;
    for (EdgeId e : edges) {
      const VertexSet& members = data.edge(e);
      vertices.insert(vertices.end(), members.begin(), members.end());
    }
    SortUnique(&vertices);
    if (vertices.size() >= settings.min_vertices &&
        vertices.size() <= settings.max_vertices) {
      return ExtractQuery(data, edges);
    }
    fallback = edges;
    have_fallback = true;
  }
  if (have_fallback) return ExtractQuery(data, fallback);
  return Status::NotFound("could not sample a connected query of " +
                          std::to_string(settings.num_edges) + " hyperedges");
}

std::vector<Hypergraph> SampleQueries(const Hypergraph& data,
                                      const QuerySettings& settings,
                                      size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Hypergraph> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Result<Hypergraph> q = SampleQuery(data, settings, &rng);
    if (q.ok()) out.push_back(std::move(q.value()));
  }
  return out;
}

}  // namespace hgmatch
