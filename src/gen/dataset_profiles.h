#ifndef HGMATCH_GEN_DATASET_PROFILES_H_
#define HGMATCH_GEN_DATASET_PROFILES_H_

#include <string>
#include <vector>

#include "core/hypergraph.h"
#include "gen/generator.h"

namespace hgmatch {

/// Published shape statistics of one of the paper's ten datasets
/// (Table II) together with a generator configuration that reproduces the
/// shape synthetically (the offline substitute; DESIGN.md §5).
struct DatasetProfile {
  std::string name;         // paper's abbreviation (HC, MA, ...)
  std::string description;  // what the real dataset contains

  // Published statistics (Table II), for reference printing.
  uint64_t paper_vertices = 0;
  uint64_t paper_edges = 0;
  uint64_t paper_labels = 0;
  uint32_t paper_max_arity = 0;
  double paper_avg_arity = 0;

  /// Generator settings that reproduce the shape at scale 1.0.
  GeneratorConfig config;

  /// Scale applied by default in benches (the two largest datasets, SA and
  /// AR, default below 1.0 so the full suite stays laptop-runnable).
  double default_scale = 1.0;

  /// Generates the synthetic stand-in. `scale` multiplies vertex and edge
  /// counts (1.0 = the paper's published size).
  Hypergraph Generate(double scale) const;
  Hypergraph GenerateDefault() const { return Generate(default_scale); }
};

/// All ten profiles of Table II, in the paper's order:
/// HC, MA, CH, CP, SB, HB, WT, TC, SA, AR.
const std::vector<DatasetProfile>& AllDatasetProfiles();

/// Profile by abbreviation; nullptr when unknown.
const DatasetProfile* FindDatasetProfile(const std::string& name);

}  // namespace hgmatch

#endif  // HGMATCH_GEN_DATASET_PROFILES_H_
