#ifndef HGMATCH_SERVE_CATALOG_H_
#define HGMATCH_SERVE_CATALOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/indexed_hypergraph.h"
#include "parallel/service.h"
#include "util/status.h"

namespace hgmatch {

/// Configuration of a GraphCatalog.
struct CatalogOptions {
  /// Pool shape (parallel/admission/window/queue/quota fields build the
  /// shared SchedulerPool) and per-graph service behaviour (plan cache,
  /// capacity, shards, default budgets) — every hosted graph's
  /// MatchService is configured from this one template.
  ServiceOptions service;

  /// Completion hook receiving *catalog-unique* ticket ids (the
  /// CatalogTicket::unique_id of the finished submission) — the wire
  /// server's wakeup channel. Same contract as
  /// ServiceOptions::on_query_complete: fires exactly once per
  /// submission, after the outcome is retrievable, with no lock held.
  std::function<void(uint64_t unique_id, const QueryOutcome& outcome)>
      on_query_complete;
};

/// One row of GraphCatalog::List() — the per-graph slice of the STATS
/// surface.
struct CatalogGraphInfo {
  std::string name;
  bool is_default = false;
  uint64_t queries = 0;       // submissions routed to this graph, ever
  uint64_t live_tickets = 0;  // submissions not yet resolved
  uint64_t index_bytes = 0;   // IndexedHypergraph::IndexBytes()
  uint32_t shards = 1;        // scatter-gather fan-out (ServiceOptions)
};

/// A submission accepted by the catalog: the service ticket plus the
/// catalog-unique id that survives graph routing (two graphs' services
/// both hand out ticket id 0; unique_id disambiguates them for the wire
/// server's completion registry).
struct CatalogTicket {
  Ticket ticket;
  uint64_t unique_id = 0;
};

/// A registry of named data graphs served from one worker pool — the
/// serving tier behind `hgmatch serve`. Each loaded graph gets its own
/// MatchService (plan cache, sharded scatter-gather execution, budgets)
/// bound to the catalog's shared SchedulerPool, so K graphs cost one set
/// of worker threads, not K. Submissions route by graph name (empty =
/// the default graph, the first one loaded), and every accepted
/// submission carries a catalog-unique ticket id.
///
/// Lifetime is refcounted per graph: Unload marks the graph so new
/// submissions are rejected immediately, then waits (or defers, wait =
/// false) until every in-flight ticket of that graph resolved before the
/// index and service are destroyed — an unload never invalidates an
/// outstanding ticket and never loses an outcome. All methods are
/// thread-safe.
class GraphCatalog {
 public:
  explicit GraphCatalog(const CatalogOptions& options);

  /// Shuts down: blocks until every in-flight submission resolved.
  ~GraphCatalog();

  GraphCatalog(const GraphCatalog&) = delete;
  GraphCatalog& operator=(const GraphCatalog&) = delete;

  /// Indexes `data` and serves it as `name`. The first loaded graph
  /// becomes the default. Fails with AlreadyExists on a duplicate name
  /// (unloading counts as gone) and InvalidArgument on an empty name.
  Status Load(const std::string& name, Hypergraph data);

  /// Load() over an externally owned index (no copy, no re-index); the
  /// caller guarantees `index` outlives the catalog. The back-compat
  /// path of the wire server, whose historical constructor borrows the
  /// caller's IndexedHypergraph.
  Status LoadShared(const std::string& name, const IndexedHypergraph& index);

  /// Removes `name` from the catalog. New submissions to it are rejected
  /// from this call on. wait = true blocks until the graph's in-flight
  /// tickets resolved, then frees its service and index; wait = false
  /// returns immediately and the drained graph is reaped by a later
  /// catalog operation (or Shutdown). Fails with NotFound for unknown
  /// (or already-unloading) names.
  Status Unload(const std::string& name, bool wait = true);

  /// Snapshot of every hosted graph, default first, then load order.
  std::vector<CatalogGraphInfo> List();

  bool Has(const std::string& name);

  /// Name of the default graph; empty when none is loaded (or the
  /// default was unloaded and nothing replaced it).
  std::string DefaultGraph();

  size_t NumGraphs();

  /// Routes one submission to `name` (empty = default graph). Fails with
  /// NotFound when the graph is unknown or unloading — no ticket is
  /// created, so the caller can relay a typed rejection instead of a
  /// dead connection.
  Result<CatalogTicket> Submit(const std::string& name, Hypergraph query,
                               const SubmitOptions& options);

  /// One admission pass for a whole batch against one graph.
  Result<std::vector<CatalogTicket>> SubmitBatch(
      const std::string& name, std::vector<BatchSubmission> batch);

  /// Cancels through the owning graph, pinned against a racing unload
  /// (cancelling a ticket of a mid-unload graph is legal and speeds the
  /// drain). Returns false when the query already finished.
  bool Cancel(const CatalogTicket& ticket);

  /// Monotonic count of finished submissions across all graphs (the wire
  /// server's poll-fallback gate). Cheap: one atomic load.
  uint64_t finished_queries() const;

  /// Shared pool width.
  uint32_t num_threads() const;

  /// Aggregated service gauges: finished across all graphs, live
  /// contexts / retained slots from the shared pool, rejected summed
  /// over hosted graphs.
  ServiceGauges Gauges();

  /// Unloads everything (waiting for in-flight tickets) and joins the
  /// pool. Idempotent; implied by destruction. No submissions may race
  /// or follow this call.
  void Shutdown();

 private:
  struct Entry;
  struct State;

  Status Install(std::shared_ptr<Entry> entry);
  // Finds the live entry named `name` (empty = default), pins it against
  // unload and claims `count` upcoming submissions; null + *error when
  // the graph is unknown, unloading or the catalog is sealed.
  std::shared_ptr<Entry> FindPinnedForSubmit(const std::string& name,
                                             uint64_t count, Status* error);
  void Unpin(const std::shared_ptr<Entry>& entry);
  void ReapLocked(std::vector<std::shared_ptr<Entry>>* to_destroy);
  void DestroyEntries(std::vector<std::shared_ptr<Entry>> to_destroy);

  CatalogOptions options_;
  std::shared_ptr<State> state_;
  // Finished-submission counter; shared with every per-graph completion
  // hook so a hook mid-flight during teardown touches refcounted memory,
  // never the catalog object.
  std::shared_ptr<std::atomic<uint64_t>> finished_;
  std::unique_ptr<SchedulerPool> pool_;
};

}  // namespace hgmatch

#endif  // HGMATCH_SERVE_CATALOG_H_
