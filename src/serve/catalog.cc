#include "serve/catalog.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/metrics.h"

namespace hgmatch {

namespace {

// Catalog-unique ticket ids: the high bits name the catalog entry, the
// low 40 bits carry the service-local ticket id (a trillion submissions
// per graph before the spaces could touch — and entry bases are never
// reused, so a stale id from an unloaded graph can never alias a live
// one).
constexpr uint32_t kEntryIdShift = 40;

}  // namespace

// One hosted graph. The index/service fields are written at load time
// and immutable afterwards; the counters and flags are guarded by
// State::m.
struct GraphCatalog::Entry {
  std::string name;
  uint64_t id_base = 0;
  // Load() owns its index here; LoadShared() leaves it empty. `index`
  // points at whichever is live and never changes after install.
  std::optional<IndexedHypergraph> owned;
  const IndexedHypergraph* index = nullptr;
  std::unique_ptr<MatchService> service;

  // Guarded by State::m.
  uint64_t queries = 0;  // submissions ever routed here
  uint64_t live = 0;     // submissions not yet resolved
  uint64_t pins = 0;     // threads mid-Submit/Cancel on this entry
  bool unloading = false;

  // Registry counter of submissions routed to this graph name, resolved
  // at install. Counters are never unregistered: reloading a name picks
  // the same handle back up, so the per-graph series survives unloads.
  Counter* submit_metric = nullptr;
};

// The mutable registry, held by shared_ptr from the catalog AND from
// every per-graph completion hook: a hook that fires while the catalog
// is mid-teardown still locks refcounted memory, never a dead object.
struct GraphCatalog::State {
  std::mutex m;
  std::condition_variable cv;

  // Guarded by m.
  std::vector<std::shared_ptr<Entry>> entries;    // live, load order
  std::vector<std::shared_ptr<Entry>> graveyard;  // unloading, draining
  std::string default_name;
  uint64_t entry_seq = 0;
  bool sealed = false;
};

GraphCatalog::GraphCatalog(const CatalogOptions& options)
    : options_(options),
      state_(std::make_shared<State>()),
      finished_(std::make_shared<std::atomic<uint64_t>>(0)),
      pool_(std::make_unique<SchedulerPool>(options.service)) {}

GraphCatalog::~GraphCatalog() { Shutdown(); }

Status GraphCatalog::Load(const std::string& name, Hypergraph data) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  auto entry = std::make_shared<Entry>();
  entry->name = name;
  // Index before taking the lock: Build is the expensive part and needs
  // no registry state.
  entry->owned.emplace(IndexedHypergraph::Build(std::move(data)));
  entry->index = &*entry->owned;
  return Install(std::move(entry));
}

Status GraphCatalog::LoadShared(const std::string& name,
                                const IndexedHypergraph& index) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  auto entry = std::make_shared<Entry>();
  entry->name = name;
  entry->index = &index;
  return Install(std::move(entry));
}

Status GraphCatalog::Install(std::shared_ptr<Entry> entry) {
  std::shared_ptr<State> st = state_;
  std::vector<std::shared_ptr<Entry>> dead;
  {
    std::lock_guard<std::mutex> lock(st->m);
    if (st->sealed) {
      return Status::InvalidArgument("catalog is shut down");
    }
    for (const auto& e : st->entries) {
      if (e->name == entry->name) {
        return Status::InvalidArgument("graph '" + entry->name +
                                       "' is already loaded");
      }
    }
    entry->id_base = ++st->entry_seq << kEntryIdShift;
    entry->submit_metric = MetricsRegistry::Default().GetCounter(
        "hgmatch_graph_submits_total",
        "graph=\"" + EscapeLabelValue(entry->name) + "\"");

    ServiceOptions so = options_.service;
    // Chain the catalog delivery hook behind any template-level one. The
    // hook's closing act — the live-ticket decrement — is the unload
    // gate, so it runs last, under State::m, touching nothing of the
    // entry afterwards: once an unloader observes live == 0 the entry is
    // destructible even though the hook's stack frame is still winding
    // down (it only holds refcounted captures from there on).
    auto chained = std::move(so.on_query_complete);
    auto user = options_.on_query_complete;
    auto fin = finished_;
    Entry* raw = entry.get();
    const uint64_t base = entry->id_base;
    so.on_query_complete = [st, raw, base, chained, user, fin](
                               uint64_t id, const QueryOutcome& out) {
      if (chained) chained(id, out);
      // The finished count rises before the user hook runs: the hook is
      // what triggers outcome delivery, so anyone who has seen an
      // outcome must also see its finished increment.
      fin->fetch_add(1, std::memory_order_release);
      if (user) user(base + id, out);
      std::lock_guard<std::mutex> lock(st->m);
      --raw->live;
      st->cv.notify_all();
    };
    entry->service =
        std::make_unique<MatchService>(*entry->index, *pool_, so);

    if (st->default_name.empty()) st->default_name = entry->name;
    st->entries.push_back(std::move(entry));
    ReapLocked(&dead);
  }
  DestroyEntries(std::move(dead));
  return Status::OK();
}

Status GraphCatalog::Unload(const std::string& name, bool wait) {
  std::shared_ptr<State> st = state_;
  std::shared_ptr<Entry> entry;
  std::vector<std::shared_ptr<Entry>> dead;
  {
    std::lock_guard<std::mutex> lock(st->m);
    auto it = std::find_if(st->entries.begin(), st->entries.end(),
                           [&name](const std::shared_ptr<Entry>& e) {
                             return e->name == name;
                           });
    if (it == st->entries.end()) {
      return Status::NotFound("unknown graph '" + name + "'");
    }
    entry = *it;
    entry->unloading = true;
    st->entries.erase(it);
    st->graveyard.push_back(entry);
    if (st->default_name == name) st->default_name.clear();
    if (!wait) ReapLocked(&dead);
  }
  if (!wait) {
    // An idle graph reaps right here; a busy one drains in place and a
    // later catalog operation (or Shutdown) collects it.
    DestroyEntries(std::move(dead));
    return Status::OK();
  }
  {
    std::unique_lock<std::mutex> lock(st->m);
    st->cv.wait(lock, [&entry] {
      return entry->pins == 0 && entry->live == 0;
    });
    std::erase(st->graveyard, entry);
  }
  // Outside the lock: Shutdown may fire straggler bookkeeping and must
  // never run under State::m (lock order: State::m is a leaf).
  entry->service->Shutdown();
  return Status::OK();
}

std::vector<CatalogGraphInfo> GraphCatalog::List() {
  std::vector<std::shared_ptr<Entry>> dead;
  std::vector<CatalogGraphInfo> rows;
  {
    std::lock_guard<std::mutex> lock(state_->m);
    ReapLocked(&dead);
    rows.reserve(state_->entries.size());
    for (const auto& e : state_->entries) {
      CatalogGraphInfo row;
      row.name = e->name;
      row.is_default = e->name == state_->default_name;
      row.queries = e->queries;
      row.live_tickets = e->live;
      row.index_bytes = e->index->IndexBytes();
      row.shards = std::max<uint32_t>(1, options_.service.shards);
      rows.push_back(std::move(row));
    }
  }
  DestroyEntries(std::move(dead));
  // Default first, then load order.
  auto def = std::find_if(rows.begin(), rows.end(),
                          [](const CatalogGraphInfo& r) {
                            return r.is_default;
                          });
  if (def != rows.end()) std::rotate(rows.begin(), def, def + 1);
  return rows;
}

bool GraphCatalog::Has(const std::string& name) {
  std::lock_guard<std::mutex> lock(state_->m);
  for (const auto& e : state_->entries) {
    if (e->name == name) return true;
  }
  return false;
}

std::string GraphCatalog::DefaultGraph() {
  std::lock_guard<std::mutex> lock(state_->m);
  return state_->default_name;
}

size_t GraphCatalog::NumGraphs() {
  std::lock_guard<std::mutex> lock(state_->m);
  return state_->entries.size();
}

std::shared_ptr<GraphCatalog::Entry> GraphCatalog::FindPinnedForSubmit(
    const std::string& name, uint64_t count, Status* error) {
  std::lock_guard<std::mutex> lock(state_->m);
  if (state_->sealed) {
    *error = Status::InvalidArgument("catalog is shut down");
    return nullptr;
  }
  const std::string& target =
      name.empty() ? state_->default_name : name;
  if (target.empty()) {
    *error = Status::NotFound("no default graph is loaded");
    return nullptr;
  }
  for (const auto& e : state_->entries) {
    if (e->name != target) continue;
    // The pin blocks a concurrent unload from destroying the entry while
    // this thread is inside the service; the live count is claimed here
    // too — before the submission exists — because a synchronously
    // resolving Submit runs the decrementing hook before returning.
    ++e->pins;
    e->queries += count;
    e->live += count;
    e->submit_metric->Add(count);
    return e;
  }
  *error = Status::NotFound("unknown graph '" + target + "'");
  return nullptr;
}

void GraphCatalog::Unpin(const std::shared_ptr<Entry>& entry) {
  std::lock_guard<std::mutex> lock(state_->m);
  --entry->pins;
  state_->cv.notify_all();
}

Result<CatalogTicket> GraphCatalog::Submit(const std::string& name,
                                           Hypergraph query,
                                           const SubmitOptions& options) {
  Status error;
  std::shared_ptr<Entry> entry = FindPinnedForSubmit(name, 1, &error);
  if (entry == nullptr) return error;
  Ticket ticket = entry->service->Submit(std::move(query), options);
  CatalogTicket ct;
  ct.unique_id = entry->id_base + ticket.id();
  ct.ticket = std::move(ticket);
  Unpin(entry);
  return ct;
}

Result<std::vector<CatalogTicket>> GraphCatalog::SubmitBatch(
    const std::string& name, std::vector<BatchSubmission> batch) {
  Status error;
  std::shared_ptr<Entry> entry =
      FindPinnedForSubmit(name, batch.size(), &error);
  if (entry == nullptr) return error;
  std::vector<Ticket> tickets = entry->service->SubmitBatch(std::move(batch));
  std::vector<CatalogTicket> out;
  out.reserve(tickets.size());
  for (Ticket& t : tickets) {
    CatalogTicket ct;
    ct.unique_id = entry->id_base + t.id();
    ct.ticket = std::move(t);
    out.push_back(std::move(ct));
  }
  Unpin(entry);
  return out;
}

bool GraphCatalog::Cancel(const CatalogTicket& ticket) {
  if (!ticket.ticket.valid()) return false;
  const uint64_t base =
      ticket.unique_id >> kEntryIdShift << kEntryIdShift;
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(state_->m);
    auto match = [base](const std::shared_ptr<Entry>& e) {
      return e->id_base == base;
    };
    auto it = std::find_if(state_->entries.begin(), state_->entries.end(),
                           match);
    if (it == state_->entries.end()) {
      // Unloading graphs accept cancels — they speed the drain.
      it = std::find_if(state_->graveyard.begin(), state_->graveyard.end(),
                        match);
      if (it == state_->graveyard.end()) {
        // Entry gone: its unload already drained every ticket, so this
        // one is resolved and Cancel is a pure (false) read.
        return ticket.ticket.Cancel();
      }
    }
    entry = *it;
    ++entry->pins;
  }
  const bool cancelled = ticket.ticket.Cancel();
  Unpin(entry);
  return cancelled;
}

uint64_t GraphCatalog::finished_queries() const {
  return finished_->load(std::memory_order_acquire);
}

uint32_t GraphCatalog::num_threads() const {
  return pool_ != nullptr ? pool_->num_threads() : 0;
}

ServiceGauges GraphCatalog::Gauges() {
  ServiceGauges g;
  g.finished = finished_->load(std::memory_order_acquire);
  if (pool_ != nullptr) {
    Scheduler& sched = pool_->scheduler();
    g.live_contexts = sched.LiveContexts();
    g.retained_slots = sched.RetainedSlots();
    g.rejected = sched.RejectedCount();
  }
  return g;
}

void GraphCatalog::Shutdown() {
  std::shared_ptr<State> st = state_;
  std::vector<std::shared_ptr<Entry>> all;
  {
    std::unique_lock<std::mutex> lock(st->m);
    st->sealed = true;
    for (auto& e : st->entries) {
      e->unloading = true;
      st->graveyard.push_back(std::move(e));
    }
    st->entries.clear();
    st->default_name.clear();
    st->cv.wait(lock, [st] {
      for (const auto& e : st->graveyard) {
        if (e->pins != 0 || e->live != 0) return false;
      }
      return true;
    });
    all = std::move(st->graveyard);
    st->graveyard.clear();
  }
  DestroyEntries(std::move(all));
  pool_.reset();  // Seal + Join the shared workers
}

void GraphCatalog::ReapLocked(
    std::vector<std::shared_ptr<Entry>>* to_destroy) {
  auto& g = state_->graveyard;
  for (auto it = g.begin(); it != g.end();) {
    if ((*it)->pins == 0 && (*it)->live == 0) {
      to_destroy->push_back(std::move(*it));
      it = g.erase(it);
    } else {
      ++it;
    }
  }
}

void GraphCatalog::DestroyEntries(
    std::vector<std::shared_ptr<Entry>> to_destroy) {
  // Callers hold no lock: Shutdown waits for in-flight hook deliveries.
  for (const auto& e : to_destroy) e->service->Shutdown();
}

}  // namespace hgmatch
