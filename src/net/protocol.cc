#include "net/protocol.h"

#include <cstring>

#include "io/binary_format.h"
#include "io/byte_io.h"
#include "io/compress.h"

namespace hgmatch {

namespace {

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kSubmit) &&
         type <= static_cast<uint8_t>(FrameType::kCatalogReply);
}

// Length-prefixed string: varint byte count, then the bytes.
void AppendString(std::string_view s, std::string* out) {
  AppendVarint(s.size(), out);
  out->append(s);
}

// Returns false (leaving *out untouched) on truncation; the caller folds
// that into its frame-level Corruption status.
bool ReadString(ByteReader& r, std::string* out) {
  const uint64_t bytes = ReadVarint(r);
  if (!r.ok() || bytes > r.remaining()) return false;
  out->assign(r.rest().substr(0, bytes));
  r.Skip(bytes);
  return true;
}

void AppendGraphStats(const WireGraphStats& g, std::string* payload) {
  AppendString(g.name, payload);
  AppendValue<uint8_t>(g.is_default ? 1 : 0, payload);
  AppendValue<uint64_t>(g.queries, payload);
  AppendValue<uint64_t>(g.live_tickets, payload);
  AppendValue<uint64_t>(g.index_bytes, payload);
  AppendValue<uint32_t>(g.shards, payload);
}

bool ReadGraphStats(ByteReader& r, WireGraphStats* g) {
  if (!ReadString(r, &g->name)) return false;
  g->is_default = r.ReadValue<uint8_t>() != 0;
  g->queries = r.ReadValue<uint64_t>();
  g->live_tickets = r.ReadValue<uint64_t>();
  g->index_bytes = r.ReadValue<uint64_t>();
  g->shards = r.ReadValue<uint32_t>();
  return r.ok();
}

}  // namespace

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  out->reserve(out->size() + kWireHeaderBytes + payload.size());
  AppendValue<uint32_t>(kWireMagic, out);
  AppendValue<uint8_t>(static_cast<uint8_t>(type), out);
  AppendValue<uint32_t>(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
}

std::string EncodeSubmit(const WireSubmit& submit, bool with_graph) {
  return EncodeSubmit(submit, submit.query, with_graph);
}

std::string EncodeSubmit(const WireSubmit& fields, const Hypergraph& query,
                         bool with_graph) {
  std::string payload;
  AppendValue<uint64_t>(fields.request_id, &payload);
  AppendValue<uint32_t>(fields.tenant_id, &payload);
  AppendValue<int32_t>(fields.priority, &payload);
  AppendValue<double>(fields.weight, &payload);
  AppendValue<double>(fields.timeout_seconds, &payload);
  AppendValue<uint64_t>(fields.limit, &payload);
  // The graph name sits before the query image because the image consumes
  // the remainder of the payload.
  if (with_graph) AppendString(fields.graph, &payload);
  AppendHypergraphBinary(query, &payload);
  return payload;
}

Result<WireSubmit> DecodeSubmit(std::string_view payload, bool with_graph) {
  ByteReader r(payload);
  WireSubmit submit;
  submit.request_id = r.ReadValue<uint64_t>();
  submit.tenant_id = r.ReadValue<uint32_t>();
  submit.priority = r.ReadValue<int32_t>();
  submit.weight = r.ReadValue<double>();
  submit.timeout_seconds = r.ReadValue<double>();
  submit.limit = r.ReadValue<uint64_t>();
  if (!r.ok()) return Status::Corruption("truncated SUBMIT frame");
  if (with_graph && !ReadString(r, &submit.graph)) {
    return Status::Corruption("truncated SUBMIT frame");
  }
  const std::string_view image = r.rest();
  Result<Hypergraph> query =
      DecodeHypergraphBinary(image.data(), image.size());
  if (!query.ok()) {
    return Status::Corruption("SUBMIT query: " + query.status().message());
  }
  submit.query = std::move(query).value();
  return submit;
}

std::string EncodeOutcome(const WireOutcome& wire, bool with_trace) {
  const QueryOutcome& out = wire.outcome;
  std::string payload;
  AppendValue<uint64_t>(wire.request_id, &payload);
  AppendValue<uint8_t>(static_cast<uint8_t>(out.status), &payload);
  AppendValue<uint8_t>(out.mirrored ? 1 : 0, &payload);
  AppendValue<uint8_t>(out.stats.timed_out ? 1 : 0, &payload);
  AppendValue<uint8_t>(out.stats.limit_hit ? 1 : 0, &payload);
  AppendValue<uint64_t>(out.stats.embeddings, &payload);
  AppendValue<uint64_t>(out.stats.candidates, &payload);
  AppendValue<uint64_t>(out.stats.filtered, &payload);
  AppendValue<uint64_t>(out.stats.expansions, &payload);
  AppendValue<double>(out.stats.seconds, &payload);
  AppendValue<double>(out.admit_seconds, &payload);
  AppendValue<double>(out.finish_seconds, &payload);
  AppendValue<uint64_t>(out.admit_index, &payload);
  if (with_trace) {
    // Trailing trace section, present only between kFeatureTrace peers:
    // untraced peers keep the byte-identical pre-trace payload above.
    const QuerySpan& span = out.span;
    AppendValue<uint8_t>(span.enabled ? 1 : 0, &payload);
    if (span.enabled) {
      AppendValue<double>(span.submit_seconds, &payload);
      AppendValue<double>(span.admit_seconds, &payload);
      AppendValue<double>(span.first_task_seconds, &payload);
      AppendValue<double>(span.last_task_seconds, &payload);
      AppendValue<double>(span.resolve_seconds, &payload);
      AppendValue<double>(span.deliver_seconds, &payload);
      AppendVarint(span.slices.size(), &payload);
      for (const TraceSlice& s : span.slices) {
        AppendValue<uint32_t>(s.slice, &payload);
        AppendValue<double>(s.admit_seconds, &payload);
        AppendValue<double>(s.first_task_seconds, &payload);
        AppendValue<double>(s.finish_seconds, &payload);
      }
    }
  }
  return payload;
}

Result<WireOutcome> DecodeOutcome(std::string_view payload,
                                  bool with_trace) {
  ByteReader r(payload);
  WireOutcome wire;
  wire.request_id = r.ReadValue<uint64_t>();
  const uint8_t status = r.ReadValue<uint8_t>();
  if (status > static_cast<uint8_t>(QueryStatus::kRejected)) {
    return Status::Corruption("OUTCOME frame: unknown query status");
  }
  QueryOutcome& out = wire.outcome;
  out.status = static_cast<QueryStatus>(status);
  out.mirrored = r.ReadValue<uint8_t>() != 0;
  out.stats.timed_out = r.ReadValue<uint8_t>() != 0;
  out.stats.limit_hit = r.ReadValue<uint8_t>() != 0;
  out.stats.embeddings = r.ReadValue<uint64_t>();
  out.stats.candidates = r.ReadValue<uint64_t>();
  out.stats.filtered = r.ReadValue<uint64_t>();
  out.stats.expansions = r.ReadValue<uint64_t>();
  out.stats.seconds = r.ReadValue<double>();
  out.admit_seconds = r.ReadValue<double>();
  out.finish_seconds = r.ReadValue<double>();
  out.admit_index = r.ReadValue<uint64_t>();
  if (with_trace) {
    const uint8_t enabled = r.ReadValue<uint8_t>();
    if (r.ok() && enabled > 1) {
      return Status::Corruption("malformed OUTCOME trace section");
    }
    if (r.ok() && enabled == 1) {
      QuerySpan& span = out.span;
      span.enabled = true;
      span.submit_seconds = r.ReadValue<double>();
      span.admit_seconds = r.ReadValue<double>();
      span.first_task_seconds = r.ReadValue<double>();
      span.last_task_seconds = r.ReadValue<double>();
      span.resolve_seconds = r.ReadValue<double>();
      span.deliver_seconds = r.ReadValue<double>();
      const uint64_t slices = ReadVarint(r);
      // 28 bytes per row; the bound keeps a corrupt count from turning
      // into a giant allocation before the length check can fail.
      if (!r.ok() || slices > r.remaining() / 28) {
        return Status::Corruption("malformed OUTCOME trace section");
      }
      span.slices.resize(slices);
      for (TraceSlice& s : span.slices) {
        s.slice = r.ReadValue<uint32_t>();
        s.admit_seconds = r.ReadValue<double>();
        s.first_task_seconds = r.ReadValue<double>();
        s.finish_seconds = r.ReadValue<double>();
      }
    }
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::Corruption("malformed OUTCOME frame");
  }
  return wire;
}

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kRateLimited:
      return "rate-limited";
    case RejectReason::kUnknownGraph:
      return "unknown-graph";
  }
  return "unknown";
}

std::string EncodeRejected(const WireRejected& rejected) {
  std::string payload;
  AppendValue<uint64_t>(rejected.request_id, &payload);
  AppendValue<uint8_t>(static_cast<uint8_t>(rejected.reason), &payload);
  return payload;
}

Result<WireRejected> DecodeRejected(std::string_view payload) {
  ByteReader r(payload);
  WireRejected rejected;
  rejected.request_id = r.ReadValue<uint64_t>();
  const uint8_t reason = r.ReadValue<uint8_t>();
  if (!r.ok() || r.remaining() != 0 ||
      reason > static_cast<uint8_t>(RejectReason::kUnknownGraph)) {
    return Status::Corruption("malformed REJECTED frame");
  }
  rejected.reason = static_cast<RejectReason>(reason);
  return rejected;
}

std::string EncodeRequestId(uint64_t request_id) {
  std::string payload;
  AppendValue<uint64_t>(request_id, &payload);
  return payload;
}

Result<uint64_t> DecodeRequestId(std::string_view payload) {
  ByteReader r(payload);
  const uint64_t id = r.ReadValue<uint64_t>();
  if (!r.ok() || r.remaining() != 0) {
    return Status::Corruption("malformed request-id frame");
  }
  return id;
}

std::string EncodeStats(const WireStats& stats) {
  std::string payload;
  AppendValue<uint32_t>(stats.num_threads, &payload);
  AppendValue<uint64_t>(stats.connections, &payload);
  AppendValue<uint64_t>(stats.submitted, &payload);
  AppendValue<uint64_t>(stats.completed, &payload);
  AppendValue<uint64_t>(stats.rejected, &payload);
  AppendValue<uint64_t>(stats.rate_limited, &payload);
  AppendValue<uint64_t>(stats.cancelled_by_disconnect, &payload);
  AppendValue<uint64_t>(stats.inflight, &payload);
  AppendValue<uint64_t>(stats.service_finished, &payload);
  AppendValue<uint64_t>(stats.service_live_contexts, &payload);
  AppendValue<uint64_t>(stats.service_retained_slots, &payload);
  AppendValue<uint32_t>(static_cast<uint32_t>(stats.io_threads.size()),
                        &payload);
  for (const WireIoThreadStats& t : stats.io_threads) {
    AppendValue<uint64_t>(t.connections, &payload);
    AppendValue<uint64_t>(t.frames_in, &payload);
    AppendValue<uint64_t>(t.frames_out, &payload);
    AppendValue<uint64_t>(t.bytes_in, &payload);
    AppendValue<uint64_t>(t.bytes_out, &payload);
    AppendValue<uint64_t>(t.rejects, &payload);
  }
  // Per-graph rows trail the original layout; the decoder treats them as
  // optional, so a payload from a pre-catalog encoder still parses.
  AppendVarint(stats.graphs.size(), &payload);
  for (const WireGraphStats& g : stats.graphs) AppendGraphStats(g, &payload);
  // Uptime + slow-query section trails the graph rows as a second
  // optional tier (absent from pre-observability encoders).
  AppendValue<double>(stats.uptime_seconds, &payload);
  AppendValue<double>(stats.monotonic_seconds, &payload);
  AppendVarint(stats.slow_queries.size(), &payload);
  for (const WireSlowQuery& s : stats.slow_queries) {
    AppendValue<uint64_t>(s.request_id, &payload);
    AppendValue<uint32_t>(s.tenant_id, &payload);
    AppendString(s.graph, &payload);
    AppendValue<double>(s.total_seconds, &payload);
    AppendValue<double>(s.queue_seconds, &payload);
    AppendValue<double>(s.run_seconds, &payload);
    AppendValue<double>(s.deliver_seconds, &payload);
  }
  return payload;
}

Result<WireStats> DecodeStats(std::string_view payload) {
  ByteReader r(payload);
  WireStats stats;
  stats.num_threads = r.ReadValue<uint32_t>();
  stats.connections = r.ReadValue<uint64_t>();
  stats.submitted = r.ReadValue<uint64_t>();
  stats.completed = r.ReadValue<uint64_t>();
  stats.rejected = r.ReadValue<uint64_t>();
  stats.rate_limited = r.ReadValue<uint64_t>();
  stats.cancelled_by_disconnect = r.ReadValue<uint64_t>();
  stats.inflight = r.ReadValue<uint64_t>();
  stats.service_finished = r.ReadValue<uint64_t>();
  stats.service_live_contexts = r.ReadValue<uint64_t>();
  stats.service_retained_slots = r.ReadValue<uint64_t>();
  const uint32_t threads = r.ReadValue<uint32_t>();
  if (!r.ok()) return Status::Corruption("malformed STATS frame");
  // 6 u64 counters per row; the bound keeps a corrupt count from turning
  // into a giant allocation before the length check can fail. A lower
  // bound (not equality) because per-graph rows may trail the IO rows.
  if (r.remaining() < static_cast<size_t>(threads) * 48) {
    return Status::Corruption("malformed STATS frame");
  }
  stats.io_threads.resize(threads);
  for (WireIoThreadStats& t : stats.io_threads) {
    t.connections = r.ReadValue<uint64_t>();
    t.frames_in = r.ReadValue<uint64_t>();
    t.frames_out = r.ReadValue<uint64_t>();
    t.bytes_in = r.ReadValue<uint64_t>();
    t.bytes_out = r.ReadValue<uint64_t>();
    t.rejects = r.ReadValue<uint64_t>();
  }
  if (!r.ok()) return Status::Corruption("malformed STATS frame");
  if (r.remaining() > 0) {
    // Optional graph-row section from a catalog-era server.
    const uint64_t count = ReadVarint(r);
    if (!r.ok() || count > r.remaining()) {
      return Status::Corruption("malformed STATS frame");
    }
    stats.graphs.resize(count);
    for (WireGraphStats& g : stats.graphs) {
      if (!ReadGraphStats(r, &g)) {
        return Status::Corruption("malformed STATS frame");
      }
    }
  }
  if (r.ok() && r.remaining() > 0) {
    // Second optional tier: uptime + slow-query ring (observability-era
    // servers). A payload that has graph rows but ends before this point
    // is a valid pre-observability encoding.
    stats.uptime_seconds = r.ReadValue<double>();
    stats.monotonic_seconds = r.ReadValue<double>();
    const uint64_t count = ReadVarint(r);
    // >= 37 bytes per row (fixed fields + 1-byte name length); the bound
    // keeps a corrupt count from turning into a giant allocation.
    if (!r.ok() || count > r.remaining() / 37) {
      return Status::Corruption("malformed STATS frame");
    }
    stats.slow_queries.resize(count);
    for (WireSlowQuery& s : stats.slow_queries) {
      s.request_id = r.ReadValue<uint64_t>();
      s.tenant_id = r.ReadValue<uint32_t>();
      if (!ReadString(r, &s.graph)) {
        return Status::Corruption("malformed STATS frame");
      }
      s.total_seconds = r.ReadValue<double>();
      s.queue_seconds = r.ReadValue<double>();
      s.run_seconds = r.ReadValue<double>();
      s.deliver_seconds = r.ReadValue<double>();
    }
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::Corruption("malformed STATS frame");
  }
  return stats;
}

std::string EncodeCatalogRequest(const WireCatalogRequest& request) {
  std::string payload;
  AppendString(request.name, &payload);
  AppendString(request.path, &payload);
  return payload;
}

Result<WireCatalogRequest> DecodeCatalogRequest(std::string_view payload) {
  ByteReader r(payload);
  WireCatalogRequest request;
  if (!ReadString(r, &request.name) || !ReadString(r, &request.path) ||
      r.remaining() != 0) {
    return Status::Corruption("malformed catalog-request frame");
  }
  return request;
}

std::string EncodeCatalogReply(const WireCatalogReply& reply) {
  std::string payload;
  AppendValue<uint8_t>(reply.ok ? 1 : 0, &payload);
  AppendString(reply.message, &payload);
  AppendVarint(reply.graphs.size(), &payload);
  for (const WireGraphStats& g : reply.graphs) AppendGraphStats(g, &payload);
  return payload;
}

Result<WireCatalogReply> DecodeCatalogReply(std::string_view payload) {
  ByteReader r(payload);
  WireCatalogReply reply;
  reply.ok = r.ReadValue<uint8_t>() != 0;
  if (!r.ok() || !ReadString(r, &reply.message)) {
    return Status::Corruption("malformed CATALOG_REPLY frame");
  }
  const uint64_t count = ReadVarint(r);
  // Every row costs at least its name's length prefix plus the fixed
  // counters, so a count beyond the remaining bytes is corrupt before
  // anything is reserved.
  if (!r.ok() || count > r.remaining()) {
    return Status::Corruption("malformed CATALOG_REPLY frame");
  }
  reply.graphs.resize(count);
  for (WireGraphStats& g : reply.graphs) {
    if (!ReadGraphStats(r, &g)) {
      return Status::Corruption("malformed CATALOG_REPLY frame");
    }
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::Corruption("malformed CATALOG_REPLY frame");
  }
  return reply;
}

std::string EncodeFeatures(uint32_t features) {
  std::string payload;
  AppendValue<uint32_t>(features, &payload);
  return payload;
}

Result<uint32_t> DecodeFeatures(std::string_view payload) {
  ByteReader r(payload);
  const uint32_t features = r.ReadValue<uint32_t>();
  if (!r.ok() || r.remaining() != 0) {
    return Status::Corruption("malformed HELLO frame");
  }
  return features;
}

std::string EncodeBatchPayload(const std::vector<std::string>& entries) {
  size_t total = 10;
  for (const std::string& e : entries) total += e.size() + 10;
  std::string payload;
  payload.reserve(total);
  AppendVarint(entries.size(), &payload);
  for (const std::string& e : entries) {
    AppendVarint(e.size(), &payload);
    payload.append(e);
  }
  return payload;
}

Result<std::vector<std::string_view>> DecodeBatchPayload(
    std::string_view payload) {
  ByteReader r(payload);
  const uint64_t count = ReadVarint(r);
  // Every entry costs at least its one-byte length prefix, so a count
  // beyond the remaining bytes is corrupt before anything is reserved.
  if (!r.ok() || count > r.remaining()) {
    return Status::Corruption("malformed batch frame");
  }
  std::vector<std::string_view> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t bytes = ReadVarint(r);
    if (!r.ok() || bytes > r.remaining()) {
      return Status::Corruption("malformed batch frame");
    }
    entries.push_back(r.rest().substr(0, bytes));
    r.Skip(bytes);
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::Corruption("malformed batch frame");
  }
  return entries;
}

void AppendFrameMaybeCompressed(FrameType type, std::string_view payload,
                                bool compress, std::string* out) {
  if (compress && payload.size() >= kCompressThresholdBytes) {
    std::string wrapped;
    wrapped.reserve(payload.size() / 2 + 16);
    AppendValue<uint8_t>(static_cast<uint8_t>(type), &wrapped);
    AppendVarint(payload.size(), &wrapped);
    const size_t header = wrapped.size();
    LzssCompress(payload, &wrapped);
    if (wrapped.size() - header < payload.size()) {
      AppendFrame(FrameType::kCompressed, wrapped, out);
      return;
    }
  }
  AppendFrame(type, payload, out);
}

Result<FrameType> DecodeCompressedFrame(std::string_view payload,
                                        std::string* inner_payload) {
  ByteReader r(payload);
  const uint8_t inner = r.ReadValue<uint8_t>();
  const uint64_t raw_bytes = ReadVarint(r);
  if (!r.ok() || !ValidFrameType(inner) ||
      inner == static_cast<uint8_t>(FrameType::kCompressed)) {
    return Status::Corruption("malformed COMPRESSED frame");
  }
  if (raw_bytes > kMaxWirePayload) {
    return Status::Corruption("COMPRESSED frame exceeds the payload bound");
  }
  inner_payload->clear();
  inner_payload->reserve(raw_bytes);
  Status s = LzssDecompress(r.rest(), raw_bytes, inner_payload);
  if (!s.ok()) return s;
  if (inner_payload->size() != raw_bytes) {
    return Status::Corruption("COMPRESSED frame: raw-size mismatch");
  }
  return static_cast<FrameType>(inner);
}

Result<bool> FrameReader::Next(Frame* out) {
  // Compact lazily: drop consumed bytes once they dominate the buffer, so
  // the hot path is an offset bump, not a memmove per frame.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffer_.size() - consumed_ < kWireHeaderBytes) return false;
  const char* header = buffer_.data() + consumed_;
  uint32_t magic;
  std::memcpy(&magic, header, sizeof(magic));
  if (magic != kWireMagic) {
    return Status::Corruption("bad frame magic (incompatible peer?)");
  }
  const uint8_t type = static_cast<uint8_t>(header[4]);
  if (!ValidFrameType(type)) {
    return Status::Corruption("unknown frame type");
  }
  uint32_t payload_bytes;
  std::memcpy(&payload_bytes, header + 5, sizeof(payload_bytes));
  if (payload_bytes > kMaxWirePayload) {
    return Status::Corruption("frame exceeds the payload bound");
  }
  if (buffer_.size() - consumed_ < kWireHeaderBytes + payload_bytes) {
    return false;
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(buffer_, consumed_ + kWireHeaderBytes, payload_bytes);
  consumed_ += kWireHeaderBytes + payload_bytes;
  return true;
}

}  // namespace hgmatch
