#include "net/client.h"

#if defined(__unix__) || defined(__APPLE__)
#define HGMATCH_HAVE_SOCKETS 1
#endif

#if HGMATCH_HAVE_SOCKETS
#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/socket_util.h"
#endif

#include <utility>

namespace hgmatch {

#if HGMATCH_HAVE_SOCKETS

MatchClient::~MatchClient() { Close(); }

void MatchClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status MatchClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result) != 0) {
    return Status::IOError("cannot resolve " + host);
  }
  Status status = Status::IOError("cannot connect to " + host + ":" + port_str);
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      status = Status::OK();
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(result);
  return status;
}

Status MatchClient::SendFrame(FrameType type, const std::string& payload) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  std::string frame;
  AppendFrame(type, payload, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = net_internal::SendBytes(fd_, frame.data() + sent,
                                              frame.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    Close();
    return Status::IOError("connection lost while sending");
  }
  return Status::OK();
}

Result<FrameReader::Frame> MatchClient::ReadOneFrame() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  char buffer[1 << 16];
  while (true) {
    FrameReader::Frame frame;
    Result<bool> next = reader_.Next(&frame);
    if (!next.ok()) {
      Close();
      return next.status();
    }
    if (next.value()) return frame;
    const ssize_t got = ::read(fd_, buffer, sizeof(buffer));
    if (got > 0) {
      reader_.Feed(buffer, static_cast<size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    Close();
    return Status::IOError("connection closed by server");
  }
}

// Files one already-read outcome/rejection frame under its request id;
// kError carries the server's message, and anything else is a protocol
// violation (this client is synchronous: no other frame can be pending).
Status MatchClient::AbsorbFrame(const FrameReader::Frame& frame) {
  switch (frame.type) {
    case FrameType::kOutcome: {
      Result<WireOutcome> outcome = DecodeOutcome(frame.payload);
      if (!outcome.ok()) {
        Close();
        return outcome.status();
      }
      const uint64_t id = outcome.value().request_id;
      ready_.emplace(id, std::move(outcome).value());
      return Status::OK();
    }
    case FrameType::kRejected: {
      Result<uint64_t> id = DecodeRequestId(frame.payload);
      if (!id.ok()) {
        Close();
        return id.status();
      }
      WireOutcome rejected;
      rejected.request_id = id.value();
      rejected.outcome.status = QueryStatus::kRejected;
      ready_.emplace(id.value(), rejected);
      return Status::OK();
    }
    case FrameType::kError:
      Close();
      return Status::Internal("server error: " + frame.payload);
    default:
      Close();
      return Status::Corruption("unexpected frame from server");
  }
}

Status MatchClient::PumpOutcomeFrame() {
  Result<FrameReader::Frame> frame = ReadOneFrame();
  if (!frame.ok()) return frame.status();
  return AbsorbFrame(frame.value());
}

Result<FrameReader::Frame> MatchClient::ReadFrameOfType(FrameType want) {
  while (true) {
    Result<FrameReader::Frame> frame = ReadOneFrame();
    if (!frame.ok()) return frame.status();
    if (frame.value().type == want) return frame;
    const Status absorbed = AbsorbFrame(frame.value());
    if (!absorbed.ok()) return absorbed;
  }
}

Result<uint64_t> MatchClient::Submit(const Hypergraph& query,
                                     const SubmitOptions& options) {
  WireSubmit submit;
  submit.request_id = next_request_id_++;
  submit.tenant_id = options.tenant_id;
  submit.priority = options.priority;
  submit.weight = options.weight;
  submit.timeout_seconds = options.timeout_seconds;
  submit.limit = options.limit;
  std::string payload = EncodeSubmit(submit, query);
  if (payload.size() > kMaxWirePayload) {
    // Fail just this request locally: sending it would make the server
    // error-close the connection, killing every pipelined sibling.
    return Status::InvalidArgument(
        "query exceeds the wire payload bound (" +
        std::to_string(payload.size()) + " > " +
        std::to_string(kMaxWirePayload) + " bytes)");
  }
  const Status status = SendFrame(FrameType::kSubmit, payload);
  if (!status.ok()) return status;
  return submit.request_id;
}

Result<WireOutcome> MatchClient::WaitOutcome(uint64_t request_id) {
  while (true) {
    auto it = ready_.find(request_id);
    if (it != ready_.end()) {
      WireOutcome outcome = std::move(it->second);
      ready_.erase(it);
      return outcome;
    }
    const Status pumped = PumpOutcomeFrame();
    if (!pumped.ok()) return pumped;
  }
}

Status MatchClient::Cancel(uint64_t request_id) {
  return SendFrame(FrameType::kCancel, EncodeRequestId(request_id));
}

Status MatchClient::Ping() {
  const Status sent = SendFrame(FrameType::kPing, "ping");
  if (!sent.ok()) return sent;
  Result<FrameReader::Frame> pong = ReadFrameOfType(FrameType::kPong);
  if (!pong.ok()) return pong.status();
  if (pong.value().payload != "ping") {
    return Status::Corruption("PONG payload mismatch");
  }
  return Status::OK();
}

Result<WireStats> MatchClient::Stats() {
  const Status sent = SendFrame(FrameType::kStats, "");
  if (!sent.ok()) return sent;
  Result<FrameReader::Frame> reply =
      ReadFrameOfType(FrameType::kStatsReply);
  if (!reply.ok()) return reply.status();
  return DecodeStats(reply.value().payload);
}

Status MatchClient::RequestShutdown() {
  return SendFrame(FrameType::kShutdown, "");
}

#else  // !HGMATCH_HAVE_SOCKETS

MatchClient::~MatchClient() = default;
void MatchClient::Close() {}
Status MatchClient::Connect(const std::string&, uint16_t) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status MatchClient::SendFrame(FrameType, const std::string&) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<FrameReader::Frame> MatchClient::ReadFrameOfType(FrameType) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status MatchClient::AbsorbFrame(const FrameReader::Frame&) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status MatchClient::PumpOutcomeFrame() {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<uint64_t> MatchClient::Submit(const Hypergraph&,
                                     const SubmitOptions&) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<WireOutcome> MatchClient::WaitOutcome(uint64_t) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status MatchClient::Cancel(uint64_t) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status MatchClient::Ping() {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<WireStats> MatchClient::Stats() {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status MatchClient::RequestShutdown() {
  return Status::Internal("hgmatch net requires POSIX sockets");
}

#endif  // HGMATCH_HAVE_SOCKETS

}  // namespace hgmatch
