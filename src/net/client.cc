#include "net/client.h"

#include <utility>

namespace hgmatch {

MatchClient::~MatchClient() { Close(); }

void MatchClient::Close() { async_.Close(); }

Status MatchClient::Connect(const std::string& host, uint16_t port) {
  return async_.Connect(host, port);
}

Result<uint64_t> MatchClient::Submit(const Hypergraph& query,
                                     const SubmitOptions& options) {
  return SubmitTo("", query, options);
}

Result<uint64_t> MatchClient::SubmitTo(const std::string& graph,
                                       const Hypergraph& query,
                                       const SubmitOptions& options) {
  return async_.Submit(graph, query, options,
                       [this](const AsyncOutcome& result) {
                         std::lock_guard<std::mutex> lock(mutex_);
                         if (result.transport.ok()) {
                           ready_.emplace(result.request_id, result.wire);
                         } else if (failure_.ok()) {
                           failure_ = result.transport;
                         }
                         cv_.notify_all();
                       });
}

Result<std::vector<uint64_t>> MatchClient::SubmitBatch(
    const std::vector<const Hypergraph*>& queries,
    const SubmitOptions& options) {
  return SubmitBatchTo("", queries, options);
}

Result<std::vector<uint64_t>> MatchClient::SubmitBatchTo(
    const std::string& graph,
    const std::vector<const Hypergraph*>& queries,
    const SubmitOptions& options) {
  return async_.SubmitBatch(graph, queries, options,
                            [this](const AsyncOutcome& result) {
                              std::lock_guard<std::mutex> lock(mutex_);
                              if (result.transport.ok()) {
                                ready_.emplace(result.request_id,
                                               result.wire);
                              } else if (failure_.ok()) {
                                failure_ = result.transport;
                              }
                              cv_.notify_all();
                            });
}

Result<WireOutcome> MatchClient::WaitOutcome(uint64_t request_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this, request_id] {
    return ready_.count(request_id) != 0 || !failure_.ok();
  });
  auto it = ready_.find(request_id);
  if (it != ready_.end()) {
    WireOutcome outcome = std::move(it->second);
    ready_.erase(it);
    return outcome;
  }
  return failure_;
}

Status MatchClient::Cancel(uint64_t request_id) {
  return async_.Cancel(request_id);
}

Status MatchClient::Ping() { return async_.Ping(); }

Result<WireStats> MatchClient::Stats() { return async_.Stats(); }

Status MatchClient::RequestShutdown() { return async_.RequestShutdown(); }

}  // namespace hgmatch
