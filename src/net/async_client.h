#ifndef HGMATCH_NET_ASYNC_CLIENT_H_
#define HGMATCH_NET_ASYNC_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/hypergraph.h"
#include "net/protocol.h"
#include "parallel/submit_options.h"
#include "util/status.h"

namespace hgmatch {

/// Options of the asynchronous wire client.
struct AsyncClientOptions {
  /// Bound on requests submitted but not yet answered: Submit() blocks
  /// while the window is full (until an outcome, a rejection or a
  /// connection failure frees a slot), so a fast producer cannot buffer
  /// unbounded work into a slow server. 0 = unbounded.
  uint32_t max_inflight = 1024;

  /// Feature bits (kFeatureBatch | kFeatureCompression | kFeatureCatalog |
  /// kFeatureTrace) to request via a kHello exchange at Connect(). The
  /// default 0 sends
  /// no HELLO at all — the stream is then byte-identical to the pre-HELLO
  /// protocol, so the default client interoperates with servers of any
  /// age. Requesting features against a pre-HELLO server fails Connect()
  /// (that server answers the unknown frame with kError): opting in is
  /// explicit.
  uint32_t request_features = 0;
};

/// Wire-level transfer counters of one client connection, for bytes/query
/// accounting (bench_net_loopback, `hgmatch query --connect` framing
/// stats). Frames count wire frames as sent/received — a kBatchSubmit or
/// kCompressed wrapper is one frame however many submissions it carries.
struct ClientTransferStats {
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_received = 0;
};

/// What a submission's callback receives — exactly once per accepted
/// Submit(), whatever happened to the request.
struct AsyncOutcome {
  uint64_t request_id = 0;

  /// The transport's verdict. ok(): the server answered and `wire` holds
  /// its reply (including server-side rejections, which surface as a
  /// QueryStatus::kRejected outcome with `wire.reject_reason` set).
  /// Not-ok: the connection was lost or closed before the reply arrived —
  /// `wire` is meaningless and the request's fate on the server is
  /// unknown.
  Status transport;

  /// The decoded reply (valid iff transport.ok()).
  WireOutcome wire;
};

using OutcomeCallback = std::function<void(const AsyncOutcome&)>;

/// Asynchronous client of the hgmatch wire protocol: Submit() writes the
/// frame and returns immediately; an internal reader thread dispatches
/// each OUTCOME/REJECTED/ERROR frame to its request's callback as it
/// arrives. This is the engine of the wire client stack — the blocking
/// MatchClient (net/client.h) is a thin facade that parks on these
/// callbacks.
///
/// Callback contract:
///  - Exactly once: every Submit() that returns a request id has its
///    callback invoked exactly once — with the server's reply, or with a
///    not-ok transport status when the connection dies or Close() runs
///    first. A Submit() that returns an error was never accepted and its
///    callback never fires (with one documented exception: a send that
///    fails while the reader is concurrently tearing the connection down
///    may already have handed the callback to the failure path; Submit
///    then reports the id as accepted rather than erroring, so the
///    exactly-once rule holds).
///  - Callbacks run on the reader thread (or, for connection teardown, on
///    the thread that triggered it). Keep them fast; do not call Close(),
///    Ping() or Stats() from inside one (self-join / self-wait deadlock).
///    Submit() and Cancel() are safe from callbacks.
///  - Cancel() is fire-and-forget: the outcome still arrives (cancelled
///    or already finished) and resolves the callback normally.
///
/// All public methods are thread-safe.
class AsyncMatchClient {
 public:
  explicit AsyncMatchClient(const AsyncClientOptions& options = {});
  ~AsyncMatchClient();

  AsyncMatchClient(const AsyncMatchClient&) = delete;
  AsyncMatchClient& operator=(const AsyncMatchClient&) = delete;

  /// Connects to host:port and starts the reader thread. POSIX-only.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const;

  /// Sends one query and registers `callback` for its reply; returns the
  /// connection-unique request id. Blocks only when the in-flight window
  /// (AsyncClientOptions::max_inflight) is full. `options.sink` is
  /// ignored (embeddings do not cross the wire; counts and stats do).
  Result<uint64_t> Submit(const Hypergraph& query,
                          const SubmitOptions& options,
                          OutcomeCallback callback) {
    return Submit("", query, options, std::move(callback));
  }

  /// Submit routed to a named graph in the server's catalog (empty =
  /// default graph). Naming a graph requires kFeatureCatalog to have been
  /// granted at Connect(); an unknown graph comes back as a
  /// QueryStatus::kRejected outcome with reject_reason kUnknownGraph.
  Result<uint64_t> Submit(const std::string& graph, const Hypergraph& query,
                          const SubmitOptions& options,
                          OutcomeCallback callback);

  /// Submits many queries sharing one options/callback pair, coalescing
  /// them into kBatchSubmit frames — one syscall and one server admission
  /// pass per chunk instead of per query. Entries are chunked by the
  /// in-flight window and the frame payload bound; each chunk blocks
  /// until the window has room for all of it. Returns the request ids in
  /// input order; the callback fires exactly once per id, as with
  /// Submit(). Falls back to per-query SUBMIT frames when the server did
  /// not grant kFeatureBatch (same ids, same callbacks, more frames).
  Result<std::vector<uint64_t>> SubmitBatch(
      const std::vector<const Hypergraph*>& queries,
      const SubmitOptions& options, OutcomeCallback callback) {
    return SubmitBatch("", queries, options, std::move(callback));
  }

  /// SubmitBatch routed to a named graph (empty = default graph; needs
  /// kFeatureCatalog when non-empty).
  Result<std::vector<uint64_t>> SubmitBatch(
      const std::string& graph,
      const std::vector<const Hypergraph*>& queries,
      const SubmitOptions& options, OutcomeCallback callback);

  /// Feature bits granted by the server's kHelloReply (0 before Connect,
  /// or when AsyncClientOptions::request_features was 0).
  uint32_t features() const;

  /// Transfer counters since Connect(). Thread-safe snapshot.
  ClientTransferStats TransferStats() const;

  /// Requests cancellation of an in-flight submission (fire and forget).
  Status Cancel(uint64_t request_id);

  /// Round-trips a PING frame (blocks for the echo).
  Status Ping();

  /// Fetches the server statistics snapshot (blocks for the reply).
  Result<WireStats> Stats();

  /// Asks the server process to shut down (needs the server to run with
  /// allow_remote_shutdown).
  Status RequestShutdown();

  /// Catalog verbs (block for the kCatalogReply; need kFeatureCatalog).
  /// Every reply carries the post-verb graph list; a failed verb comes
  /// back as ok() transport with reply.ok == false and the server's
  /// message — only transport/protocol trouble is a non-ok Result.
  Result<WireCatalogReply> ListGraphs();
  /// Asks the server to index `path` (a file on the *server's*
  /// filesystem) and serve it as `name` (needs allow_remote_load there).
  Result<WireCatalogReply> LoadGraph(const std::string& name,
                                     const std::string& path);
  /// Removes `name`; in-flight queries of that graph still resolve.
  Result<WireCatalogReply> UnloadGraph(const std::string& name);

  /// Closes the connection and joins the reader thread. Every
  /// still-outstanding callback fires first with a not-ok transport
  /// status — no request is left dangling. Idempotent; must not be
  /// called from a callback.
  void Close();

 private:
  void ReaderLoop();
  /// Dispatches one server frame (unwrapping kCompressed first). False =
  /// fatal: the connection failed and the reader must exit.
  bool HandleServerFrame(FrameType type, std::string& payload);
  /// Resolves one answered request: pops its callback under the state
  /// lock, invokes it outside.
  void FinishOne(WireOutcome wire);
  /// Connection teardown: records the first failure, fires every pending
  /// callback with it, wakes every waiter.
  void FailAll(const Status& status);
  /// Writes pre-framed bytes (serialised by the send lock) and counts
  /// them into the transfer stats.
  Status SendEncoded(const std::string& frame);
  /// Writes one whole frame (serialised by the send lock).
  Status SendFrame(FrameType type, const std::string& payload);
  /// SendFrame, compressed when the server granted kFeatureCompression.
  Status SendFrameNegotiated(FrameType type, const std::string& payload);
  /// Shared body of the catalog verbs: requires kFeatureCatalog, sends
  /// one frame, parks for the next kCatalogReply (FIFO, like Stats()).
  Result<WireCatalogReply> CatalogRoundTrip(FrameType type,
                                            const std::string& payload);

  const AsyncClientOptions options_;

  // Serialises socket writes so pipelined frames never interleave.
  std::mutex send_mutex_;

  // Everything below state_mutex_; cv_ wakes window waiters, ping/stats
  // waiters and WaitOutcome-style pollers in the facade.
  mutable std::mutex state_mutex_;
  std::condition_variable cv_;
  int fd_ = -1;
  bool closed_ = false;          // Close() ran (or is running)
  Status failure_;               // sticky first transport failure
  uint64_t next_request_id_ = 1;
  std::unordered_map<uint64_t, OutcomeCallback> pending_;
  uint64_t pings_sent_ = 0;      // FIFO replies: waiter N parks until
  uint64_t pongs_received_ = 0;  // received >= its ticket N
  std::deque<WireStats> stats_replies_;
  std::deque<WireCatalogReply> catalog_replies_;
  uint32_t features_ = 0;    // granted by kHelloReply
  bool hello_done_ = false;  // kHelloReply arrived (Connect parks on this)

  // Transfer counters (ClientTransferStats): bumped outside state_mutex_
  // on the send and reader paths.
  std::atomic<uint64_t> st_frames_sent_{0};
  std::atomic<uint64_t> st_bytes_sent_{0};
  std::atomic<uint64_t> st_frames_received_{0};
  std::atomic<uint64_t> st_bytes_received_{0};

  std::thread reader_;
};

}  // namespace hgmatch

#endif  // HGMATCH_NET_ASYNC_CLIENT_H_
