#ifndef HGMATCH_NET_ASYNC_CLIENT_H_
#define HGMATCH_NET_ASYNC_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/hypergraph.h"
#include "net/protocol.h"
#include "parallel/submit_options.h"
#include "util/status.h"

namespace hgmatch {

/// Options of the asynchronous wire client.
struct AsyncClientOptions {
  /// Bound on requests submitted but not yet answered: Submit() blocks
  /// while the window is full (until an outcome, a rejection or a
  /// connection failure frees a slot), so a fast producer cannot buffer
  /// unbounded work into a slow server. 0 = unbounded.
  uint32_t max_inflight = 1024;
};

/// What a submission's callback receives — exactly once per accepted
/// Submit(), whatever happened to the request.
struct AsyncOutcome {
  uint64_t request_id = 0;

  /// The transport's verdict. ok(): the server answered and `wire` holds
  /// its reply (including server-side rejections, which surface as a
  /// QueryStatus::kRejected outcome with `wire.reject_reason` set).
  /// Not-ok: the connection was lost or closed before the reply arrived —
  /// `wire` is meaningless and the request's fate on the server is
  /// unknown.
  Status transport;

  /// The decoded reply (valid iff transport.ok()).
  WireOutcome wire;
};

using OutcomeCallback = std::function<void(const AsyncOutcome&)>;

/// Asynchronous client of the hgmatch wire protocol: Submit() writes the
/// frame and returns immediately; an internal reader thread dispatches
/// each OUTCOME/REJECTED/ERROR frame to its request's callback as it
/// arrives. This is the engine of the wire client stack — the blocking
/// MatchClient (net/client.h) is a thin facade that parks on these
/// callbacks.
///
/// Callback contract:
///  - Exactly once: every Submit() that returns a request id has its
///    callback invoked exactly once — with the server's reply, or with a
///    not-ok transport status when the connection dies or Close() runs
///    first. A Submit() that returns an error was never accepted and its
///    callback never fires (with one documented exception: a send that
///    fails while the reader is concurrently tearing the connection down
///    may already have handed the callback to the failure path; Submit
///    then reports the id as accepted rather than erroring, so the
///    exactly-once rule holds).
///  - Callbacks run on the reader thread (or, for connection teardown, on
///    the thread that triggered it). Keep them fast; do not call Close(),
///    Ping() or Stats() from inside one (self-join / self-wait deadlock).
///    Submit() and Cancel() are safe from callbacks.
///  - Cancel() is fire-and-forget: the outcome still arrives (cancelled
///    or already finished) and resolves the callback normally.
///
/// All public methods are thread-safe.
class AsyncMatchClient {
 public:
  explicit AsyncMatchClient(const AsyncClientOptions& options = {});
  ~AsyncMatchClient();

  AsyncMatchClient(const AsyncMatchClient&) = delete;
  AsyncMatchClient& operator=(const AsyncMatchClient&) = delete;

  /// Connects to host:port and starts the reader thread. POSIX-only.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const;

  /// Sends one query and registers `callback` for its reply; returns the
  /// connection-unique request id. Blocks only when the in-flight window
  /// (AsyncClientOptions::max_inflight) is full. `options.sink` is
  /// ignored (embeddings do not cross the wire; counts and stats do).
  Result<uint64_t> Submit(const Hypergraph& query,
                          const SubmitOptions& options,
                          OutcomeCallback callback);

  /// Requests cancellation of an in-flight submission (fire and forget).
  Status Cancel(uint64_t request_id);

  /// Round-trips a PING frame (blocks for the echo).
  Status Ping();

  /// Fetches the server statistics snapshot (blocks for the reply).
  Result<WireStats> Stats();

  /// Asks the server process to shut down (needs the server to run with
  /// allow_remote_shutdown).
  Status RequestShutdown();

  /// Closes the connection and joins the reader thread. Every
  /// still-outstanding callback fires first with a not-ok transport
  /// status — no request is left dangling. Idempotent; must not be
  /// called from a callback.
  void Close();

 private:
  void ReaderLoop();
  /// Resolves one answered request: pops its callback under the state
  /// lock, invokes it outside.
  void FinishOne(WireOutcome wire);
  /// Connection teardown: records the first failure, fires every pending
  /// callback with it, wakes every waiter.
  void FailAll(const Status& status);
  /// Writes one whole frame (serialised by the send lock).
  Status SendFrame(FrameType type, const std::string& payload);

  const AsyncClientOptions options_;

  // Serialises socket writes so pipelined frames never interleave.
  std::mutex send_mutex_;

  // Everything below state_mutex_; cv_ wakes window waiters, ping/stats
  // waiters and WaitOutcome-style pollers in the facade.
  mutable std::mutex state_mutex_;
  std::condition_variable cv_;
  int fd_ = -1;
  bool closed_ = false;          // Close() ran (or is running)
  Status failure_;               // sticky first transport failure
  uint64_t next_request_id_ = 1;
  std::unordered_map<uint64_t, OutcomeCallback> pending_;
  uint64_t pings_sent_ = 0;      // FIFO replies: waiter N parks until
  uint64_t pongs_received_ = 0;  // received >= its ticket N
  std::deque<WireStats> stats_replies_;

  std::thread reader_;
};

}  // namespace hgmatch

#endif  // HGMATCH_NET_ASYNC_CLIENT_H_
