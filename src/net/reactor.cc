#include "net/reactor.h"

#if defined(__unix__) || defined(__APPLE__)
#define HGMATCH_HAVE_SOCKETS 1
#endif

#if HGMATCH_HAVE_SOCKETS

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

namespace hgmatch {

namespace {

bool MakeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

#if defined(__linux__)

uint32_t ToEpoll(uint32_t events) {
  uint32_t e = 0;  // level-triggered: no EPOLLET anywhere
  if (events & EventLoop::kReadable) e |= EPOLLIN;
  if (events & EventLoop::kWritable) e |= EPOLLOUT;
  return e;
}

uint32_t FromEpoll(uint32_t e) {
  uint32_t events = 0;
  if (e & EPOLLIN) events |= EventLoop::kReadable;
  if (e & EPOLLOUT) events |= EventLoop::kWritable;
  if (e & EPOLLERR) events |= EventLoop::kError;
  if (e & EPOLLHUP) events |= EventLoop::kHangup;
  return events;
}

#endif  // __linux__

}  // namespace

EventLoop::~EventLoop() { Close(); }

void EventLoop::Close() {
  if (poll_fd_ >= 0) {
    ::close(poll_fd_);
    poll_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
}

Status EventLoop::Init() {
  if (::pipe(wake_pipe_) != 0) return Status::IOError("pipe() failed");
  MakeNonBlocking(wake_pipe_[0]);
  MakeNonBlocking(wake_pipe_[1]);
#if defined(__linux__)
  poll_fd_ = ::epoll_create1(0);
  if (poll_fd_ < 0) {
    Close();
    return Status::IOError("epoll_create1() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_pipe_[0];
  if (::epoll_ctl(poll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev) != 0) {
    Close();
    return Status::IOError("epoll_ctl(wake pipe) failed");
  }
#endif
  return Status::OK();
}

Status EventLoop::Add(int fd, uint32_t events) {
#if defined(__linux__)
  epoll_event ev{};
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  if (::epoll_ctl(poll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(ADD) failed");
  }
#else
  entries_.push_back({fd, events});
#endif
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
#if defined(__linux__)
  epoll_event ev{};
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  if (::epoll_ctl(poll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(MOD) failed");
  }
#else
  for (PollEntry& entry : entries_) {
    if (entry.fd == fd) {
      entry.events = events;
      break;
    }
  }
#endif
  return Status::OK();
}

void EventLoop::Remove(int fd) {
#if defined(__linux__)
  ::epoll_ctl(poll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#else
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].fd == fd) {
      entries_.erase(entries_.begin() + i);
      break;
    }
  }
#endif
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(task_mutex_);
    tasks_.push_back(std::move(task));
  }
  Wake();
}

void EventLoop::Wake() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 0;
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
}

int EventLoop::Wait(int timeout_ms, std::vector<Event>* out) {
  out->clear();
#if defined(__linux__)
  epoll_event raw[64];
  const int n = ::epoll_wait(poll_fd_, raw, 64, timeout_ms);
  if (n < 0 && errno != EINTR) return -1;
  bool woken = false;
  for (int i = 0; i < n; ++i) {
    if (raw[i].data.fd == wake_pipe_[0]) {
      woken = true;
      continue;
    }
    out->push_back({raw[i].data.fd, FromEpoll(raw[i].events)});
  }
#else
  std::vector<pollfd> fds;
  fds.reserve(entries_.size() + 1);
  fds.push_back({wake_pipe_[0], POLLIN, 0});
  for (const PollEntry& entry : entries_) {
    short want = 0;
    if (entry.events & kReadable) want |= POLLIN;
    if (entry.events & kWritable) want |= POLLOUT;
    fds.push_back({entry.fd, want, 0});
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0 && errno != EINTR) return -1;
  const bool woken = n > 0 && (fds[0].revents & POLLIN) != 0;
  for (size_t i = 1; i < fds.size(); ++i) {
    const short revents = fds[i].revents;
    if (revents == 0) continue;
    uint32_t events = 0;
    if (revents & POLLIN) events |= kReadable;
    if (revents & POLLOUT) events |= kWritable;
    if (revents & (POLLERR | POLLNVAL)) events |= kError;
    if (revents & POLLHUP) events |= kHangup;
    out->push_back({fds[i].fd, events});
  }
#endif
  if (woken) {
    char drain[64];
    while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
    }
  }
  // Posted tasks run even when the wake raced the poll call: a post made
  // while the loop was busy elsewhere left its byte in the pipe, but the
  // task must not wait another cycle.
  {
    std::lock_guard<std::mutex> lock(task_mutex_);
    running_.swap(tasks_);
  }
  for (std::function<void()>& task : running_) task();
  running_.clear();
  return static_cast<int>(out->size());
}

}  // namespace hgmatch

#else  // !HGMATCH_HAVE_SOCKETS

namespace hgmatch {

EventLoop::~EventLoop() = default;
void EventLoop::Close() {}
Status EventLoop::Init() {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status EventLoop::Add(int, uint32_t) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status EventLoop::Modify(int, uint32_t) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
void EventLoop::Remove(int) {}
void EventLoop::Post(std::function<void()>) {}
void EventLoop::Wake() {}
int EventLoop::Wait(int, std::vector<Event>*) { return -1; }

}  // namespace hgmatch

#endif  // HGMATCH_HAVE_SOCKETS
