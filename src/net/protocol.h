#ifndef HGMATCH_NET_PROTOCOL_H_
#define HGMATCH_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/hypergraph.h"
#include "parallel/scheduler.h"
#include "util/status.h"

namespace hgmatch {

/// Wire protocol of the hgmatch TCP front end (net/server.h serves it,
/// net/client.h speaks it): a stream of length-prefixed binary frames,
/// little-endian, no padding:
///
///   [u32 magic "HGN1"] [u8 type] [u32 payload bytes] [payload...]
///
/// The magic doubles as the protocol version — an incompatible revision
/// bumps the trailing digit and old peers fail fast on the first frame.
/// Payloads are bounded by kMaxWirePayload; a frame announcing more (or a
/// header with the wrong magic, or an undecodable payload) is a protocol
/// error: the server answers with one kError frame and closes the
/// connection, cancelling that connection's in-flight queries.
///
/// Frame payloads:
///   kSubmit     client->server  WireSubmit (options + inline query
///                               hypergraph in the io/binary_format image)
///   kOutcome    server->client  WireOutcome (full QueryOutcome/MatchStats)
///   kRejected   server->client  WireRejected (u64 request id + u8 reason):
///                               the submission was shed at the server edge
///                               — by queue-depth backpressure
///                               (SchedulerOptions::max_queued_queries) or
///                               by the per-tenant rate limiter
///                               (ServerOptions::max_submits_per_sec) —
///                               retry once the backlog/window drains
///   kCancel     client->server  u64 request id (unknown ids are ignored:
///                               the race with completion is benign)
///   kPing       client->server  arbitrary payload, echoed back
///   kPong       server->client  the kPing payload
///   kStats      client->server  empty
///   kStatsReply server->client  WireStats snapshot
///   kError      server->client  UTF-8 message; the connection closes next
///   kShutdown   client->server  empty; asks the server process to finish
///                               outstanding work and exit (honoured only
///                               with ServerOptions::allow_remote_shutdown)
///   kHello      client->server  u32 requested feature bits (kFeature*).
///                               Optional: a client that wants no optional
///                               feature sends no HELLO and the stream is
///                               byte-identical to the pre-HELLO protocol,
///                               so old and new peers always interoperate.
///   kHelloReply server->client  u32 granted feature bits (a subset of the
///                               request). Only features granted here may
///                               appear on the wire afterwards, in either
///                               direction.
///   kBatchSubmit client->server [varint count][varint bytes, SUBMIT
///                               payload]... — many submissions in one
///                               frame/syscall, admitted by the service in
///                               one pass. Requires kFeatureBatch.
///   kBatchOutcome server->client same framing over OUTCOME payloads:
///                               outcomes ready in the same reactor tick
///                               coalesce into one frame. Sent only to
///                               peers granted kFeatureBatch.
///   kCompressed either way      [u8 inner type][varint raw bytes][LZSS
///                               stream] — a whole frame payload
///                               compressed (io/compress.h), opt-in per
///                               frame. Requires kFeatureCompression; a
///                               stream that inflates past the declared
///                               raw size (or past kMaxWirePayload) is a
///                               protocol error, not an allocation.
///   kLoadGraph  client->server  WireCatalogRequest (graph name + a
///                               server-side .hgb path): load and index
///                               the file, serve it under the name.
///                               Requires kFeatureCatalog.
///   kUnloadGraph client->server WireCatalogRequest (name; path unused):
///                               remove the graph once its in-flight
///                               queries resolve. Requires kFeatureCatalog.
///   kListGraphs client->server  empty. Requires kFeatureCatalog.
///   kCatalogReply server->client WireCatalogReply: ok/error of the verb
///                               plus the current graph list (every
///                               catalog verb answers with one, so a
///                               client always sees the post-verb state).
///
/// Catalog-negotiated peers (kFeatureCatalog granted) additionally carry
/// an optional graph name in every SUBMIT/BATCH_SUBMIT entry, routing the
/// query to a named graph (empty = the server's default graph); peers
/// that never negotiated keep the original byte stream and always hit the
/// default graph.
inline constexpr uint32_t kWireMagic = 0x314e'4748;  // "HGN1"

/// Upper bound on a frame payload (a ~16 MiB query hypergraph is far
/// beyond any sane pattern; real limits come from the data graph side).
inline constexpr uint32_t kMaxWirePayload = 16u << 20;

/// Bytes of the fixed frame header.
inline constexpr size_t kWireHeaderBytes = 4 + 1 + 4;

enum class FrameType : uint8_t {
  kSubmit = 1,
  kOutcome = 2,
  kRejected = 3,
  kCancel = 4,
  kPing = 5,
  kPong = 6,
  kStats = 7,
  kStatsReply = 8,
  kError = 9,
  kShutdown = 10,
  kHello = 11,
  kHelloReply = 12,
  kBatchSubmit = 13,
  kBatchOutcome = 14,
  kCompressed = 15,
  kLoadGraph = 16,
  kUnloadGraph = 17,
  kListGraphs = 18,
  kCatalogReply = 19,
};

/// Feature bits carried by kHello / kHelloReply.
inline constexpr uint32_t kFeatureCompression = 1u << 0;
inline constexpr uint32_t kFeatureBatch = 1u << 1;
inline constexpr uint32_t kFeatureCatalog = 1u << 2;
/// Per-query tracing: the server records a QuerySpan for every submission
/// on the connection and appends it to each OUTCOME payload as a trailing
/// optional section (see the with_trace flag of EncodeOutcome /
/// DecodeOutcome). Peers that never negotiated the bit keep the
/// byte-identical pre-trace stream — the same compatibility pattern as
/// kFeatureCatalog's SUBMIT graph field.
inline constexpr uint32_t kFeatureTrace = 1u << 3;

/// Payloads below this size skip the compression attempt outright: the
/// wrapper overhead (type byte + raw-size varint + control bytes) eats any
/// win and the CPU spent is pure loss.
inline constexpr size_t kCompressThresholdBytes = 64;

/// One query submission as it crosses the wire: the client-chosen request
/// id (scopes the reply; unique per connection), the SubmitOptions fields
/// that make sense remotely (no sink), and the query itself.
struct WireSubmit {
  uint64_t request_id = 0;
  uint32_t tenant_id = 0;
  int32_t priority = 0;
  double weight = 1.0;
  double timeout_seconds = -1;              // < 0 = inherit server default
  uint64_t limit = ~uint64_t{0};            // SubmitOptions::kInheritLimit
  /// Target graph in the server's catalog (empty = default graph). On the
  /// wire only between catalog-negotiated peers — see the with_graph flag
  /// of EncodeSubmit/DecodeSubmit.
  std::string graph;
  Hypergraph query;
};

/// Why a submission was shed at the server edge (kRejected frames).
enum class RejectReason : uint8_t {
  /// The admission backlog was at its max_queued_queries bound.
  kQueueFull = 0,
  /// The tenant's token bucket (ServerOptions::max_submits_per_sec) was
  /// empty: the tenant is submitting faster than its allowance.
  kRateLimited = 1,
  /// The submission named a graph the catalog doesn't host (or one that
  /// is mid-unload). Not retryable until the graph is (re)loaded.
  kUnknownGraph = 2,
};

/// Stable display name: "queue-full", "rate-limited", "unknown-graph".
const char* RejectReasonName(RejectReason reason);

/// One shed submission (kRejected frames).
struct WireRejected {
  uint64_t request_id = 0;
  RejectReason reason = RejectReason::kQueueFull;
};

/// One finished query's reply: the request id plus the full QueryOutcome
/// (status, exact MatchStats, admission timestamps and sequence number).
/// `reject_reason` is client-side bookkeeping — kRejected travels as its
/// own frame type; clients fold it into a synthetic outcome and record the
/// reason here.
struct WireOutcome {
  uint64_t request_id = 0;
  QueryOutcome outcome;
  RejectReason reject_reason = RejectReason::kQueueFull;
};

/// Per-IO-thread counters of the reactor front end (kStatsReply): each IO
/// thread owns one row and bumps it without cross-thread coordination.
struct WireIoThreadStats {
  uint64_t connections = 0;  // currently open connections on this thread
  uint64_t frames_in = 0;    // complete frames parsed
  uint64_t frames_out = 0;   // frames queued for delivery
  uint64_t bytes_in = 0;     // raw bytes read off sockets
  uint64_t bytes_out = 0;    // raw bytes written to sockets
  uint64_t rejects = 0;      // kRejected frames sent by this thread
};

/// One hosted graph's row in kStatsReply and kCatalogReply — the wire
/// image of serve/catalog.h's CatalogGraphInfo.
struct WireGraphStats {
  std::string name;
  bool is_default = false;
  uint64_t queries = 0;       // submissions routed to this graph, ever
  uint64_t live_tickets = 0;  // submissions not yet resolved
  uint64_t index_bytes = 0;   // signature-index footprint
  uint32_t shards = 1;        // scatter-gather fan-out
};

/// One slow-query ring entry in kStatsReply (ServerOptions::
/// slow_query_ms): which query was slow, whose it was, where it ran, and
/// where its time went — the span summary an operator reads before asking
/// for the full trace.
struct WireSlowQuery {
  uint64_t request_id = 0;
  uint32_t tenant_id = 0;
  std::string graph;            // empty = the default graph
  double total_seconds = 0;     // submit -> delivery
  double queue_seconds = 0;     // submit -> admission
  double run_seconds = 0;       // first task -> last task
  double deliver_seconds = 0;   // resolution -> socket write
};

/// Server statistics snapshot (kStatsReply): whole-server counters, live
/// scheduler/service gauges, and one row per IO thread — the
/// Prometheus-style observability surface of the wire front end.
struct WireStats {
  uint32_t num_threads = 0;             // worker pool size
  uint64_t connections = 0;             // currently open connections
  uint64_t submitted = 0;               // SUBMIT frames accepted
  uint64_t completed = 0;               // outcomes delivered
  uint64_t rejected = 0;                // shed by queue-depth backpressure
  uint64_t rate_limited = 0;            // shed by the per-tenant rate limit
  uint64_t cancelled_by_disconnect = 0; // queries cancelled by peer drops
  uint64_t inflight = 0;                // queries awaiting their outcome

  // Live service/scheduler gauges (see MatchService::Gauges()).
  uint64_t service_finished = 0;        // outcomes finalised since start
  uint64_t service_live_contexts = 0;   // queries with live execution state
  uint64_t service_retained_slots = 0;  // outcome slots awaiting retrieval

  std::vector<WireIoThreadStats> io_threads;  // one row per IO thread

  /// One row per hosted graph (default first). Absent on the wire when
  /// the server predates the catalog — decoders leave it empty then.
  std::vector<WireGraphStats> graphs;

  /// Trailing optional uptime section (absent from pre-observability
  /// encoders; decoders leave the defaults then): how long the server has
  /// been up, the process-monotonic clock at snapshot time (lets a client
  /// align span stamps from traced outcomes with this snapshot), and the
  /// slow-query ring (newest last; empty when --slow-query-ms is off).
  double uptime_seconds = 0;
  double monotonic_seconds = 0;
  std::vector<WireSlowQuery> slow_queries;
};

/// kLoadGraph / kUnloadGraph payload: the graph name and, for loads, a
/// path on the *server's* filesystem naming the .hgb file to index.
struct WireCatalogRequest {
  std::string name;
  std::string path;
};

/// kCatalogReply payload: verb outcome plus the post-verb graph list, so
/// LIST_GRAPHS and the load/unload acks share one decoder.
struct WireCatalogReply {
  bool ok = true;
  std::string message;  // human-readable error when !ok, else empty
  std::vector<WireGraphStats> graphs;
};

/// Appends one complete frame (header + payload) to *out.
void AppendFrame(FrameType type, std::string_view payload, std::string* out);

/// with_graph selects the catalog-negotiated SUBMIT layout, which carries
/// WireSubmit::graph before the query image. It must match on both ends:
/// pass true exactly when the connection was granted kFeatureCatalog
/// (batch entries inherit the connection's flag).
std::string EncodeSubmit(const WireSubmit& submit, bool with_graph = false);
/// Encode variant that reads the query from the caller instead of
/// `fields.query` (whose value is ignored), so senders need not clone a
/// hypergraph into the move-only WireSubmit just to serialise it.
std::string EncodeSubmit(const WireSubmit& fields, const Hypergraph& query,
                         bool with_graph = false);
Result<WireSubmit> DecodeSubmit(std::string_view payload,
                                bool with_graph = false);

/// with_trace selects the trace-negotiated OUTCOME layout, which appends
/// the query's QuerySpan (enabled flag, six stamps, per-slice rows) after
/// the fixed fields. It must match on both ends: pass true exactly when
/// the connection was granted kFeatureTrace (batch entries inherit the
/// connection's flag). With with_trace=true and an untraced outcome the
/// section is a single 0 byte.
std::string EncodeOutcome(const WireOutcome& outcome,
                          bool with_trace = false);
Result<WireOutcome> DecodeOutcome(std::string_view payload,
                                  bool with_trace = false);

std::string EncodeRejected(const WireRejected& rejected);
Result<WireRejected> DecodeRejected(std::string_view payload);

/// kCancel payloads are a bare request id.
std::string EncodeRequestId(uint64_t request_id);
Result<uint64_t> DecodeRequestId(std::string_view payload);

std::string EncodeStats(const WireStats& stats);
Result<WireStats> DecodeStats(std::string_view payload);

/// kLoadGraph / kUnloadGraph payloads (unloads leave `path` empty).
std::string EncodeCatalogRequest(const WireCatalogRequest& request);
Result<WireCatalogRequest> DecodeCatalogRequest(std::string_view payload);

std::string EncodeCatalogReply(const WireCatalogReply& reply);
Result<WireCatalogReply> DecodeCatalogReply(std::string_view payload);

/// kHello / kHelloReply payloads are a bare u32 feature bitmap. Unknown
/// bits are ignored on decode (a newer peer may request features this
/// build has never heard of; the reply simply won't grant them).
std::string EncodeFeatures(uint32_t features);
Result<uint32_t> DecodeFeatures(std::string_view payload);

/// kBatchSubmit / kBatchOutcome payloads share one shape: a varint entry
/// count, then per entry a varint byte length and that many bytes of the
/// inner (SUBMIT / OUTCOME) payload. Encode takes the pre-encoded inner
/// payloads; Decode returns views into `payload`, which must outlive them.
std::string EncodeBatchPayload(const std::vector<std::string>& entries);
Result<std::vector<std::string_view>> DecodeBatchPayload(
    std::string_view payload);

/// Appends `payload` as a frame of `type` — wrapped in kCompressed when
/// `compress` is set, the payload clears kCompressThresholdBytes, and the
/// LZSS stream actually comes out smaller; plain otherwise. Negotiation is
/// the caller's problem: pass compress=false unless the peer was granted
/// kFeatureCompression.
void AppendFrameMaybeCompressed(FrameType type, std::string_view payload,
                                bool compress, std::string* out);

/// Unwraps a kCompressed payload into the inner frame. Fails with
/// Corruption when the inner type is invalid (or itself kCompressed — no
/// nesting), the declared raw size exceeds kMaxWirePayload, or the LZSS
/// stream is malformed or decodes to a different size than declared.
Result<FrameType> DecodeCompressedFrame(std::string_view payload,
                                        std::string* inner_payload);

/// Incremental frame parser: feed raw stream bytes, pop complete frames.
/// Validates the magic, the type tag and the payload bound as soon as a
/// header is complete, so a malformed peer is caught before its payload is
/// buffered.
class FrameReader {
 public:
  struct Frame {
    FrameType type = FrameType::kError;
    std::string payload;
  };

  void Feed(const char* data, size_t size) { buffer_.append(data, size); }

  /// Pops the next complete frame into *out. Returns true when a frame was
  /// popped, false when more bytes are needed, or a Corruption status on a
  /// malformed header (the stream is then unusable).
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

}  // namespace hgmatch

#endif  // HGMATCH_NET_PROTOCOL_H_
