#ifndef HGMATCH_NET_REACTOR_H_
#define HGMATCH_NET_REACTOR_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace hgmatch {

/// One IO thread's readiness loop: a level-triggered poller (epoll on
/// Linux, poll(2) elsewhere) plus the two cross-thread entry points every
/// reactor needs — a wake pipe and a posted-task queue. This is the only
/// piece of the wire front end that talks to the readiness API; the server
/// (net/server.h) runs one EventLoop per IO thread and keeps all protocol
/// state thread-local to that loop.
///
/// Threading contract: Init/Add/Modify/Remove/Wait belong to the one
/// thread that runs the loop ("the loop thread"). Post() and Wake() are
/// thread-safe and may be called from anywhere — they are how other
/// threads (the acceptor handing over a connection, a pool worker
/// finishing a query) reach into the loop. Posted tasks run on the loop
/// thread inside the next Wait() call, before readiness events are
/// reported, so a task may freely Add/Remove fds.
class EventLoop {
 public:
  /// Portable readiness bits (translated from epoll/poll).
  static constexpr uint32_t kReadable = 1u << 0;
  static constexpr uint32_t kWritable = 1u << 1;
  static constexpr uint32_t kError = 1u << 2;   // EPOLLERR/POLLERR/NVAL
  static constexpr uint32_t kHangup = 1u << 3;  // EPOLLHUP/POLLHUP

  struct Event {
    int fd = -1;
    uint32_t events = 0;
  };

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the poller instance and the wake pipe. Call once, before the
  /// loop thread starts.
  Status Init();

  /// Registers `fd` for the given interest set (kReadable/kWritable mask;
  /// 0 parks the fd: errors and hangups are still reported).
  Status Add(int fd, uint32_t events);

  /// Replaces the interest set of a registered fd. Cheap no-op detection
  /// is the caller's job (track the current mask and skip equal updates).
  Status Modify(int fd, uint32_t events);

  /// Deregisters `fd`; the caller still owns and closes it.
  void Remove(int fd);

  /// Enqueues `task` to run on the loop thread inside the next Wait();
  /// wakes the loop. Thread-safe.
  void Post(std::function<void()> task);

  /// Wakes a Wait() blocked in the poller. Thread-safe; a full pipe is as
  /// good as a written one.
  void Wake();

  /// Blocks until readiness, a wake, or `timeout_ms`. Drains the wake
  /// pipe, runs posted tasks, then fills `out` with the ready fds (the
  /// wake pipe itself is never reported). Returns the number of events,
  /// 0 on timeout/wake-only, or -1 on a fatal poller error.
  int Wait(int timeout_ms, std::vector<Event>* out);

 private:
  void Close();

  int poll_fd_ = -1;  // epoll instance (Linux); -1 on the poll backend
  int wake_pipe_[2] = {-1, -1};

  std::mutex task_mutex_;
  std::vector<std::function<void()>> tasks_;
  std::vector<std::function<void()>> running_;  // loop-thread swap target

#if !defined(__linux__)
  // poll(2) backend bookkeeping: the registered interest sets.
  struct PollEntry {
    int fd;
    uint32_t events;
  };
  std::vector<PollEntry> entries_;  // loop-thread only
#endif
};

}  // namespace hgmatch

#endif  // HGMATCH_NET_REACTOR_H_
