#include "net/server.h"

#include "io/binary_format.h"
#include "io/loader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/catalog.h"

#if defined(__unix__) || defined(__APPLE__)
#define HGMATCH_HAVE_SOCKETS 1
#endif

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#if HGMATCH_HAVE_SOCKETS
#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "net/reactor.h"
#include "net/socket_util.h"
#endif

namespace hgmatch {

#if HGMATCH_HAVE_SOCKETS

namespace {

using net_internal::SendBytes;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

class MatchServer::Impl {
 public:
  Impl(const IndexedHypergraph& data, const ServerOptions& options)
      : options_(Normalize(options)),
        catalog_(CatalogOptionsFor(options_, this)),
        shared_data_(&data) {}

  Impl(std::vector<NamedGraph> graphs, const ServerOptions& options)
      : options_(Normalize(options)),
        catalog_(CatalogOptionsFor(options_, this)),
        preload_(std::move(graphs)) {}

  ~Impl() { Stop(); }

  Status Start() {
    if (!options_.completion_wakeups && options_.io_threads > 1) {
      return Status::InvalidArgument(
          "the poll fallback (completion_wakeups=false) predates the "
          "reactor and supports io_threads=1 only");
    }
    // Preloads happen here, not at construction, so a duplicate name or
    // an empty graph list is a reportable Start() failure.
    if (shared_data_ != nullptr) {
      Status s = catalog_.LoadShared("default", *shared_data_);
      if (!s.ok()) return s;
    }
    for (NamedGraph& g : preload_) {
      Status s = catalog_.Load(g.name, std::move(g.data));
      if (!s.ok()) return s;
    }
    preload_.clear();
    if (catalog_.NumGraphs() == 0) {
      return Status::InvalidArgument("no graph to serve");
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::IOError("socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      CloseListen();
      return Status::InvalidArgument("bad listen address " + options_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      CloseListen();
      return Status::IOError("cannot bind " + options_.host + ":" +
                             std::to_string(options_.port));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len);
    port_ = ntohs(bound.sin_port);
    if (::listen(listen_fd_, 64) != 0 || !SetNonBlocking(listen_fd_)) {
      CloseListen();
      return Status::IOError("cannot listen on " + options_.host);
    }
    if (options_.metrics_port >= 0) {
      Status ms = OpenMetricsListener();
      if (!ms.ok()) {
        CloseListen();
        return ms;
      }
    }
    start_mono_ = MonotonicSeconds();
    // Every loop is initialised before any thread launches, so the
    // acceptor may Post() adoptions into a sibling loop from its very
    // first pass.
    io_.reserve(options_.io_threads);
    for (uint32_t i = 0; i < options_.io_threads; ++i) {
      auto t = std::make_unique<IoThread>();
      t->index = i;
      Status init = t->loop.Init();
      if (!init.ok()) {
        io_.clear();
        CloseListen();
        CloseMetrics();
        return init;
      }
      io_.push_back(std::move(t));
    }
    for (auto& t : io_) {
      IoThread* raw = t.get();
      raw->thread = std::thread([this, raw] {
        RunLoop(raw);
        NotifyExit();
      });
    }
    return Status::OK();
  }

  uint16_t port() const { return port_; }

  uint16_t metrics_port() const { return metrics_port_; }

  void Wait() {
    std::unique_lock<std::mutex> lock(exit_mutex_);
    exit_cv_.wait(lock, [this] { return exited_; });
  }

  bool WaitFor(double seconds) {
    std::unique_lock<std::mutex> lock(exit_mutex_);
    return exit_cv_.wait_for(lock,
                             std::chrono::duration<double>(
                                 seconds > 0 ? seconds : 0),
                             [this] { return exited_; });
  }

  void Stop() {
    stop_requested_.store(true, std::memory_order_release);
    for (auto& t : io_) t->loop.Wake();
    for (auto& t : io_) {
      if (t->thread.joinable()) t->thread.join();
    }
    // Thread 0 closes the listeners on exit; this covers Start() failure
    // paths and the never-started server.
    CloseListen();
    CloseMetrics();
    // The loops cancelled whatever was still in flight on exit; those
    // queries resolve asynchronously and their completion hooks touch the
    // loops' wake pipes. Shut the catalog down *before* the loops are
    // destroyed so no straggler hook can write into a recycled descriptor
    // (Shutdown blocks until every outcome resolved and every hook
    // returned; it is idempotent, so the destructor chain repeating it is
    // harmless).
    catalog_.Shutdown();
  }

  WireStats Stats() {
    WireStats s;
    s.num_threads = catalog_.num_threads();
    s.connections = connections_.load(std::memory_order_relaxed);
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.rate_limited = rate_limited_.load(std::memory_order_relaxed);
    s.cancelled_by_disconnect =
        cancelled_by_disconnect_.load(std::memory_order_relaxed);
    s.inflight = inflight_.load(std::memory_order_relaxed);
    const ServiceGauges gauges = catalog_.Gauges();
    s.service_finished = gauges.finished;
    s.service_live_contexts = gauges.live_contexts;
    s.service_retained_slots = gauges.retained_slots;
    s.graphs = GraphRows();
    s.monotonic_seconds = MonotonicSeconds();
    if (start_mono_ > 0) s.uptime_seconds = s.monotonic_seconds - start_mono_;
    {
      std::lock_guard<std::mutex> lock(slow_mutex_);
      if (slow_queries_.size() < kSlowRingCapacity) {
        s.slow_queries = slow_queries_;
      } else {
        // Full ring: unroll oldest-first.
        s.slow_queries.reserve(kSlowRingCapacity);
        for (size_t i = 0; i < kSlowRingCapacity; ++i) {
          s.slow_queries.push_back(
              slow_queries_[(slow_next_ + i) % kSlowRingCapacity]);
        }
      }
    }
    s.io_threads.reserve(io_.size());
    for (const auto& t : io_) {
      WireIoThreadStats row;
      row.connections = t->st_connections.load(std::memory_order_relaxed);
      row.frames_in = t->st_frames_in.load(std::memory_order_relaxed);
      row.frames_out = t->st_frames_out.load(std::memory_order_relaxed);
      row.bytes_in = t->st_bytes_in.load(std::memory_order_relaxed);
      row.bytes_out = t->st_bytes_out.load(std::memory_order_relaxed);
      row.rejects = t->st_rejects.load(std::memory_order_relaxed);
      s.io_threads.push_back(row);
    }
    return s;
  }

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::string outbuf;
    size_t out_sent = 0;  // prefix of outbuf already on the wire
    std::unordered_map<uint64_t, CatalogTicket> inflight;
    // Registered readiness mask; tracked so interest updates only hit the
    // poller when they change.
    uint32_t interest = 0;
    // The connection is ending (protocol error answered with kError, or
    // peer EOF): in-flight queries are already cancelled; flush whatever
    // replies were earned, then close.
    bool draining = false;
    // Peer EOF seen: stop asking for readability (a closed peer reports
    // readable forever).
    bool peer_closed = false;
    // Close now, flush nothing (socket error or buffer-bound violation).
    bool dead = false;
    // Feature bits granted to this peer by the kHello exchange (0 until a
    // HELLO arrives — a pre-HELLO peer speaks the base protocol and must
    // never see kBatchOutcome or kCompressed frames).
    uint32_t features = 0;
    // Encoded OUTCOME payloads earned by a batch-capable peer, coalesced
    // into one kBatchOutcome frame per reactor pass (FlushBatchReplies).
    std::vector<std::string> batch_replies;
  };

  // Where a finished ticket's reply goes: the connection that submitted it
  // and the client-chosen request id scoping the reply. Tenant and graph
  // ride along so the slow-query ring can attribute the entry without a
  // second lookup.
  struct Route {
    Conn* conn = nullptr;
    uint64_t request_id = 0;
    uint32_t tenant_id = 0;
    std::string graph;  // as submitted; empty = the default graph
  };

  // One completion-hook notification: the finished ticket plus the moment
  // the hook enqueued it, so DeliverReady can histogram the hook-to-
  // delivery latency.
  struct ReadyItem {
    uint64_t ticket_id = 0;
    double enqueued_seconds = 0;
  };

  // One reactor thread: an event loop plus every piece of protocol state
  // of the connections pinned to it. Everything except `loop` (internally
  // synchronised), the ready list (mutex) and the stats row (atomics,
  // single writer) is touched by the owning thread only.
  struct IoThread {
    uint32_t index = 0;
    EventLoop loop;
    std::thread thread;

    // Loop-thread-only state.
    std::vector<std::unique_ptr<Conn>> conns;
    std::unordered_map<int, Conn*> by_fd;
    std::unordered_map<uint64_t, Route> routes;  // ticket id -> reply route
    uint64_t finished_seen = 0;  // poll-fallback delivery gate
    std::vector<ReadyItem> ready_drain;  // reusable swap target

    // Ticket ids whose outcomes finalised, pushed by the completion hook
    // from pool threads, drained by the owning loop.
    std::mutex ready_mutex;
    std::vector<ReadyItem> ready;

    // Per-thread stats row (kStatsReply): one writer, racing readers.
    std::atomic<uint64_t> st_connections{0};
    std::atomic<uint64_t> st_frames_in{0};
    std::atomic<uint64_t> st_frames_out{0};
    std::atomic<uint64_t> st_bytes_in{0};
    std::atomic<uint64_t> st_bytes_out{0};
    std::atomic<uint64_t> st_rejects{0};
  };

  // Per-tenant token bucket of the edge rate limiter.
  struct TokenBucket {
    double tokens = 0;
    std::chrono::steady_clock::time_point last;
  };

  static ServerOptions Normalize(ServerOptions options) {
    options.io_threads = std::max<uint32_t>(1, options.io_threads);
    return options;
  }

  // Installs the completion hook that drives outcome delivery: each
  // finished catalog-unique ticket id is routed to the IO thread owning
  // its connection and that loop is woken. The hook body is deliberately
  // tiny — it runs on a pool worker inside the query's finish path. (The
  // catalog chains any hook already set on options.service before this
  // one.)
  static CatalogOptions CatalogOptionsFor(const ServerOptions& options,
                                          Impl* self) {
    CatalogOptions catalog;
    catalog.service = options.service;
    if (options.completion_wakeups) {
      catalog.on_query_complete = [self](uint64_t unique_id,
                                         const QueryOutcome&) {
        self->OnQueryComplete(unique_id);
      };
    }
    return catalog;
  }

  // Catalog snapshot as wire rows (kStatsReply / kCatalogReply).
  std::vector<WireGraphStats> GraphRows() {
    std::vector<WireGraphStats> rows;
    for (const CatalogGraphInfo& g : catalog_.List()) {
      WireGraphStats row;
      row.name = g.name;
      row.is_default = g.is_default;
      row.queries = g.queries;
      row.live_tickets = g.live_tickets;
      row.index_bytes = g.index_bytes;
      row.shards = g.shards;
      rows.push_back(std::move(row));
    }
    return rows;
  }

  // Routes one finished ticket to the loop owning its connection. A
  // ticket with no registry entry was answered inline at submit/cancel
  // time, or belonged to a connection that died — either way nobody is
  // waiting for it and the service has already recycled its state.
  void OnQueryComplete(uint64_t ticket_id) {
    IoThread* target = nullptr;
    {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      auto it = registry_.find(ticket_id);
      if (it != registry_.end()) {
        target = it->second;
        registry_.erase(it);
      }
    }
    if (target == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(target->ready_mutex);
      target->ready.push_back({ticket_id, MonotonicSeconds()});
    }
    target->loop.Wake();
  }

  void Register(uint64_t ticket_id, IoThread* t) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_[ticket_id] = t;
  }

  void Unregister(uint64_t ticket_id) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_.erase(ticket_id);
  }

  // Edge rate limiter: one token per SUBMIT, refilled at
  // max_submits_per_sec with a one-second burst allowance. Rejections do
  // not consume tokens. The bucket map is the only shared state on the
  // submit path; the critical section is a handful of arithmetic ops.
  bool AllowSubmit(uint32_t tenant_id) {
    const double rate = options_.max_submits_per_sec;
    const double burst = std::max(rate, 1.0);
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(rate_mutex_);
    auto [it, inserted] =
        buckets_.try_emplace(tenant_id, TokenBucket{burst, now});
    TokenBucket& bucket = it->second;
    if (!inserted) {
      const double elapsed =
          std::chrono::duration<double>(now - bucket.last).count();
      bucket.tokens = std::min(burst, bucket.tokens + elapsed * rate);
      bucket.last = now;
    }
    // Amortised prune: a bucket back at full burst carries no state a
    // fresh one would not, so forgetting it keeps the map bounded by
    // *active* tenants even when a hostile peer mints tenant ids.
    if (++rate_ops_ % 256 == 0) {
      for (auto pit = buckets_.begin(); pit != buckets_.end();) {
        if (pit == it) {
          ++pit;
          continue;
        }
        const double refilled =
            pit->second.tokens +
            std::chrono::duration<double>(now - pit->second.last).count() *
                rate;
        pit = refilled >= burst ? buckets_.erase(pit) : std::next(pit);
      }
    }
    if (bucket.tokens < 1.0) return false;
    bucket.tokens -= 1.0;
    return true;
  }

  void CloseListen() {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  // Closes the listener from its owning loop (thread 0). Other threads
  // reach this through a posted task.
  void CloseListenFrom(IoThread* t0) {
    if (listen_fd_ >= 0) {
      t0->loop.Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  void CloseMetrics() {
    if (metrics_fd_ >= 0) {
      ::close(metrics_fd_);
      metrics_fd_ = -1;
    }
  }

  void CloseMetricsFrom(IoThread* t0) {
    if (metrics_fd_ >= 0) {
      t0->loop.Remove(metrics_fd_);
      ::close(metrics_fd_);
      metrics_fd_ = -1;
    }
  }

  // Second listener of the Prometheus endpoint, same address as the wire
  // port, served by IO thread 0's loop.
  Status OpenMetricsListener() {
    if (options_.metrics_port > 65535) {
      return Status::InvalidArgument("bad metrics port " +
                                     std::to_string(options_.metrics_port));
    }
    metrics_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (metrics_fd_ < 0) return Status::IOError("socket() failed");
    const int one = 1;
    ::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.metrics_port));
    ::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr);
    if (::bind(metrics_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      CloseMetrics();
      return Status::IOError("cannot bind metrics port " +
                             std::to_string(options_.metrics_port));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(metrics_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len);
    metrics_port_ = ntohs(bound.sin_port);
    if (::listen(metrics_fd_, 16) != 0 || !SetNonBlocking(metrics_fd_)) {
      CloseMetrics();
      return Status::IOError("cannot listen on metrics port");
    }
    return Status::OK();
  }

  // Gauges only the server knows, appended to the registry render at
  // scrape time (no callback plumbing, no stale cached values).
  void AppendServerGauges(std::string* out) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "# TYPE hgmatch_server_uptime_seconds gauge\n"
                  "hgmatch_server_uptime_seconds %.6f\n",
                  start_mono_ > 0 ? MonotonicSeconds() - start_mono_ : 0.0);
    out->append(line);
    std::snprintf(line, sizeof(line),
                  "# TYPE hgmatch_server_connections gauge\n"
                  "hgmatch_server_connections %llu\n",
                  static_cast<unsigned long long>(
                      connections_.load(std::memory_order_relaxed)));
    out->append(line);
    std::snprintf(line, sizeof(line),
                  "# TYPE hgmatch_server_inflight_queries gauge\n"
                  "hgmatch_server_inflight_queries %llu\n",
                  static_cast<unsigned long long>(
                      inflight_.load(std::memory_order_relaxed)));
    out->append(line);
  }

  std::string BuildMetricsResponse(std::string_view request) {
    const char* status = "200 OK";
    std::string body;
    const size_t sp1 = request.find(' ');
    const size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : request.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      status = "400 Bad Request";
      body = "bad request\n";
    } else if (request.substr(0, sp1) != "GET") {
      status = "405 Method Not Allowed";
      body = "method not allowed\n";
    } else {
      const std::string_view path =
          request.substr(sp1 + 1, sp2 - sp1 - 1);
      if (path != "/metrics" && path != "/") {
        status = "404 Not Found";
        body = "try /metrics\n";
      } else {
        body = MetricsRegistry::Default().RenderPrometheus();
        AppendServerGauges(&body);
      }
    }
    char header[192];
    std::snprintf(header, sizeof(header),
                  "HTTP/1.0 %s\r\n"
                  "Content-Type: text/plain; version=0.0.4\r\n"
                  "Content-Length: %llu\r\n"
                  "Connection: close\r\n\r\n",
                  status, static_cast<unsigned long long>(body.size()));
    return std::string(header) + body;
  }

  // Answers every pending scrape connection. One short blocking exchange
  // per scrape on IO thread 0: the request is one packet and the response
  // a few kilobytes, so a bounded stall (1 s socket deadlines) beats a
  // dedicated exposition thread. Accepted sockets do not inherit
  // O_NONBLOCK from the listener, so the deadlines actually bound the
  // exchange.
  void ServeMetricsConnections() {
    while (metrics_fd_ >= 0) {
      const int fd = ::accept(metrics_fd_, nullptr, nullptr);
      if (fd < 0) break;
      timeval deadline{};
      deadline.tv_sec = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &deadline,
                   sizeof(deadline));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &deadline,
                   sizeof(deadline));
      char request[1024];
      const ssize_t got = ::read(fd, request, sizeof(request) - 1);
      if (got > 0) {
        const std::string response = BuildMetricsResponse(
            std::string_view(request, static_cast<size_t>(got)));
        (void)SendBytes(fd, response.data(), response.size());
      }
      ::close(fd);
    }
  }

  void SendFrame(IoThread* t, Conn* conn, FrameType type,
                 std::string_view payload) {
    AppendFrame(type, payload, &conn->outbuf);
    t->st_frames_out.fetch_add(1, std::memory_order_relaxed);
  }

  // SendFrame for reply types a negotiated peer may receive compressed
  // (outcomes, batch outcomes, stats). PONG stays raw — it is a latency
  // probe — and kError stays raw so even a peer with a broken codec can
  // read its eviction notice.
  void SendFrameNegotiated(IoThread* t, Conn* conn, FrameType type,
                           std::string_view payload) {
    const size_t before = conn->outbuf.size();
    AppendFrameMaybeCompressed(type, payload,
                               (conn->features & kFeatureCompression) != 0,
                               &conn->outbuf);
    // Raw payload bytes vs what actually hit the buffer (codec output
    // plus frame headers): the pair makes compression wins measurable.
    metric_reply_raw_bytes_->Add(payload.size());
    metric_reply_wire_bytes_->Add(conn->outbuf.size() - before);
    t->st_frames_out.fetch_add(1, std::memory_order_relaxed);
  }

  // Coalesces the outcome payloads a batch peer earned this pass into one
  // kBatchOutcome frame. Runs before every output flush, so batched
  // replies are never pinned behind an idle wait.
  void FlushBatchReplies(IoThread* t, Conn* conn) {
    if (conn->batch_replies.empty()) return;
    metric_batch_replies_->Observe(
        static_cast<double>(conn->batch_replies.size()));
    const std::string payload = EncodeBatchPayload(conn->batch_replies);
    conn->batch_replies.clear();
    SendFrameNegotiated(t, conn, FrameType::kBatchOutcome, payload);
  }

  // Cancels and orphans every in-flight query of a dying connection and
  // forgets their delivery routes. Registry entries go first so a
  // synchronously-resolving Cancel's completion hook finds nothing to
  // wake; an id the hook already pushed is skipped by the route check.
  void CancelConnQueries(IoThread* t, Conn* conn) {
    if (conn->inflight.empty()) return;
    cancelled_by_disconnect_.fetch_add(conn->inflight.size(),
                                       std::memory_order_relaxed);
    inflight_.fetch_sub(conn->inflight.size(), std::memory_order_relaxed);
    for (auto& [id, ct] : conn->inflight) {
      Unregister(ct.unique_id);
      t->routes.erase(ct.unique_id);
      catalog_.Cancel(ct);
    }
    conn->inflight.clear();
  }

  // Queues one finished query's reply on its connection. Tenant and graph
  // only attribute the slow-query ring entry; delivery needs neither.
  void DeliverOutcome(IoThread* t, Conn* conn, uint64_t request_id,
                      const QueryOutcome& outcome, uint32_t tenant_id,
                      const std::string& graph) {
    if (outcome.status == QueryStatus::kRejected) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      t->st_rejects.fetch_add(1, std::memory_order_relaxed);
      SendFrame(t, conn, FrameType::kRejected,
                EncodeRejected({request_id, RejectReason::kQueueFull}));
    } else {
      completed_.fetch_add(1, std::memory_order_relaxed);
      WireOutcome wire{request_id, outcome, RejectReason::kQueueFull};
      if (wire.outcome.span.enabled) {
        wire.outcome.span.deliver_seconds = MonotonicSeconds();
        RecordSlowQuery(wire.outcome.span, request_id, tenant_id, graph);
      }
      std::string payload =
          EncodeOutcome(wire, (conn->features & kFeatureTrace) != 0);
      if ((conn->features & kFeatureBatch) != 0) {
        conn->batch_replies.push_back(std::move(payload));
      } else {
        SendFrameNegotiated(t, conn, FrameType::kOutcome, payload);
      }
    }
  }

  // Records one finished span in the slow-query ring when it crosses the
  // configured threshold (most recent kSlowRingCapacity entries win).
  void RecordSlowQuery(const QuerySpan& span, uint64_t request_id,
                       uint32_t tenant_id, const std::string& graph) {
    if (options_.slow_query_ms <= 0) return;
    const double total = span.TotalSeconds();
    if (total * 1000.0 < options_.slow_query_ms) return;
    WireSlowQuery row;
    row.request_id = request_id;
    row.tenant_id = tenant_id;
    row.graph = graph.empty() ? "default" : graph;
    row.total_seconds = total;
    if (span.submit_seconds > 0 && span.admit_seconds > 0) {
      row.queue_seconds = span.admit_seconds - span.submit_seconds;
    }
    if (span.first_task_seconds > 0 && span.last_task_seconds > 0) {
      row.run_seconds = span.last_task_seconds - span.first_task_seconds;
    }
    if (span.resolve_seconds > 0 && span.deliver_seconds > 0) {
      row.deliver_seconds = span.deliver_seconds - span.resolve_seconds;
    }
    std::lock_guard<std::mutex> lock(slow_mutex_);
    if (slow_queries_.size() < kSlowRingCapacity) {
      slow_queries_.push_back(std::move(row));
    } else {
      slow_queries_[slow_next_ % kSlowRingCapacity] = std::move(row);
    }
    ++slow_next_;
  }

  // Every catalog verb answers with one kCatalogReply carrying the verb's
  // outcome and the post-verb graph list.
  void SendCatalogReply(IoThread* t, Conn* conn, const Status& status) {
    WireCatalogReply reply;
    reply.ok = status.ok();
    if (!status.ok()) reply.message = status.message();
    reply.graphs = GraphRows();
    SendFrameNegotiated(t, conn, FrameType::kCatalogReply,
                        EncodeCatalogReply(reply));
  }

  // A submission naming a graph the catalog doesn't host: answered with a
  // typed kRejected frame so the connection (and the rest of a batch)
  // survives.
  void RejectUnknownGraph(IoThread* t, Conn* conn, uint64_t request_id) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    t->st_rejects.fetch_add(1, std::memory_order_relaxed);
    SendFrame(t, conn, FrameType::kRejected,
              EncodeRejected({request_id, RejectReason::kUnknownGraph}));
  }

  void ProtocolError(IoThread* t, Conn* conn, const std::string& message) {
    if (conn->draining) return;
    // Replies earned before the offending frame still go out, ahead of
    // the error notice.
    FlushBatchReplies(t, conn);
    SendFrame(t, conn, FrameType::kError, message);
    CancelConnQueries(t, conn);
    conn->draining = true;
  }

  // Extracts the remotely-settable SubmitOptions fields of one decoded
  // submission (hostile floats are clamped to the server defaults).
  SubmitOptions SubmitOptionsFor(const Conn* conn,
                                 const WireSubmit& ws) const {
    SubmitOptions so;
    so.tenant_id = ws.tenant_id;
    so.priority = ws.priority;
    so.weight = std::isfinite(ws.weight) ? ws.weight : 1.0;
    so.timeout_seconds =
        std::isfinite(ws.timeout_seconds) ? ws.timeout_seconds : -1;
    so.limit = ws.limit;
    // Span capture: for the peer when it negotiated tracing, for the
    // slow-query ring when that is armed (the ring needs spans whether or
    // not the peer asked to see them).
    so.trace = (conn->features & kFeatureTrace) != 0 ||
               options_.slow_query_ms > 0;
    return so;
  }

  // Post-submit bookkeeping shared by kSubmit and kBatchSubmit: answer
  // inline if already resolved, else register for completion wakeup.
  void TrackTicket(IoThread* t, Conn* conn, uint64_t request_id,
                   CatalogTicket ct, uint32_t tenant_id,
                   const std::string& graph) {
    // Backpressure sheds, planning errors and mirrors of completed
    // canonicals resolve synchronously — and a fast query may already
    // have finished between Submit and here: answer inline.
    const QueryOutcome* done = ct.ticket.TryGet();
    if (done != nullptr) {
      DeliverOutcome(t, conn, request_id, *done, tenant_id, graph);
      return;
    }
    if (options_.completion_wakeups) {
      // Register, then probe again: a query that finished between the
      // first TryGet and the registration ran its completion hook
      // against an empty registry — nobody will wake us for it, so
      // the second probe (ordered after the hook's lookup by the
      // registry mutex) must answer it inline. A hook that instead
      // runs after the registration finds the entry and the ready
      // sweep delivers normally; if both paths fire, the inline
      // answer erases the route and the sweep skips the stale id.
      Register(ct.unique_id, t);
      t->routes[ct.unique_id] = {conn, request_id, tenant_id, graph};
      done = ct.ticket.TryGet();
      if (done != nullptr) {
        Unregister(ct.unique_id);
        t->routes.erase(ct.unique_id);
        DeliverOutcome(t, conn, request_id, *done, tenant_id, graph);
        return;
      }
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    conn->inflight.emplace(request_id, std::move(ct));
  }

  // Connection teardown is signalled through conn->draining, never by a
  // return value.
  void HandleFrame(IoThread* t, Conn* conn, FrameReader::Frame& frame) {
    t->st_frames_in.fetch_add(1, std::memory_order_relaxed);
    switch (frame.type) {
      case FrameType::kSubmit: {
        Result<WireSubmit> submit = DecodeSubmit(
            frame.payload, (conn->features & kFeatureCatalog) != 0);
        if (!submit.ok()) {
          ProtocolError(t, conn, submit.status().message());
          return;
        }
        WireSubmit& ws = submit.value();
        if (conn->inflight.count(ws.request_id) != 0) {
          ProtocolError(t, conn, "duplicate request id " +
                                     std::to_string(ws.request_id));
          return;
        }
        // The rate limiter sits at the very edge: an over-limit tenant is
        // answered before its query touches planning or admission.
        if (options_.max_submits_per_sec > 0 && !AllowSubmit(ws.tenant_id)) {
          rate_limited_.fetch_add(1, std::memory_order_relaxed);
          t->st_rejects.fetch_add(1, std::memory_order_relaxed);
          SendFrame(t, conn, FrameType::kRejected,
                    EncodeRejected(
                        {ws.request_id, RejectReason::kRateLimited}));
          return;
        }
        Result<CatalogTicket> ct = catalog_.Submit(
            ws.graph, std::move(ws.query), SubmitOptionsFor(conn, ws));
        if (!ct.ok()) {
          // Unknown/unloading graph: a typed reject on a healthy
          // connection, not a protocol error — the client may simply be
          // racing an unload and can re-route.
          RejectUnknownGraph(t, conn, ws.request_id);
          return;
        }
        submitted_.fetch_add(1, std::memory_order_relaxed);
        TrackTicket(t, conn, ws.request_id, std::move(ct).value(),
                    ws.tenant_id, ws.graph);
        return;
      }
      case FrameType::kHello: {
        Result<uint32_t> requested = DecodeFeatures(frame.payload);
        if (!requested.ok()) {
          ProtocolError(t, conn, requested.status().message());
          return;
        }
        // Batching, catalog routing and tracing are always worth
        // granting; compression is an operator decision
        // (ServerOptions::enable_compression). Unknown requested bits are
        // simply not granted.
        uint32_t granted =
            requested.value() &
            (kFeatureBatch | kFeatureCatalog | kFeatureTrace);
        if (options_.enable_compression) {
          granted |= requested.value() & kFeatureCompression;
        }
        conn->features = granted;
        SendFrame(t, conn, FrameType::kHelloReply, EncodeFeatures(granted));
        return;
      }
      case FrameType::kCompressed: {
        if ((conn->features & kFeatureCompression) == 0) {
          ProtocolError(t, conn,
                        "COMPRESSED frame without negotiated compression");
          return;
        }
        FrameReader::Frame inner;
        Result<FrameType> type =
            DecodeCompressedFrame(frame.payload, &inner.payload);
        if (!type.ok()) {
          ProtocolError(t, conn, type.status().message());
          return;
        }
        inner.type = type.value();
        // One level only: DecodeCompressedFrame rejects a nested
        // kCompressed inner type, so this recursion terminates.
        HandleFrame(t, conn, inner);
        return;
      }
      case FrameType::kBatchSubmit: {
        if ((conn->features & kFeatureBatch) == 0) {
          ProtocolError(t, conn,
                        "BATCH_SUBMIT frame without negotiated batching");
          return;
        }
        Result<std::vector<std::string_view>> entries =
            DecodeBatchPayload(frame.payload);
        if (!entries.ok()) {
          ProtocolError(t, conn, entries.status().message());
          return;
        }
        // Decode and validate the whole batch before admitting any of it:
        // a malformed entry poisons the frame, exactly as a malformed
        // kSubmit poisons the connection.
        std::vector<WireSubmit> submits;
        submits.reserve(entries.value().size());
        std::unordered_set<uint64_t> batch_ids;
        batch_ids.reserve(entries.value().size());
        for (const std::string_view entry : entries.value()) {
          Result<WireSubmit> submit =
              DecodeSubmit(entry, (conn->features & kFeatureCatalog) != 0);
          if (!submit.ok()) {
            ProtocolError(t, conn, submit.status().message());
            return;
          }
          const uint64_t id = submit.value().request_id;
          if (conn->inflight.count(id) != 0 || !batch_ids.insert(id).second) {
            ProtocolError(t, conn,
                          "duplicate request id " + std::to_string(id));
            return;
          }
          submits.push_back(std::move(submit).value());
        }
        // Rate-limit per entry (the limiter counts submissions, however
        // framed), then admit the survivors per target graph — one
        // service pass per graph named in the batch (the common batch
        // names one graph and keeps the single-pass admission).
        metric_batch_submits_->Observe(static_cast<double>(submits.size()));
        std::vector<std::string> graph_order;
        std::unordered_map<std::string, std::vector<BatchSubmission>> batch;
        std::unordered_map<std::string, std::vector<uint64_t>> request_ids;
        std::unordered_map<std::string, std::vector<uint32_t>> tenant_ids;
        for (WireSubmit& ws : submits) {
          if (options_.max_submits_per_sec > 0 &&
              !AllowSubmit(ws.tenant_id)) {
            rate_limited_.fetch_add(1, std::memory_order_relaxed);
            t->st_rejects.fetch_add(1, std::memory_order_relaxed);
            SendFrame(t, conn, FrameType::kRejected,
                      EncodeRejected(
                          {ws.request_id, RejectReason::kRateLimited}));
            continue;
          }
          if (batch.find(ws.graph) == batch.end()) {
            graph_order.push_back(ws.graph);
          }
          request_ids[ws.graph].push_back(ws.request_id);
          tenant_ids[ws.graph].push_back(ws.tenant_id);
          batch[ws.graph].push_back(
              {std::move(ws.query), SubmitOptionsFor(conn, ws)});
        }
        for (const std::string& graph : graph_order) {
          std::vector<uint64_t>& ids = request_ids[graph];
          std::vector<uint32_t>& tenants = tenant_ids[graph];
          Result<std::vector<CatalogTicket>> tickets =
              catalog_.SubmitBatch(graph, std::move(batch[graph]));
          if (!tickets.ok()) {
            for (const uint64_t id : ids) RejectUnknownGraph(t, conn, id);
            continue;
          }
          submitted_.fetch_add(tickets.value().size(),
                               std::memory_order_relaxed);
          for (size_t i = 0; i < tickets.value().size(); ++i) {
            TrackTicket(t, conn, ids[i], std::move(tickets.value()[i]),
                        tenants[i], graph);
          }
        }
        return;
      }
      case FrameType::kCancel: {
        Result<uint64_t> id = DecodeRequestId(frame.payload);
        if (!id.ok()) {
          ProtocolError(t, conn, id.status().message());
          return;
        }
        auto it = conn->inflight.find(id.value());
        // Unknown ids are ignored: the cancel raced the outcome.
        if (it != conn->inflight.end()) {
          catalog_.Cancel(it->second);
          // A synchronously resolved cancel (queued query, mirror of a
          // running canonical) is ready right now: answer inline and drop
          // its route so the ready-list sweep cannot answer it again. An
          // unresolved cancel stays registered — the query stops at its
          // next task boundary and delivers through the hook as usual.
          const QueryOutcome* done = it->second.ticket.TryGet();
          if (done != nullptr) {
            Unregister(it->second.unique_id);
            uint32_t tenant_id = 0;
            std::string graph;
            auto route = t->routes.find(it->second.unique_id);
            if (route != t->routes.end()) {
              tenant_id = route->second.tenant_id;
              graph = std::move(route->second.graph);
              t->routes.erase(route);
            }
            DeliverOutcome(t, conn, it->first, *done, tenant_id, graph);
            inflight_.fetch_sub(1, std::memory_order_relaxed);
            conn->inflight.erase(it);
          }
        }
        return;
      }
      case FrameType::kLoadGraph: {
        if ((conn->features & kFeatureCatalog) == 0) {
          ProtocolError(t, conn,
                        "LOAD_GRAPH frame without negotiated catalog");
          return;
        }
        Result<WireCatalogRequest> req = DecodeCatalogRequest(frame.payload);
        if (!req.ok()) {
          ProtocolError(t, conn, req.status().message());
          return;
        }
        if (!options_.allow_remote_load) {
          SendCatalogReply(t, conn, Status::InvalidArgument(
                                        "remote graph loading is disabled"));
          return;
        }
        // Read + index on the IO thread: a load stalls this thread's
        // connections for the duration, which an operator issuing one
        // accepts; query execution on sibling threads and the pool is
        // unaffected.
        Result<Hypergraph> data = LoadHypergraphBinary(req.value().path);
        if (!data.ok()) {
          SendCatalogReply(t, conn, data.status());
          return;
        }
        SendCatalogReply(
            t, conn,
            catalog_.Load(req.value().name, std::move(data).value()));
        return;
      }
      case FrameType::kUnloadGraph: {
        if ((conn->features & kFeatureCatalog) == 0) {
          ProtocolError(t, conn,
                        "UNLOAD_GRAPH frame without negotiated catalog");
          return;
        }
        Result<WireCatalogRequest> req = DecodeCatalogRequest(frame.payload);
        if (!req.ok()) {
          ProtocolError(t, conn, req.status().message());
          return;
        }
        // Non-blocking: the graph stops taking submissions now and is
        // freed by a later catalog pass once its in-flight tickets
        // resolve — an IO thread must not sit in a drain wait.
        SendCatalogReply(t, conn,
                         catalog_.Unload(req.value().name, /*wait=*/false));
        return;
      }
      case FrameType::kListGraphs:
        if ((conn->features & kFeatureCatalog) == 0) {
          ProtocolError(t, conn,
                        "LIST_GRAPHS frame without negotiated catalog");
          return;
        }
        SendCatalogReply(t, conn, Status::OK());
        return;
      case FrameType::kPing:
        SendFrame(t, conn, FrameType::kPong, frame.payload);
        return;
      case FrameType::kStats:
        SendFrameNegotiated(t, conn, FrameType::kStatsReply,
                            EncodeStats(Stats()));
        return;
      case FrameType::kShutdown:
        if (options_.allow_remote_shutdown) {
          shutting_down_.store(true, std::memory_order_release);
          // The listener belongs to thread 0's loop; close it there.
          if (t->index == 0) {
            CloseListenFrom(t);
          } else {
            IoThread* t0 = io_[0].get();
            t0->loop.Post([this, t0] { CloseListenFrom(t0); });
          }
          for (auto& other : io_) other->loop.Wake();
        } else {
          ProtocolError(t, conn, "remote shutdown is disabled");
        }
        return;
      default:
        // Server-bound streams must not carry server->client frames.
        ProtocolError(t, conn, "unexpected frame type");
        return;
    }
  }

  // Reads everything available and handles the complete frames; true when
  // the peer closed its end. A clean EOF still parses what arrived first,
  // so a peer that pipelines frames and closes loses nothing.
  bool ReadConn(IoThread* t, Conn* conn) {
    char buffer[1 << 16];
    bool peer_closed = false;
    while (true) {
      const ssize_t got = ::read(conn->fd, buffer, sizeof(buffer));
      if (got > 0) {
        t->st_bytes_in.fetch_add(static_cast<uint64_t>(got),
                                 std::memory_order_relaxed);
        metric_bytes_in_->Add(static_cast<uint64_t>(got));
        conn->reader.Feed(buffer, static_cast<size_t>(got));
        if (static_cast<size_t>(got) < sizeof(buffer)) break;
        continue;
      }
      if (got == 0) {  // clean EOF
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return true;
    }
    if (!conn->draining) {  // ignore bytes after an error
      FrameReader::Frame frame;
      while (true) {
        Result<bool> next = conn->reader.Next(&frame);
        if (!next.ok()) {
          ProtocolError(t, conn, next.status().message());
          break;
        }
        if (!next.value()) break;
        HandleFrame(t, conn, frame);
        if (conn->draining) break;
      }
    }
    return peer_closed;
  }

  // Flushes as much buffered output as the socket accepts; marks the
  // connection dead on a write error or when a peer that stopped reading
  // pins more buffered bytes than the configured bound.
  void FlushConn(IoThread* t, Conn* conn) {
    while (conn->out_sent < conn->outbuf.size()) {
      const ssize_t sent =
          SendBytes(conn->fd, conn->outbuf.data() + conn->out_sent,
                    conn->outbuf.size() - conn->out_sent);
      if (sent > 0) {
        conn->out_sent += static_cast<size_t>(sent);
        t->st_bytes_out.fetch_add(static_cast<uint64_t>(sent),
                                  std::memory_order_relaxed);
        metric_bytes_out_->Add(static_cast<uint64_t>(sent));
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn->dead = true;
      return;
    }
    if (conn->out_sent == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->out_sent = 0;
    }
    if (conn->outbuf.size() - conn->out_sent >
        options_.max_connection_buffer) {
      conn->dead = true;
    }
  }

  // Accepts everything pending (thread 0 only — it owns the listener) and
  // distributes the connections across the IO threads by fd hash. Remote
  // adoptions travel as posted tasks and land inside the target's next
  // Wait(), before its readiness events.
  void AcceptConnections(IoThread* t) {
    while (listen_fd_ >= 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN and friends: done for this pass
      if (!SetNonBlocking(fd)) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (connections_.load(std::memory_order_relaxed) >=
          options_.max_connections) {
        // Turn the connection away loudly (best-effort write on a fresh
        // socket buffer) instead of hanging it.
        std::string frame;
        AppendFrame(FrameType::kError, "server is at max connections",
                    &frame);
        (void)SendBytes(fd, frame.data(), frame.size());
        ::close(fd);
        continue;
      }
      // Counted at accept time so the bound holds while the adoption is
      // still in flight to its owning thread.
      connections_.fetch_add(1, std::memory_order_relaxed);
      IoThread* target = io_[static_cast<size_t>(fd) % io_.size()].get();
      if (target == t) {
        AdoptConn(target, fd);
      } else {
        target->loop.Post([this, target, fd] { AdoptConn(target, fd); });
      }
    }
  }

  // Runs on the owning thread: from here on, only that thread touches the
  // connection.
  void AdoptConn(IoThread* t, int fd) {
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->interest = EventLoop::kReadable;
    if (!t->loop.Add(fd, conn->interest).ok()) {
      ::close(fd);
      connections_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    t->by_fd[fd] = conn.get();
    t->conns.push_back(std::move(conn));
    t->st_connections.fetch_add(1, std::memory_order_relaxed);
  }

  void DropConnAt(IoThread* t, size_t i) {
    Conn* conn = t->conns[i].get();
    CancelConnQueries(t, conn);
    t->loop.Remove(conn->fd);
    ::close(conn->fd);
    t->by_fd.erase(conn->fd);
    t->conns.erase(t->conns.begin() + i);
    connections_.fetch_sub(1, std::memory_order_relaxed);
    t->st_connections.fetch_sub(1, std::memory_order_relaxed);
  }

  // Completion-driven delivery: drains the ready list the completion hook
  // filled and answers exactly those tickets — O(finished), never a scan
  // of all pending tickets. Ids without a route were answered inline at
  // submit/cancel time or belonged to a dropped connection; skipping them
  // is the whole cleanup.
  void DeliverReady(IoThread* t) {
    {
      std::lock_guard<std::mutex> lock(t->ready_mutex);
      if (t->ready.empty()) return;
      t->ready_drain.swap(t->ready);
    }
    for (const ReadyItem& item : t->ready_drain) {
      auto route = t->routes.find(item.ticket_id);
      if (route == t->routes.end()) continue;
      Conn* conn = route->second.conn;
      const uint64_t request_id = route->second.request_id;
      const uint32_t tenant_id = route->second.tenant_id;
      std::string graph = std::move(route->second.graph);
      t->routes.erase(route);
      auto it = conn->inflight.find(request_id);
      if (it == conn->inflight.end()) continue;
      // The hook fires strictly after the outcome is retrievable, so this
      // TryGet cannot miss.
      const QueryOutcome* done = it->second.ticket.TryGet();
      if (done == nullptr) continue;
      metric_delivery_->Observe(MonotonicSeconds() - item.enqueued_seconds);
      DeliverOutcome(t, conn, request_id, *done, tenant_id, graph);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      conn->inflight.erase(it);
    }
    t->ready_drain.clear();
  }

  // Poll fallback (ServerOptions::completion_wakeups == false, single IO
  // thread): scan every pending ticket, gated on the service's
  // finished-query counter so idle passes stay cheap. Snapshot before
  // sweeping: a finish racing the sweep re-arms the next pass.
  void DeliverFinished(IoThread* t) {
    const uint64_t finished_now = catalog_.finished_queries();
    if (finished_now == t->finished_seen) return;
    for (auto& conn : t->conns) {
      for (auto it = conn->inflight.begin(); it != conn->inflight.end();) {
        const QueryOutcome* done = it->second.ticket.TryGet();
        if (done == nullptr) {
          ++it;
          continue;
        }
        DeliverOutcome(t, conn.get(), it->first, *done, 0, std::string());
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        it = conn->inflight.erase(it);
      }
    }
    t->finished_seen = finished_now;
  }

  bool AnyPendingWork(const IoThread* t) const {
    for (const auto& conn : t->conns) {
      if (!conn->inflight.empty()) return true;
    }
    return false;
  }

  void SweepConns(IoThread* t) {
    for (size_t i = 0; i < t->conns.size();) {
      Conn* conn = t->conns[i].get();
      if (conn->dead ||
          (conn->draining && conn->out_sent == conn->outbuf.size())) {
        DropConnAt(t, i);
      } else {
        ++i;
      }
    }
  }

  void UpdateInterest(IoThread* t) {
    for (auto& conn : t->conns) {
      uint32_t want = 0;
      if (!conn->peer_closed && !conn->draining) {
        want |= EventLoop::kReadable;
      }
      if (conn->out_sent < conn->outbuf.size()) {
        want |= EventLoop::kWritable;
      }
      if (want != conn->interest &&
          t->loop.Modify(conn->fd, want).ok()) {
        conn->interest = want;
      }
    }
  }

  void RunLoop(IoThread* t) {
    if (t->index == 0 && listen_fd_ >= 0) {
      t->loop.Add(listen_fd_, EventLoop::kReadable);
    }
    if (t->index == 0 && metrics_fd_ >= 0) {
      t->loop.Add(metrics_fd_, EventLoop::kReadable);
    }
    std::vector<EventLoop::Event> events;
    while (true) {
      if (stop_requested_.load(std::memory_order_acquire)) break;
      if (options_.completion_wakeups) {
        DeliverReady(t);
      } else {
        DeliverFinished(t);
      }
      for (auto& conn : t->conns) {
        if (conn->dead) continue;
        FlushBatchReplies(t, conn.get());
        if (conn->out_sent < conn->outbuf.size()) {
          FlushConn(t, conn.get());
        }
      }
      SweepConns(t);
      if (shutting_down_.load(std::memory_order_acquire)) {
        // Graceful remote shutdown: finish in-flight work, flush, then
        // close connections as they go idle; this thread exits when none
        // of its own remain.
        for (size_t i = 0; i < t->conns.size();) {
          Conn* conn = t->conns[i].get();
          if (conn->inflight.empty() &&
              conn->out_sent == conn->outbuf.size()) {
            DropConnAt(t, i);
          } else {
            ++i;
          }
        }
        if (t->conns.empty()) break;
      }
      UpdateInterest(t);
      // Completion wakeups arrive through the wake pipe the instant a
      // query finishes, so the timeout is pure idle housekeeping; only
      // the poll fallback needs a tight cadence to notice finished
      // queries.
      const int timeout_ms =
          !options_.completion_wakeups && AnyPendingWork(t) ? 2 : 250;
      const int n = t->loop.Wait(timeout_ms, &events);
      if (n < 0) break;
      // Event handlers only mark connection state (draining/dead); no fd
      // closes here, so a stale event cannot hit a recycled descriptor —
      // by_fd is authoritative for the pass.
      for (const EventLoop::Event& ev : events) {
        if (t->index == 0 && listen_fd_ >= 0 && ev.fd == listen_fd_) {
          AcceptConnections(t);
          continue;
        }
        if (t->index == 0 && metrics_fd_ >= 0 && ev.fd == metrics_fd_) {
          ServeMetricsConnections();
          continue;
        }
        auto lookup = t->by_fd.find(ev.fd);
        if (lookup == t->by_fd.end()) continue;
        Conn* conn = lookup->second;
        if (ev.events & EventLoop::kError) {
          // The socket is gone; nothing to flush.
          conn->outbuf.clear();
          conn->out_sent = 0;
          CancelConnQueries(t, conn);
          conn->draining = true;
          conn->dead = true;
          continue;
        }
        if (!conn->peer_closed &&
            (ev.events & (EventLoop::kReadable | EventLoop::kHangup))) {
          if (ReadConn(t, conn)) {
            // Peer EOF. The requester is gone, so its in-flight queries
            // are cancelled (abandoned work must not outlive its
            // requester) — but replies already earned by the final burst
            // (PONGs, inline outcomes) are flushed, not discarded.
            conn->peer_closed = true;
            CancelConnQueries(t, conn);
            conn->draining = true;
          }
        }
        if (!conn->dead && (ev.events & EventLoop::kWritable) &&
            conn->out_sent < conn->outbuf.size()) {
          FlushConn(t, conn);
        }
      }
    }
    // Loop exit: cancel whatever is still in flight on this thread's
    // connections and close every socket (outcomes of cancelled queries
    // resolve through the service's completion path as it shuts down with
    // the server).
    for (auto& conn : t->conns) {
      CancelConnQueries(t, conn.get());
      t->loop.Remove(conn->fd);
      ::close(conn->fd);
    }
    connections_.fetch_sub(t->conns.size(), std::memory_order_relaxed);
    t->st_connections.store(0, std::memory_order_relaxed);
    t->conns.clear();
    t->by_fd.clear();
    t->routes.clear();
    if (t->index == 0) {
      CloseListenFrom(t);
      CloseMetricsFrom(t);
    }
  }

  void NotifyExit() {
    std::lock_guard<std::mutex> lock(exit_mutex_);
    if (++exited_threads_ == io_.size()) {
      exited_ = true;
      exit_cv_.notify_all();
    }
  }

  const ServerOptions options_;
  GraphCatalog catalog_;
  // Graphs waiting for Start(): either the historical borrowed index
  // (single-graph constructor) or a list of owned graphs to index.
  const IndexedHypergraph* shared_data_ = nullptr;
  std::vector<NamedGraph> preload_;

  // Owned by IO thread 0's loop after Start(); main-thread access only
  // before launch (Start) and after join (Stop). The metrics listener
  // follows the same ownership rule as the wire listener.
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int metrics_fd_ = -1;
  uint16_t metrics_port_ = 0;

  // MonotonicSeconds() at Start(); 0 until then (uptime reads 0).
  double start_mono_ = 0;

  // Metric handles resolved once per server; writes through them are
  // lock-free (see MetricsRegistry).
  Counter* metric_bytes_in_ =
      MetricsRegistry::Default().GetCounter("hgmatch_server_bytes_in_total");
  Counter* metric_bytes_out_ = MetricsRegistry::Default().GetCounter(
      "hgmatch_server_bytes_out_total");
  Counter* metric_reply_raw_bytes_ = MetricsRegistry::Default().GetCounter(
      "hgmatch_reply_raw_bytes_total");
  Counter* metric_reply_wire_bytes_ = MetricsRegistry::Default().GetCounter(
      "hgmatch_reply_wire_bytes_total");
  Histogram* metric_delivery_ =
      MetricsRegistry::Default().GetHistogram("hgmatch_delivery_seconds");
  Histogram* metric_batch_replies_ =
      MetricsRegistry::Default().GetHistogram("hgmatch_batch_replies");
  Histogram* metric_batch_submits_ =
      MetricsRegistry::Default().GetHistogram("hgmatch_batch_submits");

  // Slow-query ring (ServerOptions::slow_query_ms): the most recent
  // kSlowRingCapacity threshold-crossing spans, surfaced through STATS.
  static constexpr size_t kSlowRingCapacity = 64;
  std::mutex slow_mutex_;
  std::vector<WireSlowQuery> slow_queries_;
  uint64_t slow_next_ = 0;

  std::vector<std::unique_ptr<IoThread>> io_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> shutting_down_{false};

  // Which IO thread delivers each in-flight ticket: the completion hook's
  // only lookup. Entries die with their delivery, their cancellation or
  // their connection.
  std::mutex registry_mutex_;
  std::unordered_map<uint64_t, IoThread*> registry_;

  // Edge rate limiter (ServerOptions::max_submits_per_sec).
  std::mutex rate_mutex_;
  std::unordered_map<uint32_t, TokenBucket> buckets_;
  uint64_t rate_ops_ = 0;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> rate_limited_{0};
  std::atomic<uint64_t> cancelled_by_disconnect_{0};
  std::atomic<uint64_t> inflight_{0};

  std::mutex exit_mutex_;
  std::condition_variable exit_cv_;
  size_t exited_threads_ = 0;
  bool exited_ = false;
};

#else  // !HGMATCH_HAVE_SOCKETS

// Stub so the library links on platforms without POSIX sockets; Start()
// reports the gap instead of failing at compile time.
class MatchServer::Impl {
 public:
  Impl(const IndexedHypergraph&, const ServerOptions&) {}
  Impl(std::vector<NamedGraph>, const ServerOptions&) {}
  Status Start() {
    return Status::Internal("hgmatch net requires POSIX sockets");
  }
  uint16_t port() const { return 0; }
  uint16_t metrics_port() const { return 0; }
  void Wait() {}
  bool WaitFor(double) { return true; }
  void Stop() {}
  WireStats Stats() { return {}; }
};

#endif  // HGMATCH_HAVE_SOCKETS

MatchServer::MatchServer(const IndexedHypergraph& data,
                         const ServerOptions& options)
    : impl_(std::make_unique<Impl>(data, options)) {}

MatchServer::MatchServer(std::vector<NamedGraph> graphs,
                         const ServerOptions& options)
    : impl_(std::make_unique<Impl>(std::move(graphs), options)) {}

MatchServer::~MatchServer() = default;

Status MatchServer::Start() { return impl_->Start(); }

uint16_t MatchServer::port() const { return impl_->port(); }

uint16_t MatchServer::metrics_port() const { return impl_->metrics_port(); }

void MatchServer::Wait() { impl_->Wait(); }

bool MatchServer::WaitFor(double seconds) { return impl_->WaitFor(seconds); }

void MatchServer::Stop() { impl_->Stop(); }

WireStats MatchServer::Stats() const { return impl_->Stats(); }

}  // namespace hgmatch
