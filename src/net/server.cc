#include "net/server.h"

#if defined(__unix__) || defined(__APPLE__)
#define HGMATCH_HAVE_SOCKETS 1
#endif

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#if HGMATCH_HAVE_SOCKETS
#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/socket_util.h"
#endif

namespace hgmatch {

#if HGMATCH_HAVE_SOCKETS

namespace {

using net_internal::SendBytes;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

class MatchServer::Impl {
 public:
  Impl(const IndexedHypergraph& data, const ServerOptions& options)
      : options_(options), service_(data, ServiceOptionsFor(options, this)) {}

  ~Impl() { Stop(); }

  Status Start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::IOError("socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      CloseListen();
      return Status::InvalidArgument("bad listen address " + options_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      CloseListen();
      return Status::IOError("cannot bind " + options_.host + ":" +
                             std::to_string(options_.port));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len);
    port_ = ntohs(bound.sin_port);
    if (::listen(listen_fd_, 64) != 0 || !SetNonBlocking(listen_fd_)) {
      CloseListen();
      return Status::IOError("cannot listen on " + options_.host);
    }
    if (::pipe(wake_pipe_) != 0) {
      CloseListen();
      return Status::IOError("pipe() failed");
    }
    SetNonBlocking(wake_pipe_[0]);
    SetNonBlocking(wake_pipe_[1]);
    thread_ = std::thread([this] {
      ServeLoop();
      std::lock_guard<std::mutex> lock(exit_mutex_);
      exited_ = true;
      exit_cv_.notify_all();
    });
    return Status::OK();
  }

  uint16_t port() const { return port_; }

  void Wait() {
    std::unique_lock<std::mutex> lock(exit_mutex_);
    exit_cv_.wait(lock, [this] { return exited_; });
  }

  bool WaitFor(double seconds) {
    std::unique_lock<std::mutex> lock(exit_mutex_);
    return exit_cv_.wait_for(lock,
                             std::chrono::duration<double>(
                                 seconds > 0 ? seconds : 0),
                             [this] { return exited_; });
  }

  void Stop() {
    stop_requested_.store(true, std::memory_order_release);
    WakeLoop();
    if (thread_.joinable()) thread_.join();
    CloseListen();
    // The loop cancelled whatever was still in flight on exit; those
    // queries resolve asynchronously and their completion hooks write the
    // wake pipe. Shut the service down *before* closing the pipe so no
    // straggler hook can write into a recycled descriptor (Shutdown blocks
    // until every outcome resolved and every hook returned; it is
    // idempotent, so the destructor chain repeating it is harmless).
    service_.Shutdown();
    for (int i = 0; i < 2; ++i) {
      if (wake_pipe_[i] >= 0) {
        ::close(wake_pipe_[i]);
        wake_pipe_[i] = -1;
      }
    }
  }

  WireStats Stats() const {
    WireStats s;
    s.num_threads = service_.num_threads();
    s.connections = connections_.load(std::memory_order_relaxed);
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.cancelled_by_disconnect =
        cancelled_by_disconnect_.load(std::memory_order_relaxed);
    s.inflight = inflight_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::string outbuf;
    size_t out_sent = 0;  // prefix of outbuf already on the wire
    std::unordered_map<uint64_t, Ticket> inflight;
    // The connection is ending (protocol error answered with kError, or
    // peer EOF): in-flight queries are already cancelled; flush whatever
    // replies were earned, then close.
    bool draining = false;
    // Peer EOF seen: stop polling POLLIN (a closed peer reports readable
    // forever).
    bool peer_closed = false;
  };

  // Where a finished ticket's reply goes: the connection that submitted it
  // and the client-chosen request id scoping the reply.
  struct Route {
    Conn* conn = nullptr;
    uint64_t request_id = 0;
  };

  // Installs the completion hook that drives outcome delivery: each
  // finished ticket id goes onto the ready list and the serving loop is
  // woken through its pipe. The hook body is deliberately tiny — it runs
  // on a pool worker inside the query's finish path.
  static ServiceOptions ServiceOptionsFor(const ServerOptions& options,
                                          Impl* self) {
    ServiceOptions service = options.service;
    if (!options.completion_wakeups) return service;
    auto chained = std::move(service.on_query_complete);
    service.on_query_complete = [self, chained](uint64_t ticket_id,
                                                const QueryOutcome& outcome) {
      if (chained) chained(ticket_id, outcome);
      self->OnQueryComplete(ticket_id);
    };
    return service;
  }

  void OnQueryComplete(uint64_t ticket_id) {
    {
      std::lock_guard<std::mutex> lock(ready_mutex_);
      ready_.push_back(ticket_id);
    }
    WakeLoop();
  }

  // Wakes the poll loop; a full pipe is as good as a written one (the loop
  // drains the pipe and the ready list together).
  void WakeLoop() {
    if (wake_pipe_[1] >= 0) {
      const char byte = 0;
      (void)!::write(wake_pipe_[1], &byte, 1);
    }
  }

  void CloseListen() {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  void SendFrame(Conn* conn, FrameType type, std::string_view payload) {
    AppendFrame(type, payload, &conn->outbuf);
  }

  // Cancels and orphans every in-flight query of a dying connection and
  // forgets their delivery routes. Nothing needs to track the orphans
  // afterwards: the service resolves every outcome eagerly through its
  // completion hook, so the queries' slots recycle without anyone reading
  // them, and a ready-list id whose route is gone is simply skipped.
  void CancelConnQueries(Conn* conn) {
    cancelled_by_disconnect_.fetch_add(conn->inflight.size(),
                                       std::memory_order_relaxed);
    inflight_.fetch_sub(conn->inflight.size(), std::memory_order_relaxed);
    for (auto& [id, ticket] : conn->inflight) {
      routes_.erase(ticket.id());
      ticket.Cancel();
    }
    conn->inflight.clear();
  }

  // Queues one finished query's reply on its connection.
  void DeliverOutcome(Conn* conn, uint64_t request_id,
                      const QueryOutcome& outcome) {
    if (outcome.status == QueryStatus::kRejected) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      SendFrame(conn, FrameType::kRejected, EncodeRequestId(request_id));
    } else {
      completed_.fetch_add(1, std::memory_order_relaxed);
      SendFrame(conn, FrameType::kOutcome,
                EncodeOutcome({request_id, outcome}));
    }
  }

  void ProtocolError(Conn* conn, const std::string& message) {
    if (conn->draining) return;
    SendFrame(conn, FrameType::kError, message);
    CancelConnQueries(conn);
    conn->draining = true;
  }

  // Connection teardown is signalled through conn->draining, never by a
  // return value.
  void HandleFrame(Conn* conn, FrameReader::Frame& frame) {
    switch (frame.type) {
      case FrameType::kSubmit: {
        Result<WireSubmit> submit = DecodeSubmit(frame.payload);
        if (!submit.ok()) {
          ProtocolError(conn, submit.status().message());
          return;
        }
        WireSubmit& ws = submit.value();
        if (conn->inflight.count(ws.request_id) != 0) {
          ProtocolError(conn, "duplicate request id " +
                                  std::to_string(ws.request_id));
          return;
        }
        SubmitOptions so;
        so.tenant_id = ws.tenant_id;
        so.priority = ws.priority;
        so.weight = std::isfinite(ws.weight) ? ws.weight : 1.0;
        so.timeout_seconds =
            std::isfinite(ws.timeout_seconds) ? ws.timeout_seconds : -1;
        so.limit = ws.limit;
        Ticket ticket = service_.Submit(std::move(ws.query), so);
        submitted_.fetch_add(1, std::memory_order_relaxed);
        // Backpressure sheds, planning errors and mirrors of completed
        // canonicals resolve synchronously — and a fast query may already
        // have finished between Submit and here: answer inline. The
        // completion hook may have pushed such a ticket onto the ready
        // list already; with no route registered, the sweep skips it.
        const QueryOutcome* done = ticket.TryGet();
        if (done != nullptr) {
          DeliverOutcome(conn, ws.request_id, *done);
          return;
        }
        if (options_.completion_wakeups) {
          routes_[ticket.id()] = {conn, ws.request_id};
        }
        inflight_.fetch_add(1, std::memory_order_relaxed);
        conn->inflight.emplace(ws.request_id, std::move(ticket));
        return;
      }
      case FrameType::kCancel: {
        Result<uint64_t> id = DecodeRequestId(frame.payload);
        if (!id.ok()) {
          ProtocolError(conn, id.status().message());
          return;
        }
        auto it = conn->inflight.find(id.value());
        // Unknown ids are ignored: the cancel raced the outcome.
        if (it != conn->inflight.end()) {
          it->second.Cancel();
          // A synchronously resolved cancel (queued query, mirror of a
          // running canonical) is ready right now: answer inline and drop
          // its route so the ready-list sweep cannot answer it again.
          const QueryOutcome* done = it->second.TryGet();
          if (done != nullptr) {
            routes_.erase(it->second.id());
            DeliverOutcome(conn, it->first, *done);
            inflight_.fetch_sub(1, std::memory_order_relaxed);
            conn->inflight.erase(it);
          }
        }
        return;
      }
      case FrameType::kPing:
        SendFrame(conn, FrameType::kPong, frame.payload);
        return;
      case FrameType::kStats:
        SendFrame(conn, FrameType::kStatsReply, EncodeStats(Stats()));
        return;
      case FrameType::kShutdown:
        if (options_.allow_remote_shutdown) {
          shutting_down_ = true;
          CloseListen();
        } else {
          ProtocolError(conn, "remote shutdown is disabled");
        }
        return;
      default:
        // Server-bound streams must not carry server->client frames.
        ProtocolError(conn, "unexpected frame type");
        return;
    }
  }

  // Reads everything available and handles the complete frames; true when
  // the connection must be dropped. A clean EOF still parses what arrived
  // first, so a peer that pipelines frames and closes loses nothing.
  bool ReadConn(Conn* conn) {
    char buffer[1 << 16];
    bool peer_closed = false;
    while (true) {
      const ssize_t got = ::read(conn->fd, buffer, sizeof(buffer));
      if (got > 0) {
        conn->reader.Feed(buffer, static_cast<size_t>(got));
        if (static_cast<size_t>(got) < sizeof(buffer)) break;
        continue;
      }
      if (got == 0) {  // clean EOF
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return true;
    }
    if (!conn->draining) {  // ignore bytes after an error
      FrameReader::Frame frame;
      while (true) {
        Result<bool> next = conn->reader.Next(&frame);
        if (!next.ok()) {
          ProtocolError(conn, next.status().message());
          break;
        }
        if (!next.value()) break;
        HandleFrame(conn, frame);
        if (conn->draining) break;
      }
    }
    return peer_closed;
  }

  // Flushes as much buffered output as the socket accepts; true when the
  // connection must be dropped (write error, or a drained error-close).
  bool FlushConn(Conn* conn) {
    while (conn->out_sent < conn->outbuf.size()) {
      const ssize_t sent =
          SendBytes(conn->fd, conn->outbuf.data() + conn->out_sent,
                    conn->outbuf.size() - conn->out_sent);
      if (sent > 0) {
        conn->out_sent += static_cast<size_t>(sent);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return true;
    }
    if (conn->out_sent == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->out_sent = 0;
      if (conn->draining) return true;
    }
    // A peer that stopped reading its replies pins every byte we buffer;
    // past the bound it is abandoned like any other dead connection.
    if (conn->outbuf.size() - conn->out_sent >
        options_.max_connection_buffer) {
      return true;
    }
    return false;
  }

  void AcceptConnections() {
    while (listen_fd_ >= 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN and friends: done for this pass
      if (!SetNonBlocking(fd)) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (conns_.size() >= options_.max_connections) {
        // Turn the connection away loudly (best-effort write on a fresh
        // socket buffer) instead of hanging it.
        std::string frame;
        AppendFrame(FrameType::kError, "server is at max connections",
                    &frame);
        (void)SendBytes(fd, frame.data(), frame.size());
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conns_.push_back(std::move(conn));
    }
    connections_.store(conns_.size(), std::memory_order_relaxed);
  }

  void DropConn(size_t i) {
    CancelConnQueries(conns_[i].get());
    ::close(conns_[i]->fd);
    conns_.erase(conns_.begin() + i);
    connections_.store(conns_.size(), std::memory_order_relaxed);
  }

  // Completion-driven delivery: drains the ready list the completion hook
  // filled and answers exactly those tickets — O(finished), never a scan
  // of all pending tickets. Ids without a route were answered inline at
  // submit/cancel time or belonged to a dropped connection; skipping them
  // is the whole cleanup.
  void DeliverReady() {
    {
      std::lock_guard<std::mutex> lock(ready_mutex_);
      if (ready_.empty()) return;
      ready_drain_.swap(ready_);
    }
    for (const uint64_t ticket_id : ready_drain_) {
      auto route = routes_.find(ticket_id);
      if (route == routes_.end()) continue;
      Conn* conn = route->second.conn;
      const uint64_t request_id = route->second.request_id;
      routes_.erase(route);
      auto it = conn->inflight.find(request_id);
      if (it == conn->inflight.end()) continue;
      // The hook fires strictly after the outcome is retrievable, so this
      // TryGet cannot miss.
      const QueryOutcome* done = it->second.TryGet();
      if (done == nullptr) continue;
      DeliverOutcome(conn, request_id, *done);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      conn->inflight.erase(it);
    }
    ready_drain_.clear();
  }

  // Poll fallback (ServerOptions::completion_wakeups == false): scan every
  // pending ticket, gated on the service's finished-query counter so idle
  // passes stay cheap. Snapshot before sweeping: a finish racing the sweep
  // re-arms the next pass.
  void DeliverFinished() {
    const uint64_t finished_now = service_.finished_queries();
    if (finished_now == finished_seen_) return;
    for (auto& conn : conns_) {
      for (auto it = conn->inflight.begin(); it != conn->inflight.end();) {
        const QueryOutcome* done = it->second.TryGet();
        if (done == nullptr) {
          ++it;
          continue;
        }
        DeliverOutcome(conn.get(), it->first, *done);
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        it = conn->inflight.erase(it);
      }
    }
    finished_seen_ = finished_now;
  }

  bool AnyPendingWork() const {
    for (const auto& conn : conns_) {
      if (!conn->inflight.empty()) return true;
    }
    return false;
  }

  void ServeLoop() {
    std::vector<pollfd> fds;
    while (true) {
      if (stop_requested_.load(std::memory_order_acquire)) break;
      AcceptConnections();
      if (options_.completion_wakeups) {
        DeliverReady();
      } else {
        DeliverFinished();
      }
      for (size_t i = 0; i < conns_.size();) {
        if (FlushConn(conns_[i].get())) {
          DropConn(i);
        } else {
          ++i;
        }
      }
      if (shutting_down_) {
        // Graceful remote shutdown: finish in-flight work, flush, then
        // close connections as they go idle; exit when none remain.
        for (size_t i = 0; i < conns_.size();) {
          Conn* conn = conns_[i].get();
          if (conn->inflight.empty() && conn->outbuf.empty()) {
            DropConn(i);
          } else {
            ++i;
          }
        }
        if (conns_.empty()) break;
      }

      fds.clear();
      fds.push_back({wake_pipe_[0], POLLIN, 0});
      if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
      for (const auto& conn : conns_) {
        // A half-closed peer reports POLLIN/EOF forever; stop asking.
        short events = conn->peer_closed ? 0 : POLLIN;
        if (conn->out_sent < conn->outbuf.size()) events |= POLLOUT;
        fds.push_back({conn->fd, events, 0});
      }
      // Completion wakeups arrive through the wake pipe the instant a
      // query finishes, so the timeout is pure idle housekeeping; only the
      // poll fallback needs a tight cadence to notice finished queries.
      const int timeout_ms =
          !options_.completion_wakeups && AnyPendingWork() ? 2 : 250;
      const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0 && errno != EINTR) break;

      size_t fd_index = 0;
      if (fds[fd_index].revents & POLLIN) {
        char drain[64];
        while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
        }
      }
      ++fd_index;
      if (listen_fd_ >= 0) ++fd_index;  // accept handled at loop top
      // Map poll results back to connections (same order as built).
      for (size_t i = 0; i < conns_.size() && fd_index + i < fds.size();
           ++i) {
        const short revents = fds[fd_index + i].revents;
        Conn* conn = conns_[i].get();
        if (revents & (POLLERR | POLLNVAL)) {
          conn->outbuf.clear();  // the socket is gone; nothing to flush
          conn->draining = true;
          continue;
        }
        if (!conn->peer_closed && (revents & (POLLIN | POLLHUP))) {
          if (ReadConn(conn)) {
            // Peer EOF. The requester is gone, so its in-flight queries
            // are cancelled (abandoned work must not outlive its
            // requester) — but replies already earned by the final burst
            // (PONGs, inline outcomes) are flushed, not discarded.
            conn->peer_closed = true;
            CancelConnQueries(conn);
            conn->draining = true;
          }
        }
      }
      for (size_t i = 0; i < conns_.size();) {
        Conn* conn = conns_[i].get();
        if (conn->draining && conn->outbuf.empty()) {
          DropConn(i);
        } else {
          ++i;
        }
      }
    }
    // Loop exit: cancel whatever is still in flight and close every socket
    // (outcomes of cancelled queries resolve through the service's
    // completion path as it shuts down with the server).
    for (auto& conn : conns_) {
      CancelConnQueries(conn.get());
      ::close(conn->fd);
    }
    conns_.clear();
    connections_.store(0, std::memory_order_relaxed);
    routes_.clear();
  }

  const ServerOptions options_;
  MatchService service_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  bool shutting_down_ = false;  // serving-thread only

  std::vector<std::unique_ptr<Conn>> conns_;  // serving-thread only
  // Delivery routes of in-flight tickets, keyed by ticket id
  // (serving-thread only; entries die with their answer or connection).
  std::unordered_map<uint64_t, Route> routes_;
  uint64_t finished_seen_ = 0;  // poll-fallback gate; serving-thread only

  // Ticket ids whose outcomes finalised, pushed by the completion hook
  // from pool threads, drained by the serving loop. ready_drain_ is the
  // loop's reusable swap target (serving-thread only).
  std::mutex ready_mutex_;
  std::vector<uint64_t> ready_;
  std::vector<uint64_t> ready_drain_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> cancelled_by_disconnect_{0};
  std::atomic<uint64_t> inflight_{0};

  std::mutex exit_mutex_;
  std::condition_variable exit_cv_;
  bool exited_ = false;
};

#else  // !HGMATCH_HAVE_SOCKETS

// Stub so the library links on platforms without POSIX sockets; Start()
// reports the gap instead of failing at compile time.
class MatchServer::Impl {
 public:
  Impl(const IndexedHypergraph&, const ServerOptions&) {}
  Status Start() {
    return Status::Internal("hgmatch net requires POSIX sockets");
  }
  uint16_t port() const { return 0; }
  void Wait() {}
  bool WaitFor(double) { return true; }
  void Stop() {}
  WireStats Stats() const { return {}; }
};

#endif  // HGMATCH_HAVE_SOCKETS

MatchServer::MatchServer(const IndexedHypergraph& data,
                         const ServerOptions& options)
    : impl_(std::make_unique<Impl>(data, options)) {}

MatchServer::~MatchServer() = default;

Status MatchServer::Start() { return impl_->Start(); }

uint16_t MatchServer::port() const { return impl_->port(); }

void MatchServer::Wait() { impl_->Wait(); }

bool MatchServer::WaitFor(double seconds) { return impl_->WaitFor(seconds); }

void MatchServer::Stop() { impl_->Stop(); }

WireStats MatchServer::Stats() const { return impl_->Stats(); }

}  // namespace hgmatch
