#include "net/async_client.h"

#if defined(__unix__) || defined(__APPLE__)
#define HGMATCH_HAVE_SOCKETS 1
#endif

#if HGMATCH_HAVE_SOCKETS
#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/socket_util.h"
#endif

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <utility>
#include <vector>

namespace hgmatch {

AsyncMatchClient::AsyncMatchClient(const AsyncClientOptions& options)
    : options_(options) {}

#if HGMATCH_HAVE_SOCKETS

AsyncMatchClient::~AsyncMatchClient() { Close(); }

Status AsyncMatchClient::Connect(const std::string& host, uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (fd_ >= 0) return Status::InvalidArgument("already connected");
    if (closed_) return Status::InvalidArgument("client closed");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result) != 0) {
    return Status::IOError("cannot resolve " + host);
  }
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int candidate =
        ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (candidate < 0) continue;
    if (::connect(candidate, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(candidate, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd = candidate;
      break;
    }
    ::close(candidate);
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    return Status::IOError("cannot connect to " + host + ":" + port_str);
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    fd_ = fd;
  }
  reader_ = std::thread([this] { ReaderLoop(); });
  if (options_.request_features != 0) {
    // Negotiate before returning, so the caller's first Submit already
    // knows which features it may use. A pre-HELLO server answers the
    // unknown frame with kError, which surfaces here as a failed Connect.
    const Status sent = SendFrame(FrameType::kHello,
                                  EncodeFeatures(options_.request_features));
    if (!sent.ok()) {
      Close();
      return sent;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    cv_.wait(lock, [this] {
      return hello_done_ || !failure_.ok() || closed_;
    });
    if (!hello_done_) {
      const Status failure = failure_.ok()
                                 ? Status::InvalidArgument("client closed")
                                 : failure_;
      lock.unlock();
      Close();
      return failure;
    }
  }
  return Status::OK();
}

bool AsyncMatchClient::connected() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return fd_ >= 0;
}

Status AsyncMatchClient::SendEncoded(const std::string& frame) {
  int fd;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (fd_ < 0) return Status::InvalidArgument("not connected");
    if (!failure_.ok()) return failure_;
    fd = fd_;
  }
  std::lock_guard<std::mutex> send_lock(send_mutex_);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = net_internal::SendBytes(fd, frame.data() + sent,
                                              frame.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError("connection lost while sending");
  }
  st_frames_sent_.fetch_add(1, std::memory_order_relaxed);
  st_bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status AsyncMatchClient::SendFrame(FrameType type,
                                   const std::string& payload) {
  std::string frame;
  AppendFrame(type, payload, &frame);
  return SendEncoded(frame);
}

Status AsyncMatchClient::SendFrameNegotiated(FrameType type,
                                             const std::string& payload) {
  bool compress;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    compress = (features_ & kFeatureCompression) != 0;
  }
  std::string frame;
  AppendFrameMaybeCompressed(type, payload, compress, &frame);
  return SendEncoded(frame);
}

Result<uint64_t> AsyncMatchClient::Submit(const std::string& graph,
                                          const Hypergraph& query,
                                          const SubmitOptions& options,
                                          OutcomeCallback callback) {
  uint64_t id;
  bool with_graph;
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (fd_ < 0) return Status::InvalidArgument("not connected");
    with_graph = (features_ & kFeatureCatalog) != 0;
    if (!graph.empty() && !with_graph) {
      return Status::InvalidArgument(
          "graph routing requires the catalog feature (request "
          "kFeatureCatalog at Connect)");
    }
    if (options_.max_inflight > 0) {
      cv_.wait(lock, [this] {
        return pending_.size() < options_.max_inflight || !failure_.ok() ||
               closed_;
      });
    }
    if (!failure_.ok()) return failure_;
    if (closed_) return Status::InvalidArgument("client closed");
    id = next_request_id_++;
    pending_.emplace(id, std::move(callback));
  }
  WireSubmit submit;
  submit.request_id = id;
  submit.tenant_id = options.tenant_id;
  submit.priority = options.priority;
  submit.weight = options.weight;
  submit.timeout_seconds = options.timeout_seconds;
  submit.limit = options.limit;
  submit.graph = graph;
  const std::string payload = EncodeSubmit(submit, query, with_graph);
  if (payload.size() > kMaxWirePayload) {
    // Fail just this request locally: sending it would make the server
    // error-close the connection, killing every pipelined sibling.
    std::lock_guard<std::mutex> lock(state_mutex_);
    pending_.erase(id);
    cv_.notify_all();
    return Status::InvalidArgument(
        "query exceeds the wire payload bound (" +
        std::to_string(payload.size()) + " > " +
        std::to_string(kMaxWirePayload) + " bytes)");
  }
  const Status sent = SendFrameNegotiated(FrameType::kSubmit, payload);
  if (!sent.ok()) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (pending_.erase(id) == 1) {
      cv_.notify_all();
      return sent;
    }
    // The reader tore the connection down between our send and this
    // cleanup and already owns the callback: it fires with the failure,
    // so the request counts as accepted (exactly-once holds).
  }
  return id;
}

Result<std::vector<uint64_t>> AsyncMatchClient::SubmitBatch(
    const std::string& graph, const std::vector<const Hypergraph*>& queries,
    const SubmitOptions& options, OutcomeCallback callback) {
  bool batched;
  bool with_graph;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (fd_ < 0) return Status::InvalidArgument("not connected");
    batched = (features_ & kFeatureBatch) != 0;
    with_graph = (features_ & kFeatureCatalog) != 0;
  }
  if (!graph.empty() && !with_graph) {
    return Status::InvalidArgument(
        "graph routing requires the catalog feature (request "
        "kFeatureCatalog at Connect)");
  }
  std::vector<uint64_t> ids;
  ids.reserve(queries.size());
  if (!batched) {
    // The server never granted batching: same requests, same callbacks,
    // one SUBMIT frame each.
    for (const Hypergraph* query : queries) {
      Result<uint64_t> id = Submit(graph, *query, options, callback);
      if (!id.ok()) return id.status();
      ids.push_back(id.value());
    }
    return ids;
  }

  // Pre-encode every entry with a placeholder request id; ids are only
  // assigned under the window wait below, chunk by chunk, and the id is
  // the first 8 bytes of the SUBMIT payload — patched in place (the graph
  // name sits after the fixed fields, so the id offset is unaffected).
  WireSubmit fields;
  fields.request_id = 0;
  fields.tenant_id = options.tenant_id;
  fields.priority = options.priority;
  fields.weight = options.weight;
  fields.timeout_seconds = options.timeout_seconds;
  fields.limit = options.limit;
  fields.graph = graph;
  std::vector<std::string> entries;
  entries.reserve(queries.size());
  for (const Hypergraph* query : queries) {
    entries.push_back(EncodeSubmit(fields, *query, with_graph));
    if (entries.back().size() > kMaxWirePayload) {
      return Status::InvalidArgument(
          "batch entry exceeds the wire payload bound (" +
          std::to_string(entries.back().size()) + " > " +
          std::to_string(kMaxWirePayload) + " bytes)");
    }
  }

  // Chunk by the frame payload bound and the in-flight window, then ship
  // each chunk as one kBatchSubmit frame. Chunks are capped at half the
  // window so the next chunk is admitted while the previous one drains —
  // a full-window chunk would stall until pending hits zero between
  // frames, serialising the flood.
  const size_t chunk_cap =
      options_.max_inflight > 0
          ? std::max<size_t>(1, options_.max_inflight / 2)
          : 0;
  size_t begin = 0;
  while (begin < entries.size()) {
    size_t end = begin;
    size_t chunk_bytes = 10;  // count varint
    while (end < entries.size()) {
      const size_t entry_bytes = entries[end].size() + 10;
      if (end > begin && chunk_bytes + entry_bytes > kMaxWirePayload) break;
      if (chunk_cap > 0 && end - begin >= chunk_cap) break;
      chunk_bytes += entry_bytes;
      ++end;
    }
    const size_t chunk = end - begin;
    std::vector<std::string> frame_entries(
        std::make_move_iterator(entries.begin() + begin),
        std::make_move_iterator(entries.begin() + end));
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      if (options_.max_inflight > 0) {
        cv_.wait(lock, [this, chunk] {
          return pending_.size() + chunk <= options_.max_inflight ||
                 !failure_.ok() || closed_;
        });
      }
      if (!failure_.ok()) return failure_;
      if (closed_) return Status::InvalidArgument("client closed");
      for (std::string& entry : frame_entries) {
        const uint64_t id = next_request_id_++;
        std::memcpy(entry.data(), &id, sizeof(id));
        pending_.emplace(id, callback);
        ids.push_back(id);
      }
    }
    const Status sent = SendFrameNegotiated(
        FrameType::kBatchSubmit, EncodeBatchPayload(frame_entries));
    if (!sent.ok()) {
      // Un-register what the reader has not already claimed; claimed ones
      // fire through the failure path (exactly-once, as in Submit). Ids of
      // chunks already sent stay accepted — their callbacks still fire.
      std::lock_guard<std::mutex> lock(state_mutex_);
      for (size_t i = ids.size() - chunk; i < ids.size(); ++i) {
        pending_.erase(ids[i]);
      }
      cv_.notify_all();
      return sent;
    }
    begin = end;
  }
  return ids;
}

uint32_t AsyncMatchClient::features() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return features_;
}

ClientTransferStats AsyncMatchClient::TransferStats() const {
  ClientTransferStats s;
  s.frames_sent = st_frames_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = st_bytes_sent_.load(std::memory_order_relaxed);
  s.frames_received = st_frames_received_.load(std::memory_order_relaxed);
  s.bytes_received = st_bytes_received_.load(std::memory_order_relaxed);
  return s;
}

Status AsyncMatchClient::Cancel(uint64_t request_id) {
  return SendFrame(FrameType::kCancel, EncodeRequestId(request_id));
}

Status AsyncMatchClient::Ping() {
  const Status sent = SendFrame(FrameType::kPing, "ping");
  if (!sent.ok()) return sent;
  std::unique_lock<std::mutex> lock(state_mutex_);
  // Replies come back in send order, so waiting for the N-th pong after
  // sending the N-th ping is exact even with concurrent pingers.
  const uint64_t ticket = ++pings_sent_;
  cv_.wait(lock, [this, ticket] {
    return pongs_received_ >= ticket || !failure_.ok() || closed_;
  });
  if (pongs_received_ >= ticket) return Status::OK();
  return failure_.ok() ? Status::InvalidArgument("client closed") : failure_;
}

Result<WireStats> AsyncMatchClient::Stats() {
  const Status sent = SendFrame(FrameType::kStats, "");
  if (!sent.ok()) return sent;
  std::unique_lock<std::mutex> lock(state_mutex_);
  cv_.wait(lock, [this] {
    return !stats_replies_.empty() || !failure_.ok() || closed_;
  });
  if (!stats_replies_.empty()) {
    WireStats stats = std::move(stats_replies_.front());
    stats_replies_.pop_front();
    return stats;
  }
  return failure_.ok() ? Status::InvalidArgument("client closed") : failure_;
}

Status AsyncMatchClient::RequestShutdown() {
  return SendFrame(FrameType::kShutdown, "");
}

Result<WireCatalogReply> AsyncMatchClient::CatalogRoundTrip(
    FrameType type, const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if ((features_ & kFeatureCatalog) == 0) {
      return Status::InvalidArgument(
          "catalog verbs require the catalog feature (request "
          "kFeatureCatalog at Connect)");
    }
  }
  const Status sent = SendFrame(type, payload);
  if (!sent.ok()) return sent;
  std::unique_lock<std::mutex> lock(state_mutex_);
  // Replies come back in send order (all three verbs answer with one
  // kCatalogReply), so FIFO matching is exact, as with Stats().
  cv_.wait(lock, [this] {
    return !catalog_replies_.empty() || !failure_.ok() || closed_;
  });
  if (!catalog_replies_.empty()) {
    WireCatalogReply reply = std::move(catalog_replies_.front());
    catalog_replies_.pop_front();
    return reply;
  }
  return failure_.ok() ? Status::InvalidArgument("client closed") : failure_;
}

Result<WireCatalogReply> AsyncMatchClient::ListGraphs() {
  return CatalogRoundTrip(FrameType::kListGraphs, "");
}

Result<WireCatalogReply> AsyncMatchClient::LoadGraph(const std::string& name,
                                                     const std::string& path) {
  return CatalogRoundTrip(FrameType::kLoadGraph,
                          EncodeCatalogRequest({name, path}));
}

Result<WireCatalogReply> AsyncMatchClient::UnloadGraph(
    const std::string& name) {
  return CatalogRoundTrip(FrameType::kUnloadGraph,
                          EncodeCatalogRequest({name, ""}));
}

void AsyncMatchClient::Close() {
  int fd;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (closed_) return;
    closed_ = true;
    fd = fd_;
    cv_.notify_all();
  }
  // Unblocks the reader (read returns 0); its EOF path fires every
  // pending callback with the connection-lost status before exiting.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void AsyncMatchClient::FinishOne(WireOutcome wire) {
  OutcomeCallback callback;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto it = pending_.find(wire.request_id);
    if (it == pending_.end()) return;  // unknown id: nothing waits on it
    callback = std::move(it->second);
    pending_.erase(it);
    cv_.notify_all();  // a window slot freed up
  }
  AsyncOutcome result;
  result.request_id = wire.request_id;
  result.wire = std::move(wire);
  if (callback) callback(result);
}

void AsyncMatchClient::FailAll(const Status& status) {
  std::unordered_map<uint64_t, OutcomeCallback> orphans;
  Status verdict;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (failure_.ok()) failure_ = status;
    verdict = failure_;
    orphans.swap(pending_);
    cv_.notify_all();
  }
  for (auto& [id, callback] : orphans) {
    if (!callback) continue;
    AsyncOutcome result;
    result.request_id = id;
    result.transport = verdict;
    callback(result);
  }
}

void AsyncMatchClient::ReaderLoop() {
  int fd;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    fd = fd_;
  }
  FrameReader reader;
  FrameReader::Frame frame;
  char buffer[1 << 16];
  while (true) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got == 0) {
      bool closed;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        closed = closed_;
      }
      FailAll(Status::IOError(closed ? "client closed"
                                     : "connection closed by server"));
      return;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      FailAll(Status::IOError("connection read failed"));
      return;
    }
    st_bytes_received_.fetch_add(static_cast<uint64_t>(got),
                                 std::memory_order_relaxed);
    reader.Feed(buffer, static_cast<size_t>(got));
    while (true) {
      Result<bool> next = reader.Next(&frame);
      if (!next.ok()) {
        FailAll(next.status());
        return;
      }
      if (!next.value()) break;
      st_frames_received_.fetch_add(1, std::memory_order_relaxed);
      if (!HandleServerFrame(frame.type, frame.payload)) return;
    }
  }
}

bool AsyncMatchClient::HandleServerFrame(FrameType type,
                                         std::string& payload) {
  switch (type) {
    case FrameType::kOutcome: {
      Result<WireOutcome> outcome =
          DecodeOutcome(payload, (features_ & kFeatureTrace) != 0);
      if (!outcome.ok()) {
        FailAll(outcome.status());
        return false;
      }
      FinishOne(std::move(outcome).value());
      return true;
    }
    case FrameType::kBatchOutcome: {
      Result<std::vector<std::string_view>> entries =
          DecodeBatchPayload(payload);
      if (!entries.ok()) {
        FailAll(entries.status());
        return false;
      }
      for (const std::string_view entry : entries.value()) {
        Result<WireOutcome> outcome =
            DecodeOutcome(entry, (features_ & kFeatureTrace) != 0);
        if (!outcome.ok()) {
          FailAll(outcome.status());
          return false;
        }
        FinishOne(std::move(outcome).value());
      }
      return true;
    }
    case FrameType::kCompressed: {
      std::string inner;
      Result<FrameType> inner_type = DecodeCompressedFrame(payload, &inner);
      if (!inner_type.ok()) {
        FailAll(inner_type.status());
        return false;
      }
      // One level only: DecodeCompressedFrame rejects nested kCompressed.
      return HandleServerFrame(inner_type.value(), inner);
    }
    case FrameType::kRejected: {
      Result<WireRejected> rejected = DecodeRejected(payload);
      if (!rejected.ok()) {
        FailAll(rejected.status());
        return false;
      }
      // Server-side sheds surface as a normal outcome with
      // QueryStatus::kRejected and the shed reason attached.
      WireOutcome wire;
      wire.request_id = rejected.value().request_id;
      wire.outcome.status = QueryStatus::kRejected;
      wire.reject_reason = rejected.value().reason;
      FinishOne(std::move(wire));
      return true;
    }
    case FrameType::kPong: {
      if (payload != "ping") {
        FailAll(Status::Corruption("PONG payload mismatch"));
        return false;
      }
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++pongs_received_;
      cv_.notify_all();
      return true;
    }
    case FrameType::kStatsReply: {
      Result<WireStats> stats = DecodeStats(payload);
      if (!stats.ok()) {
        FailAll(stats.status());
        return false;
      }
      std::lock_guard<std::mutex> lock(state_mutex_);
      stats_replies_.push_back(std::move(stats).value());
      cv_.notify_all();
      return true;
    }
    case FrameType::kCatalogReply: {
      Result<WireCatalogReply> reply = DecodeCatalogReply(payload);
      if (!reply.ok()) {
        FailAll(reply.status());
        return false;
      }
      std::lock_guard<std::mutex> lock(state_mutex_);
      catalog_replies_.push_back(std::move(reply).value());
      cv_.notify_all();
      return true;
    }
    case FrameType::kHelloReply: {
      Result<uint32_t> granted = DecodeFeatures(payload);
      if (!granted.ok()) {
        FailAll(granted.status());
        return false;
      }
      std::lock_guard<std::mutex> lock(state_mutex_);
      features_ = granted.value();
      hello_done_ = true;
      cv_.notify_all();
      return true;
    }
    case FrameType::kError:
      FailAll(Status::Internal("server error: " + payload));
      return false;
    default:
      FailAll(Status::Corruption("unexpected frame from server"));
      return false;
  }
}

#else  // !HGMATCH_HAVE_SOCKETS

AsyncMatchClient::~AsyncMatchClient() = default;
Status AsyncMatchClient::Connect(const std::string&, uint16_t) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
bool AsyncMatchClient::connected() const { return false; }
Status AsyncMatchClient::SendFrame(FrameType, const std::string&) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<uint64_t> AsyncMatchClient::Submit(const std::string&,
                                          const Hypergraph&,
                                          const SubmitOptions&,
                                          OutcomeCallback) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<std::vector<uint64_t>> AsyncMatchClient::SubmitBatch(
    const std::string&, const std::vector<const Hypergraph*>&,
    const SubmitOptions&, OutcomeCallback) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<WireCatalogReply> AsyncMatchClient::CatalogRoundTrip(
    FrameType, const std::string&) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<WireCatalogReply> AsyncMatchClient::ListGraphs() {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<WireCatalogReply> AsyncMatchClient::LoadGraph(const std::string&,
                                                     const std::string&) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<WireCatalogReply> AsyncMatchClient::UnloadGraph(const std::string&) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
uint32_t AsyncMatchClient::features() const { return 0; }
ClientTransferStats AsyncMatchClient::TransferStats() const { return {}; }
Status AsyncMatchClient::SendEncoded(const std::string&) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status AsyncMatchClient::SendFrameNegotiated(FrameType,
                                             const std::string&) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
bool AsyncMatchClient::HandleServerFrame(FrameType, std::string&) {
  return false;
}
Status AsyncMatchClient::Cancel(uint64_t) {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status AsyncMatchClient::Ping() {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Result<WireStats> AsyncMatchClient::Stats() {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
Status AsyncMatchClient::RequestShutdown() {
  return Status::Internal("hgmatch net requires POSIX sockets");
}
void AsyncMatchClient::Close() {}
void AsyncMatchClient::ReaderLoop() {}
void AsyncMatchClient::FinishOne(WireOutcome) {}
void AsyncMatchClient::FailAll(const Status&) {}

#endif  // HGMATCH_HAVE_SOCKETS

}  // namespace hgmatch
