#ifndef HGMATCH_NET_CLIENT_H_
#define HGMATCH_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/hypergraph.h"
#include "net/protocol.h"
#include "parallel/submit_options.h"
#include "util/status.h"

namespace hgmatch {

/// Blocking client of the hgmatch wire protocol (net/protocol.h), used by
/// `hgmatch query --connect`, the loopback tests and the benches. One
/// instance speaks for one connection and is NOT thread-safe — it is a
/// deliberately simple, synchronous API; concurrency comes from pipelining
/// (submit many, then wait) or from one client per thread.
///
/// Submissions are pipelined: Submit() assigns a connection-unique request
/// id and returns immediately after writing the frame; WaitOutcome(id)
/// blocks reading frames until that id's outcome (or rejection) arrives,
/// buffering outcomes of other ids for their own waits. A submission shed
/// by server backpressure surfaces as a normal outcome with
/// QueryStatus::kRejected.
class MatchClient {
 public:
  MatchClient() = default;
  ~MatchClient();

  MatchClient(const MatchClient&) = delete;
  MatchClient& operator=(const MatchClient&) = delete;

  /// Connects to host:port (numeric IP or hostname). POSIX-only.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Sends one query; returns its request id. `options.sink` is ignored
  /// (embeddings do not cross the wire; counts and stats do).
  Result<uint64_t> Submit(const Hypergraph& query,
                          const SubmitOptions& options = {});

  /// Blocks until `request_id`'s outcome (or rejection) arrives.
  Result<WireOutcome> WaitOutcome(uint64_t request_id);

  /// Requests cancellation of an in-flight submission (fire and forget:
  /// the outcome — cancelled or already finished — still arrives).
  Status Cancel(uint64_t request_id);

  /// Round-trips a PING frame.
  Status Ping();

  /// Fetches the server statistics snapshot.
  Result<WireStats> Stats();

  /// Asks the server process to shut down (needs the server to run with
  /// allow_remote_shutdown).
  Status RequestShutdown();

  void Close();

 private:
  Status SendFrame(FrameType type, const std::string& payload);
  /// Blocks until one complete frame arrives.
  Result<FrameReader::Frame> ReadOneFrame();
  /// Files an outcome/rejection frame under its request id in ready_;
  /// kError and unexpected types abort with an error status.
  Status AbsorbFrame(const FrameReader::Frame& frame);
  /// ReadOneFrame + AbsorbFrame: advances by exactly one outcome-bearing
  /// frame (the WaitOutcome pump).
  Status PumpOutcomeFrame();
  /// Reads frames until one of type `want` arrives, buffering outcomes and
  /// rejections along the way; kError aborts with its message.
  Result<FrameReader::Frame> ReadFrameOfType(FrameType want);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameReader reader_;
  std::unordered_map<uint64_t, WireOutcome> ready_;  // out-of-order arrivals
};

}  // namespace hgmatch

#endif  // HGMATCH_NET_CLIENT_H_
