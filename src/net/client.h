#ifndef HGMATCH_NET_CLIENT_H_
#define HGMATCH_NET_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/hypergraph.h"
#include "net/async_client.h"
#include "net/protocol.h"
#include "parallel/submit_options.h"
#include "util/status.h"

namespace hgmatch {

/// Blocking client of the hgmatch wire protocol (net/protocol.h), used by
/// `hgmatch query --connect`, the loopback tests and the benches. One
/// instance speaks for one connection; the synchronous surface stays the
/// deliberately simple one — concurrency comes from pipelining (submit
/// many, then wait) or from one client per thread.
///
/// This is a thin facade over AsyncMatchClient (net/async_client.h): each
/// Submit() registers a callback that files the reply into a ready map,
/// and WaitOutcome(id) parks on a condition variable until that id's
/// outcome (or a connection failure) arrives — outcomes of other ids wait
/// in the map for their own waits, exactly like the historical
/// frame-pumping client. A submission shed by server backpressure or rate
/// limiting surfaces as a normal outcome with QueryStatus::kRejected (the
/// shed reason lands in WireOutcome::reject_reason).
class MatchClient {
 public:
  MatchClient() = default;
  /// Non-default transport options — a bounded in-flight window, or
  /// AsyncClientOptions::request_features to negotiate batching/
  /// compression at Connect() (`hgmatch query --batch/--compress`).
  explicit MatchClient(const AsyncClientOptions& options)
      : async_(options) {}
  ~MatchClient();

  MatchClient(const MatchClient&) = delete;
  MatchClient& operator=(const MatchClient&) = delete;

  /// Connects to host:port (numeric IP or hostname). POSIX-only.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return async_.connected(); }

  /// Sends one query; returns its request id. `options.sink` is ignored
  /// (embeddings do not cross the wire; counts and stats do).
  Result<uint64_t> Submit(const Hypergraph& query,
                          const SubmitOptions& options = {});

  /// Submit routed to a named graph in the server's catalog (empty =
  /// default graph; naming one requires kFeatureCatalog at Connect).
  /// An unknown graph resolves as a QueryStatus::kRejected outcome with
  /// reject_reason kUnknownGraph.
  Result<uint64_t> SubmitTo(const std::string& graph,
                            const Hypergraph& query,
                            const SubmitOptions& options = {});

  /// Sends many queries sharing one options block, coalesced into
  /// kBatchSubmit frames when the server granted kFeatureBatch (per-query
  /// SUBMIT frames otherwise). Returns the request ids in input order;
  /// wait for each with WaitOutcome() as usual.
  Result<std::vector<uint64_t>> SubmitBatch(
      const std::vector<const Hypergraph*>& queries,
      const SubmitOptions& options = {});

  /// SubmitBatch routed to a named catalog graph (empty = default graph;
  /// unknown names resolve per entry as kRejected/kUnknownGraph).
  Result<std::vector<uint64_t>> SubmitBatchTo(
      const std::string& graph,
      const std::vector<const Hypergraph*>& queries,
      const SubmitOptions& options = {});

  /// Feature bits granted at Connect() (0 when none were requested).
  uint32_t features() const { return async_.features(); }

  /// Wire transfer counters since Connect() (framing stats).
  ClientTransferStats TransferStats() const {
    return async_.TransferStats();
  }

  /// Blocks until `request_id`'s outcome (or rejection) arrives.
  Result<WireOutcome> WaitOutcome(uint64_t request_id);

  /// Requests cancellation of an in-flight submission (fire and forget:
  /// the outcome — cancelled or already finished — still arrives).
  Status Cancel(uint64_t request_id);

  /// Round-trips a PING frame.
  Status Ping();

  /// Fetches the server statistics snapshot.
  Result<WireStats> Stats();

  /// Catalog verbs (require kFeatureCatalog at Connect; see
  /// AsyncMatchClient for the reply contract).
  Result<WireCatalogReply> ListGraphs() { return async_.ListGraphs(); }
  Result<WireCatalogReply> LoadGraph(const std::string& name,
                                     const std::string& path) {
    return async_.LoadGraph(name, path);
  }
  Result<WireCatalogReply> UnloadGraph(const std::string& name) {
    return async_.UnloadGraph(name);
  }

  /// Asks the server process to shut down (needs the server to run with
  /// allow_remote_shutdown).
  Status RequestShutdown();

  void Close();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, WireOutcome> ready_;  // out-of-order arrivals
  Status failure_;  // sticky first transport/server failure

  // Declared last: destroyed first, so the reader thread joins (and every
  // callback into the members above returns) before they die.
  AsyncMatchClient async_;
};

}  // namespace hgmatch

#endif  // HGMATCH_NET_CLIENT_H_
