#ifndef HGMATCH_NET_SOCKET_UTIL_H_
#define HGMATCH_NET_SOCKET_UTIL_H_

// Small shared POSIX socket helpers for the wire front end. Only include
// from inside a #if-guarded POSIX region (net/server.cc, net/client.cc).

#include <sys/socket.h>
#include <sys/types.h>

namespace hgmatch {
namespace net_internal {

// send() with SIGPIPE suppressed: a peer that closed mid-write is an
// ordinary disconnect, not a process-killing signal.
inline ssize_t SendBytes(int fd, const char* data, size_t size) {
#ifdef MSG_NOSIGNAL
  return ::send(fd, data, size, MSG_NOSIGNAL);
#else
  return ::send(fd, data, size, 0);
#endif
}

}  // namespace net_internal
}  // namespace hgmatch

#endif  // HGMATCH_NET_SOCKET_UTIL_H_
