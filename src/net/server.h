#ifndef HGMATCH_NET_SERVER_H_
#define HGMATCH_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/indexed_hypergraph.h"
#include "net/protocol.h"
#include "parallel/service.h"
#include "util/status.h"

namespace hgmatch {

/// Options of the TCP front end.
struct ServerOptions {
  /// Listen address. The default binds loopback only — exposing a match
  /// service beyond the host is a deliberate act (`0.0.0.0`).
  std::string host = "127.0.0.1";

  /// Listen port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;

  /// The backing service configuration, shared by every hosted graph
  /// (the catalog builds one MatchService per graph from this template,
  /// all on one scheduler pool). Backpressure lives here:
  /// service.max_queued_queries bounds the admission backlog, and the
  /// server relays each shed submission as a kRejected frame. Sharded
  /// scatter-gather execution is service.shards.
  ServiceOptions service;

  /// Reactor IO threads: each runs its own epoll loop and owns the full
  /// protocol state of the connections pinned to it (see the thread-
  /// ownership notes on MatchServer). 1 = the classic single-loop server;
  /// scale up when frame parsing/serialisation saturates one core. 0 is
  /// clamped to 1.
  uint32_t io_threads = 1;

  /// Accepted connections beyond this are turned away with a kError frame
  /// (enforced across all IO threads).
  uint32_t max_connections = 64;

  /// Per-connection output-buffer bound: a peer that submits but never
  /// reads its replies is dropped (in-flight queries cancelled) once this
  /// many unsent bytes accumulate, so one stalled client cannot grow
  /// server memory. Must exceed the largest single frame
  /// (kMaxWirePayload); outcomes are ~150 bytes each.
  uint64_t max_connection_buffer = uint64_t{2} * kMaxWirePayload;

  /// Per-tenant rate limit at the server edge: each tenant id holds a
  /// token bucket refilled at this many tokens per second (burst capacity
  /// = one second's allowance, at least 1). A SUBMIT that finds its
  /// tenant's bucket empty is answered with kRejected
  /// (RejectReason::kRateLimited) before touching the service — over-limit
  /// traffic never consumes admission-queue slots or planning work.
  /// 0 disables the limiter.
  double max_submits_per_sec = 0;

  /// Honour kShutdown frames (any connected client may then stop the
  /// server). Off by default; `hgmatch serve` enables it on request for
  /// scripted runs (the CLI smoke test drives it).
  bool allow_remote_shutdown = false;

  /// Honour kLoadGraph frames, which name a file on the *server's*
  /// filesystem to index and serve. Off by default for the same reason
  /// as remote shutdown: a connected client gets a server-side
  /// capability (filesystem reads, memory growth) beyond query traffic.
  /// UNLOAD_GRAPH and LIST_GRAPHS are always honoured for
  /// catalog-negotiated peers.
  bool allow_remote_load = false;

  /// Grant kFeatureCompression to clients that request it via kHello
  /// (`hgmatch serve --compress`): both directions may then wrap frame
  /// payloads in kCompressed. Off by default — compression trades CPU on
  /// the reactor threads for bytes on the wire, a profitable trade for
  /// small-query floods over real networks but not for loopback-local
  /// bulk work. Batching (kFeatureBatch) is always granted: it strictly
  /// reduces per-frame overhead and costs nothing when unused.
  bool enable_compression = false;

  /// Prometheus exposition port: when >= 0 the server opens a second
  /// listener on `host`:`metrics_port` answering `GET /metrics` with the
  /// process metrics registry in text exposition format (HTTP/1.0,
  /// one request per connection). 0 picks an ephemeral port (read it
  /// back with metrics_port()); -1 (the default) disables the endpoint.
  /// The listener is served by IO thread 0's event loop — no extra
  /// threads — with a one-second per-scrape deadline.
  int metrics_port = -1;

  /// Slow-query threshold in milliseconds: a finished query whose
  /// submit-to-delivery span reaches the threshold is recorded in a
  /// bounded in-memory ring (most recent 64) surfaced through STATS
  /// (WireStats::slow_queries). Enabling the ring forces span capture
  /// for every submission, traced peer or not. 0 disables it.
  double slow_query_ms = 0;

  /// Completion-driven outcome delivery (the default): the server hangs a
  /// completion hook on the service (ServiceOptions::on_query_complete)
  /// that routes each finished ticket id to the ready list of the IO
  /// thread owning its connection and wakes that thread's loop, so
  /// outcomes are delivered the instant a query finishes — the idle wait
  /// timeout stays at 250 ms regardless of in-flight work.
  /// Off = the legacy poll fallback: the loop re-polls at 2 ms while
  /// queries are in flight and scans every pending ticket. The fallback
  /// predates the reactor and only composes with io_threads == 1 (Start()
  /// rejects other combinations); it is kept as an operational escape
  /// hatch and as the baseline of the bench_net_loopback latency
  /// comparison.
  bool completion_wakeups = true;
};

/// One graph preloaded into the server's catalog at construction time
/// (`hgmatch serve --graph name=path`, repeatable). The first entry is
/// the default graph — the one un-routed submissions hit.
struct NamedGraph {
  std::string name;
  Hypergraph data;
};

/// A multi-threaded epoll reactor over a GraphCatalog: the wire front
/// end that turns the library into a servable system. An acceptor (IO
/// thread 0 owns the listening socket) distributes incoming connections
/// across ServerOptions::io_threads event loops, pinned by fd hash; query
/// execution itself runs on the catalog's shared worker pool, so a slow
/// client never blocks matching and a heavy query never blocks the
/// protocol.
///
/// The catalog hosts any number of named graphs behind one pool.
/// Catalog-negotiated peers (kFeatureCatalog via HELLO) route each
/// submission by graph name, manage graphs with
/// LOAD_GRAPH/UNLOAD_GRAPH/LIST_GRAPHS, and see per-graph STATS rows;
/// peers that never negotiated speak the original byte stream and always
/// hit the default graph — old clients interoperate unchanged.
///
/// Thread-ownership invariants (the reason this design needs no
/// per-connection locks):
///
///  - A connection is owned by exactly one IO thread from adoption to
///    close. Its fd, frame reader, output buffer, in-flight ticket table
///    and delivery routes are touched only by that thread — never
///    concurrently, never handed off.
///  - Each IO thread owns one EventLoop (epoll instance + wake pipe) and
///    one route table mapping ticket ids to (connection, request id).
///    Routes are created, read and destroyed on the owning thread only.
///  - Cross-thread traffic uses exactly two channels, both leaf-locked:
///    (1) the acceptor Post()s connection adoptions into the owning
///    thread's loop, and (2) the service's completion hook pushes
///    finished ticket ids onto the owning thread's ready list and wakes
///    its loop. The hook finds the owning thread through a shared
///    ticket registry (mutex-protected map, erased on completion); a
///    ready-list id is only ever interpreted through the owning thread's
///    route table, so a stale id — its route answered inline or dead with
///    its connection — is skipped, never dereferenced.
///  - Whole-server counters (connection count, submitted/completed/...)
///    are atomics; per-IO-thread stats rows are atomics owned by one
///    writer each. The per-tenant rate limiter is a shared
///    mutex-protected map — the only state every SUBMIT path touches.
///
/// Per connection the server keeps a table of in-flight tickets keyed by
/// the client's request id. Outcome delivery is completion-driven: the
/// hook enqueues each finished ticket id on the owning thread's ready
/// list and wakes its loop, so outcomes are delivered as kOutcome frames
/// the moment they finalise, in completion order (clients pipeline
/// submissions and match replies by id). A submission shed by queue-depth
/// backpressure or the per-tenant rate limiter comes back immediately as
/// kRejected with its reason. A connection that drops — cleanly or not —
/// has all its in-flight queries cancelled: abandoned work never outlives
/// its requester. A malformed frame gets one kError frame and the same
/// cancel-and-close treatment.
///
/// POSIX-only (epoll on Linux, poll elsewhere); Start() reports Internal
/// on unsupported platforms.
class MatchServer {
 public:
  /// Serves `data` as the single catalog graph "default". `data` must
  /// outlive the server. The historical single-graph constructor; no
  /// copy, no re-index.
  MatchServer(const IndexedHypergraph& data, const ServerOptions& options);

  /// Serves `graphs` (indexed at Start(); the first is the default).
  /// Duplicate or empty names fail Start(), not construction.
  MatchServer(std::vector<NamedGraph> graphs, const ServerOptions& options);

  /// Stops and joins (cancelling in-flight queries of open connections).
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Binds, listens and launches the IO threads. Call once. Rejects
  /// incoherent options (poll fallback with io_threads > 1).
  Status Start();

  /// The bound port (resolves option port 0); valid after Start().
  uint16_t port() const;

  /// The bound /metrics port (resolves option metrics_port 0); valid
  /// after Start(), 0 when the endpoint is disabled.
  uint16_t metrics_port() const;

  /// Blocks until every IO thread exits: Stop(), or a remote shutdown
  /// when ServerOptions::allow_remote_shutdown is set.
  void Wait();

  /// Wait with a budget; true when the loops exited within it.
  bool WaitFor(double seconds);

  /// Stops serving: wakes every loop, cancels in-flight queries, closes
  /// every socket and joins the IO threads. Idempotent.
  void Stop();

  /// Statistics snapshot, equivalent to a kStats round-trip.
  WireStats Stats() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hgmatch

#endif  // HGMATCH_NET_SERVER_H_
