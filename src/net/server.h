#ifndef HGMATCH_NET_SERVER_H_
#define HGMATCH_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/indexed_hypergraph.h"
#include "net/protocol.h"
#include "parallel/service.h"
#include "util/status.h"

namespace hgmatch {

/// Options of the TCP front end.
struct ServerOptions {
  /// Listen address. The default binds loopback only — exposing a match
  /// service beyond the host is a deliberate act (`0.0.0.0`).
  std::string host = "127.0.0.1";

  /// Listen port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;

  /// The backing MatchService configuration. Backpressure lives here:
  /// service.max_queued_queries bounds the admission backlog, and the
  /// server relays each shed submission as a kRejected frame.
  ServiceOptions service;

  /// Accepted connections beyond this are turned away with a kError frame.
  uint32_t max_connections = 64;

  /// Per-connection output-buffer bound: a peer that submits but never
  /// reads its replies is dropped (in-flight queries cancelled) once this
  /// many unsent bytes accumulate, so one stalled client cannot grow
  /// server memory. Must exceed the largest single frame
  /// (kMaxWirePayload); outcomes are ~150 bytes each.
  uint64_t max_connection_buffer = uint64_t{2} * kMaxWirePayload;

  /// Honour kShutdown frames (any connected client may then stop the
  /// server). Off by default; `hgmatch serve` enables it on request for
  /// scripted runs (the CLI smoke test drives it).
  bool allow_remote_shutdown = false;

  /// Completion-driven outcome delivery (the default): the server hangs a
  /// completion hook on the service (ServiceOptions::on_query_complete)
  /// that pushes each finished ticket id onto a lock-protected ready list
  /// and writes the serving loop's wake pipe, so the loop wakes the
  /// instant a query finishes and delivers exactly the ready outcomes —
  /// the idle poll timeout stays at 250 ms regardless of in-flight work.
  /// Off = the legacy poll fallback: the loop re-polls at 2 ms while
  /// queries are in flight and scans every pending ticket, which adds up
  /// to one poll interval of delivery latency per query. Kept as an
  /// operational escape hatch and as the baseline of the
  /// bench_net_loopback latency comparison.
  bool completion_wakeups = true;
};

/// A poll()-based multi-connection TCP server over one MatchService: the
/// wire front end that turns the library into a servable system. One
/// serving thread multiplexes the listening socket and every connection
/// (non-blocking reads/writes, per-connection frame reassembly and output
/// buffering); query execution itself runs on the service's worker pool,
/// so a slow client never blocks matching and a heavy query never blocks
/// the protocol.
///
/// Per connection the server keeps a table of in-flight tickets keyed by
/// the client's request id. Outcome delivery is completion-driven: the
/// service's completion hook enqueues each finished ticket id on a ready
/// list and wakes the poll loop through its wake pipe, so outcomes are
/// delivered as kOutcome frames the moment they finalise, in completion
/// order (clients pipeline submissions and match replies by id) — the
/// loop never scans pending tickets on a cadence. A submission shed by
/// queue-depth backpressure comes back immediately as kRejected. A
/// connection that drops — cleanly or not — has all its in-flight
/// queries cancelled: abandoned work never outlives its requester. A
/// malformed frame gets one kError frame and the same
/// cancel-and-close treatment.
///
/// POSIX-only (poll/sockets); Start() reports Internal elsewhere.
class MatchServer {
 public:
  /// `data` must outlive the server.
  MatchServer(const IndexedHypergraph& data, const ServerOptions& options);

  /// Stops and joins (cancelling in-flight queries of open connections).
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Binds, listens and launches the serving thread. Call once.
  Status Start();

  /// The bound port (resolves option port 0); valid after Start().
  uint16_t port() const;

  /// Blocks until the serving loop exits: Stop(), or a remote shutdown
  /// when ServerOptions::allow_remote_shutdown is set.
  void Wait();

  /// Wait with a budget; true when the loop exited within it.
  bool WaitFor(double seconds);

  /// Stops serving: wakes the loop, cancels in-flight queries, closes
  /// every socket and joins the thread. Idempotent.
  void Stop();

  /// Statistics snapshot, equivalent to a kStats round-trip.
  WireStats Stats() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hgmatch

#endif  // HGMATCH_NET_SERVER_H_
