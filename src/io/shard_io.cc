#include "io/shard_io.h"

#include <utility>

#include "core/shard.h"
#include "io/binary_format.h"

namespace hgmatch {

std::string ShardPath(const std::string& prefix, uint32_t index,
                      uint32_t num_shards) {
  return prefix + ".shard" + std::to_string(index) + "-of" +
         std::to_string(num_shards) + ".hgb";
}

Result<std::vector<std::string>> SaveShards(const Hypergraph& h,
                                            const std::string& prefix,
                                            uint32_t num_shards,
                                            bool compress) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  const std::vector<Hypergraph> parts = SplitHypergraph(h, num_shards);
  std::vector<std::string> paths;
  paths.reserve(parts.size());
  for (uint32_t k = 0; k < parts.size(); ++k) {
    std::string path = ShardPath(prefix, k, num_shards);
    Status saved = SaveHypergraphBinary(parts[k], path, compress);
    if (!saved.ok()) return saved;
    paths.push_back(std::move(path));
  }
  return paths;
}

Result<Hypergraph> LoadShards(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Status::InvalidArgument("no shard paths given");
  }
  std::vector<Hypergraph> parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    Result<Hypergraph> part = LoadHypergraphBinary(path);
    if (!part.ok()) return part.status();
    parts.push_back(std::move(part).value());
  }
  return MergeShards(parts);
}

}  // namespace hgmatch
