#ifndef HGMATCH_IO_SHARD_IO_H_
#define HGMATCH_IO_SHARD_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/hypergraph.h"
#include "util/status.h"

namespace hgmatch {

/// On-disk layout of a storage-sharded hypergraph (core/shard.h): each
/// part is an ordinary .hgb file (io/binary_format.h, HGM2 chunked +
/// compressed by default), named
///
///   <prefix>.shard<k>-of<K>.hgb      k in [0, K)
///
/// so a shard set is self-describing from its file names and each part
/// loads with the stock LoadHypergraphBinary — no new container format.

/// The path of part `index` of a `num_shards`-way split under `prefix`.
std::string ShardPath(const std::string& prefix, uint32_t index,
                      uint32_t num_shards);

/// Splits `h` into `num_shards` parts (SplitHypergraph) and writes each to
/// ShardPath(prefix, k, num_shards). Returns the written paths.
Result<std::vector<std::string>> SaveShards(const Hypergraph& h,
                                            const std::string& prefix,
                                            uint32_t num_shards,
                                            bool compress = true);

/// Loads every path as a binary hypergraph part and merges them
/// (MergeShards): the round-trip inverse of SaveShards, and the way a
/// serving process re-assembles a shard set it hosts whole.
Result<Hypergraph> LoadShards(const std::vector<std::string>& paths);

}  // namespace hgmatch

#endif  // HGMATCH_IO_SHARD_IO_H_
