#ifndef HGMATCH_IO_LOADER_H_
#define HGMATCH_IO_LOADER_H_

#include <string>
#include <vector>

#include "core/hypergraph.h"
#include "parallel/submit_options.h"
#include "util/status.h"

namespace hgmatch {

/// Text format for labelled hypergraphs:
///
///   # comment lines and blank lines are ignored
///   v <vertex-id> <label>        # one per vertex, ids dense from 0
///   e <v1> <v2> ... <vk>         # one unlabelled hyperedge, k >= 1
///   el <label> <v1> ... <vk>     # one labelled hyperedge (footnote 2)
///
/// Vertex lines may appear in any order but every id in [0, max_id] must be
/// declared exactly once. Duplicate vertices within a hyperedge are merged
/// and duplicate hyperedges are dropped (the paper's preprocessing,
/// Section VII.A).

/// Parses a hypergraph from file contents.
Result<Hypergraph> ParseHypergraph(const std::string& text);

/// Reads and parses `path`.
Result<Hypergraph> LoadHypergraph(const std::string& path);

/// Query-set text format: several hypergraphs in one file, each in the
/// format above, separated by lines consisting of "---" or starting with
/// "# query" (so the output of `hgmatch sample` loads directly). Separator
/// blocks with no content are skipped; an error in any block fails the
/// whole set with its block index in the message.
///
/// A block may additionally carry per-query submission headers — comment
/// lines of the form
///
///   # tenant=<uint>       fairness group under weighted-fair admission
///   # priority=<int>      strict-priority rank (higher = sooner)
///   # weight=<float>      tenant share, > 0
///   # timeout=<seconds>   per-query budget, >= 0 (0 = no timeout)
///
/// surfaced through QuerySetEntry::submit. A header key with a malformed
/// or out-of-range value is a parse error (never silently ignored); other
/// `#` lines remain plain comments. A repeated header in one block takes
/// its last value.
Result<std::vector<Hypergraph>> ParseQuerySet(const std::string& text);

/// Reads and parses a query-set file.
Result<std::vector<Hypergraph>> LoadQuerySet(const std::string& path);

/// One query of a query set plus its per-query submission options (from
/// the block headers above; defaults when absent). `submit.sink` is always
/// null — sinks are a caller concern.
struct QuerySetEntry {
  Hypergraph query;
  SubmitOptions submit;
};

/// ParseQuerySet variant that also surfaces the per-query headers.
Result<std::vector<QuerySetEntry>> ParseQuerySetEntries(
    const std::string& text);

/// Reads and parses a query-set file including per-query headers.
Result<std::vector<QuerySetEntry>> LoadQuerySetEntries(
    const std::string& path);

}  // namespace hgmatch

#endif  // HGMATCH_IO_LOADER_H_
