#ifndef HGMATCH_IO_BYTE_IO_H_
#define HGMATCH_IO_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

// Little-endian plain-data (de)serialisation helpers shared by the binary
// hypergraph format (io/binary_format.cc) and the wire protocol
// (net/protocol.cc). Reading is sticky-failure: corruption is detected by
// one final ok() check instead of per-field branching at every call site.

namespace hgmatch {

/// Appends the raw little-endian bytes of a POD value.
template <typename T>
inline void AppendValue(T value, std::string* out) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Appends an unsigned LEB128 varint (7 value bits per byte, LSB first,
/// high bit = continuation). Small values — vertex-id deltas, labels,
/// arities, entry lengths — cost one byte instead of four or eight; this
/// is the pre-pass that makes the LZSS stage (io/compress.h) see its
/// repeats at byte granularity.
inline void AppendVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

/// Reads a varint from any sticky-failure reader exposing
/// ReadValue<uint8_t>() and MarkFailed(). Over-long encodings (more than
/// 10 bytes, or bits past the 64th) fail the reader instead of silently
/// truncating.
template <typename Reader>
inline uint64_t ReadVarint(Reader& r) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const uint8_t byte = r.template ReadValue<uint8_t>();
    if (shift == 63 && (byte & 0x7e) != 0) break;  // bits past the 64th
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  r.MarkFailed();
  return 0;
}

/// Bounded reader over an in-memory byte image.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool ok() const { return !failed_; }
  void MarkFailed() { failed_ = true; }
  uint64_t remaining() const { return size_ - pos_; }
  std::string_view rest() const {
    return std::string_view(data_ + pos_, size_ - pos_);
  }

  void Read(void* out, size_t bytes) {
    if (failed_ || bytes > size_ - pos_) {
      failed_ = true;
      return;
    }
    std::memcpy(out, data_ + pos_, bytes);
    pos_ += bytes;
  }

  /// Advances past `bytes` without copying them (callers that took a view
  /// via rest() first).
  void Skip(size_t bytes) {
    if (failed_ || bytes > size_ - pos_) {
      failed_ = true;
      return;
    }
    pos_ += bytes;
  }

  template <typename T>
  T ReadValue() {
    T value{};
    Read(&value, sizeof(T));
    return value;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace hgmatch

#endif  // HGMATCH_IO_BYTE_IO_H_
