#ifndef HGMATCH_IO_BYTE_IO_H_
#define HGMATCH_IO_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

// Little-endian plain-data (de)serialisation helpers shared by the binary
// hypergraph format (io/binary_format.cc) and the wire protocol
// (net/protocol.cc). Reading is sticky-failure: corruption is detected by
// one final ok() check instead of per-field branching at every call site.

namespace hgmatch {

/// Appends the raw little-endian bytes of a POD value.
template <typename T>
inline void AppendValue(T value, std::string* out) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounded reader over an in-memory byte image.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool ok() const { return !failed_; }
  uint64_t remaining() const { return size_ - pos_; }
  std::string_view rest() const {
    return std::string_view(data_ + pos_, size_ - pos_);
  }

  void Read(void* out, size_t bytes) {
    if (failed_ || bytes > size_ - pos_) {
      failed_ = true;
      return;
    }
    std::memcpy(out, data_ + pos_, bytes);
    pos_ += bytes;
  }

  template <typename T>
  T ReadValue() {
    T value{};
    Read(&value, sizeof(T));
    return value;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace hgmatch

#endif  // HGMATCH_IO_BYTE_IO_H_
