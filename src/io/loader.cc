#include "io/loader.h"

#include <cstdio>
#include <sstream>
#include <vector>

namespace hgmatch {

Result<Hypergraph> ParseHypergraph(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::pair<VertexId, Label>> vertices;
  std::vector<std::pair<VertexSet, Label>> edges;
  size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "v") {
      int64_t id = -1, label = -1;
      if (!(ls >> id >> label) || id < 0 || label < 0) {
        return Status::Corruption("bad vertex line " + std::to_string(line_no));
      }
      vertices.emplace_back(static_cast<VertexId>(id),
                            static_cast<Label>(label));
    } else if (tag == "e" || tag == "el") {
      Label edge_label = 0;
      if (tag == "el") {
        int64_t l = -1;
        if (!(ls >> l) || l < 0) {
          return Status::Corruption("bad hyperedge label at line " +
                                    std::to_string(line_no));
        }
        edge_label = static_cast<Label>(l);
      }
      VertexSet members;
      int64_t v = -1;
      while (ls >> v) {
        if (v < 0) {
          return Status::Corruption("bad hyperedge line " +
                                    std::to_string(line_no));
        }
        members.push_back(static_cast<VertexId>(v));
      }
      if (members.empty()) {
        return Status::Corruption("empty hyperedge at line " +
                                  std::to_string(line_no));
      }
      edges.emplace_back(std::move(members), edge_label);
    } else {
      return Status::Corruption("unknown line tag '" + tag + "' at line " +
                                std::to_string(line_no));
    }
  }

  // Materialise vertices densely.
  VertexId max_id = 0;
  for (const auto& [id, label] : vertices) max_id = std::max(max_id, id);
  if (!vertices.empty() && vertices.size() != static_cast<size_t>(max_id) + 1) {
    return Status::Corruption("vertex ids are not dense: " +
                              std::to_string(vertices.size()) +
                              " declarations, max id " +
                              std::to_string(max_id));
  }
  std::vector<Label> labels(vertices.size(), kInvalidLabel);
  for (const auto& [id, label] : vertices) {
    if (labels[id] != kInvalidLabel) {
      return Status::Corruption("vertex " + std::to_string(id) +
                                " declared twice");
    }
    labels[id] = label;
  }

  Hypergraph h;
  for (Label l : labels) h.AddVertex(l);
  for (auto& [members, edge_label] : edges) {
    Result<EdgeId> added = h.AddEdge(std::move(members), edge_label);
    if (!added.ok()) return added.status();
  }
  return h;
}

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

bool IsQuerySeparator(const std::string& line) {
  size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return false;
  size_t end = line.find_last_not_of(" \t\r");
  const std::string trimmed = line.substr(begin, end - begin + 1);
  return trimmed == "---" || trimmed.rfind("# query", 0) == 0;
}

}  // namespace

Result<Hypergraph> LoadHypergraph(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseHypergraph(text.value());
}

Result<std::vector<Hypergraph>> ParseQuerySet(const std::string& text) {
  std::vector<std::string> blocks(1);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (IsQuerySeparator(line)) {
      blocks.emplace_back();
    } else {
      blocks.back().append(line).push_back('\n');
    }
  }

  std::vector<Hypergraph> queries;
  for (const std::string& block : blocks) {
    if (block.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    Result<Hypergraph> q = ParseHypergraph(block);
    if (!q.ok()) {
      // Index among non-empty blocks, matching the CLI's query numbering.
      return Status(q.status().code(),
                    "query block " + std::to_string(queries.size()) + ": " +
                        q.status().message());
    }
    queries.push_back(std::move(q.value()));
  }
  return queries;
}

Result<std::vector<Hypergraph>> LoadQuerySet(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseQuerySet(text.value());
}

}  // namespace hgmatch
