#include "io/loader.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace hgmatch {

Result<Hypergraph> ParseHypergraph(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::pair<VertexId, Label>> vertices;
  std::vector<std::pair<VertexSet, Label>> edges;
  size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "v") {
      int64_t id = -1, label = -1;
      if (!(ls >> id >> label) || id < 0 || label < 0) {
        return Status::Corruption("bad vertex line " + std::to_string(line_no));
      }
      vertices.emplace_back(static_cast<VertexId>(id),
                            static_cast<Label>(label));
    } else if (tag == "e" || tag == "el") {
      Label edge_label = 0;
      if (tag == "el") {
        int64_t l = -1;
        if (!(ls >> l) || l < 0) {
          return Status::Corruption("bad hyperedge label at line " +
                                    std::to_string(line_no));
        }
        edge_label = static_cast<Label>(l);
      }
      VertexSet members;
      int64_t v = -1;
      while (ls >> v) {
        if (v < 0) {
          return Status::Corruption("bad hyperedge line " +
                                    std::to_string(line_no));
        }
        members.push_back(static_cast<VertexId>(v));
      }
      if (members.empty()) {
        return Status::Corruption("empty hyperedge at line " +
                                  std::to_string(line_no));
      }
      edges.emplace_back(std::move(members), edge_label);
    } else {
      return Status::Corruption("unknown line tag '" + tag + "' at line " +
                                std::to_string(line_no));
    }
  }

  // Materialise vertices densely.
  VertexId max_id = 0;
  for (const auto& [id, label] : vertices) max_id = std::max(max_id, id);
  if (!vertices.empty() && vertices.size() != static_cast<size_t>(max_id) + 1) {
    return Status::Corruption("vertex ids are not dense: " +
                              std::to_string(vertices.size()) +
                              " declarations, max id " +
                              std::to_string(max_id));
  }
  std::vector<Label> labels(vertices.size(), kInvalidLabel);
  for (const auto& [id, label] : vertices) {
    if (labels[id] != kInvalidLabel) {
      return Status::Corruption("vertex " + std::to_string(id) +
                                " declared twice");
    }
    labels[id] = label;
  }

  Hypergraph h;
  for (Label l : labels) h.AddVertex(l);
  for (auto& [members, edge_label] : edges) {
    Result<EdgeId> added = h.AddEdge(std::move(members), edge_label);
    if (!added.ok()) return added.status();
  }
  return h;
}

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

bool IsQuerySeparator(const std::string& line) {
  size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return false;
  size_t end = line.find_last_not_of(" \t\r");
  const std::string trimmed = line.substr(begin, end - begin + 1);
  return trimmed == "---" || trimmed.rfind("# query", 0) == 0;
}

std::string Trim(const std::string& s) {
  const size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

// Interprets a '#' comment line as a per-query submission header when its
// first token is one of the known keys followed by '='. Returns 0 when the
// line is an ordinary comment, 1 when a header was parsed into *submit, and
// -1 (with *error set) when a known key carries a malformed or
// out-of-range value — a typo in a header must fail loudly, not run the
// query under silently-default options.
int ParseQueryHeader(const std::string& line, SubmitOptions* submit,
                     std::string* error) {
  const size_t eq = line.find('=');
  if (eq == std::string::npos) return 0;
  const std::string key = Trim(line.substr(1, eq - 1));
  if (key != "tenant" && key != "priority" && key != "weight" &&
      key != "timeout") {
    return 0;
  }
  const std::string value = Trim(line.substr(eq + 1));
  const char* begin = value.c_str();
  char* end = nullptr;
  if (key == "tenant") {
    if (value.empty() || value[0] == '-') {
      *error = "bad tenant header value '" + value + "'";
      return -1;
    }
    const unsigned long long v = std::strtoull(begin, &end, 10);
    if (end == begin || *end != '\0' || v > 0xffffffffull) {
      *error = "bad tenant header value '" + value + "'";
      return -1;
    }
    submit->tenant_id = static_cast<uint32_t>(v);
  } else if (key == "priority") {
    const long v = std::strtol(begin, &end, 10);
    if (end == begin || *end != '\0' || v < INT32_MIN || v > INT32_MAX) {
      *error = "bad priority header value '" + value + "'";
      return -1;
    }
    submit->priority = static_cast<int32_t>(v);
  } else if (key == "weight") {
    const double v = std::strtod(begin, &end);
    // !isfinite rejects overflowed values like 1e999: an infinite weight
    // would make the tenant's virtual-time increment zero and starve every
    // other tenant — exactly the silent misconfiguration headers must not
    // let through.
    if (end == begin || *end != '\0' || !(v > 0) || !std::isfinite(v)) {
      *error = "bad weight header value '" + value + "' (must be finite > 0)";
      return -1;
    }
    submit->weight = v;
  } else {  // timeout
    const double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0' || v < 0 || !std::isfinite(v)) {
      *error =
          "bad timeout header value '" + value + "' (must be finite >= 0)";
      return -1;
    }
    submit->timeout_seconds = v;
  }
  return 1;
}

}  // namespace

Result<Hypergraph> LoadHypergraph(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseHypergraph(text.value());
}

Result<std::vector<QuerySetEntry>> ParseQuerySetEntries(
    const std::string& text) {
  struct RawBlock {
    std::string text;
    SubmitOptions submit;
  };
  std::vector<RawBlock> blocks(1);
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsQuerySeparator(line)) {
      blocks.emplace_back();
      continue;
    }
    const std::string trimmed = Trim(line);
    if (!trimmed.empty() && trimmed[0] == '#') {
      std::string error;
      if (ParseQueryHeader(trimmed, &blocks.back().submit, &error) < 0) {
        return Status::Corruption("query set line " + std::to_string(line_no) +
                                  ": " + error);
      }
    }
    blocks.back().text.append(line).push_back('\n');
  }

  std::vector<QuerySetEntry> entries;
  for (RawBlock& block : blocks) {
    if (block.text.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    Result<Hypergraph> q = ParseHypergraph(block.text);
    if (!q.ok()) {
      // Index among non-empty blocks, matching the CLI's query numbering.
      return Status(q.status().code(),
                    "query block " + std::to_string(entries.size()) + ": " +
                        q.status().message());
    }
    entries.push_back(QuerySetEntry{std::move(q.value()), block.submit});
  }
  return entries;
}

Result<std::vector<Hypergraph>> ParseQuerySet(const std::string& text) {
  Result<std::vector<QuerySetEntry>> entries = ParseQuerySetEntries(text);
  if (!entries.ok()) return entries.status();
  std::vector<Hypergraph> queries;
  queries.reserve(entries.value().size());
  for (QuerySetEntry& e : entries.value()) {
    queries.push_back(std::move(e.query));
  }
  return queries;
}

Result<std::vector<Hypergraph>> LoadQuerySet(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseQuerySet(text.value());
}

Result<std::vector<QuerySetEntry>> LoadQuerySetEntries(
    const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseQuerySetEntries(text.value());
}

}  // namespace hgmatch
