#ifndef HGMATCH_IO_BINARY_FORMAT_H_
#define HGMATCH_IO_BINARY_FORMAT_H_

#include <string>

#include "core/hypergraph.h"
#include "util/status.h"

namespace hgmatch {

/// Compact binary hypergraph formats for fast offline preprocessing
/// round-trips (the "Load Graph" step of Fig 3 for large datasets, where
/// text parsing dominates — dataset load is the serve cold-start cost).
///
/// v1 (magic 'HGM1'), fixed-width — the wire image of SUBMIT frames:
///
///   [u32 magic 'HGM1'] [u64 |V|] [u64 |E|] [u64 incidences]
///   [Label * |V|]                     vertex labels
///   [u32 arity, Label edge_label, VertexId * arity]...  per hyperedge
///
/// v2 (magic 'HGM2'), the on-disk default since the codec landed: the same
/// header counts, then the *compact body* — varint labels, then per edge
/// varint arity + edge label + the sorted vertex ids as a first id plus
/// ascending deltas — split into bounded chunks, each stored raw or
/// LZSS-compressed (io/compress.h), whichever is smaller:
///
///   [u32 magic 'HGM2'] [u64 |V|] [u64 |E|] [u64 incidences]
///   [u32 raw bytes, u32 stored bytes, u8 codec, stored bytes...]...
///
/// codec 0 = raw (stored == raw), 1 = LZSS. Chunks are at most
/// kBinaryChunkBytes raw, so decoding never allocates more than one
/// chunk's raw size before validation can fail. Both little-endian, no
/// alignment padding; corruption is detected by size mismatches rather
/// than UB. Readers accept either magic — v1 files keep loading forever.
inline constexpr uint32_t kBinaryMagic = 0x31'4d'47'48;    // "HGM1"
inline constexpr uint32_t kBinaryMagicV2 = 0x32'4d'47'48;  // "HGM2"

/// Raw-byte bound of one v2 body chunk (writer emits exactly this except
/// for the final partial chunk; readers reject chunks declaring more).
inline constexpr uint32_t kBinaryChunkBytes = 1u << 20;

/// Appends the v1 binary encoding of `h` — the exact file image above,
/// magic included — to *out. This is the wire image: net/protocol.cc
/// inlines it into SUBMIT frames, where pre-HELLO peers must keep
/// decoding it (frame-level compression is negotiated separately).
void AppendHypergraphBinary(const Hypergraph& h, std::string* out);

/// Appends the v2 (compact + chunk-compressed) encoding of `h` to *out.
void AppendHypergraphCompressed(const Hypergraph& h, std::string* out);

/// Decodes a hypergraph from an in-memory binary image, v1 or v2
/// (dispatched on the magic). `size` must cover exactly one hypergraph;
/// trailing bytes are a Corruption error like any other size mismatch.
Result<Hypergraph> DecodeHypergraphBinary(const void* data, size_t size);

/// Writes `h` to `path`: v2 compressed by default, v1 fixed-width when
/// `compress` is false (interop with pre-v2 readers).
Status SaveHypergraphBinary(const Hypergraph& h, const std::string& path,
                            bool compress = true);

/// Reads a binary hypergraph from `path` (v1 or v2).
Result<Hypergraph> LoadHypergraphBinary(const std::string& path);

}  // namespace hgmatch

#endif  // HGMATCH_IO_BINARY_FORMAT_H_
