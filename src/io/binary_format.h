#ifndef HGMATCH_IO_BINARY_FORMAT_H_
#define HGMATCH_IO_BINARY_FORMAT_H_

#include <string>

#include "core/hypergraph.h"
#include "util/status.h"

namespace hgmatch {

/// Compact binary hypergraph format for fast offline preprocessing
/// round-trips (the "Load Graph" step of Fig 3 for large datasets, where
/// text parsing dominates):
///
///   [u32 magic 'HGM1'] [u64 |V|] [u64 |E|] [u64 incidences]
///   [Label * |V|]                     vertex labels
///   [u32 arity, Label edge_label, VertexId * arity]...  per hyperedge
///
/// Little-endian, no alignment padding. All sections are length-prefixed so
/// corruption is detected by size mismatches rather than UB.
inline constexpr uint32_t kBinaryMagic = 0x31'4d'47'48;  // "HGM1"

/// Appends the binary encoding of `h` — the exact file image above, magic
/// included — to *out. Shared by the file writer below and the wire
/// protocol (net/protocol.h), which inlines query hypergraphs into SUBMIT
/// frames.
void AppendHypergraphBinary(const Hypergraph& h, std::string* out);

/// Decodes a hypergraph from an in-memory binary image (the inverse of
/// AppendHypergraphBinary). `size` must cover exactly one hypergraph;
/// trailing bytes are a Corruption error like any other size mismatch.
Result<Hypergraph> DecodeHypergraphBinary(const void* data, size_t size);

/// Writes `h` to `path` in binary format.
Status SaveHypergraphBinary(const Hypergraph& h, const std::string& path);

/// Reads a binary hypergraph from `path`.
Result<Hypergraph> LoadHypergraphBinary(const std::string& path);

}  // namespace hgmatch

#endif  // HGMATCH_IO_BINARY_FORMAT_H_
