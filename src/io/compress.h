#ifndef HGMATCH_IO_COMPRESS_H_
#define HGMATCH_IO_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

// Small-window LZSS codec shared by the wire protocol (net/protocol.cc
// wraps negotiated frames in kCompressed) and the on-disk hypergraph
// format (io/binary_format.cc compresses HGM2 body chunks). The format is
// byte-aligned — no bitstream or entropy stage — because the payloads it
// targets (delta+varint id streams, repeated tiny query images) are
// dominated by short-range repeats that plain LZ matches already collapse;
// see the layered LZ designs referenced in SNIPPETS.md for the shape this
// deliberately simplifies.
//
// Stream layout: groups of up to eight items behind one control byte whose
// bit i (LSB first) tags item i — 0 = one literal byte, 1 = a two-byte
// little-endian match token packing (distance - 1) << 4 | length-code,
// i.e. distances 1..4096 into the already-decoded output. A length code
// of 0..14 means length 3..17; code 15 is followed by one extension byte E
// for length 18 + E (up to 273) — long matches are what make periodic
// payloads (a batch of near-identical submit entries) collapse to a few
// tokens per period instead of one per 18 bytes. Matches may overlap their
// own output (distance < length), which is what collapses runs. The stream
// carries no sizes: callers transmit the raw size out of band and bound
// decompression with it.

namespace hgmatch {

/// Match window and length limits of the token encoding above.
inline constexpr size_t kLzssWindowBytes = 4096;
inline constexpr size_t kLzssMinMatch = 3;
inline constexpr size_t kLzssMaxMatch = kLzssMinMatch + 15 + 255;  // 273

/// Compresses `input`, appending the LZSS stream to *out. Greedy matching
/// over hash chains; output is at most input + ceil(input/8) + 1 bytes
/// (all-literal worst case), so callers decide incompressible-input
/// passthrough by comparing sizes.
void LzssCompress(std::string_view input, std::string* out);

/// Decompresses `input`, appending at most `max_output_bytes` decoded
/// bytes to *out. Fails with Corruption — before over-allocating — when
/// the stream is malformed (truncated match token, match reaching before
/// the stream start) or would inflate past the bound. On failure *out may
/// hold a partial prefix; callers treat the whole payload as corrupt.
Status LzssDecompress(std::string_view input, size_t max_output_bytes,
                      std::string* out);

}  // namespace hgmatch

#endif  // HGMATCH_IO_COMPRESS_H_
