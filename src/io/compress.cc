#include "io/compress.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

namespace hgmatch {

namespace {

// Hash of the 3-byte prefix at `p` — the minimum-match key of the chain
// index below.
inline uint32_t Hash3(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     static_cast<uint32_t>(p[1]) << 8 |
                     static_cast<uint32_t>(p[2]) << 16;
  return (v * 2654435761u) >> 18;  // top 14 bits -> 16384 buckets
}

constexpr size_t kHashBuckets = 1u << 14;

// Longest chain walked per position: caps worst-case compression time on
// degenerate inputs (e.g. one repeated byte hashes every position into one
// bucket) at a constant factor.
constexpr int kMaxChainSteps = 64;

// A match this long is taken without walking the rest of the chain: squeezing
// the last few bytes out of an already-long match is not worth the extra
// candidate compares on periodic payloads.
constexpr size_t kNiceMatch = 96;

// Length of the common prefix of a and b, capped at limit. Word-at-a-time:
// with an 18-byte match cap this is at most three 8-byte compares.
inline size_t MatchLength(const uint8_t* a, const uint8_t* b, size_t limit) {
  size_t len = 0;
  while (len + 8 <= limit) {
    uint64_t wa, wb;
    std::memcpy(&wa, a + len, 8);
    std::memcpy(&wb, b + len, 8);
    const uint64_t x = wa ^ wb;
    if (x != 0) {  // index of the first differing byte within the word
      if constexpr (std::endian::native == std::endian::little) {
        return len + (std::countr_zero(x) >> 3);
      } else {
        return len + (std::countl_zero(x) >> 3);
      }
    }
    len += 8;
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

// Per-thread match-finder state, reused across calls. A bucket is live only
// when its stamp equals the current generation, so starting a fresh frame is
// a counter bump instead of a 64 KB fill — the dominant cost when thousands
// of small frames (one per outcome) go through the compressor.
struct LzssScratch {
  std::vector<int32_t> head = std::vector<int32_t>(kHashBuckets, -1);
  std::vector<uint32_t> stamp = std::vector<uint32_t>(kHashBuckets, 0);
  std::vector<int32_t> prev;
  uint32_t gen = 0;
};

}  // namespace

void LzssCompress(std::string_view input, std::string* out) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(input.data());
  const size_t n = input.size();
  out->reserve(out->size() + n / 2 + 16);

  // head[h] = most recent position whose 3-byte prefix hashes to h (live iff
  // stamp[h] == gen); prev[i] = the position before i in i's chain. -1
  // terminates. prev entries are only ever reached through a live head, so
  // they never need clearing.
  thread_local LzssScratch scratch;
  if (++scratch.gen == 0) {  // stamp wrap: every bucket looks live once
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
    scratch.gen = 1;
  }
  const uint32_t gen = scratch.gen;
  int32_t* const head = scratch.head.data();
  uint32_t* const stamp = scratch.stamp.data();
  const size_t last_insertable =
      n >= kLzssMinMatch ? n - kLzssMinMatch + 1 : 0;  // exclusive
  if (scratch.prev.size() < last_insertable) {
    scratch.prev.resize(last_insertable);
  }
  int32_t* const prev = scratch.prev.data();

  const auto insert = [&](size_t i) {
    if (i >= last_insertable) return;
    const uint32_t h = Hash3(data + i);
    prev[i] = stamp[h] == gen ? head[h] : -1;
    head[h] = static_cast<int32_t>(i);
    stamp[h] = gen;
  };

  // One control byte fronting up to eight literal/match items.
  uint8_t flags = 0;
  int items = 0;
  std::string group;
  group.reserve(24);  // eight items of up to three bytes
  const auto flush_group = [&] {
    if (items == 0) return;
    out->push_back(static_cast<char>(flags));
    out->append(group);
    flags = 0;
    items = 0;
    group.clear();
  };

  size_t i = 0;
  while (i < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i < last_insertable) {
      const size_t limit = std::min(n - i, kLzssMaxMatch);
      const uint32_t h = Hash3(data + i);
      int32_t cand = stamp[h] == gen ? head[h] : -1;
      int steps = kMaxChainSteps;
      while (cand >= 0 && steps-- > 0) {
        const size_t c = static_cast<size_t>(cand);
        if (i - c > kLzssWindowBytes) break;  // chains only get older
        // A candidate can only improve on best_len if it matches there too;
        // one byte compare rejects most of the chain without a full walk.
        if (data[c + best_len] == data[i + best_len]) {
          const size_t len = MatchLength(data + c, data + i, limit);
          if (len > best_len) {
            best_len = len;
            best_dist = i - c;
            if (len == limit || len >= kNiceMatch) break;
          }
        }
        cand = prev[c];
      }
    }
    if (best_len >= kLzssMinMatch) {
      const size_t len_code = std::min<size_t>(best_len - kLzssMinMatch, 15);
      const uint16_t token =
          static_cast<uint16_t>((best_dist - 1) << 4 | len_code);
      group.push_back(static_cast<char>(token & 0xff));
      group.push_back(static_cast<char>(token >> 8));
      if (len_code == 15) {  // extension byte: length 18 + E
        group.push_back(static_cast<char>(best_len - kLzssMinMatch - 15));
      }
      flags |= static_cast<uint8_t>(1u << items);
      // Index the match sparsely: matched bytes are by definition repeats
      // of text already anchored in the table, so a few anchors per match
      // keep long-range matches findable while skipping most of the table
      // maintenance — the dominant compression cost on periodic payloads.
      const size_t end = i + best_len;
      for (size_t j = i; j < end; j += 8) insert(j);
      i = end;
    } else {
      group.push_back(static_cast<char>(data[i]));
      insert(i);
      ++i;
    }
    if (++items == 8) flush_group();
  }
  flush_group();
}

Status LzssDecompress(std::string_view input, size_t max_output_bytes,
                      std::string* out) {
  const uint8_t* in = reinterpret_cast<const uint8_t*>(input.data());
  const size_t n = input.size();
  const size_t base = out->size();
  // The declared size is exact for well-formed streams and is validated
  // against the frame/chunk bound by every caller before this runs, so one
  // up-front resize replaces per-byte append checks; on a corrupt stream the
  // partial output is rolled back.
  out->resize(base + max_output_bytes);
  char* const buf = out->data() + base;
  size_t produced = 0;
  const auto fail = [&](const char* msg) {
    out->resize(base);
    return Status::Corruption(msg);
  };
  size_t i = 0;
  while (i < n) {
    const uint8_t flags = in[i++];
    for (int bit = 0; bit < 8 && i < n; ++bit) {
      if (flags & (1u << bit)) {
        if (i + 2 > n) {
          return fail("LZSS: truncated match token");
        }
        const uint16_t token = static_cast<uint16_t>(
            in[i] | static_cast<uint16_t>(in[i + 1]) << 8);
        i += 2;
        const size_t dist = static_cast<size_t>(token >> 4) + 1;
        size_t len = static_cast<size_t>(token & 0xf) + kLzssMinMatch;
        if ((token & 0xf) == 0xf) {  // extension byte follows
          if (i >= n) {
            return fail("LZSS: truncated match token");
          }
          len += in[i++];
        }
        if (dist > produced) {
          return fail("LZSS: match before stream start");
        }
        if (len > max_output_bytes - produced) {  // produced <= max always
          return fail("LZSS: output exceeds the declared size");
        }
        // Byte-at-a-time forward copy on purpose: overlapping matches
        // (dist < len) read bytes this very copy wrote.
        const char* src = buf + produced - dist;
        char* dst = buf + produced;
        for (size_t k = 0; k < len; ++k) dst[k] = src[k];
        produced += len;
      } else {
        if (produced >= max_output_bytes) {
          return fail("LZSS: output exceeds the declared size");
        }
        buf[produced++] = static_cast<char>(in[i++]);
      }
    }
  }
  out->resize(base + produced);
  return Status::OK();
}

}  // namespace hgmatch
